"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    rc = main()
except BrokenPipeError:
    # Piping into `head` and friends closes stdout early; exit quietly
    # (dup2 to devnull so the interpreter's stdout flush doesn't re-raise).
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(1)
sys.exit(rc)
