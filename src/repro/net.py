"""Network-agnostic message and adapter interfaces.

The full-system model and the trace replayers are written against this thin
interface so that the *same* workload can run unchanged over the electrical
baseline NoC (:class:`repro.noc.network.ElectricalNetwork`) or either optical
network (:mod:`repro.onoc`).  This mirrors the paper's methodology: the
full-system front end is fixed and the interconnect back end is swapped.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.stats import NetworkStats

# Message kinds used by the coherence protocol and the replayers.
MSG_REQ_READ = "req_read"
MSG_REQ_WRITE = "req_write"
MSG_RESP_DATA = "resp_data"
MSG_INV = "inv"
MSG_INV_ACK = "inv_ack"
MSG_WRITEBACK = "writeback"
MSG_MEM_READ = "mem_read"
MSG_MEM_RESP = "mem_resp"
MSG_BARRIER_ARRIVE = "barrier_arrive"
MSG_BARRIER_RELEASE = "barrier_release"
MSG_SYNTHETIC = "synthetic"

_msg_ids = itertools.count()


def reset_message_ids() -> None:
    """Restart the global message-id counter (test isolation helper)."""
    global _msg_ids
    _msg_ids = itertools.count()


class Message:
    """One end-to-end network message (a packet at the NI boundary).

    ``inject_time``/``deliver_time`` are stamped by the network adapter; the
    trace-capture layer reads them to build trace records.
    """

    __slots__ = (
        "id",
        "src",
        "dst",
        "size_bytes",
        "kind",
        "payload",
        "inject_time",
        "deliver_time",
        "on_delivery",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        size_bytes: int,
        kind: str = MSG_SYNTHETIC,
        payload: Any = None,
        on_delivery: Optional[Callable[["Message"], None]] = None,
        msg_id: Optional[int] = None,
    ) -> None:
        if src < 0 or dst < 0:
            raise ValueError(f"negative endpoint: src={src} dst={dst}")
        if size_bytes < 1:
            raise ValueError(f"size_bytes must be >= 1, got {size_bytes}")
        self.id = next(_msg_ids) if msg_id is None else msg_id
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.kind = kind
        self.payload = payload
        self.inject_time: int = -1
        self.deliver_time: int = -1
        self.on_delivery = on_delivery

    @property
    def latency(self) -> int:
        """End-to-end latency; valid only after delivery."""
        if self.deliver_time < 0 or self.inject_time < 0:
            raise ValueError(f"message {self.id} not delivered yet")
        return self.deliver_time - self.inject_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message(id={self.id}, {self.src}->{self.dst}, "
            f"{self.size_bytes}B, kind={self.kind!r})"
        )


@runtime_checkable
class NetworkAdapter(Protocol):
    """What the system model / replayers require of an interconnect."""

    stats: NetworkStats

    def send(self, msg: Message) -> None:
        """Inject ``msg`` at the current simulated time."""
        ...

    def set_delivery_handler(
        self, fn: Callable[[Message], None]
    ) -> None:
        """Register a global callback invoked at each delivery (after the
        message's own ``on_delivery``)."""
        ...

    @property
    def num_nodes(self) -> int:
        """Number of attached endpoints."""
        ...
