"""Self-describing provenance archives for experiment runs.

Every ``repro exp run`` writes one archive directory::

    <root>/<name>-<config_hash[:10]>-<timestamp>/
        manifest.json           # everything diffable, in one file
        config.resolved.json    # the flattened, validated config
        result.json             # table rows + codec-encoded raw results
        metrics.json            # repro.obs registry snapshot (null if off)
        artifacts/
            table.txt           # the rendered result table

``manifest.json`` alone is sufficient for ``repro exp diff``: it carries
the experiment name, the resolved parameters, the config content hash, the
flat metric snapshot derived from the results, the gate policy, and the
provenance block (git revision, host, python).  A checked-in *baseline* is
just a manifest written to a standalone file (``repro exp run
--baseline-out``), so archives and baselines are diffed by the same code.
"""

from __future__ import annotations

import json
import platform
import socket
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.exp.config import GateSpec, ResolvedConfig
from repro.exp.schema import SchemaError

#: Bumped when the manifest layout changes incompatibly.
ARCHIVE_SCHEMA = 1

MANIFEST_NAME = "manifest.json"


class ArchiveError(SchemaError):
    """An archive directory or baseline file is missing or malformed."""


def git_revision(cwd: Union[str, Path, None] = None) -> dict:
    """Best-effort git provenance: revision plus a dirty flag.

    Archives must be writable from an export tarball too, so a missing git
    binary or repository degrades to ``{"rev": "unknown"}`` rather than
    failing the run.
    """
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if rev.returncode != 0:
            return {"rev": "unknown"}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return {
            "rev": rev.stdout.strip(),
            "dirty": bool(status.stdout.strip()),
        }
    except (OSError, subprocess.TimeoutExpired):
        return {"rev": "unknown"}


def provenance(cwd: Union[str, Path, None] = None) -> dict:
    """The environment block every manifest records."""
    return {
        "git": git_revision(cwd),
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


@dataclass(frozen=True)
class Archive:
    """A loaded archive (or baseline manifest) — what ``diff`` consumes."""

    name: str
    experiment: str
    config_hash: str
    parameters: dict[str, Any]
    metrics: dict[str, float]
    gate: GateSpec
    manifest: dict = field(default_factory=dict, repr=False)
    path: Optional[str] = None

    @property
    def label(self) -> str:
        return self.path or self.name


def build_manifest(
    resolved: ResolvedConfig,
    metrics: dict[str, float],
    obs_snapshot: Optional[dict] = None,
    sweep_stats: Optional[dict] = None,
    created: Optional[float] = None,
) -> dict:
    return {
        "archive_schema": ARCHIVE_SCHEMA,
        "name": resolved.name,
        "experiment": resolved.experiment,
        "config_hash": resolved.config_hash,
        "created_unix": time.time() if created is None else created,
        "provenance": provenance(),
        "parameters": _jsonable(resolved.parameters),
        "metrics": dict(metrics),
        "gate": resolved.gate.as_dict(),
        "chain": list(resolved.chain),
        "sweep": sweep_stats or {},
        "obs_enabled": obs_snapshot is not None,
    }


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


def archive_dir_name(resolved: ResolvedConfig, created: float) -> str:
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(created))
    return f"{resolved.name}-{resolved.config_hash[:10]}-{stamp}"


def write_archive(
    archive_dir: Union[str, Path],
    resolved: ResolvedConfig,
    rows: list[dict],
    metrics: dict[str, float],
    raw_encoded: Any,
    table_text: str,
    obs_snapshot: Optional[dict] = None,
    sweep_stats: Optional[dict] = None,
    created: Optional[float] = None,
) -> Path:
    """Write one complete archive directory; returns its path.

    ``raw_encoded`` must already be codec-encoded
    (:func:`repro.harness.encode_value`), i.e. what the sweep produced.
    """
    archive_dir = Path(archive_dir)
    archive_dir.mkdir(parents=True, exist_ok=True)
    manifest = build_manifest(
        resolved, metrics, obs_snapshot, sweep_stats, created
    )
    _dump(archive_dir / MANIFEST_NAME, manifest)
    _dump(archive_dir / "config.resolved.json", resolved.as_dict())
    _dump(archive_dir / "result.json", {"rows": rows, "raw": raw_encoded})
    _dump(archive_dir / "metrics.json", obs_snapshot)
    artifacts = archive_dir / "artifacts"
    artifacts.mkdir(exist_ok=True)
    (artifacts / "table.txt").write_text(table_text)
    return archive_dir


def write_baseline(
    baseline_path: Union[str, Path], manifest: dict
) -> Path:
    """Write a standalone baseline file (a manifest, nothing else)."""
    baseline_path = Path(baseline_path)
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    _dump(baseline_path, manifest)
    return baseline_path


def _dump(path: Path, payload: Any) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_archive(path: Union[str, Path]) -> Archive:
    """Load an archive directory *or* a standalone baseline manifest file."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME if path.is_dir() else path
    if not manifest_path.is_file():
        raise ArchiveError(f"{path}: no {MANIFEST_NAME} (not an archive?)")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ArchiveError(f"{manifest_path}: invalid JSON: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ArchiveError(f"{manifest_path}: manifest must be an object")
    schema = manifest.get("archive_schema")
    if schema != ARCHIVE_SCHEMA:
        raise ArchiveError(
            f"{manifest_path}: archive_schema {schema!r} unsupported "
            f"(expected {ARCHIVE_SCHEMA})"
        )
    missing = [
        k
        for k in ("name", "experiment", "config_hash", "parameters", "metrics")
        if k not in manifest
    ]
    if missing:
        raise ArchiveError(f"{manifest_path}: manifest missing {missing}")
    return Archive(
        name=str(manifest["name"]),
        experiment=str(manifest["experiment"]),
        config_hash=str(manifest["config_hash"]),
        parameters=dict(manifest["parameters"]),
        metrics=dict(manifest["metrics"]),
        gate=GateSpec.from_dict(manifest.get("gate") or {}, str(manifest_path)),
        manifest=manifest,
        path=str(path),
    )


def load_rows(path: Union[str, Path]) -> list[dict]:
    """The table rows of an archive directory (not available on baselines)."""
    path = Path(path)
    result_path = path / "result.json"
    if not result_path.is_file():
        raise ArchiveError(f"{path}: no result.json (baseline file?)")
    return json.loads(result_path.read_text())["rows"]
