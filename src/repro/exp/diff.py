"""Machine diff of two experiment archives (or baselines).

``diff_archives(a, b)`` compares parameters first (what was *asked for*)
and metrics second (what *came out*), reporting per-metric relative change.
In gate mode each metric's change is judged against the tolerance policy
(:class:`repro.exp.config.GateSpec`): a glob tolerance of ``None`` exempts
the metric (wall-clock timings), a number is the allowed absolute relative
change in percent — inclusive, so a change of exactly the tolerance
passes.  Metrics present on one side only fail the gate, as does comparing
archives of different experiments.

The CI bench-regression tier is this module in a loop: run the smoke
configs, ``diff --gate`` each fresh archive against its checked-in
baseline, exit non-zero on any failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.exp.archive import Archive
from repro.exp.config import GateSpec


@dataclass(frozen=True)
class ParamDelta:
    key: str
    a: object
    b: object


@dataclass(frozen=True)
class MetricDelta:
    metric: str
    a: Optional[float]
    b: Optional[float]
    #: Relative change b vs a in percent; None when undefined (one side
    #: missing) and +/-inf when a == 0 != b.
    rel_change_pct: Optional[float]
    #: Tolerance applied by the gate; None = exempt.
    tolerance_pct: Optional[float]
    #: False iff the gate rejects this metric.
    ok: bool

    @property
    def changed(self) -> bool:
        return self.a != self.b


@dataclass(frozen=True)
class DiffReport:
    a_label: str
    b_label: str
    experiment_a: str
    experiment_b: str
    config_hash_equal: bool
    param_deltas: list[ParamDelta] = field(default_factory=list)
    metric_deltas: list[MetricDelta] = field(default_factory=list)

    @property
    def experiments_match(self) -> bool:
        return self.experiment_a == self.experiment_b

    @property
    def changed_metrics(self) -> list[MetricDelta]:
        return [m for m in self.metric_deltas if m.changed]

    @property
    def gate_failures(self) -> list[MetricDelta]:
        return [m for m in self.metric_deltas if not m.ok]

    @property
    def gate_ok(self) -> bool:
        return self.experiments_match and not self.gate_failures


def _rel_change_pct(a: float, b: float) -> float:
    if a == b:
        return 0.0
    if a == 0:
        return math.copysign(math.inf, b)
    return (b - a) / abs(a) * 100.0


def diff_archives(
    a: Archive, b: Archive, gate: Optional[GateSpec] = None
) -> DiffReport:
    """Diff archive ``b`` against reference ``a``.

    ``gate`` defaults to ``a``'s own gate spec (the reference/baseline
    declares what may move).
    """
    gate = gate if gate is not None else a.gate

    param_deltas = [
        ParamDelta(key, a.parameters.get(key), b.parameters.get(key))
        for key in sorted(set(a.parameters) | set(b.parameters))
        if a.parameters.get(key) != b.parameters.get(key)
    ]

    metric_deltas: list[MetricDelta] = []
    for name in sorted(set(a.metrics) | set(b.metrics)):
        va, vb = a.metrics.get(name), b.metrics.get(name)
        tol = gate.tolerance_for(name)
        if va is None or vb is None:
            # A metric that appears or disappears is a shape change; only an
            # exemption lets it through.
            metric_deltas.append(
                MetricDelta(name, va, vb, None, tol, ok=tol is None)
            )
            continue
        rel = _rel_change_pct(va, vb)
        ok = tol is None or abs(rel) <= tol
        metric_deltas.append(MetricDelta(name, va, vb, rel, tol, ok))

    return DiffReport(
        a_label=a.label,
        b_label=b.label,
        experiment_a=a.experiment,
        experiment_b=b.experiment,
        config_hash_equal=a.config_hash == b.config_hash,
        param_deltas=param_deltas,
        metric_deltas=metric_deltas,
    )


def format_diff(report: DiffReport, gated: bool = False) -> str:
    """Human-readable rendering (what ``repro exp diff`` prints)."""
    lines = [f"A: {report.a_label}", f"B: {report.b_label}"]
    if not report.experiments_match:
        lines.append(
            f"EXPERIMENT MISMATCH: {report.experiment_a!r} vs "
            f"{report.experiment_b!r}"
        )
    lines.append(
        "config hash: "
        + ("identical" if report.config_hash_equal else "DIFFERENT")
    )

    if report.param_deltas:
        lines.append(f"parameter deltas ({len(report.param_deltas)}):")
        for d in report.param_deltas:
            lines.append(f"  {d.key}: {d.a!r} -> {d.b!r}")
    else:
        lines.append("parameter deltas: none")

    changed = report.changed_metrics
    lines.append(
        f"metrics: {len(report.metric_deltas)} compared, "
        f"{len(changed)} changed"
    )
    for m in changed:
        if m.rel_change_pct is None:
            side = "A" if m.b is None else "B"
            value = m.a if m.b is None else m.b
            lines.append(f"  {m.metric}: only in {side} ({value})")
        else:
            lines.append(
                f"  {m.metric}: {m.a} -> {m.b} ({m.rel_change_pct:+.3f}%)"
            )
        if gated and not m.ok:
            tol = "exempt" if m.tolerance_pct is None else (
                f"tolerance {m.tolerance_pct}%"
            )
            lines[-1] += f"  [GATE FAIL, {tol}]"

    if gated:
        failures = report.gate_failures
        if report.gate_ok:
            lines.append("gate: PASS")
        else:
            reason = (
                "experiment mismatch"
                if not report.experiments_match
                else f"{len(failures)} metric(s) out of tolerance"
            )
            lines.append(f"gate: FAIL ({reason})")
    return "\n".join(lines)
