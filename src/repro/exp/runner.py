"""Execute a resolved experiment config and archive the outcome.

``run_experiment`` is the one sequencing point of the layer::

    resolved config --compile--> SweepTask list --executor--> results
        --postprocess--> (rows, metrics) --write_archive--> archive dir

The executor is anything with ``run(tasks) -> results`` in submission
order: a :class:`repro.harness.SweepRunner` (local, cached, optionally
multi-process) or a :class:`ServeExecutor` (the same tasks submitted to a
resident ``repro.serve`` node — unchanged, since the node's operation
registry whitelists the experiment functions' dotted references).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Protocol, Union

from repro import obs
from repro.exp.archive import (
    Archive,
    archive_dir_name,
    build_manifest,
    load_archive,
    write_archive,
    write_baseline,
)
from repro.exp.catalog import BaseExperiment, get_experiment
from repro.exp.config import ResolvedConfig
from repro.harness.parallel import (
    SweepStats,
    SweepTask,
    decode_task_call,
    encode_value,
)
from repro.harness.tables import format_table


class Executor(Protocol):
    def run(self, tasks: list[SweepTask]) -> list[Any]: ...


class ServeExecutor:
    """Submit compiled tasks, unchanged, to a ``repro.serve`` node.

    Each task decodes back into its ``(dotted_ref, args, kwargs)`` call and
    goes through :meth:`ServeClient.submit`; the node executes (or recalls
    from the shared content-addressed cache) and returns the result.  Tasks
    run one at a time from this client — concurrency is the node's job, and
    submission order must be preserved for postprocessing.
    """

    def __init__(self, client: Any, timeout_s: Optional[float] = None) -> None:
        self.client = client
        self.timeout_s = timeout_s
        self.last_stats = SweepStats()
        self.last_metrics: Optional[dict] = None

    def run(self, tasks: list[SweepTask]) -> list[Any]:
        results = []
        stats = SweepStats()
        for t in tasks:
            fn, args, kwargs = decode_task_call(t)
            results.append(
                self.client.submit(fn, *args, timeout_s=self.timeout_s, **kwargs)
            )
            stats.executed += 1
        self.last_stats = stats
        self.last_metrics = None
        return results


@dataclass(frozen=True)
class RunOutcome:
    """Everything a caller may want after a run."""

    resolved: ResolvedConfig
    rows: list[dict]
    metrics: dict[str, float]
    results: list[Any] = field(repr=False)
    archive_dir: Optional[Path] = None
    stats: Optional[SweepStats] = None
    elapsed_s: float = 0.0

    @property
    def archive(self) -> Archive:
        if self.archive_dir is None:
            raise ValueError("run was not archived")
        return load_archive(self.archive_dir)


def compile_config(resolved: ResolvedConfig) -> list[SweepTask]:
    """The config's task list (also the dry-run surface)."""
    base = get_experiment(resolved.experiment)
    return base.compile(resolved.parameters)


def run_experiment(
    resolved: ResolvedConfig,
    executor: Executor,
    archive_root: Union[None, str, Path] = None,
    baseline_out: Union[None, str, Path] = None,
) -> RunOutcome:
    """Compile, execute, postprocess, and (optionally) archive.

    With ``archive_root`` set, a timestamped archive directory is written
    under it; ``baseline_out`` additionally writes the manifest alone to a
    standalone file (the checked-in-baseline format).
    """
    base: BaseExperiment = get_experiment(resolved.experiment)
    tasks = base.compile(resolved.parameters)
    t0 = time.perf_counter()
    results = executor.run(tasks)
    elapsed = time.perf_counter() - t0
    rows, metrics = base.postprocess(resolved.parameters, results)

    stats = getattr(executor, "last_stats", None)
    obs_snapshot = getattr(executor, "last_metrics", None)
    if obs_snapshot is None and obs.enabled():
        obs_snapshot = obs.registry().snapshot()

    archive_dir: Optional[Path] = None
    created = time.time()
    sweep_stats = (
        {"executed": stats.executed, "cached": stats.cached}
        if stats is not None
        else {}
    )
    if archive_root is not None or baseline_out is not None:
        table_text = format_table(
            rows, title=f"{resolved.name} ({resolved.experiment})"
        )
        from repro.harness.report import provenance_footer

        table_text += "\n\n" + provenance_footer()
        if archive_root is not None:
            archive_dir = Path(archive_root) / archive_dir_name(
                resolved, created
            )
            write_archive(
                archive_dir,
                resolved,
                rows,
                metrics,
                raw_encoded=encode_value(results),
                table_text=table_text,
                obs_snapshot=obs_snapshot,
                sweep_stats=sweep_stats,
                created=created,
            )
        if baseline_out is not None:
            write_baseline(
                baseline_out,
                build_manifest(
                    resolved, metrics, obs_snapshot, sweep_stats, created
                ),
            )

    return RunOutcome(
        resolved=resolved,
        rows=rows,
        metrics=metrics,
        results=results,
        archive_dir=archive_dir,
        stats=stats,
        elapsed_s=elapsed,
    )
