"""Declarative experiment layer: configs, archives, diffs.

The batch front end of the repository.  A YAML/JSON config names a base
experiment from the catalog and overrides its typed parameters (optionally
extending another config); it compiles to the same content-addressed
:class:`~repro.harness.SweepTask` list the hand-written benches build, runs
through a :class:`~repro.harness.SweepRunner` or a ``repro.serve`` node,
and leaves behind a provenance archive that ``repro exp diff`` can compare
— and gate — against any other run.

    from repro.exp import resolve_config, run_experiment
    from repro.harness import SweepRunner

    cfg = resolve_config("benchmarks/experiments/fig4_accuracy.yaml")
    out = run_experiment(cfg, SweepRunner(workers=4), archive_root="runs")
"""

from repro.exp.archive import (
    ARCHIVE_SCHEMA,
    Archive,
    ArchiveError,
    load_archive,
    load_rows,
    provenance,
    write_archive,
    write_baseline,
)
from repro.exp.catalog import (
    ALL_WORKLOADS,
    BaseExperiment,
    experiment_names,
    get_experiment,
    metrics_from_rows,
)
from repro.exp.config import (
    ConfigFileError,
    GateSpec,
    ResolvedConfig,
    config_hash,
    discover_configs,
    load_config_file,
    parse_set_override,
    resolve_config,
)
from repro.exp.diff import (
    DiffReport,
    MetricDelta,
    ParamDelta,
    diff_archives,
    format_diff,
)
from repro.exp.runner import (
    RunOutcome,
    ServeExecutor,
    compile_config,
    run_experiment,
)
from repro.exp.schema import ParamSchema, ParamSpec, SchemaError, specs

__all__ = [
    "ALL_WORKLOADS",
    "ARCHIVE_SCHEMA",
    "Archive",
    "ArchiveError",
    "BaseExperiment",
    "ConfigFileError",
    "DiffReport",
    "GateSpec",
    "MetricDelta",
    "ParamDelta",
    "ParamSchema",
    "ParamSpec",
    "ResolvedConfig",
    "RunOutcome",
    "SchemaError",
    "ServeExecutor",
    "compile_config",
    "config_hash",
    "diff_archives",
    "discover_configs",
    "experiment_names",
    "format_diff",
    "get_experiment",
    "load_archive",
    "load_config_file",
    "load_rows",
    "metrics_from_rows",
    "parse_set_override",
    "provenance",
    "resolve_config",
    "run_experiment",
    "write_archive",
    "write_baseline",
]
