"""Base experiments: what a declarative config can run.

Each :class:`BaseExperiment` bundles

* a typed parameter schema (:mod:`repro.exp.schema`),
* ``compile(params) -> list[SweepTask]`` — the experiment as a flat list of
  content-addressed sweep tasks, *identical* to the tasks the original
  hand-written bench scripts built (same functions, same argument shapes),
  so existing result-cache entries keep hitting and serve nodes accept the
  tasks unchanged, and
* ``postprocess(params, results) -> (rows, metrics)`` — the table rows the
  bench scripts used to format by hand, plus a flat ``{metric: number}``
  snapshot that makes two runs machine-diffable (``repro exp diff``).

The compiled tasks execute through any executor with a ``run(tasks)``
method: :class:`repro.harness.SweepRunner` locally, or
:class:`repro.exp.serve_exec.ServeExecutor` against a resident
``repro.serve`` node.

Metric volatility: metrics matching an experiment's ``volatile`` globs
(wall-clock timings, mostly) are recorded in archives but exempted from
``--gate`` comparisons by the experiment's default :class:`GateSpec`.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.config import (
    ENGINE_EVENT,
    ENGINE_GENERATIONAL,
    MITIGATIONS,
    ONOC_TOPOLOGIES,
    REPLAY_ENGINES,
)
from repro.exp.config import GateSpec
from repro.exp.schema import ParamSchema, SchemaError, specs
from repro.harness.builders import experiment_from_params
from repro.harness.experiments import (
    ablation_dep_fraction,
    ablation_network_mismatch,
    accuracy_experiment,
    area_rows,
    case_study,
    convergence_experiment,
    latency_fidelity_rows,
    load_latency_point,
    power_experiment,
    resilience_point,
    scalability_point,
    seed_accuracy_point,
    simtime_experiment,
)
from repro.harness.parallel import SweepTask

#: The full application-kernel catalogue (the paper's case study used one
#: real application; the benches sweep the suite).
ALL_WORKLOADS = (
    "fft",
    "lu",
    "radix",
    "stencil",
    "prodcons",
    "randshare",
    "barnes",
    "cholesky",
)

Rows = list[dict]
Metrics = dict[str, float]


@dataclass(frozen=True)
class BaseExperiment:
    """One runnable experiment family (see module docstring)."""

    name: str
    description: str
    schema: ParamSchema
    compile: Callable[[dict], list[SweepTask]]
    postprocess: Callable[[dict, list], tuple[Rows, Metrics]]
    #: Metric-name globs that are measured wall-clock (never gateable).
    volatile: tuple[str, ...] = field(default_factory=tuple)

    @property
    def default_gate(self) -> GateSpec:
        return GateSpec(0.0, {pattern: None for pattern in self.volatile})


_REGISTRY: dict[str, BaseExperiment] = {}


def register(exp: BaseExperiment) -> BaseExperiment:
    if exp.name in _REGISTRY:
        raise ValueError(f"duplicate experiment {exp.name!r}")
    _REGISTRY[exp.name] = exp
    return exp


def get_experiment(name: str) -> BaseExperiment:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SchemaError(
            f"unknown experiment {name!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None


def experiment_names() -> list[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

#: Parameter specs shared by every system-level experiment.
_COMMON = (
    ("cores", "int", 16, None, "core count (perfect square)"),
    ("seed", "int", 7, None, "master seed"),
    ("wavelengths", "int", 64, None, "WDM wavelengths per optical channel"),
)


def _exp_config(params: dict):
    return experiment_from_params(
        cores=params["cores"],
        seed=params["seed"],
        wavelengths=params["wavelengths"],
    )


def metrics_from_rows(
    rows: Sequence[dict], key_cols: Sequence[str]
) -> Metrics:
    """Flatten table rows into ``{"<key>.<column>": value}`` metrics.

    ``key_cols`` name the identifying columns (joined with ``.``); every
    other numeric, non-bool cell becomes one metric.
    """
    out: Metrics = {}
    for row in rows:
        key = ".".join(
            str(row[c]) for c in key_cols if c in row and row[c] != ""
        )
        for col, val in row.items():
            if col in key_cols or isinstance(val, bool):
                continue
            if not isinstance(val, (int, float)):
                continue
            name = f"{key}.{col}" if key else col
            out[name] = val
    return out


def _gmean(xs: Sequence[float]) -> float:
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


# ---------------------------------------------------------------------------
# accuracy (Fig. 4)
# ---------------------------------------------------------------------------


def _accuracy_compile(params: dict) -> list[SweepTask]:
    exp = _exp_config(params)
    kwargs: dict[str, Any] = {"scale": params["scale"]}
    if params["engine"] != ENGINE_EVENT:
        kwargs["engine"] = params["engine"]
    return [
        SweepTask.make(accuracy_experiment, exp, wl, **kwargs)
        for wl in params["workloads"]
    ]


def _accuracy_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    rows = [
        {
            "workload": r.workload,
            "ref_exec": r.ref_exec_time,
            "naive_est": r.naive_estimate,
            "naive_err_%": round(r.naive.exec_time_error_pct, 2),
            "selfcorr_est": r.self_correcting_estimate,
            "selfcorr_err_%": round(r.self_correcting.exec_time_error_pct, 2),
            "messages": r.extra["trace_messages"],
        }
        for r in results
    ]
    gmean_naive = _gmean([r["naive_err_%"] + 1 for r in rows]) - 1
    gmean_sc = _gmean([r["selfcorr_err_%"] + 1 for r in rows]) - 1
    rows.append(
        {
            "workload": "gmean",
            "ref_exec": "",
            "naive_est": "",
            "naive_err_%": round(gmean_naive, 2),
            "selfcorr_est": "",
            "selfcorr_err_%": round(gmean_sc, 2),
            "messages": "",
        }
    )
    return rows, metrics_from_rows(rows, ("workload",))


register(
    BaseExperiment(
        name="accuracy",
        description="Trace-model accuracy per application: naive vs "
        "self-correcting replay error against the execution-driven "
        "ONOC reference (Fig. 4).",
        schema=specs(
            ("workloads", "list[str]", ALL_WORKLOADS),
            *_COMMON,
            ("scale", "float", 1.0, None, "workload scale factor"),
            ("engine", "str", ENGINE_EVENT, REPLAY_ENGINES, "replay engine"),
        ),
        compile=_accuracy_compile,
        postprocess=_accuracy_post,
    )
)


# ---------------------------------------------------------------------------
# load_latency (Fig. 3)
# ---------------------------------------------------------------------------


def _load_latency_compile(params: dict) -> list[SweepTask]:
    if len(params["labels"]) != len(params["networks"]):
        raise SchemaError(
            f"labels ({len(params['labels'])}) must pair with networks "
            f"({len(params['networks'])})"
        )
    exp = _exp_config(params)
    return [
        SweepTask.make(
            load_latency_point,
            network,
            exp,
            pattern,
            rate,
            message_bytes=params["message_bytes"],
            warmup=params["warmup"],
            measure=params["measure"],
        )
        for pattern in params["patterns"]
        for network in params["networks"]
        for rate in params["rates"]
    ]


def _load_latency_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    rows: Rows = []
    labels = dict(zip(params["networks"], params["labels"]))
    n_rates = len(params["rates"])
    i = 0
    for pattern in params["patterns"]:
        for network in params["networks"]:
            series = results[i : i + n_rates]
            i += n_rates
            for p in series:
                rows.append(
                    {
                        "pattern": pattern,
                        "network": labels[network],
                        "rate": p.injection_rate,
                        "avg_latency": round(p.avg_latency, 1),
                        "p99": p.p99_latency,
                        "throughput": round(p.throughput_flits_cycle, 3),
                        "saturated": p.saturated,
                    }
                )
                if p.saturated:
                    break
    return rows, metrics_from_rows(rows, ("pattern", "network", "rate"))


register(
    BaseExperiment(
        name="load_latency",
        description="Load-latency curves per synthetic pattern, electrical "
        "mesh vs optical networks; each series truncates just past its "
        "first saturated point (Fig. 3).",
        schema=specs(
            ("patterns", "list[str]", ("uniform", "transpose", "hotspot")),
            ("networks", "list[str]", ("electrical", "crossbar")),
            ("labels", "list[str]", ("electrical", "optical")),
            ("rates", "list[float]", (0.02, 0.05, 0.1, 0.2, 0.3, 0.45)),
            ("message_bytes", "int", 64),
            ("warmup", "int", 500),
            ("measure", "int", 3000),
            *_COMMON,
        ),
        compile=_load_latency_compile,
        postprocess=_load_latency_post,
    )
)


# ---------------------------------------------------------------------------
# case_study (Table 3)
# ---------------------------------------------------------------------------


def _case_study_compile(params: dict) -> list[SweepTask]:
    exp = _exp_config(params)
    kwargs: dict[str, Any] = {}
    if params["scale"] != 1.0:
        kwargs["scale"] = params["scale"]
    return [
        SweepTask.make(case_study, exp, wl, **kwargs)
        for wl in params["workloads"]
    ]


def _case_study_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    rows = [
        {
            "workload": r.workload,
            "exec_electrical": r.exec_electrical,
            "exec_optical": r.exec_optical,
            "speedup_x": round(r.speedup, 3),
            "lat_elec": round(r.avg_latency_electrical, 1),
            "lat_opt": round(r.avg_latency_optical, 1),
            "lat_reduction_%": round(r.latency_reduction_pct, 1),
        }
        for r in results
    ]
    return rows, metrics_from_rows(rows, ("workload",))


register(
    BaseExperiment(
        name="case_study",
        description="The paper's headline comparison: each application "
        "executed through the full system on the ONOC vs the electrical "
        "baseline (Table 3).",
        schema=specs(
            ("workloads", "list[str]", ALL_WORKLOADS),
            *_COMMON,
            ("scale", "float", 1.0),
        ),
        compile=_case_study_compile,
        postprocess=_case_study_post,
    )
)


# ---------------------------------------------------------------------------
# simtime (Table 2)
# ---------------------------------------------------------------------------


def _simtime_compile(params: dict) -> list[SweepTask]:
    exp = _exp_config(params)
    kwargs: dict[str, Any] = {"engine": params["engine"]}
    if params["scale"] != 1.0:
        kwargs["scale"] = params["scale"]
    return [
        SweepTask.make(simtime_experiment, exp, wl, **kwargs)
        for wl in params["workloads"]
    ]


def _simtime_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    rows = [
        {
            "workload": r.workload,
            "exec_driven_s": round(r.exec_driven_s, 3),
            "capture_run_s": round(r.capture_overhead_s, 3),
            "naive_replay_s": round(r.naive_replay_s, 3),
            "selfcorr_replay_s": round(r.self_correcting_s, 3),
            "replay_speedup_x": round(r.replay_speedup, 2),
        }
        for r in results
    ]
    return rows, metrics_from_rows(rows, ("workload",))


register(
    BaseExperiment(
        name="simtime",
        description="Wall-clock cost of each methodology per workload: "
        "execution-driven vs capture run vs both replay modes (Table 2). "
        "Every metric is a wall-clock measurement, so none are gateable.",
        schema=specs(
            ("workloads", "list[str]", ALL_WORKLOADS),
            *_COMMON,
            ("scale", "float", 1.0),
            ("engine", "str", ENGINE_EVENT, REPLAY_ENGINES),
        ),
        compile=_simtime_compile,
        postprocess=_simtime_post,
        volatile=("*",),
    )
)


# ---------------------------------------------------------------------------
# power (Table 4)
# ---------------------------------------------------------------------------


def _power_compile(params: dict) -> list[SweepTask]:
    exp = _exp_config(params)
    return [
        SweepTask.make(power_experiment, exp, wl)
        for wl in params["workloads"]
    ]


def _power_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    rows: Rows = []
    for wl, (rep_e, rep_o) in zip(params["workloads"], results):
        for rep in (rep_e, rep_o):
            row = {"workload": wl, **rep.as_row()}
            row["static_pct"] = round(
                100
                * rep.static_energy_pj
                / (rep.static_energy_pj + rep.total_dynamic_pj),
                1,
            )
            rows.append(row)
    return rows, metrics_from_rows(rows, ("workload", "network"))


register(
    BaseExperiment(
        name="power",
        description="Energy of the case-study run on each network: static "
        "vs dynamic breakdown, ONOC vs electrical (Table 4).",
        schema=specs(
            ("workloads", "list[str]", ("fft", "randshare")),
            *_COMMON,
        ),
        compile=_power_compile,
        postprocess=_power_post,
    )
)


# ---------------------------------------------------------------------------
# area (Table 5)
# ---------------------------------------------------------------------------


def _area_compile(params: dict) -> list[SweepTask]:
    return [SweepTask.make(area_rows, _exp_config(params))]


def _area_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    rows = results[0]
    return rows, metrics_from_rows(rows, ("network",))


register(
    BaseExperiment(
        name="area",
        description="DSENT-class area of the electrical baseline and every "
        "optical architecture (Table 5).",
        schema=specs(*_COMMON),
        compile=_area_compile,
        postprocess=_area_post,
    )
)


# ---------------------------------------------------------------------------
# ablation_deps (Fig. 7)
# ---------------------------------------------------------------------------


def _ablation_deps_compile(params: dict) -> list[SweepTask]:
    exp = _exp_config(params)
    kwargs: dict[str, Any] = {}
    if params["scale"] != 1.0:
        kwargs["scale"] = params["scale"]
    return [
        SweepTask.make(
            ablation_dep_fraction,
            exp,
            params["workload"],
            params["fractions"],
            gap_policy=policy,
            **kwargs,
        )
        for policy in params["policies"]
    ]


def _ablation_deps_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    by_policy = dict(zip(params["policies"], results))
    policies = params["policies"]
    rows = [
        {
            "kept_deps": frac,
            **{
                f"{policy}_exec_err_%": round(rep.exec_time_error_pct, 2)
                for policy in policies
                for f2, rep in by_policy[policy]
                if f2 == frac
            },
        }
        for frac, _ in by_policy[policies[0]]
    ]
    return rows, metrics_from_rows(rows, ("kept_deps",))


register(
    BaseExperiment(
        name="ablation_deps",
        description="Accuracy vs fraction of dependency edges kept, per "
        "degraded-gap policy (Fig. 7).",
        schema=specs(
            ("workload", "str", "randshare"),
            ("fractions", "list[float]", (1.0, 0.75, 0.5, 0.25, 0.0)),
            ("policies", "list[str]", ("captured", "neighbor_gap")),
            *_COMMON,
            ("scale", "float", 1.0),
        ),
        compile=_ablation_deps_compile,
        postprocess=_ablation_deps_post,
    )
)


# ---------------------------------------------------------------------------
# ablation_mismatch (Fig. 8)
# ---------------------------------------------------------------------------


def _ablation_mismatch_compile(params: dict) -> list[SweepTask]:
    exp = _exp_config(params)
    return [
        SweepTask.make(
            ablation_network_mismatch,
            exp,
            params["workload"],
            params["wavelength_counts"],
        )
    ]


def _ablation_mismatch_post(
    params: dict, results: list
) -> tuple[Rows, Metrics]:
    rows = [
        {
            "wavelengths": wl,
            "naive_err_%": round(n.exec_time_error_pct, 2),
            "selfcorr_err_%": round(s.exec_time_error_pct, 2),
        }
        for wl, n, s in results[0]
    ]
    return rows, metrics_from_rows(rows, ("wavelengths",))


register(
    BaseExperiment(
        name="ablation_mismatch",
        description="Accuracy vs capture/target bandwidth mismatch, swept "
        "via the target's wavelength count (Fig. 8).",
        schema=specs(
            ("workload", "str", "lu"),
            ("wavelength_counts", "list[int]", (4, 16, 64, 256)),
            *_COMMON,
        ),
        compile=_ablation_mismatch_compile,
        postprocess=_ablation_mismatch_post,
    )
)


# ---------------------------------------------------------------------------
# scalability (Fig. 9)
# ---------------------------------------------------------------------------


def _scalability_compile(params: dict) -> list[SweepTask]:
    return [
        SweepTask.make(
            scalability_point,
            cores,
            params["seed"],
            params["workload"],
            with_accuracy=cores <= params["accuracy_max_cores"],
            engine=params["engine"],
        )
        for cores in params["core_counts"]
    ]


def _scalability_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    return list(results), metrics_from_rows(results, ("cores",))


register(
    BaseExperiment(
        name="scalability",
        description="Case study + accuracy repeated at growing core counts "
        "(Fig. 9).  Accuracy (4 extra runs per point) is skipped above "
        "accuracy_max_cores to bound the wall clock.",
        schema=specs(
            ("core_counts", "list[int]", (16, 36, 64)),
            ("workload", "str", "fft"),
            ("seed", "int", 7),
            ("engine", "str", ENGINE_EVENT, REPLAY_ENGINES),
            ("accuracy_max_cores", "int", 36),
        ),
        compile=_scalability_compile,
        postprocess=_scalability_post,
    )
)


# ---------------------------------------------------------------------------
# seed_sensitivity (Fig. 13)
# ---------------------------------------------------------------------------


def _seed_sensitivity_compile(params: dict) -> list[SweepTask]:
    exp = _exp_config(params)
    return [
        SweepTask.make(seed_accuracy_point, exp, wl, seed)
        for wl in params["workloads"]
        for seed in params["seeds"]
    ]


def _seed_sensitivity_post(
    params: dict, results: list
) -> tuple[Rows, Metrics]:
    by_workload: dict[str, list] = {}
    for r in results:
        by_workload.setdefault(r.workload, []).append(r)
    rows = []
    for wl in params["workloads"]:
        naive_errs = [r.naive.exec_time_error_pct for r in by_workload[wl]]
        sc_errs = [
            r.self_correcting.exec_time_error_pct for r in by_workload[wl]
        ]
        rows.append(
            {
                "workload": wl,
                "seeds": len(params["seeds"]),
                "naive_mean_%": round(statistics.mean(naive_errs), 2),
                "naive_max_%": round(max(naive_errs), 2),
                "selfcorr_mean_%": round(statistics.mean(sc_errs), 2),
                "selfcorr_max_%": round(max(sc_errs), 2),
            }
        )
    return rows, metrics_from_rows(rows, ("workload",))


register(
    BaseExperiment(
        name="seed_sensitivity",
        description="Accuracy repeated across master seeds: the naive vs "
        "self-correcting gap must be structural, not a lucky seed "
        "(Fig. 13).",
        schema=specs(
            ("workloads", "list[str]", ("lu", "randshare")),
            ("seeds", "list[int]", (7, 11, 23)),
            *_COMMON,
        ),
        compile=_seed_sensitivity_compile,
        postprocess=_seed_sensitivity_post,
    )
)


# ---------------------------------------------------------------------------
# convergence (Fig. 6)
# ---------------------------------------------------------------------------


def _convergence_compile(params: dict) -> list[SweepTask]:
    exp = _exp_config(params)
    return [
        SweepTask.make(
            convergence_experiment,
            exp,
            wl,
            max_iterations=params["max_iterations"],
        )
        for wl in params["workloads"]
    ]


def _convergence_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    rows = []
    for wl, (history, ref) in zip(params["workloads"], results):
        for h in history:
            rows.append(
                {
                    "workload": wl,
                    "iteration": h.iteration,
                    "estimate": h.exec_time_estimate,
                    "ref_exec": ref,
                    "err_%": round(
                        abs(h.exec_time_estimate - ref) / ref * 100, 2
                    ),
                }
            )
    return rows, metrics_from_rows(rows, ("workload", "iteration"))


register(
    BaseExperiment(
        name="convergence",
        description="Offline iterative self-correction: estimate vs "
        "fixed-point pass count, against the execution-driven reference "
        "(Fig. 6).",
        schema=specs(
            ("workloads", "list[str]", ("lu", "radix", "randshare")),
            ("max_iterations", "int", 8),
            *_COMMON,
        ),
        compile=_convergence_compile,
        postprocess=_convergence_post,
        volatile=("*.wall_clock_s",),
    )
)


# ---------------------------------------------------------------------------
# resilience (degradation mitigation)
# ---------------------------------------------------------------------------


def _resilience_compile(params: dict) -> list[SweepTask]:
    exp = _exp_config(params)
    kwargs: dict[str, Any] = {"scale": params["scale"]}
    if params["engine"] != ENGINE_EVENT:
        kwargs["engine"] = params["engine"]
    return [
        SweepTask.make(
            resilience_point,
            exp,
            wl,
            params["degrade"],
            params["intensity"],
            mitigation,
            **kwargs,
        )
        for wl in params["workloads"]
        for mitigation in params["mitigations"]
    ]


def _resilience_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    rows = [
        {
            "workload": r["workload"],
            "mitigation": r["mitigation"],
            "events": r["events"],
            "exec_stock": r["exec_stock"],
            "exec_degraded": r["exec_degraded"],
            "slowdown_pct": r["slowdown_pct"],
            "penalty_cycles": r["penalty"].get("total_cycles", 0),
            "slowdown_cycles": r["penalty"].get("slowdown_cycles", 0),
            "detour_cycles": r["penalty"].get("detour_cycles", 0),
            "retune_cycles": r["penalty"].get("retune_cycles", 0),
            "affected": r["penalty"].get("messages_affected", 0),
        }
        for r in results
    ]
    return rows, metrics_from_rows(rows, ("workload", "mitigation"))


register(
    BaseExperiment(
        name="resilience",
        description="Mid-replay network degradation under each mitigation "
        "policy: a seeded fault timeseries hits the ONOC while the "
        "self-correcting replay runs, and the policies' typed penalties "
        "are compared against the pristine replay.",
        schema=specs(
            ("workloads", "list[str]", ("fft", "radix")),
            ("degrade", "str",
             "thermal_drift+laser_droop+corruption_bursts"),
            ("intensity", "float", 0.9),
            ("mitigations", "list[str]", MITIGATIONS),
            *_COMMON,
            ("scale", "float", 0.25),
            ("engine", "str", ENGINE_EVENT, REPLAY_ENGINES),
        ),
        compile=_resilience_compile,
        postprocess=_resilience_post,
    )
)


# ---------------------------------------------------------------------------
# fault_matrix (error vs trace-fault severity)
# ---------------------------------------------------------------------------


def _fault_matrix_base(params: dict):
    from repro.validate.scenario import Scenario

    return Scenario(
        params["workload"], params["cores"], params["seed"],
        params["scale"], params["capture"], params["target"],
        fault_seed=params["fault_seed"], gap_policy=params["gap_policy"],
    )


def _fault_matrix_cells(params: dict):
    """The deduplicated scenario list + per-family severity grid, shared by
    compile and postprocess so task order is reproducible."""
    from repro.validate.differential import fault_matrix_scenarios

    matrix = fault_matrix_scenarios(
        _fault_matrix_base(params),
        families=tuple(params["families"]) or None,
        severities=tuple(params["severities"]),
        fault_seed=params["fault_seed"],
    )
    unique: dict[str, Any] = {}
    for pts in matrix.values():
        for _, s in pts:
            unique.setdefault(s.name, s)
    return matrix, list(unique.values())


def _fault_matrix_compile(params: dict) -> list[SweepTask]:
    from repro.validate.scenario import run_scenario

    _, ordered = _fault_matrix_cells(params)
    return [SweepTask.make(run_scenario, s) for s in ordered]


def _fault_matrix_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    from repro.validate.differential import check_fault_matrix_smooth

    matrix, ordered = _fault_matrix_cells(params)
    by_name = {s.name: o for s, o in zip(ordered, results)}
    rows: Rows = []
    for fam, pts in sorted(matrix.items()):
        curve = [(sev, by_name[s.name]) for sev, s in pts]
        breaches = check_fault_matrix_smooth(
            [(sev, o.sc_exec_error_pct) for sev, o in curve],
            params["max_slope"])
        for sev, o in curve:
            rows.append(
                {
                    "family": fam,
                    "severity": sev,
                    "sc_err_%": round(o.sc_exec_error_pct, 2),
                    "naive_err_%": round(o.naive_exec_error_pct, 2),
                    "unreplayed": o.sc_unreplayed,
                    "damaged": o.fault_damaged,
                    "breaches": len(breaches),
                }
            )
    return rows, metrics_from_rows(rows, ("family", "severity"))


register(
    BaseExperiment(
        name="fault_matrix",
        description="Exec-error vs trace-fault severity per fault family on "
        "a capture/target mismatch pair, gated on smooth degradation (no "
        "re-anchoring cliffs) via the per-segment slope bound.",
        schema=specs(
            ("workload", "str", "fft"),
            ("cores", "int", 16),
            ("seed", "int", 16),
            ("scale", "float", 0.1),
            ("capture", "str", "awgr"),
            ("target", "str", "crossbar"),
            ("families", "list[str]", ()),
            ("severities", "list[float]",
             (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)),
            ("fault_seed", "int", 777),
            ("gap_policy", "str", "neighbor_gap"),
            ("max_slope", "float", 900.0),
        ),
        compile=_fault_matrix_compile,
        postprocess=_fault_matrix_post,
    )
)


# ---------------------------------------------------------------------------
# latency_error (Fig. 5)
# ---------------------------------------------------------------------------


def _latency_error_compile(params: dict) -> list[SweepTask]:
    exp = _exp_config(params)
    return [
        SweepTask.make(latency_fidelity_rows, exp, wl)
        for wl in params["workloads"]
    ]


def _latency_error_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    rows = [row for per_workload in results for row in per_workload]
    return rows, metrics_from_rows(rows, ("workload", "mode"))


register(
    BaseExperiment(
        name="latency_error",
        description="Per-message network-latency fidelity of both replay "
        "modes on the ONOC (Fig. 5).",
        schema=specs(
            ("workloads", "list[str]", ("fft", "lu", "prodcons", "randshare")),
            *_COMMON,
        ),
        compile=_latency_error_compile,
        postprocess=_latency_error_post,
    )
)


# ---------------------------------------------------------------------------
# scalability_synth (production-scale synthetic workloads)
# ---------------------------------------------------------------------------


def _scalability_synth_compile(params: dict) -> list[SweepTask]:
    from repro.synth.experiment import synth_scalability_point

    tasks = []
    for topology in params["topologies"]:
        for nodes in params["node_counts"]:
            if topology == "circuit_mesh" and math.isqrt(nodes) ** 2 != nodes:
                continue  # the mesh needs a square node count
            tasks.append(
                SweepTask.make(
                    synth_scalability_point,
                    nodes,
                    params["messages"],
                    topology,
                    params["seed"],
                    pattern=params["pattern"],
                    engine=params["engine"],
                )
            )
    return tasks


def _scalability_synth_post(params: dict, results: list) -> tuple[Rows, Metrics]:
    return list(results), metrics_from_rows(results, ("topology", "nodes"))


register(
    BaseExperiment(
        name="scalability_synth",
        description="Replay throughput + exec estimates on synthetic "
        "workloads beyond the captured corpus: the generator emits one "
        "profile-matched trace per (topology, nodes) cell at production "
        "node counts, replayed naive and self-correcting.  Exec estimates "
        "are deterministic and gateable; wall-clock throughput is volatile.",
        schema=specs(
            ("node_counts", "list[int]", (1024, 4096)),
            ("topologies", "list[str]", ONOC_TOPOLOGIES),
            ("messages", "int", 50_000),
            ("pattern", "str", "uniform"),
            ("seed", "int", 7),
            ("engine", "str", ENGINE_GENERATIONAL, REPLAY_ENGINES),
        ),
        compile=_scalability_synth_compile,
        postprocess=_scalability_synth_post,
        volatile=("*.replay_wall_s", "*.msgs_per_s"),
    )
)
