"""Typed parameter schema for declarative experiment configs.

Every base experiment in :mod:`repro.exp.catalog` declares its parameters as
a tuple of :class:`ParamSpec`.  Config files (``benchmarks/experiments/``)
can then only set parameters the experiment actually has, with values of the
declared type — an unknown key or a type mismatch is a
:class:`SchemaError` naming the config file, the parameter, and what would
have been accepted, instead of a silent misconfiguration that burns minutes
of simulation.

Kinds are deliberately small: scalars (``int``, ``float``, ``str``,
``bool``) and homogeneous lists thereof.  List values are canonicalized to
tuples so they hash identically to the hand-written tuples the original
bench scripts passed to :class:`repro.harness.SweepTask` (the result-cache
key distinguishes lists from tuples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

KINDS = (
    "int",
    "float",
    "str",
    "bool",
    "list[int]",
    "list[float]",
    "list[str]",
)


class SchemaError(ValueError):
    """Raised when a config does not fit its experiment's parameter schema."""


@dataclass(frozen=True)
class ParamSpec:
    """One declared experiment parameter."""

    name: str
    kind: str
    default: Any = None
    choices: Optional[tuple] = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise SchemaError(
                f"parameter {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {KINDS}"
            )

    # ------------------------------------------------------------- checking
    def coerce(self, value: Any, where: str = "") -> Any:
        """Validate ``value`` against this spec and return the canonical form.

        ``int`` is accepted where ``float`` is declared (YAML writes ``1``
        for ``1.0``); ``bool`` is *not* accepted as an int.  Lists and
        tuples are accepted for list kinds and canonicalized to tuples.
        """
        ctx = f"{where}: " if where else ""
        if self.kind.startswith("list["):
            item_kind = self.kind[5:-1]
            if not isinstance(value, (list, tuple)):
                raise SchemaError(
                    f"{ctx}parameter {self.name!r} expects {self.kind}, "
                    f"got {type(value).__name__} ({value!r})"
                )
            return tuple(
                self._coerce_scalar(v, item_kind, ctx, index=i)
                for i, v in enumerate(value)
            )
        out = self._coerce_scalar(value, self.kind, ctx)
        if self.choices is not None and out not in self.choices:
            raise SchemaError(
                f"{ctx}parameter {self.name!r} must be one of "
                f"{self.choices}, got {out!r}"
            )
        return out

    def _coerce_scalar(
        self, value: Any, kind: str, ctx: str, index: Optional[int] = None
    ) -> Any:
        at = f"{self.name!r}[{index}]" if index is not None else f"{self.name!r}"
        if kind == "bool":
            if isinstance(value, bool):
                return value
        elif kind == "int":
            if isinstance(value, int) and not isinstance(value, bool):
                return value
        elif kind == "float":
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
        elif kind == "str":
            if isinstance(value, str):
                return value
        raise SchemaError(
            f"{ctx}parameter {at} expects {kind}, "
            f"got {type(value).__name__} ({value!r})"
        )


@dataclass(frozen=True)
class ParamSchema:
    """The full parameter table of one base experiment."""

    specs: tuple[ParamSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [s.name for s in self.specs]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SchemaError(f"duplicate parameter specs: {sorted(dupes)}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    def spec(self, name: str) -> ParamSpec:
        for s in self.specs:
            if s.name == name:
                return s
        raise KeyError(name)

    def resolve(
        self, overrides: Mapping[str, Any], where: str = ""
    ) -> dict[str, Any]:
        """Defaults merged with ``overrides``, fully validated.

        Unknown keys are rejected with the list of accepted names (catching
        typos like ``workload:`` vs ``workloads:`` before any simulation
        runs).
        """
        ctx = f"{where}: " if where else ""
        unknown = sorted(set(overrides) - set(self.names))
        if unknown:
            raise SchemaError(
                f"{ctx}unknown parameter(s) {unknown}; "
                f"this experiment accepts {sorted(self.names)}"
            )
        out: dict[str, Any] = {}
        for s in self.specs:
            if s.name in overrides:
                out[s.name] = s.coerce(overrides[s.name], where=where)
            else:
                out[s.name] = s.default
        return out


def specs(*raw: Sequence) -> ParamSchema:
    """Sugar: ``specs(("workloads", "list[str]", ("fft",)), ...)``."""
    built = []
    for entry in raw:
        if isinstance(entry, ParamSpec):
            built.append(entry)
        else:
            built.append(ParamSpec(*entry))
    return ParamSchema(tuple(built))
