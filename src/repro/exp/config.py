"""Declarative experiment configs: YAML/JSON files with ``extend:`` chains.

A config file describes one runnable experiment::

    name: fig4-accuracy            # optional; defaults to the file stem
    description: |                 # optional documentation
      The paper's central accuracy figure.
    extend: base/accuracy.yaml     # optional; inherit another config
    experiment: accuracy           # a base experiment from repro.exp.catalog
    parameters:                    # overrides, validated against the schema
      workloads: [fft, lu]
      scale: 0.25
    gate:                          # bench-regression tolerances (optional)
      default_tolerance_pct: 0.0
      tolerances:
        "*wall*": null             # null = never gate this metric
        "gmean.*": 1.5

``extend:`` is resolved relative to the config file's own directory and may
chain (A extends B extends C).  Resolution order is root-first: the chain
root supplies the ``experiment`` and base parameters, every child overrides
parameter-by-parameter, and the leaf wins.  Cycles and conflicting
``experiment`` fields are errors.  The resolved parameter set is validated
against the experiment's :class:`repro.exp.schema.ParamSchema` — unknown
keys and type mismatches are rejected with the file name in the message.

YAML support is optional (PyYAML); ``.json`` configs always work.  The
resolved config's content hash (``config_hash``) covers exactly what
determines the results — the experiment name and the resolved parameters —
so renaming a file or editing its description does not invalidate archives.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.exp.schema import SchemaError

try:  # optional dependency: .yaml configs need PyYAML, .json never does
    import yaml as _yaml
except ImportError:  # pragma: no cover - exercised only without PyYAML
    _yaml = None

#: Keys a config file may contain at the top level.
CONFIG_KEYS = ("name", "description", "extend", "experiment", "parameters", "gate")

#: Keys the ``gate:`` section may contain.
GATE_KEYS = ("default_tolerance_pct", "tolerances")

CONFIG_SUFFIXES = (".yaml", ".yml", ".json")


class ConfigFileError(SchemaError):
    """A config file is malformed (bad syntax, bad keys, bad extend chain)."""


@dataclass(frozen=True)
class GateSpec:
    """Per-metric tolerance policy for ``repro exp diff --gate``.

    ``tolerances`` maps a metric-name glob to the allowed relative change in
    percent, or ``None`` to exempt matching metrics from gating entirely
    (wall-clock measurements, for instance).  The first matching pattern in
    insertion order wins; otherwise ``default_tolerance_pct`` applies.
    """

    default_tolerance_pct: float = 0.0
    tolerances: dict[str, Optional[float]] = field(default_factory=dict)

    def tolerance_for(self, metric: str) -> Optional[float]:
        from fnmatch import fnmatchcase

        for pattern, tol in self.tolerances.items():
            if fnmatchcase(metric, pattern):
                return tol
        return self.default_tolerance_pct

    def as_dict(self) -> dict:
        return {
            "default_tolerance_pct": self.default_tolerance_pct,
            "tolerances": dict(self.tolerances),
        }

    @staticmethod
    def from_dict(raw: dict, where: str = "") -> "GateSpec":
        ctx = f"{where}: " if where else ""
        unknown = sorted(set(raw) - set(GATE_KEYS))
        if unknown:
            raise ConfigFileError(
                f"{ctx}unknown gate key(s) {unknown}; expected {list(GATE_KEYS)}"
            )
        default = raw.get("default_tolerance_pct", 0.0)
        if not isinstance(default, (int, float)) or isinstance(default, bool):
            raise ConfigFileError(
                f"{ctx}gate.default_tolerance_pct must be a number, "
                f"got {default!r}"
            )
        tolerances: dict[str, Optional[float]] = {}
        for pattern, tol in (raw.get("tolerances") or {}).items():
            if tol is not None and (
                not isinstance(tol, (int, float)) or isinstance(tol, bool)
            ):
                raise ConfigFileError(
                    f"{ctx}gate tolerance for {pattern!r} must be a number "
                    f"or null, got {tol!r}"
                )
            tolerances[str(pattern)] = None if tol is None else float(tol)
        return GateSpec(float(default), tolerances)


@dataclass(frozen=True)
class ResolvedConfig:
    """A config file with its ``extend:`` chain flattened and validated."""

    name: str
    description: str
    experiment: str
    parameters: dict[str, Any]
    gate: GateSpec
    #: Config files in resolution order, root first, leaf last.
    chain: tuple[str, ...]
    path: Optional[str] = None

    @property
    def config_hash(self) -> str:
        """Content hash of what determines the results (experiment +
        resolved parameters; names, descriptions and gates excluded)."""
        return config_hash(self.experiment, self.parameters)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "experiment": self.experiment,
            "parameters": _jsonable_params(self.parameters),
            "gate": self.gate.as_dict(),
            "chain": list(self.chain),
            "config_hash": self.config_hash,
        }


def _jsonable_params(params: dict[str, Any]) -> dict[str, Any]:
    return {
        k: list(v) if isinstance(v, tuple) else v for k, v in params.items()
    }


def config_hash(experiment: str, parameters: dict[str, Any]) -> str:
    material = json.dumps(
        {"experiment": experiment, "parameters": _jsonable_params(parameters)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


# ---------------------------------------------------------------------------
# File loading
# ---------------------------------------------------------------------------


def load_config_file(path: Union[str, Path]) -> dict:
    """Parse one config file (YAML or JSON by suffix) into a raw dict."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".json":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigFileError(f"{path}: invalid JSON: {exc}") from exc
    elif path.suffix in (".yaml", ".yml"):
        if _yaml is None:
            raise ConfigFileError(
                f"{path}: YAML configs need PyYAML (pip install pyyaml); "
                "JSON configs work without it"
            )
        try:
            raw = _yaml.safe_load(text)
        except _yaml.YAMLError as exc:
            raise ConfigFileError(f"{path}: invalid YAML: {exc}") from exc
    else:
        raise ConfigFileError(
            f"{path}: unknown config suffix {path.suffix!r}; "
            f"expected one of {CONFIG_SUFFIXES}"
        )
    if raw is None:
        raw = {}
    if not isinstance(raw, dict):
        raise ConfigFileError(
            f"{path}: config must be a mapping, got {type(raw).__name__}"
        )
    unknown = sorted(set(raw) - set(CONFIG_KEYS))
    if unknown:
        raise ConfigFileError(
            f"{path}: unknown top-level key(s) {unknown}; "
            f"expected {list(CONFIG_KEYS)}"
        )
    params = raw.get("parameters")
    if params is not None and not isinstance(params, dict):
        raise ConfigFileError(
            f"{path}: 'parameters' must be a mapping, "
            f"got {type(params).__name__}"
        )
    return raw


def _load_chain(path: Path, seen: tuple[Path, ...] = ()) -> list[tuple[Path, dict]]:
    """The ``extend:`` chain of ``path``, root first."""
    path = path.resolve()
    if path in seen:
        cycle = " -> ".join(p.name for p in (*seen, path))
        raise ConfigFileError(f"extend cycle: {cycle}")
    raw = load_config_file(path)
    chain: list[tuple[Path, dict]] = []
    extend = raw.get("extend")
    if extend is not None:
        if not isinstance(extend, str):
            raise ConfigFileError(
                f"{path}: 'extend' must be a path string, got {extend!r}"
            )
        base = (path.parent / extend).resolve()
        if not base.is_file():
            raise ConfigFileError(
                f"{path}: extend target not found: {extend} "
                f"(resolved to {base})"
            )
        chain.extend(_load_chain(base, (*seen, path)))
    chain.append((path, raw))
    return chain


def resolve_config(
    path: Union[str, Path], overrides: Optional[dict[str, Any]] = None
) -> ResolvedConfig:
    """Flatten the ``extend:`` chain of ``path`` and validate the result.

    ``overrides`` (e.g. ``repro exp run --set key=value``) are applied after
    the whole file chain, as if a final one-off child config.
    """
    from repro.exp.catalog import get_experiment

    path = Path(path)
    chain = _load_chain(path)

    experiment: Optional[str] = None
    declared_in: Optional[Path] = None
    params: dict[str, Any] = {}
    gate_raw: dict = {}
    for file_path, raw in chain:
        exp_name = raw.get("experiment")
        if exp_name is not None:
            if experiment is not None and exp_name != experiment:
                raise ConfigFileError(
                    f"{file_path}: experiment {exp_name!r} conflicts with "
                    f"{experiment!r} inherited from {declared_in}"
                )
            experiment, declared_in = exp_name, file_path
        params.update(raw.get("parameters") or {})
        gate = raw.get("gate")
        if gate is not None:
            if not isinstance(gate, dict):
                raise ConfigFileError(
                    f"{file_path}: 'gate' must be a mapping, got {gate!r}"
                )
            merged_tol = dict(gate_raw.get("tolerances") or {})
            merged_tol.update(gate.get("tolerances") or {})
            gate_raw.update(gate)
            gate_raw["tolerances"] = merged_tol
    if overrides:
        params.update(overrides)

    if experiment is None:
        raise ConfigFileError(
            f"{path}: no 'experiment' anywhere in the extend chain"
        )
    base = get_experiment(experiment)  # raises on unknown experiment

    leaf_path, leaf_raw = chain[-1]
    name = leaf_raw.get("name") or leaf_path.stem
    description = str(leaf_raw.get("description") or base.description).strip()
    resolved = base.schema.resolve(params, where=str(leaf_path))
    gate = GateSpec.from_dict(gate_raw, where=str(leaf_path)) if gate_raw else (
        base.default_gate
    )
    return ResolvedConfig(
        name=str(name),
        description=description,
        experiment=experiment,
        parameters=resolved,
        gate=gate,
        chain=tuple(str(p) for p, _ in chain),
        path=str(leaf_path),
    )


def discover_configs(root: Union[str, Path]) -> list[Path]:
    """Every config file under ``root``, sorted (``base/`` included)."""
    root = Path(root)
    out = [
        p
        for suffix in CONFIG_SUFFIXES
        for p in root.rglob(f"*{suffix}")
        if p.is_file()
    ]
    return sorted(set(out))


def parse_set_override(pairs: list[str]) -> dict[str, Any]:
    """Parse ``--set key=value`` pairs; values are parsed as JSON when
    possible (so ``--set scale=0.5`` is a float and ``--set
    'workloads=["fft"]'`` a list) and kept as strings otherwise."""
    out: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ConfigFileError(
                f"--set expects key=value, got {pair!r}"
            )
        try:
            out[key] = json.loads(value)
        except json.JSONDecodeError:
            out[key] = value
    return out
