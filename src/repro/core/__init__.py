"""The self-correction trace model — the paper's contribution.

Pipeline (mirrors the paper's methodology):

1. :class:`~repro.core.capture.TraceCapture` rides along an execution-driven
   full-system run and records every network message **with its causal
   dependency** (which earlier message's arrival triggered it, and the
   network-independent compute gap in between).
2. :class:`~repro.core.trace.Trace` is the portable artifact: records, per
   core end markers, and metadata; JSON round-trippable and validated.
3. Replayers drive the trace into any target network:

   * :class:`~repro.core.replay.NaiveReplayer` — timestamps only (the
     baseline trace-driven methodology the paper improves on);
   * :class:`~repro.core.replay.SelfCorrectingReplayer` — the paper's model:
     injection times are re-derived *online* from simulated dependency
     completion times, self-correcting the trace to the target network;
   * :class:`~repro.core.iterate.IterativeRefiner` — offline fixed-point
     variant: replay a fixed schedule, re-time it from observed deliveries,
     repeat until the predicted execution time converges.

4. :mod:`~repro.core.accuracy` quantifies each replay against an
   execution-driven reference on the same target network.

Two performance-oriented paths sit beside the event-driven replayers:
:mod:`repro.core.generational` resolves the dependency DAG in vectorized
Kahn generations (``TraceConfig(engine="generational")``), and
:mod:`repro.core.tracebin` is the chunked binary trace format whose
streaming readers keep million-message traces out of memory (see
``docs/TRACE_FORMAT.md``).
"""

from repro.core.accuracy import compare_to_reference, reference_latencies
from repro.core.analysis import (
    TraceProfile,
    critical_chain,
    dependency_fanout,
    destination_entropy,
    injection_burstiness,
    profile_trace,
)
from repro.core.capture import TraceCapture
from repro.core.sharing import (
    LineSharing,
    SharingClass,
    classify_lines,
    sharing_summary,
)
from repro.core.compact import (
    CompactionStats,
    coalesce_leaves,
    filter_leaf_control,
    leaf_records,
)
from repro.core.generational import (
    replay_trace_generational,
    stream_naive_summary,
)
from repro.core.iterate import IterationInfo, IterativeRefiner
from repro.core.replay import NaiveReplayer, ReplayResult, SelfCorrectingReplayer, replay_trace
from repro.core.trace import EndMarker, Trace, TraceRecord
from repro.core.tracebin import (
    BinaryTraceWriter,
    TraceBinError,
    is_binary_trace,
    load_trace,
    scan_blocks,
    trace_info,
)

__all__ = [
    "CompactionStats",
    "EndMarker",
    "LineSharing",
    "SharingClass",
    "classify_lines",
    "sharing_summary",
    "TraceProfile",
    "critical_chain",
    "dependency_fanout",
    "destination_entropy",
    "injection_burstiness",
    "profile_trace",
    "coalesce_leaves",
    "filter_leaf_control",
    "leaf_records",
    "IterationInfo",
    "IterativeRefiner",
    "NaiveReplayer",
    "ReplayResult",
    "SelfCorrectingReplayer",
    "Trace",
    "TraceCapture",
    "TraceRecord",
    "BinaryTraceWriter",
    "TraceBinError",
    "compare_to_reference",
    "is_binary_trace",
    "load_trace",
    "reference_latencies",
    "replay_trace",
    "replay_trace_generational",
    "scan_blocks",
    "stream_naive_summary",
    "trace_info",
]
