"""Offline iterative self-correction (fixed-point refinement).

When the replayer cannot be coupled to the network simulator (the situation
that motivates an *offline* trace flow), self-correction can still be applied
iteratively:

    pass 0: replay the captured schedule unchanged (== naive replay);
    pass k+1: measure each message's latency in pass k, then rebuild the
              *entire timeline transitively* in causal order —
              ``inject(m) = deliver'(cause) + gap`` with
              ``deliver'(m) = inject(m) + latency_k(m)`` — and replay the
              new fixed schedule on a fresh network;
    stop when the predicted execution time changes by < tol.

    The transitive rebuild is what makes the iteration useful: corrections
    propagate through the whole dependency DAG in one pass, and subsequent
    passes only chase second-order congestion shifts (latencies measured
    under the old schedule vs. the corrected one).

The fixed point of this map coincides with the online
:class:`~repro.core.replay.SelfCorrectingReplayer` timeline whenever network
latencies are injection-time-monotone; the convergence history itself is the
paper-style "self-correction converges quickly" figure (Fig. 6).
"""

from __future__ import annotations

import time as _walltime
from dataclasses import dataclass

from repro.core.replay import (
    FixedScheduleReplayer,
    NetworkFactory,
    ReplayResult,
)
from repro.core.trace import Trace


@dataclass(frozen=True)
class IterationInfo:
    """One refinement pass."""

    iteration: int
    exec_time_estimate: int
    rel_change: float           # |est_k - est_{k-1}| / est_{k-1}; inf for k=0
    wall_clock_s: float


class IterativeRefiner:
    """Runs the fixed-point loop; see module docstring."""

    def __init__(
        self,
        trace: Trace,
        network_factory: NetworkFactory,
        max_iterations: int = 5,
        convergence_tol: float = 1e-3,
        damping: float = 0.5,
    ) -> None:
        """``damping`` blends each rebuilt schedule with the previous one
        (``t' = damping * t_new + (1 - damping) * t_old``).  1.0 is the pure
        update; barrier-heavy traces can oscillate undamped (a compressed
        schedule congests the network, stretching the next rebuild, and so
        on), so the default keeps a 0.5 step."""
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if convergence_tol <= 0:
            raise ValueError("convergence_tol must be > 0")
        if not 0.0 < damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        self.trace = trace
        self.network_factory = network_factory
        self.max_iterations = max_iterations
        self.convergence_tol = convergence_tol
        self.damping = damping
        self.history: list[IterationInfo] = []

    def _next_schedule(self, prev: ReplayResult) -> dict[int, int]:
        """Rebuild the full timeline from the previous pass's latencies.

        Records are walked in captured delivery order, which is a
        topological order of the dependency DAG (a cause is always delivered
        strictly before its dependents are delivered), so corrected times
        propagate through arbitrarily deep chains in a single rebuild.
        """
        lat = {
            mid: prev.deliveries[mid] - prev.injections[mid]
            for mid in prev.deliveries
            if mid in prev.injections
        }
        schedule: dict[int, int] = {}
        deliver_new: dict[int, int] = {}
        for r in sorted(self.trace.records, key=lambda r: (r.t_deliver, r.msg_id)):
            if r.cause_id == -1:
                inject = r.t_inject
            else:
                d = deliver_new.get(r.cause_id)
                # A cause missing here would be a replay bug; fall back to
                # the captured time to stay total.
                if d is None:
                    inject = r.t_inject
                else:
                    inject = d + r.gap
                    if r.bound_id != -1 and r.bound_id in deliver_new:
                        inject = max(inject,
                                     deliver_new[r.bound_id] + r.bound_gap)
            schedule[r.msg_id] = inject
            deliver_new[r.msg_id] = inject + lat.get(r.msg_id, r.latency)
        return schedule

    def run(self) -> ReplayResult:
        """Iterate to convergence; returns the final pass's result with the
        convergence history attached in ``extra['history']``."""
        schedule = {r.msg_id: r.t_inject for r in self.trace.records}
        prev_estimate: int | None = None
        result: ReplayResult | None = None
        self.history = []
        for k in range(self.max_iterations):
            t0 = _walltime.perf_counter()
            sim, net = self.network_factory()
            result = FixedScheduleReplayer(self.trace, sim, net, schedule).run()
            wall = _walltime.perf_counter() - t0
            est = result.exec_time_estimate
            rel = (
                float("inf") if prev_estimate is None or prev_estimate == 0
                else abs(est - prev_estimate) / prev_estimate
            )
            self.history.append(IterationInfo(k, est, rel, wall))
            if rel <= self.convergence_tol:
                break
            prev_estimate = est
            rebuilt = self._next_schedule(result)
            if self.damping >= 1.0:
                schedule = rebuilt
            else:
                a = self.damping
                schedule = {
                    mid: int(round(a * rebuilt[mid] + (1.0 - a) * schedule[mid]))
                    for mid in rebuilt
                }
        assert result is not None
        result.extra["history"] = self.history
        result.extra["iterations"] = len(self.history)
        result.mode = "iterative_self_correcting"
        return result
