"""Generational (Kahn-layer) vectorized replay engine.

The event-driven replayers in :mod:`repro.core.replay` pay per-message
Python dispatch: every injection, arbitration grant and delivery is a heap
event with a callback.  This module replays the same trace with NumPy
array-wide operations instead:

1. **Classify** records exactly as :class:`SelfCorrectingReplayer` does
   (roots / dependents / degraded-anchored, ablation draws from the same
   RNG stream, cycle demotion via the same Tarjan helper).
2. **Layer** the dependency DAG once with a vectorized Kahn sweep: every
   record's generation is ``1 + max(generation of its trigger edges)``.
3. **Solve** the coupled DAG/network timing.  For the ``captured`` and
   ``neighbor_gap`` policies (and naive mode) every edge weight is known
   up front, so a *windowed sweep* (:func:`_solve_windowed`) computes the
   event engine's schedule exactly in one pass: released messages advance
   through safe time horizons (min frontier inject + a per-backend lower
   bound on latency), each horizon batch is FIFO-served with the
   closed-form recurrence against per-resource carry state, and
   deliveries release dependent records — no fixed-point iteration at
   all.  The ``interp`` policy's warp heuristic couples anchor deltas to
   the replayed timeline node-globally, so it instead iterates a damped
   layered Gauss-Seidel fixed point (:func:`_solve_relaxation`): DAG pass
   (``inject = max over edges (deliver(trigger) + edge_gap)``, one
   generation at a time) alternating with a vectorized network scan until
   injections, latencies and deliveries are mutually consistent.

The network scans replicate the event models' arithmetic operation for
operation (same ``math.ceil`` chains via scalar-exact lookup tables), so a
generational replay is *numerically* equivalent to the event path, not
just statistically close.  Remaining intentional deviations:

* same-cycle FIFO ties break by ``msg_id`` (the event engine breaks them
  by event-queue order);
* ``circuit_mesh`` uses the contention-free closed form of the setup walk
  (segment contention between overlapping circuits is not modelled);
* the ``interp`` gap policy estimates each node-local time warp from the
  previous relaxation pass's injection times rather than online, and may
  settle on a different — equally self-consistent — FIFO schedule.

The differential harness in :mod:`repro.validate.engines` bounds all three.

Out-of-core replay: :func:`stream_naive_summary` replays a *binary* trace
(:mod:`repro.core.tracebin`) chunk by chunk with per-resource carry state,
so peak memory is O(chunk + resources) regardless of trace length.
"""

from __future__ import annotations

import math
import time as _walltime
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import (
    GAP_POLICY_CAPTURED,
    GAP_POLICY_INTERP,
    ONOC_AWGR,
    ONOC_CIRCUIT_MESH,
    ONOC_CROSSBAR,
    ONOC_SWMR,
    ONOC_TOPOLOGIES,
    OnocConfig,
    TRACE_NAIVE,
    TRACE_SELF_CORRECTING,
    TraceConfig,
)
from repro.core.replay import (
    FaultExposure,
    ReplayResult,
    _cycle_members,
    _estimate_exec_time,
)
from repro.core.trace import DEGRADED_RECORDS_META_KEY, Trace
from repro.onoc.devices import SerpentineLayout, mesh_link_length_cm

__all__ = ["replay_trace_generational", "stream_naive_summary"]

#: Sentinel for "not scheduled"; quarter of int64 min so sums stay negative.
_NEG = np.iinfo(np.int64).min // 4

#: Matches ``SelfCorrectingReplayer._STALL_DETAIL_CAP``.
_STALL_DETAIL_CAP = 50

#: Matches ``SelfCorrectingReplayer._WARP_CLAMP``.
_WARP_CLAMP = (0.25, 4.0)

#: Hard internal iteration cap.  The Gauss-Seidel sequence is monotone from
#: the uncontended lower bound over integer times, so it terminates; the cap
#: only bounds pathological contention chains.
# The damped relaxation contracts geometrically but can need low hundreds
# of passes on FIFO-heavy traces; passes are cheap array sweeps, so the
# engine always allows at least this many regardless of the (event-engine
# oriented) ``cfg.max_iterations``.
_MIN_ITERATION_CAP = 512


# --------------------------------------------------------------------------
# Columnar trace view
# --------------------------------------------------------------------------

@dataclass
class _Columns:
    """The trace as parallel int64 arrays (records order preserved)."""

    n: int
    ids: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    size: np.ndarray
    t_inject: np.ndarray
    cause_id: np.ndarray
    gap: np.ndarray
    bound_id: np.ndarray
    bound_gap: np.ndarray
    keys: list
    cause_idx: np.ndarray = field(init=False)   # index, -1 none, -2 missing
    bound_idx: np.ndarray = field(init=False)

    @staticmethod
    def of(trace: Trace) -> "_Columns":
        """Columns for ``trace``, memoised on the trace instance.

        Sweeps, the validation matrix and iterative refinement all replay
        one capture under many configs; traces are treated as immutable
        everywhere (fault injection clones), so the columnar view is a
        per-trace one-time cost.  The cache key guards against the one
        mutation pattern that exists in tests (rebinding ``records``).
        """
        key = (len(trace.records), id(trace.records))
        cached = trace.__dict__.get("_columns_cache")
        if cached is not None and cached[0] == key:
            return cached[1]
        cols = _Columns.from_trace(trace)
        trace.__dict__["_columns_cache"] = (key, cols)
        return cols

    @staticmethod
    def from_trace(trace: Trace) -> "_Columns":
        rs = trace.records
        n = len(rs)
        # One python pass over the records; reshape beats nine fromiter
        # sweeps by ~3x on large traces.
        flat = np.fromiter(
            (v for r in rs
             for v in (r.msg_id, r.src, r.dst, r.size_bytes, r.t_inject,
                       r.cause_id, r.gap, r.bound_id, r.bound_gap)),
            dtype=np.int64, count=n * 9).reshape(n, 9)
        cols = _Columns(
            n=n,
            ids=flat[:, 0].copy(),
            src=flat[:, 1].copy(),
            dst=flat[:, 2].copy(),
            size=flat[:, 3].copy(),
            t_inject=flat[:, 4].copy(),
            cause_id=flat[:, 5].copy(),
            gap=flat[:, 6].copy(),
            bound_id=flat[:, 7].copy(),
            bound_gap=flat[:, 8].copy(),
            keys=[r.key for r in rs],
        )
        return cols

    def __post_init__(self) -> None:
        order = np.argsort(self.ids, kind="stable")
        ids_sorted = self.ids[order]
        self.cause_idx = _index_of(ids_sorted, order, self.cause_id)
        self.bound_idx = _index_of(ids_sorted, order, self.bound_id)


def _index_of(ids_sorted: np.ndarray, order: np.ndarray,
              query: np.ndarray) -> np.ndarray:
    """Map msg_ids to record indices: -1 for the -1 sentinel, -2 if absent."""
    out = np.full(query.shape, -2, dtype=np.int64)
    none = query == -1
    if len(ids_sorted):
        pos = np.searchsorted(ids_sorted, query)
        pos_c = np.minimum(pos, len(ids_sorted) - 1)
        hit = (ids_sorted[pos_c] == query) & ~none
        out[hit] = order[pos_c[hit]]
    out[none] = -1
    return out


# --------------------------------------------------------------------------
# Array-graph helpers
# --------------------------------------------------------------------------

def _csr(parents: np.ndarray, n_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """Group edge indices by parent: returns (indptr, edge_order)."""
    order = np.argsort(parents, kind="stable")
    counts = np.bincount(parents, minlength=n_nodes)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return indptr, order


def _gather_ranges(indptr: np.ndarray, data: np.ndarray,
                   nodes: np.ndarray) -> np.ndarray:
    """Concatenate ``data[indptr[v]:indptr[v+1]]`` for every v in nodes."""
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=data.dtype)
    starts = indptr[nodes]
    cum = np.cumsum(counts)
    prev = cum - counts
    idx = (np.arange(total, dtype=np.int64)
           - np.repeat(prev, counts) + np.repeat(starts, counts))
    return data[idx]


def _segmented_cummax(x: np.ndarray, seg_start: np.ndarray) -> np.ndarray:
    """Per-segment running maximum (segments marked by ``seg_start``)."""
    m = len(x)
    if m == 0:
        return x.copy()
    seg_id = np.cumsum(seg_start) - 1
    nseg = int(seg_id[-1]) + 1
    lo = int(x.min())
    span = int(x.max()) - lo + 1
    if nseg <= 1:
        return np.maximum.accumulate(x)
    if span < (1 << 62) // nseg:
        # Offset each segment into a disjoint band: the previous segment's
        # running max is strictly below the next band's floor, so one global
        # accumulate resets at every boundary.
        shifted = (x - lo) + seg_id * span
        return np.maximum.accumulate(shifted) - seg_id * span + lo
    out = np.empty_like(x)
    bounds = np.flatnonzero(seg_start).tolist() + [m]
    for a, b in zip(bounds[:-1], bounds[1:]):
        out[a:b] = np.maximum.accumulate(x[a:b])
    return out


def _release_sorted(inj_s: np.ndarray, occ_s: np.ndarray,
                    seg_start: np.ndarray,
                    carry_s: Optional[np.ndarray] = None) -> np.ndarray:
    """Closed form of the FIFO channel recurrence, per segment:

        release[k] = max(inject[k], release[k-1]) + occ[k]

    (``release[-1]`` = ``carry`` when given, else effectively 0 — injections
    are non-negative, matching channels that start idle).  With C the
    segmented inclusive cumsum of occ, the recurrence telescopes to
    ``release[k] = max(carry, max_{j<=k}(inject[j] - C[j-1])) + C[k]``.
    """
    m = len(inj_s)
    if m == 0:
        return inj_s.copy()
    idx = np.arange(m, dtype=np.int64)
    start_idx = np.maximum.accumulate(np.where(seg_start, idx, 0))
    ctot = np.cumsum(occ_s)
    base = (ctot - occ_s)[start_idx]
    c_incl = ctot - base
    x = inj_s - (c_incl - occ_s)
    if carry_s is not None:
        x = np.maximum(x, carry_s)
    return _segmented_cummax(x, seg_start) + c_incl


# --------------------------------------------------------------------------
# Scalar-exact timing tables
# --------------------------------------------------------------------------

def _ser_vector(cfg: OnocConfig, size: np.ndarray) -> np.ndarray:
    """Per-message serialization cycles via scalar-exact unique-size lookup."""
    uniq, inv = np.unique(size, return_inverse=True)
    table = np.fromiter(
        (cfg.serialization_cycles(int(s)) for s in uniq),
        dtype=np.int64, count=len(uniq))
    return table[inv]


def _awgr_lane_ser_vector(cfg: OnocConfig, size: np.ndarray) -> np.ndarray:
    """AWGR lane serialization (mirrors OpticalAwgr.lane_serialization_cycles)."""
    lanes_per_pair = cfg.num_wavelengths // (cfg.num_nodes - 1)
    gbps = lanes_per_pair * cfg.bitrate_gbps

    def lane_ser(size_bytes: int) -> int:
        ns = (size_bytes * 8) / gbps
        return max(1, math.ceil(ns * cfg.clock_ghz))

    uniq, inv = np.unique(size, return_inverse=True)
    table = np.fromiter((lane_ser(int(s)) for s in uniq),
                        dtype=np.int64, count=len(uniq))
    return table[inv]


def _prop_pair_vector(cfg: OnocConfig, layout: SerpentineLayout,
                      src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Per-message serpentine propagation cycles via an exact pair table."""
    n = cfg.num_nodes
    table = np.zeros((n, n), dtype=np.int64)
    for s in range(n):
        for d in range(n):
            if s != d:
                table[s, d] = cfg.propagation_cycles(layout.distance_cm(s, d))
    return table[src, dst]


# --------------------------------------------------------------------------
# Backend contention models (vectorized scans)
# --------------------------------------------------------------------------

class _FifoModel:
    """Shared scan for the three FIFO backends (swmr / awgr / crossbar)."""

    #: Degradation overlay (repro.resilience); attached by
    #: ``replay_trace_generational`` when a fault timeseries is configured.
    #: Its adjustments are non-negative, so ``gain_lb`` stays a valid lower
    #: bound for the windowed solver with the overlay active.
    degrade = None

    def __init__(self, cols: _Columns) -> None:
        self.cols = cols

    # Subclasses set: self.res (resource per message), self.res_size
    # (resource id space), self.occ_static (occupancy, or None for the
    # crossbar where it depends on order), self.extra (deliver - release),
    # self.base (uncontended latency), self.gain_lb (per-message lower
    # bound on deliver - inject, for the windowed solver's safe horizon),
    # self.deg_ser (the serialization count the matching event backend
    # feeds to ``DegradationOverlay.adjust`` — lane ser for the AWGR).

    def base_latency(self) -> np.ndarray:
        return self.base

    def begin(self) -> None:
        """Reset per-resource carry state for a windowed/streamed solve."""
        self._carry = np.zeros(self.res_size, dtype=np.int64)

    def serve_batch(self, b: np.ndarray, inject: np.ndarray,
                    deliver: np.ndarray) -> None:
        """FIFO-serve one horizon batch against the carried channel state.

        ``b`` must arrive sorted by (inject, record index) and every later
        batch must inject no earlier than this one — the windowed solver
        guarantees both, which is what lets the per-resource closed form
        run incrementally with just a carried last-release time.
        """
        inj = inject[b]
        res = self.res[b]
        order = np.argsort(res, kind="stable")
        bs, inj_s, res_s = b[order], inj[order], res[order]
        seg_start = np.empty(len(bs), dtype=bool)
        seg_start[0] = True
        seg_start[1:] = res_s[1:] != res_s[:-1]
        occ_s = self._occupancy_batch(bs, res_s, seg_start)
        lat_x = None
        if self.degrade is not None:
            occ_x, lat_x = self.degrade.adjust_vec(
                inj_s, self.cols.src[bs], self.cols.dst[bs],
                self.deg_ser[bs])
            occ_s = occ_s + occ_x      # degraded resource held longer
        if seg_start.all():
            # Common small-batch case: one message per resource — the
            # recurrence collapses to a single elementwise step.
            release_s = np.maximum(inj_s, self._carry[res_s]) + occ_s
            self._carry[res_s] = release_s
        else:
            release_s = _release_sorted(inj_s, occ_s, seg_start,
                                        carry_s=self._carry[res_s])
            tails = np.flatnonzero(np.concatenate((seg_start[1:], [True])))
            self._carry[res_s[tails]] = release_s[tails]
        deliver[bs] = release_s + self.extra[bs]
        if lat_x is not None:
            deliver[bs] += lat_x       # detour flight delays delivery only

    def _occupancy(self, order: np.ndarray, res_s: np.ndarray,
                   seg_start: np.ndarray) -> np.ndarray:
        return self.occ_static[order]

    def _occupancy_batch(self, bs: np.ndarray, res_s: np.ndarray,
                         seg_start: np.ndarray) -> np.ndarray:
        return self._occupancy(bs, res_s, seg_start)

    def scan(self, inject: np.ndarray, active_idx: np.ndarray) -> np.ndarray:
        cols = self.cols
        deliver = np.full(cols.n, _NEG, dtype=np.int64)
        if len(active_idx) == 0:
            return deliver
        inj = inject[active_idx]
        res = self.res[active_idx]
        mid = cols.ids[active_idx]
        order = np.lexsort((mid, inj, res))
        res_s = res[order]
        seg_start = np.empty(len(order), dtype=bool)
        seg_start[0] = True
        seg_start[1:] = res_s[1:] != res_s[:-1]
        tgt = active_idx[order]
        occ_s = self._occupancy(tgt, res_s, seg_start)
        lat_x = 0
        if self.degrade is not None:
            occ_x, lat_x = self.degrade.adjust_vec(
                inj[order], self.cols.src[tgt], self.cols.dst[tgt],
                self.deg_ser[tgt])
            occ_s = occ_s + occ_x
        release_s = _release_sorted(inj[order], occ_s, seg_start)
        deliver[tgt] = release_s + self.extra[tgt] + lat_x
        return deliver


class _SwmrModel(_FifoModel):
    """Firefly SWMR: one FIFO channel per *source*, occupancy = ser."""

    def __init__(self, cfg: OnocConfig, cols: _Columns) -> None:
        super().__init__(cols)
        layout = SerpentineLayout(cfg)
        ser = _ser_vector(cfg, cols.size)
        prop = _prop_pair_vector(cfg, layout, cols.src, cols.dst)
        self.res = cols.src
        self.res_size = cfg.num_nodes
        self.occ_static = ser
        self.deg_ser = ser
        self.extra = prop + 2 * cfg.conversion_cycles
        self.base = ser + self.extra
        self.gain_lb = self.base


class _AwgrModel(_FifoModel):
    """Passive λ-router: one FIFO lane per (src, dst), occupancy = lane ser."""

    def __init__(self, cfg: OnocConfig, cols: _Columns) -> None:
        super().__init__(cols)
        layout = SerpentineLayout(cfg)
        lane_ser = _awgr_lane_ser_vector(cfg, cols.size)
        prop = _prop_pair_vector(cfg, layout, cols.src, cols.dst)
        self.res = cols.src * cfg.num_nodes + cols.dst
        self.res_size = cfg.num_nodes * cfg.num_nodes
        self.occ_static = lane_ser
        self.deg_ser = lane_ser
        self.extra = prop + 2 * cfg.conversion_cycles
        self.base = lane_ser + self.extra
        self.gain_lb = self.base


class _CrossbarModel(_FifoModel):
    """Corona MWSR: one token channel per *destination*; occupancy =
    token travel (from the previous writer's parking spot) + ser."""

    def __init__(self, cfg: OnocConfig, cols: _Columns) -> None:
        super().__init__(cols)
        layout = SerpentineLayout(cfg)
        n = cfg.num_nodes
        self.num_nodes = n
        self.ser = _ser_vector(cfg, cols.size)
        self.deg_ser = self.ser
        prop = _prop_pair_vector(cfg, layout, cols.src, cols.dst)
        self.res = cols.dst
        self.res_size = n
        self.src = cols.src
        self.extra = prop + 2 * cfg.conversion_cycles
        # travel[h]: token propagation over h ring hops (0 when parked here).
        travel = np.zeros(n, dtype=np.int64)
        for h in range(1, n):
            travel[h] = (cfg.propagation_cycles(h * layout.spacing_cm)
                         + h * cfg.token_hop_cycles)
        self.travel = travel
        self.base = self.ser + self.extra
        # Token travel is >= 0, so ser + extra lower-bounds deliver - inject.
        self.gain_lb = self.ser + self.extra

    def _occupancy(self, sorted_idx: np.ndarray, res_s: np.ndarray,
                   seg_start: np.ndarray) -> np.ndarray:
        src_s = self.src[sorted_idx]
        prev = np.empty_like(src_s)
        prev[1:] = src_s[:-1]
        # The token starts parked at the channel's reader (its destination)
        # and stays at the last writer across idle periods — a single
        # per-resource segment preserves that, so only the first message of
        # each destination sees the reader as the previous holder.
        prev[seg_start] = res_s[seg_start]
        hops = (src_s - prev) % self.num_nodes
        return self.travel[hops] + self.ser[sorted_idx]

    def begin(self) -> None:
        super().begin()
        self._token_at = np.arange(self.num_nodes, dtype=np.int64)

    def _occupancy_batch(self, bs: np.ndarray, res_s: np.ndarray,
                         seg_start: np.ndarray) -> np.ndarray:
        src_s = self.src[bs]
        prev = np.empty_like(src_s)
        prev[1:] = src_s[:-1]
        # Across batches the token parks at the last writer of the previous
        # batch, carried in ``_token_at`` exactly like ``_StreamScanner``.
        prev[seg_start] = self._token_at[res_s[seg_start]]
        hops = (src_s - prev) % self.num_nodes
        tails = np.flatnonzero(np.concatenate((seg_start[1:], [True])))
        self._token_at[res_s[tails]] = src_s[tails]
        return self.travel[hops] + self.ser[bs]


class _CircuitModel:
    """Circuit-switched mesh, contention-free closed form of the setup walk.

    The event model arbitrates directed link segments hop by hop; the
    uncontended latency of a circuit is exact and constant:

        deliver = inject + R + hops*(L+R)        (setup walk)
                  + hops*L + 1                   (ack)
                  + 2*conversion + ser + prop    (payload stream)

    Segment contention between overlapping circuits is *not* modelled —
    the documented approximation for this backend (the event path remains
    the reference; see docs/TRACE_FORMAT.md).
    """

    #: Degradation overlay; see :class:`_FifoModel`.  Circuit-mesh
    #: degradation is latency-only by contract (the event model tears the
    #: circuit down on the stock schedule, so the unmodelled segment
    #: contention does not grow): deliver = inject + const + occ + lat.
    degrade = None

    def __init__(self, cfg: OnocConfig, cols: _Columns) -> None:
        self.cols = cols
        side = cfg.mesh_side
        link = mesh_link_length_cm(cfg)
        xs, ys = cols.src % side, cols.src // side
        xd, yd = cols.dst % side, cols.dst // side
        hops = np.abs(xs - xd) + np.abs(ys - yd)
        max_h = 2 * (side - 1) if side > 1 else 1
        prop_h = np.zeros(max(int(hops.max(initial=0)), max_h) + 1,
                          dtype=np.int64)
        for h in range(1, len(prop_h)):
            prop_h[h] = cfg.propagation_cycles(h * link)
        ser = _ser_vector(cfg, cols.size)
        self.deg_ser = ser
        r, lnk = cfg.setup_router_latency, cfg.setup_link_latency
        self.const = (r + hops * (2 * lnk + r) + 1
                      + 2 * cfg.conversion_cycles + ser + prop_h[hops])
        self.gain_lb = self.const

    def _degrade_terms(self, b: np.ndarray, inj: np.ndarray) -> np.ndarray:
        occ, lat = self.degrade.adjust_vec(
            inj, self.cols.src[b], self.cols.dst[b], self.deg_ser[b])
        return occ + lat

    def base_latency(self) -> np.ndarray:
        return self.const.copy()

    def begin(self) -> None:
        pass                       # contention-free: no carry state

    def serve_batch(self, b: np.ndarray, inject: np.ndarray,
                    deliver: np.ndarray) -> None:
        deliver[b] = inject[b] + self.const[b]
        if self.degrade is not None:
            deliver[b] += self._degrade_terms(b, inject[b])

    def scan(self, inject: np.ndarray, active_idx: np.ndarray) -> np.ndarray:
        deliver = np.full(self.cols.n, _NEG, dtype=np.int64)
        deliver[active_idx] = inject[active_idx] + self.const[active_idx]
        if self.degrade is not None:
            deliver[active_idx] += self._degrade_terms(
                active_idx, inject[active_idx])
        return deliver


_MODELS = {
    ONOC_SWMR: _SwmrModel,
    ONOC_AWGR: _AwgrModel,
    ONOC_CROSSBAR: _CrossbarModel,
    ONOC_CIRCUIT_MESH: _CircuitModel,
}


# --------------------------------------------------------------------------
# Self-correction plan: classification, anchors, demotion, Kahn layering
# --------------------------------------------------------------------------

@dataclass
class _Plan:
    """Vectorized mirror of ``SelfCorrectingReplayer``'s preprocessing."""

    root: np.ndarray            # bool: timestamp-driven (incl. fallback/demoted)
    dependent: np.ndarray       # bool: in the trigger-edge machinery
    anchored: np.ndarray        # bool: degraded, riding a neighbor anchor
    degraded: np.ndarray        # bool: all degraded (anchored + fallback)
    root_time: np.ndarray       # schedule time for roots
    pred: np.ndarray            # anchor predecessor index (-1 none)
    layer: np.ndarray           # Kahn generation, -1 = never fires
    # Edges sorted by child layer: parallel arrays + per-layer slices.
    e_parent: np.ndarray
    e_child: np.ndarray
    e_gap: np.ndarray
    e_anchor: np.ndarray        # bool: anchor edge (fires at parent *inject*)
    e_delta: np.ndarray         # anchor edges: captured inter-send delta
    layer_bounds: list          # [(start, end)] per layer 1..L in order
    dropped_deps: int
    missing_triggers: int
    marked_degraded: int
    fallback_captured: int
    demoted: list               # demoted cycle members (msg_ids, sorted)


def _classify(trace: Trace, cols: _Columns, cfg: TraceConfig) -> _Plan:
    n = cols.n
    use_anchor = cfg.degraded_gap_policy != GAP_POLICY_CAPTURED
    has_cause = cols.cause_id != -1

    marked_ids = np.asarray(
        sorted(set(trace.meta.get(DEGRADED_RECORDS_META_KEY, ()))),
        dtype=np.int64)
    marked = (np.isin(cols.ids, marked_ids) if len(marked_ids)
              else np.zeros(n, dtype=bool))
    marked_degraded = int(marked.sum())

    # Ablation draws replicate the event engine: one RNG draw per
    # cause-bearing record in records order, only when the fraction < 1
    # (``default_rng(seed).random(k)`` equals k successive scalar draws).
    keep_mask = np.ones(n, dtype=bool)
    if cfg.keep_dep_fraction < 1.0:
        rng = np.random.default_rng(cfg.dep_drop_seed)
        draws = rng.random(int(has_cause.sum()))
        keep_mask[has_cause] = draws < cfg.keep_dep_fraction

    kept = has_cause & keep_mask
    dropped = has_cause & ~keep_mask
    missing = (cols.cause_idx == -2) | \
        ((cols.bound_id != -1) & (cols.bound_idx == -2))
    missing_triggers = int((kept & missing).sum())

    if use_anchor:
        degraded = dropped | (kept & (missing | marked)) | (~has_cause & marked)
        dependent = kept & ~(missing | marked)
        root = ~has_cause & ~marked
    else:
        degraded = np.zeros(n, dtype=bool)
        dependent = kept
        root = ~has_cause | dropped

    root_time = np.where(cols.cause_id == -1, cols.gap, cols.t_inject)

    # ---- anchors: predecessor on the same source in (t_inject, id) order
    pred = np.full(n, -1, dtype=np.int64)
    fallback = 0
    if degraded.any():
        order = np.lexsort((cols.ids, cols.t_inject))
        g = np.argsort(cols.src[order], kind="stable")
        seq = order[g]
        same = cols.src[seq[1:]] == cols.src[seq[:-1]]
        deg_later = degraded[seq[1:]] & same
        pred[seq[1:][deg_later]] = seq[:-1][deg_later]
        no_pred = degraded & (pred == -1)
        fallback = int(no_pred.sum())
        root = root | no_pred          # captured-timestamp fallback roots
    anchored = degraded & (pred != -1)

    # ---- cycle demotion (mirror of _demote_cycles: the fixpoint runs over
    # roots and deliver-edges only; anchored records never fire in it)
    dep_idx = np.flatnonzero(dependent)
    dp = np.concatenate([
        cols.cause_idx[dep_idx], cols.bound_idx[dep_idx]])
    dc = np.concatenate([dep_idx, dep_idx])
    has_bound = np.concatenate([
        np.ones(len(dep_idx), dtype=bool), cols.bound_id[dep_idx] != -1])
    present = (dp >= 0) & has_bound
    dp, dc = dp[present], dc[present]
    indptr, eorder = _csr(dp, n)
    dc_csr = dc[eorder]

    indeg = np.zeros(n, dtype=np.int64)
    indeg[dependent] = 1 + (cols.bound_id[dependent] != -1)
    fired = root.copy()
    frontier = np.flatnonzero(root)
    while len(frontier):
        children = _gather_ranges(indptr, dc_csr, frontier)
        if not len(children):
            break
        np.subtract.at(indeg, children, 1)
        cand = np.unique(children)
        newly = cand[(indeg[cand] == 0) & ~fired[cand]]
        fired[newly] = True
        frontier = newly
    blocked = dependent & ~fired

    demoted: list[int] = []
    if blocked.any():
        taint = np.zeros(n, dtype=bool)
        frontier = np.flatnonzero(blocked & missing)
        while len(frontier):
            taint[frontier] = True
            children = _gather_ranges(indptr, dc_csr, frontier)
            cand = np.unique(children) if len(children) else children
            frontier = cand[blocked[cand] & ~taint[cand]] if len(cand) \
                else cand
        sub_idx = np.flatnonzero(blocked & ~taint)
        if len(sub_idx):
            sub_ids = set(cols.ids[sub_idx].tolist())
            trig = {
                int(cols.ids[i]): tuple(
                    t for t in (int(cols.cause_id[i]), int(cols.bound_id[i]))
                    if t in sub_ids)
                for i in sub_idx
            }
            demoted = sorted(_cycle_members(sorted(sub_ids), trig.__getitem__))
        if demoted:
            dem_arr = np.asarray(demoted, dtype=np.int64)
            dem_mask = np.isin(cols.ids, dem_arr)
            dependent = dependent & ~dem_mask
            root = root | dem_mask

    # ---- final edges + Kahn layering
    dep_idx = np.flatnonzero(dependent)
    ce_ok = cols.cause_idx[dep_idx] >= 0
    be_ok = (cols.bound_id[dep_idx] != -1) & (cols.bound_idx[dep_idx] >= 0)
    anc_idx = np.flatnonzero(anchored)
    e_parent = np.concatenate([
        cols.cause_idx[dep_idx[ce_ok]],
        cols.bound_idx[dep_idx[be_ok]],
        pred[anc_idx],
    ])
    e_child = np.concatenate([dep_idx[ce_ok], dep_idx[be_ok], anc_idx])
    e_gap = np.concatenate([
        cols.gap[dep_idx[ce_ok]],
        cols.bound_gap[dep_idx[be_ok]],
        np.zeros(len(anc_idx), dtype=np.int64),
    ])
    e_anchor = np.concatenate([
        np.zeros(int(ce_ok.sum()) + int(be_ok.sum()), dtype=bool),
        np.ones(len(anc_idx), dtype=bool),
    ])
    e_delta = np.zeros(len(e_parent), dtype=np.int64)
    if len(anc_idx):
        e_delta[e_anchor] = cols.t_inject[anc_idx] - \
            cols.t_inject[pred[anc_idx]]

    layer = np.full(n, -1, dtype=np.int64)
    layer[root] = 0
    indeg = np.zeros(n, dtype=np.int64)
    indeg[dependent] = 1 + (cols.bound_id[dependent] != -1)
    indeg[anchored] = 1
    indptr, eorder = _csr(e_parent, n)
    child_csr = e_child[eorder]
    frontier = np.flatnonzero(root)
    level = 0
    while len(frontier):
        children = _gather_ranges(indptr, child_csr, frontier)
        if not len(children):
            break
        np.subtract.at(indeg, children, 1)
        cand = np.unique(children)
        newly = cand[(indeg[cand] == 0) & (layer[cand] == -1)]
        if not len(newly):
            break
        level += 1
        layer[newly] = level
        frontier = newly

    # Sort edges by child layer; drop edges into never-firing children.
    live = layer[e_child] >= 1
    e_parent, e_child = e_parent[live], e_child[live]
    e_gap, e_anchor, e_delta = e_gap[live], e_anchor[live], e_delta[live]
    esort = np.argsort(layer[e_child], kind="stable")
    e_parent, e_child = e_parent[esort], e_child[esort]
    e_gap, e_anchor, e_delta = e_gap[esort], e_anchor[esort], e_delta[esort]
    child_layers = layer[e_child]
    lvls = np.unique(child_layers)
    starts = np.searchsorted(child_layers, lvls, side="left")
    ends = np.searchsorted(child_layers, lvls, side="right")
    bounds = list(zip(starts.tolist(), ends.tolist()))

    return _Plan(
        root=root, dependent=dependent, anchored=anchored,
        degraded=degraded, root_time=root_time, pred=pred, layer=layer,
        e_parent=e_parent, e_child=e_child, e_gap=e_gap,
        e_anchor=e_anchor, e_delta=e_delta, layer_bounds=bounds,
        dropped_deps=int(dropped.sum()), missing_triggers=missing_triggers,
        marked_degraded=marked_degraded, fallback_captured=fallback,
        demoted=[int(m) for m in demoted],
    )


# --------------------------------------------------------------------------
# Layered DAG pass + interp warp estimation
# --------------------------------------------------------------------------

def _dag_pass(plan: _Plan, cols: _Columns, lat: np.ndarray,
              e_delta: np.ndarray) -> np.ndarray:
    """One generational sweep of the DAG earliest-start rule.

    ``inject[child] = max over edges (deliver(parent) + edge_gap)`` with
    ``deliver(parent) = inject[parent] + lat[parent]`` (latency from the
    previous network scan); anchor edges contribute
    ``inject[parent] + delta`` instead (anchored records fire off their
    anchor's *injection*, exactly like the event engine's ``_send`` hook).
    Parents always sit in earlier generations, so each generation is one
    vectorized ``maximum.at``.
    """
    inject = np.full(cols.n, _NEG, dtype=np.int64)
    inject[plan.root] = plan.root_time[plan.root]
    for a, b in plan.layer_bounds:
        p = plan.e_parent[a:b]
        contrib = np.where(
            plan.e_anchor[a:b],
            inject[p] + e_delta[a:b],
            inject[p] + lat[p] + plan.e_gap[a:b],
        )
        np.maximum.at(inject, plan.e_child[a:b], contrib)
    return inject


def _interp_deltas(plan: _Plan, cols: _Columns,
                   inj_prev: np.ndarray) -> np.ndarray:
    """Anchor deltas rescaled by the node-local time warp (interp policy).

    The event engine estimates each warp online from the two most recent
    dependency-intact injections on the node at the moment the anchor
    fires; here the estimate uses the previous iteration's injection times
    (converging to the same values as the fixed point stabilises).  On the
    first pass ``inj_prev`` is the captured timeline, so every warp is 1.
    """
    e_delta = plan.e_delta.copy()
    anc_pos = np.flatnonzero(plan.e_anchor)
    if not len(anc_pos):
        return e_delta
    intact = ~plan.degraded & (plan.layer >= 0)
    i_idx = np.flatnonzero(intact)
    if not len(i_idx):
        return e_delta
    # Intact entries sorted by (src, prev inject, msg_id).
    io = i_idx[np.lexsort((cols.ids[i_idx], inj_prev[i_idx],
                           cols.src[i_idx]))]
    counts = np.bincount(cols.src[io], minlength=int(cols.src.max()) + 2)
    grp_start = np.concatenate(([0], np.cumsum(counts)))

    # Rank each anchor parent among the intact entries of its node: a
    # merged sort where intact entries (tag 0) precede an equal-keyed query
    # (tag 1), so a parent that is itself intact counts inclusively — the
    # event engine appends the anchor's own history entry before releasing
    # its dependents.
    parents = plan.e_parent[anc_pos]
    q = len(parents)
    all_src = np.concatenate([cols.src[io], cols.src[parents]])
    all_inj = np.concatenate([inj_prev[io], inj_prev[parents]])
    all_id = np.concatenate([cols.ids[io], cols.ids[parents]])
    tag = np.concatenate([np.zeros(len(io), dtype=np.int64),
                          np.ones(q, dtype=np.int64)])
    morder = np.lexsort((tag, all_id, all_inj, all_src))
    cum_intact = np.cumsum(tag[morder] == 0)
    pos_of = np.empty(len(morder), dtype=np.int64)
    pos_of[morder] = np.arange(len(morder))
    rank = cum_intact[pos_of[len(io):]]            # inclusive global rank

    rel = rank - grp_start[cols.src[parents]]      # rank within the node
    ok = rel >= 2
    if not ok.any():
        return e_delta
    i2 = io[grp_start[cols.src[parents[ok]]] + rel[ok] - 1]
    i1 = io[grp_start[cols.src[parents[ok]]] + rel[ok] - 2]
    c1, c2 = cols.t_inject[i1], cols.t_inject[i2]
    t1, t2 = inj_prev[i1], inj_prev[i2]
    lo, hi = _WARP_CLAMP
    warp = np.ones(int(ok.sum()))
    pos_span = c2 > c1
    warp[pos_span] = np.clip(
        (t2[pos_span] - t1[pos_span]) / (c2[pos_span] - c1[pos_span]),
        lo, hi)
    scaled = np.maximum(
        0, np.round(plan.e_delta[anc_pos[ok]] * warp)).astype(np.int64)
    e_delta[anc_pos[ok]] = scaled
    return e_delta


# --------------------------------------------------------------------------
# Damped fixed-point solver (interp policy)
# --------------------------------------------------------------------------

def _solve_relaxation(
    cols: _Columns, model, plan: _Plan, cfg: TraceConfig,
    active_idx: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int, bool]:
    """Layered Gauss-Seidel fixed point for the ``interp`` gap policy.

    The interp warp couples anchor deltas to the *replayed* injection
    timeline of every intact record on the node, so the edge weights are
    not known up front and the one-pass windowed solver does not apply —
    the DAG pass / network scan pair iterates to a fixed point instead.
    Returns ``(inject, deliver, iterations, converged)``.
    """
    lat = model.base_latency().copy()
    prev_inject: Optional[np.ndarray] = None
    inject = np.full(cols.n, _NEG, dtype=np.int64)
    deliver = np.full(cols.n, _NEG, dtype=np.int64)
    inj_for_warp = cols.t_inject
    converged = False
    iterations = 0
    cap = max(cfg.max_iterations, _MIN_ITERATION_CAP)
    while iterations < cap:
        iterations += 1
        e_delta = _interp_deltas(plan, cols, inj_for_warp)
        inject = _dag_pass(plan, cols, lat, e_delta)
        if (prev_inject is not None
                and np.array_equal(inject[active_idx],
                                   prev_inject[active_idx])
                and np.array_equal(lat[active_idx],
                                   deliver[active_idx]
                                   - inject[active_idx])):
            # Fixed point: ``deliver`` came from scanning this very
            # injection vector, the latency estimate has settled onto
            # ``deliver - inject`` exactly, and ``inject`` is the DAG pass
            # of that latency — the three are mutually consistent.
            converged = True
            break
        deliver = model.scan(inject, active_idx)
        # Damped (midpoint) relaxation.  The undamped update rings: the
        # FIFO service order at each resource is re-derived from the
        # injection guesses every scan, so contending messages swap queue
        # positions between passes and the latency feedback oscillates
        # between two slowly-contracting bands instead of settling.
        # Averaging the latency estimate toward the scan's observation
        # kills the ring while preserving every true fixed point (the
        # midpoint of equal values is itself); ``np.round`` rather than
        # floor division so the estimate reaches the target exactly from
        # either side once the scan result is stable.
        target = deliver[active_idx] - inject[active_idx]
        lat[active_idx] = target + np.round(
            (lat[active_idx] - target) / 2.0).astype(np.int64)
        prev_inject = inject
        inj_for_warp = inject
    final = prev_inject if prev_inject is not None else inject
    return final, deliver, iterations, converged


# --------------------------------------------------------------------------
# Exact windowed solver (captured / neighbor_gap policies)
# --------------------------------------------------------------------------

def _solve_windowed(cols: _Columns, model,
                    plan: _Plan) -> tuple[np.ndarray, np.ndarray, int]:
    """One-pass exact solve of the self-correction timing, no iteration.

    The trace DAG and the FIFO channels are solved *together* by advancing
    a safe time horizon:

    * the frontier is every released-but-unserved message (an index
      array);
    * the horizon is ``H = min over frontier f of key(f)`` with
      ``key(f) = max(inject(f), carry[res(f)]) + gain(f) + min_gap(f)``:
      the earliest time any *released descendant* of ``f`` could inject —
      ``f``'s release cannot start before its channel's carried busy time,
      takes at least its occupancy + tail (``gain_lb``), and its cheapest
      outgoing deliver edge adds ``min_gap`` (non-negative, enforced by
      ``TraceRecord``).  Since every not-yet-released message descends
      from an unserved frontier member through deliver edges, everything
      injecting before ``H`` can be served now — the carry term is what
      keeps the window wide (and the round count near the DAG depth) once
      channels saturate and queueing pushes deliveries far past
      injections.  Frontier members with no deliver-edge children release
      nothing and never constrain ``H``;
    * the batch, sorted by ``(inject, msg_id)``, is FIFO-served with the
      closed-form recurrence against per-resource carry state
      (:meth:`serve_batch`); deliveries fire the deliver edges and newly
      released records join the frontier.

    Anchor edges fire at the parent's *injection*, which can precede ``H``
    — so anchored children are released eagerly (with cascading) the
    moment their anchor releases, before any service, keeping the horizon
    bound valid.

    Batches therefore leave in globally non-decreasing ``(inject, msg_id)``
    order — the exact service order of the event engine's fixed point (and
    of the full ``scan``'s lexsort) — so the result is the event-driven
    schedule itself, not an approximation.  Returns
    ``(inject, deliver, rounds)``; never-released records keep ``_NEG``.
    """
    n = cols.n
    inject = np.full(n, _NEG, dtype=np.int64)
    deliver = np.full(n, _NEG, dtype=np.int64)
    contrib = np.where(plan.root, plan.root_time, _NEG)
    prereq = np.zeros(n, dtype=np.int64)
    prereq[plan.dependent] = 1 + (cols.bound_id[plan.dependent] != -1)
    prereq[plan.anchored] = 1
    released = np.zeros(n, dtype=bool)

    # Parent-keyed CSRs over the live edges, split by firing time:
    # anchor edges fire at parent release, deliver edges at parent service.
    anc = plan.e_anchor
    has_anchors = bool(anc.any())
    aptr, aord = _csr(plan.e_parent[anc], n)
    a_child = plan.e_child[anc][aord]
    a_delta = plan.e_delta[anc][aord]
    d_parent, d_gap_raw = plan.e_parent[~anc], plan.e_gap[~anc]
    dptr, dord = _csr(d_parent, n)
    d_child = plan.e_child[~anc][dord]
    d_gap = d_gap_raw[dord]

    def _release(newly: np.ndarray) -> np.ndarray:
        if not has_anchors:
            released[newly] = True
            inject[newly] = contrib[newly]
            return newly
        out = []
        while len(newly):
            released[newly] = True
            inject[newly] = contrib[newly]
            out.append(newly)
            counts = aptr[newly + 1] - aptr[newly]
            ach = _gather_ranges(aptr, a_child, newly)
            if not len(ach):
                break
            adl = _gather_ranges(aptr, a_delta, newly)
            apar = np.repeat(newly, counts)
            np.maximum.at(contrib, ach, inject[apar] + adl)
            np.subtract.at(prereq, ach, 1)
            cand = np.unique(ach)
            newly = cand[(prereq[cand] == 0) & ~released[cand]]
        if not out:
            return np.empty(0, dtype=np.int64)
        return out[0] if len(out) == 1 else np.concatenate(out)

    model.begin()
    # Per-message slack: latency floor + cheapest outgoing deliver-edge
    # gap.  Members with no deliver-edge children release nothing and do
    # not constrain the horizon at all (the _BIG sentinel; anchor children
    # are released eagerly, never through the horizon machinery).  The
    # clamp to >= 1 keeps the minimum-inject member served every round, so
    # progress is guaranteed even against a (validation-bypassing)
    # negative gap.
    _BIG = np.int64(1) << 40
    min_out_gap = np.full(n, _BIG, dtype=np.int64)
    if len(d_parent):
        np.minimum.at(min_out_gap, d_parent, d_gap_raw)
    slack = np.maximum(1, model.gain_lb + min_out_gap)
    edge_idx = np.arange(len(d_child), dtype=np.int64)
    # Channel state for the dynamic horizon key (None for the
    # contention-free circuit model, whose key is static).
    carry = getattr(model, "_carry", None)
    res = model.res if carry is not None else None

    frontier = _release(np.flatnonzero(plan.root))
    rounds = 0
    while len(frontier):
        rounds += 1
        inj_f = inject[frontier]
        floor = (inj_f if carry is None
                 else np.maximum(inj_f, carry[res[frontier]]))
        horizon = (floor + slack[frontier]).min()
        take = inj_f < horizon
        batch = frontier[take]
        frontier = frontier[~take]
        b = batch[np.lexsort((cols.ids[batch], inject[batch]))]
        model.serve_batch(b, inject, deliver)
        counts = dptr[b + 1] - dptr[b]
        eidx = _gather_ranges(dptr, edge_idx, b)
        if not len(eidx):
            continue
        dch = d_child[eidx]
        dpar = np.repeat(b, counts)
        np.maximum.at(contrib, dch, deliver[dpar] + d_gap[eidx])
        np.subtract.at(prereq, dch, 1)
        cand = np.unique(dch)
        newly = _release(cand[(prereq[cand] == 0) & ~released[cand]])
        if len(newly):
            frontier = np.concatenate((frontier, newly))
    return inject, deliver, rounds


# --------------------------------------------------------------------------
# Engine entry point
# --------------------------------------------------------------------------

def _resilience_payload(overlay, cols: _Columns, inject: np.ndarray,
                        active_idx: np.ndarray) -> dict:
    """Penalty accounting + obs export over the final injection schedule
    of the replayed messages (same funnel as the event engine)."""
    from repro.resilience.overlay import resilience_extra

    return resilience_extra(
        overlay,
        inject[active_idx],
        cols.src[active_idx],
        cols.dst[active_idx],
        cols.size[active_idx],
    )


def _result_dicts(cols: _Columns, inject: np.ndarray, deliver: np.ndarray,
                  active_idx: np.ndarray):
    idx_list = active_idx.tolist()
    ids = cols.ids[active_idx].tolist()
    injections = dict(zip(ids, inject[active_idx].tolist()))
    deliveries = dict(zip(ids, deliver[active_idx].tolist()))
    lats = dict(zip(map(cols.keys.__getitem__, idx_list),
                    (deliver[active_idx] - inject[active_idx]).tolist()))
    return injections, deliveries, lats


def replay_trace_generational(
    trace: Trace,
    onoc: OnocConfig,
    cfg: Optional[TraceConfig] = None,
) -> ReplayResult:
    """Vectorized replay of ``trace`` on the optical network ``onoc``.

    Drop-in equivalent of :func:`repro.core.replay.replay_trace` for the
    optical backends (the event engine remains the path for electrical
    targets and network-in-the-loop experiments).  Honours ``cfg.mode``,
    ``keep_dep_fraction`` / ``dep_drop_seed`` (same RNG stream as the event
    engine) and ``degraded_gap_policy``.  ``extra`` reports
    ``{"engine": "generational", "iterations": k, "converged": bool}``.
    """
    cfg = cfg or TraceConfig()
    if onoc.topology not in ONOC_TOPOLOGIES:
        raise ValueError(
            f"generational replay has no model for topology "
            f"{onoc.topology!r} (expected one of {ONOC_TOPOLOGIES})")
    t0 = _walltime.perf_counter()
    cols = _Columns.of(trace)
    if cols.n and onoc.num_nodes <= int(max(cols.src.max(), cols.dst.max())):
        raise ValueError("target network too small for trace endpoints")
    model = _MODELS[onoc.topology](onoc, cols)
    overlay = None
    if cfg.fault_events:
        from repro.resilience.overlay import DegradationOverlay

        overlay = DegradationOverlay.build(
            cfg.fault_events, onoc, cfg.mitigation)
        model.degrade = overlay       # None when the timeseries is empty
    full_idx = np.arange(cols.n, dtype=np.int64)

    if cfg.mode == TRACE_NAIVE:
        inject = cols.t_inject.copy()
        deliver = model.scan(inject, full_idx)
        injections, deliveries, lats = _result_dicts(
            cols, inject, deliver, full_idx)
        extra = {"engine": "generational", "iterations": 1,
                 "converged": True}
        if overlay is not None:
            extra["resilience"] = _resilience_payload(
                overlay, cols, inject, full_idx)
        return ReplayResult(
            mode=TRACE_NAIVE,
            exec_time_estimate=_estimate_exec_time(trace, deliveries),
            latencies_by_key=lats,
            deliveries=deliveries,
            injections=injections,
            messages_replayed=cols.n,
            messages_unreplayed=0,
            wall_clock_s=_walltime.perf_counter() - t0,
            sim_events=0,
            extra=extra,
        )

    plan = _classify(trace, cols, cfg)
    active_idx = np.flatnonzero(plan.layer >= 0)
    interp = cfg.degraded_gap_policy == GAP_POLICY_INTERP

    if not interp:
        # captured / neighbor_gap: every edge weight is known up front, so
        # the windowed solver computes the event engine's schedule exactly
        # in one pass.  ``iterations`` reports the horizon-batch count.
        final_inject, deliver, iterations = _solve_windowed(cols, model, plan)
        converged = True
    else:
        final_inject, deliver, iterations, converged = _solve_relaxation(
            cols, model, plan, cfg, active_idx)

    injections, deliveries, lats = _result_dicts(
        cols, final_inject, deliver, active_idx)

    stalled_mask = plan.dependent & (plan.layer == -1)
    stalled_all = np.sort(cols.ids[stalled_mask]).tolist()
    stalled_on: dict[int, list[int]] = {}
    for mid in stalled_all[:_STALL_DETAIL_CAP]:
        i = int(np.flatnonzero(cols.ids == mid)[0])
        stalled_on[mid] = [
            int(t) for t in (cols.cause_id[i], cols.bound_id[i])
            if t != -1 and int(t) not in deliveries
        ]
    rederived_ids = tuple(sorted(
        cols.ids[plan.anchored & (plan.layer >= 0)].tolist()))

    exposure = FaultExposure(
        policy=cfg.degraded_gap_policy,
        ablated=plan.dropped_deps,
        marked_degraded=plan.marked_degraded,
        missing_triggers=plan.missing_triggers,
        rederived=len(rederived_ids),
        fallback_captured=plan.fallback_captured,
        rederived_msg_ids=rederived_ids,
    )
    rederive = cfg.degraded_gap_policy != GAP_POLICY_CAPTURED
    extra = {"engine": "generational", "iterations": iterations,
             "converged": converged}
    if overlay is not None:
        extra["resilience"] = _resilience_payload(
            overlay, cols, final_inject, active_idx)
    return ReplayResult(
        mode=TRACE_SELF_CORRECTING,
        exec_time_estimate=_estimate_exec_time(
            trace, deliveries, rederive_markers=rederive),
        latencies_by_key=lats,
        deliveries=deliveries,
        injections=injections,
        messages_replayed=len(active_idx),
        messages_unreplayed=cols.n - len(active_idx),
        wall_clock_s=_walltime.perf_counter() - t0,
        sim_events=0,
        dropped_deps=plan.dropped_deps,
        demoted_cyclic=len(plan.demoted),
        stalled_count=len(stalled_all),
        stalled_msg_ids=stalled_all[:_STALL_DETAIL_CAP],
        stalled_on=stalled_on,
        rederived_records=len(rederived_ids),
        fault_exposure=exposure,
        extra=extra,
    )


# --------------------------------------------------------------------------
# Out-of-core streaming replay (binary traces)
# --------------------------------------------------------------------------

class _StreamScanner:
    """Chunk-at-a-time network scan with per-resource carry state.

    The FIFO closed form extends across chunk boundaries by carrying each
    resource's last release time (and, for the crossbar, the token's
    parking node) — so replaying a binary trace needs only one chunk of
    columns plus O(resources) state resident at a time.  Assumes records
    arrive sorted by ``(t_inject, msg_id)``, which canonical captures are.
    """

    def __init__(self, cfg: OnocConfig) -> None:
        self.cfg = cfg
        n = cfg.num_nodes
        self.topology = cfg.topology
        if cfg.topology == ONOC_CIRCUIT_MESH:
            self.side = cfg.mesh_side
            link = mesh_link_length_cm(cfg)
            max_h = max(1, 2 * (self.side - 1))
            self.prop_h = np.zeros(max_h + 1, dtype=np.int64)
            for h in range(1, max_h + 1):
                self.prop_h[h] = cfg.propagation_cycles(h * link)
            return
        layout = SerpentineLayout(cfg)
        self.prop = np.zeros((n, n), dtype=np.int64)
        for s in range(n):
            for d in range(n):
                if s != d:
                    self.prop[s, d] = cfg.propagation_cycles(
                        layout.distance_cm(s, d))
        if cfg.topology == ONOC_AWGR:
            self.carry = np.zeros(n * n, dtype=np.int64)
        else:
            self.carry = np.zeros(n, dtype=np.int64)
        if cfg.topology == ONOC_CROSSBAR:
            self.travel = np.zeros(n, dtype=np.int64)
            for h in range(1, n):
                self.travel[h] = (cfg.propagation_cycles(h * layout.spacing_cm)
                                  + h * cfg.token_hop_cycles)
            self.token_at = np.arange(n, dtype=np.int64)

    def _ser(self, size: np.ndarray) -> np.ndarray:
        if self.topology == ONOC_AWGR:
            return _awgr_lane_ser_vector(self.cfg, size)
        return _ser_vector(self.cfg, size)

    def scan_chunk(self, mid: np.ndarray, src: np.ndarray, dst: np.ndarray,
                   size: np.ndarray, inj: np.ndarray) -> np.ndarray:
        """Deliver times for one chunk (in the chunk's record order)."""
        cfg = self.cfg
        if self.topology == ONOC_CIRCUIT_MESH:
            xs, ys = src % self.side, src // self.side
            xd, yd = dst % self.side, dst // self.side
            hops = np.abs(xs - xd) + np.abs(ys - yd)
            r, lnk = cfg.setup_router_latency, cfg.setup_link_latency
            return (inj + r + hops * (2 * lnk + r) + 1
                    + 2 * cfg.conversion_cycles
                    + _ser_vector(cfg, size) + self.prop_h[hops])
        if self.topology == ONOC_SWMR:
            res = src
        elif self.topology == ONOC_AWGR:
            res = src * cfg.num_nodes + dst
        else:
            res = dst
        ser = self._ser(size)
        order = np.lexsort((mid, inj, res))
        res_s = res[order]
        seg_start = np.empty(len(order), dtype=bool)
        seg_start[0] = True
        seg_start[1:] = res_s[1:] != res_s[:-1]
        if self.topology == ONOC_CROSSBAR:
            src_s = src[order]
            prev = np.empty_like(src_s)
            prev[1:] = src_s[:-1]
            prev[seg_start] = self.token_at[res_s[seg_start]]
            hops = (src_s - prev) % cfg.num_nodes
            occ_s = self.travel[hops] + ser[order]
        else:
            occ_s = ser[order]
        release_s = _release_sorted(inj[order], occ_s, seg_start,
                                    carry_s=self.carry[res_s])
        # Carry each resource's tail state into the next chunk.
        tails = np.flatnonzero(
            np.concatenate((seg_start[1:], [True])))
        self.carry[res_s[tails]] = release_s[tails]
        if self.topology == ONOC_CROSSBAR:
            self.token_at[res_s[tails]] = src_s[tails]
        deliver = np.empty(len(order), dtype=np.int64)
        deliver[order] = (release_s + self.prop[src[order], dst[order]]
                          + 2 * cfg.conversion_cycles)
        return deliver


def stream_naive_summary(path, onoc: OnocConfig) -> dict:
    """Naive-replay a *binary* trace file chunk by chunk, out of core.

    Returns aggregate results (exec-time estimate, message count, mean
    latency) computed with the same closed-form network scans as the
    generational engine, while keeping only one record chunk plus
    O(resources) carry state in memory — the basis of the sublinear-RSS
    claim benchmarked by ``benchmarks/bench_replay_vector.py``.
    """
    from repro.core import tracebin

    if onoc.topology not in ONOC_TOPOLOGIES:
        raise ValueError(
            f"streaming replay has no model for topology {onoc.topology!r}")
    t0 = _walltime.perf_counter()
    summary = tracebin.read_summary(path)
    markers = summary["markers"]
    marker_causes = np.asarray(
        sorted({m.cause_id for m in markers if m.cause_id != -1}),
        dtype=np.int64)
    cause_deliveries: dict[int, int] = {}

    scanner = _StreamScanner(onoc)
    messages = 0
    total_bytes = 0
    latency_sum = 0
    max_deliver = 0
    max_endpoint = -1
    for chunk in tracebin.iter_chunks(path):
        mid, src, dst = chunk.msg_id, chunk.src, chunk.dst
        size, inj = chunk.size_bytes, chunk.t_inject
        hi = int(max(src.max(), dst.max()))
        max_endpoint = max(max_endpoint, hi)
        if onoc.num_nodes <= hi:
            raise ValueError("target network too small for trace endpoints")
        deliver = scanner.scan_chunk(mid, src, dst, size, inj)
        messages += len(mid)
        total_bytes += int(size.sum())
        latency_sum += int((deliver - inj).sum())
        if len(deliver):
            max_deliver = max(max_deliver, int(deliver.max()))
        if len(marker_causes):
            hit = np.isin(mid, marker_causes)
            for m, d in zip(mid[hit].tolist(), deliver[hit].tolist()):
                cause_deliveries[m] = d

    best = 0
    for m in markers:
        if m.cause_id == -1:
            t = m.t_finish
        else:
            d = cause_deliveries.get(m.cause_id)
            t = d + m.gap if d is not None else m.t_finish
        best = max(best, t)
    if not markers and messages:
        best = max_deliver
    return {
        "mode": TRACE_NAIVE,
        "engine": "generational-streaming",
        "messages": messages,
        "bytes": total_bytes,
        "exec_time_estimate": best,
        "mean_latency": (latency_sum / messages) if messages else 0.0,
        "max_deliver": max_deliver,
        "captured_exec_time": summary["exec_time"],
        "chunks": summary["chunks"],
        "wall_clock_s": _walltime.perf_counter() - t0,
    }
