"""Trace compaction (extension): shrink traces without losing the timeline.

Dependency-annotated traces are bigger than timestamp-only traces (the paper
trades space for accuracy).  Two sound compactions claw much of that back by
exploiting the dependency graph itself:

* :func:`filter_leaf_control` — drop *leaf* control messages: records that
  nothing depends on (no dependent record, no end marker).  Acks and
  crossing writebacks dominate this class.  Dropping them cannot break any
  replayed dependency; the cost is slightly lower modelled contention.
* :func:`coalesce_leaves` — merge bursts of leaf records on the same
  (src, dst, kind) flow sharing the same cause within a time window into one
  larger message (classic trace coalescing, e.g. cache-line-granularity
  write bursts).

Both return a *valid* :class:`~repro.core.trace.Trace` (``validate()`` is
re-run), so compacted traces flow through every replayer unchanged.  The
accuracy cost vs compression ratio is measured by
``benchmarks/bench_fig9_compaction.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.core.trace import Trace, TraceRecord
from repro.system.protocol import CTRL_KINDS


@dataclass(frozen=True)
class CompactionStats:
    """What a compaction pass did."""

    records_before: int
    records_after: int
    bytes_before: int
    bytes_after: int

    @property
    def record_ratio(self) -> float:
        """records_after / records_before (1.0 = no compaction)."""
        return (self.records_after / self.records_before
                if self.records_before else 1.0)

    @property
    def byte_ratio(self) -> float:
        return (self.bytes_after / self.bytes_before
                if self.bytes_before else 1.0)


def _referenced_ids(trace: Trace) -> set[int]:
    """msg_ids something depends on (records or end markers)."""
    refs = {r.cause_id for r in trace.records if r.cause_id != -1}
    refs |= {m.cause_id for m in trace.end_markers if m.cause_id != -1}
    return refs


def leaf_records(trace: Trace) -> list[TraceRecord]:
    """Records with no dependents anywhere."""
    refs = _referenced_ids(trace)
    return [r for r in trace.records if r.msg_id not in refs]


def filter_leaf_control(trace: Trace) -> tuple[Trace, CompactionStats]:
    """Drop leaf *control* messages (acks, stale writebacks, ...).

    Data-bearing leaves are kept: they model real bandwidth; control leaves
    are a few bytes each and only add arbitration noise.
    """
    refs = _referenced_ids(trace)
    kept = [
        r for r in trace.records
        if r.msg_id in refs or r.kind not in CTRL_KINDS
    ]
    out = Trace(records=kept, end_markers=list(trace.end_markers),
                exec_time=trace.exec_time,
                meta={**trace.meta, "compaction": "filter_leaf_control"})
    out.validate()
    return out, CompactionStats(
        records_before=len(trace.records),
        records_after=len(kept),
        bytes_before=trace.bytes_total(),
        bytes_after=out.bytes_total(),
    )


def coalesce_leaves(trace: Trace, window: int = 32) -> tuple[Trace, CompactionStats]:
    """Merge leaf-record bursts per (src, dst, kind, cause) within ``window``.

    The merged record keeps the first member's identity (msg_id, key,
    injection time, cause, gap) and accumulates sizes; its delivery time is
    the latest member's.  Because members are leaves, no other record's
    dependency needs rewriting, and validity is preserved by construction.
    """
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    refs = _referenced_ids(trace)
    out_records: list[TraceRecord] = []
    # Open group per flow: (src, dst, kind, cause_id) -> merged-in-progress.
    open_groups: dict[tuple[int, int, str, int], TraceRecord] = {}

    def flush(key: tuple[int, int, str, int]) -> None:
        rec = open_groups.pop(key, None)
        if rec is not None:
            out_records.append(rec)

    for r in sorted(trace.records, key=lambda r: (r.t_inject, r.msg_id)):
        if r.msg_id in refs:
            out_records.append(r)
            continue
        key = (r.src, r.dst, r.kind, r.cause_id)
        group = open_groups.get(key)
        if group is not None and r.t_inject - group.t_inject <= window:
            open_groups[key] = dc_replace(
                group,
                size_bytes=group.size_bytes + r.size_bytes,
                t_deliver=max(group.t_deliver, r.t_deliver),
            )
        else:
            flush(key)
            open_groups[key] = r
    for key in list(open_groups):
        flush(key)

    out_records.sort(key=lambda r: (r.t_inject, r.msg_id))
    out = Trace(records=out_records, end_markers=list(trace.end_markers),
                exec_time=trace.exec_time,
                meta={**trace.meta, "compaction": f"coalesce_leaves(w={window})"})
    out.validate()
    return out, CompactionStats(
        records_before=len(trace.records),
        records_after=len(out_records),
        bytes_before=trace.bytes_total(),
        bytes_after=out.bytes_total(),
    )
