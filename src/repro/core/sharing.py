"""Sharing-pattern classification from a trace.

Coherence studies bucket cache lines by how they are shared — private,
read-only, read-shared, producer-consumer, migratory — because each bucket
responds differently to interconnect changes (migratory lines ride the
FETCH/WB critical chain; read-shared lines fan out).  The trace already
carries everything needed: request records name their line in the semantic
key and their requester as the source.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from enum import Enum

from repro.core.trace import Trace
from repro.net import MSG_REQ_READ, MSG_REQ_WRITE


class SharingClass(str, Enum):
    """Line-sharing buckets (standard taxonomy)."""

    PRIVATE = "private"                  # one core only
    READ_ONLY = "read_only"              # many readers, no writer
    PRODUCER_CONSUMER = "producer_consumer"  # stable writer(s), other readers
    MIGRATORY = "migratory"              # write ownership hops between cores


@dataclass(frozen=True)
class LineSharing:
    """Observed access pattern of one line."""

    line: int
    readers: frozenset[int]
    writers: frozenset[int]
    reads: int
    writes: int
    writer_changes: int          # times consecutive writes came from new cores
    sharing_class: SharingClass


def _classify(readers: set[int], writers: set[int], reads: int,
              writes: int, writer_changes: int) -> SharingClass:
    cores = readers | writers
    if len(cores) <= 1:
        return SharingClass.PRIVATE
    if not writers:
        return SharingClass.READ_ONLY
    if len(writers) == 1:
        return SharingClass.PRODUCER_CONSUMER
    # Multiple writers: migratory if ownership visibly hops.
    if writer_changes >= len(writers) - 1:
        return SharingClass.MIGRATORY
    return SharingClass.PRODUCER_CONSUMER


def classify_lines(trace: Trace) -> dict[int, LineSharing]:
    """Per-line sharing classification from the trace's request records.

    Only GETS/GETX records are consulted (they carry the requesting core as
    ``src`` and the line in the semantic key); protocol-internal messages
    (fetches, acks, memory traffic) are derived effects and would double
    count.
    """
    readers: dict[int, set[int]] = defaultdict(set)
    writers: dict[int, set[int]] = defaultdict(set)
    reads: dict[int, int] = defaultdict(int)
    writes: dict[int, int] = defaultdict(int)
    last_writer: dict[int, int] = {}
    writer_changes: dict[int, int] = defaultdict(int)

    for r in sorted(trace.records, key=lambda r: (r.t_inject, r.msg_id)):
        if r.kind == MSG_REQ_READ:
            line = r.key[3]
            readers[line].add(r.src)
            reads[line] += 1
        elif r.kind == MSG_REQ_WRITE:
            line = r.key[3]
            writers[line].add(r.src)
            writes[line] += 1
            prev = last_writer.get(line)
            if prev is not None and prev != r.src:
                writer_changes[line] += 1
            last_writer[line] = r.src

    out: dict[int, LineSharing] = {}
    for line in sorted(readers.keys() | writers.keys()):
        out[line] = LineSharing(
            line=line,
            readers=frozenset(readers[line]),
            writers=frozenset(writers[line]),
            reads=reads[line],
            writes=writes[line],
            writer_changes=writer_changes[line],
            sharing_class=_classify(readers[line], writers[line],
                                    reads[line], writes[line],
                                    writer_changes[line]),
        )
    return out


def sharing_summary(trace: Trace) -> dict[str, int]:
    """Lines per sharing class (for table printing)."""
    counts: dict[str, int] = {c.value: 0 for c in SharingClass}
    for info in classify_lines(trace).values():
        counts[info.sharing_class.value] += 1
    return counts
