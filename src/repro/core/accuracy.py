"""Accuracy evaluation: replay vs execution-driven reference.

The reference is itself captured with :class:`~repro.core.capture.TraceCapture`
on the *target* network, so both sides carry semantic message keys and can be
matched pairwise even though their raw message ids differ.
"""

from __future__ import annotations

from repro.core.replay import ReplayResult
from repro.core.trace import SemanticKey, Trace, latencies_by_key
from repro.stats import ErrorReport


def reference_latencies(reference_trace: Trace) -> dict[SemanticKey, int]:
    """Per-message latency map of an execution-driven reference run."""
    return latencies_by_key(reference_trace.records)


def compare_to_reference(
    replay: ReplayResult, reference_trace: Trace
) -> ErrorReport:
    """Exec-time error and per-message latency MAPE of a replay.

    Messages present on only one side (protocol races or dependency-edge
    ablation) count as unmatched and are excluded from the MAPE.
    """
    ref = reference_latencies(reference_trace)
    return ErrorReport.compare(
        replay_exec_time=replay.exec_time_estimate,
        ref_exec_time=reference_trace.exec_time,
        replay_latencies=replay.latencies_by_key,
        ref_latencies=ref,
    )
