"""Trace replayers: naive (timestamped) and self-correcting (the paper's).

Both drive a trace into any :class:`repro.net.NetworkAdapter`:

* **Naive** replays the captured absolute injection times.  On a network
  different from the capture network this embeds the *capture* network's
  timing into the workload — the inaccuracy the paper identifies.
* **Self-correcting** re-derives each injection time online with the DAG
  earliest-start rule: a message is injected at
  ``max over trigger edges of (deliver(trigger) + edge_gap)`` evaluated in
  **the current simulation** (one edge for ordinary records; a second,
  ``bound``, edge for sends released by the later of two arrivals, such as
  queued directory requests).  The timeline thus continuously corrects
  itself to the target network.  Roots (no cause) keep their captured
  offsets.

The execution-time estimate in both cases applies the per-core end markers
to the *observed* deliveries: ``finish(core) = deliver(last_cause) + gap``.
"""

from __future__ import annotations

import time as _walltime
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.config import (
    ENGINE_GENERATIONAL,
    GAP_POLICIES,
    GAP_POLICY_CAPTURED,
    GAP_POLICY_INTERP,
    GAP_POLICY_NEIGHBOR,
    TRACE_NAIVE,
    TRACE_SELF_CORRECTING,
    TraceConfig,
)
from repro.engine import Simulator
from repro.net import Message, NetworkAdapter
from repro.obs.probes import replay_scope, timeline_or_none
from repro.core.trace import (
    DEGRADED_RECORDS_META_KEY,
    SemanticKey,
    Trace,
    TraceRecord,
)

# A factory producing a fresh (simulator, network) pair per replay pass.
NetworkFactory = Callable[[], tuple[Simulator, NetworkAdapter]]


@dataclass(frozen=True)
class FaultExposure:
    """How much trace damage a self-correcting replay was exposed to, and
    what the replayer did about it.

    * ``policy`` — the ``degraded_gap_policy`` in effect (see
      :class:`repro.config.TraceConfig`);
    * ``ablated`` — dependency edges discarded by ``keep_dep_fraction``;
    * ``marked_degraded`` — records flagged in the trace meta under
      ``DEGRADED_RECORDS_META_KEY`` by the fault-injection layer;
    * ``missing_triggers`` — kept records whose cause/bound msg_id is absent
      from the trace (record loss upstream);
    * ``rederived`` / ``rederived_msg_ids`` — degraded records whose
      injection time was re-derived from a surviving neighbor anchor
      (empty under the ``captured`` policy);
    * ``fallback_captured`` — degraded records with no usable anchor (first
      record on their node) that fell back to the captured timestamp.
    """

    policy: str
    ablated: int = 0
    marked_degraded: int = 0
    missing_triggers: int = 0
    rederived: int = 0
    fallback_captured: int = 0
    rederived_msg_ids: tuple[int, ...] = ()


@dataclass
class ReplayResult:
    """Outcome of one replay pass.

    The self-correction diagnostics are first-class typed fields (they were
    ad-hoc ``extra`` keys before the validation subsystem landed and started
    asserting them — see :mod:`repro.validate.invariants`):

    * ``dropped_deps`` — dependency edges discarded by ``keep_dep_fraction``
      ablation (those records fall back to timestamp-driven roots);
    * ``demoted_cyclic`` — records demoted to timestamp-driven roots because
      their dependency edges formed a cycle (degenerate, unvalidated traces
      only; a validated :class:`Trace` is guaranteed acyclic);
    * ``stalled_count`` / ``stalled_msg_ids`` / ``stalled_on`` — records whose
      trigger messages never delivered (msg-id lists are capped at
      ``SelfCorrectingReplayer._STALL_DETAIL_CAP`` entries; the count is not).

    ``extra`` remains for experiment-level annotations (e.g. the iterative
    refiner's convergence history).
    """

    mode: str
    exec_time_estimate: int
    latencies_by_key: dict[SemanticKey, int]
    deliveries: dict[int, int]              # msg_id -> deliver time
    injections: dict[int, int]              # msg_id -> inject time
    messages_replayed: int
    messages_unreplayed: int
    wall_clock_s: float
    sim_events: int
    dropped_deps: int = 0
    demoted_cyclic: int = 0
    stalled_count: int = 0
    stalled_msg_ids: list[int] = field(default_factory=list)
    stalled_on: dict[int, list[int]] = field(default_factory=dict)
    rederived_records: int = 0
    fault_exposure: Optional[FaultExposure] = None
    extra: dict = field(default_factory=dict)


def _make_message(r: TraceRecord) -> Message:
    """Rebuild the wire message for a record (id preserved for matching)."""
    return Message(r.src, r.dst, r.size_bytes, r.kind, payload=r.key,
                   msg_id=r.msg_id)


def _estimate_exec_time(trace: Trace, deliveries: dict[int, int],
                        rederive_markers: bool = False) -> int:
    """Apply end markers to observed deliveries.

    A marker whose cause message was never delivered (trace damage, record
    loss) falls back to the captured finish time — unless
    ``rederive_markers``: then the finish is re-derived from the latest
    surviving delivery to that core, keeping the captured tail offset
    (``t_finish - captured deliver``), mirroring the neighbor-anchor policy
    the degraded replayer applies to injections.
    """
    best = 0
    node_last: dict[int, TraceRecord] = {}
    if rederive_markers:
        for r in trace.records:
            if r.msg_id not in deliveries:
                continue
            prev = node_last.get(r.dst)
            if prev is None or (r.t_deliver, r.msg_id) > (prev.t_deliver,
                                                          prev.msg_id):
                node_last[r.dst] = r
    for m in trace.end_markers:
        if m.cause_id == -1:
            t = m.t_finish
        else:
            d = deliveries.get(m.cause_id)
            if d is not None:
                t = d + m.gap
            elif rederive_markers and m.node in node_last:
                anchor = node_last[m.node]
                t = max(0, deliveries[anchor.msg_id]
                        + (m.t_finish - anchor.t_deliver))
            else:
                t = m.t_finish
        best = max(best, t)
    if not trace.end_markers and deliveries:
        best = max(deliveries.values())
    return best


class _ReplayerBase:
    """Shared delivery bookkeeping."""

    mode = "base"

    def __init__(self, trace: Trace, sim: Simulator, net: NetworkAdapter) -> None:
        if net.num_nodes <= max(
            (max(r.src, r.dst) for r in trace.records), default=0
        ):
            raise ValueError("target network too small for trace endpoints")
        self.trace = trace
        self.sim = sim
        self.net = net
        self.deliveries: dict[int, int] = {}
        self.injections: dict[int, int] = {}
        # Self-correcting runs under a non-captured degraded-gap policy
        # re-derive end markers whose cause never delivered (see
        # ``_estimate_exec_time``); all other replayers keep the captured
        # fallback.
        self._rederive_markers = False
        # repro.obs scope (None while instrumentation is disabled).
        self._obs = replay_scope(self.mode)
        net.set_delivery_handler(self._on_deliver)

    def _send(self, r: TraceRecord) -> None:
        self.injections[r.msg_id] = self.sim.now
        self.net.send(_make_message(r))

    def _on_deliver(self, msg: Message) -> None:
        self.deliveries[msg.id] = msg.deliver_time

    def _result(self, wall: float, **diagnostics) -> ReplayResult:
        key_of = {r.msg_id: r.key for r in self.trace.records}
        lats = {
            key_of[mid]: t - self.injections[mid]
            for mid, t in self.deliveries.items()
        }
        result = ReplayResult(
            mode=self.mode,
            exec_time_estimate=_estimate_exec_time(
                self.trace, self.deliveries,
                rederive_markers=self._rederive_markers),
            latencies_by_key=lats,
            deliveries=dict(self.deliveries),
            injections=dict(self.injections),
            messages_replayed=len(self.injections),
            messages_unreplayed=len(self.trace.records) - len(self.injections),
            wall_clock_s=wall,
            sim_events=self.sim.event_count,
            **diagnostics,
        )
        if self._obs is not None:
            self._publish_metrics(result)
        return result

    def _publish_metrics(self, result: ReplayResult) -> None:
        """Promote replay counters into the ``replay.<mode>`` obs scope."""
        scope = self._obs
        scope.counter("messages_replayed").inc(result.messages_replayed)
        scope.counter("messages_unreplayed").inc(result.messages_unreplayed)
        scope.counter("sim_events").inc(result.sim_events)
        scope.distribution("wall_clock_s").observe(result.wall_clock_s)


class NaiveReplayer(_ReplayerBase):
    """Replay captured absolute timestamps (baseline trace methodology)."""

    mode = TRACE_NAIVE

    def run(self) -> ReplayResult:
        t0 = _walltime.perf_counter()
        self.sim.schedule_many(
            (r.t_inject, self._send, (r,)) for r in self.trace.records)
        self.sim.run()
        return self._result(_walltime.perf_counter() - t0)


class FixedScheduleReplayer(_ReplayerBase):
    """Replay an explicit per-message schedule (used by the offline
    iterative refinement loop)."""

    mode = "fixed_schedule"

    def __init__(self, trace: Trace, sim: Simulator, net: NetworkAdapter,
                 schedule: dict[int, int]) -> None:
        super().__init__(trace, sim, net)
        missing = [r.msg_id for r in trace.records if r.msg_id not in schedule]
        if missing:
            raise ValueError(f"schedule missing msg_ids {missing[:5]}...")
        self.schedule = schedule

    def run(self) -> ReplayResult:
        t0 = _walltime.perf_counter()
        self.sim.schedule_many(
            (self.schedule[r.msg_id], self._send, (r,))
            for r in self.trace.records)
        self.sim.run()
        return self._result(_walltime.perf_counter() - t0)


def _cycle_members(nodes, out_edges) -> set:
    """Nodes of ``nodes`` on a dependency cycle (including self-loops).

    Iterative Tarjan SCC over ``out_edges(node)``; a node is on a cycle iff
    its strongly connected component has more than one member or it has a
    self-edge.
    """
    index: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    scc_stack: list = []
    members: set = set()
    counter = 0
    for start in nodes:
        if start in index:
            continue
        work = [(start, iter(out_edges(start)))]
        while work:
            node, it = work[-1]
            if node not in index:
                index[node] = lowlink[node] = counter
                counter += 1
                scc_stack.append(node)
                on_stack.add(node)
            advanced = False
            for succ in it:
                if succ == node:
                    members.add(node)          # self-loop
                elif succ not in index:
                    work.append((succ, iter(out_edges(succ))))
                    advanced = True
                    break
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    w = scc_stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1:
                    members.update(scc)
    return members


class SelfCorrectingReplayer(_ReplayerBase):
    """The paper's model: online dependency-driven injection.

    ``keep_dep_fraction < 1`` ablates the model by demoting a random subset
    of records to timestamp-driven roots (Fig. 7's sensitivity axis).

    **Degraded records** — ablated records, records flagged by the
    fault-injection layer (``DEGRADED_RECORDS_META_KEY`` in the trace meta),
    and records whose trigger msg_ids are missing from the trace — are
    handled per ``degraded_gap_policy``:

    * ``captured`` — the historical behaviour: ablated/flagged records
      replay their captured absolute timestamp (re-anchoring the schedule to
      the *capture* network — the PR-4 cliff), missing-trigger records stall
      with diagnostics.
    * ``neighbor_gap`` (default) — a degraded record anchors to its
      predecessor on the same source node in captured order and injects at
      ``replayed_inject(anchor) + captured inter-send delta``.  The delta is
      network-independent local behaviour, so the record rides the corrected
      schedule instead of dragging it back to capture time.  With *every*
      record degraded this telescopes to exactly naive replay — the graceful
      endpoint of the severity curve.
    * ``interp`` — like ``neighbor_gap`` but the delta is scaled by a
      node-local time-warp estimated from the two most recent
      dependency-intact injections on that node (clamped to ``[0.25, 4]``),
      interpolating the anchor chain onto the corrected timeline.

    Degraded records with no predecessor on their node fall back to the
    captured timestamp (counted in ``FaultExposure.fallback_captured``).
    Demoted cycle members keep the captured fallback under every policy.
    """

    mode = TRACE_SELF_CORRECTING

    #: Clamp for the ``interp`` policy's node-local time-warp estimate.
    _WARP_CLAMP = (0.25, 4.0)

    def __init__(
        self,
        trace: Trace,
        sim: Simulator,
        net: NetworkAdapter,
        keep_dep_fraction: float = 1.0,
        dep_drop_seed: int = 12345,
        degraded_gap_policy: str = GAP_POLICY_NEIGHBOR,
        awgr_occupancy_hint: bool = False,
    ) -> None:
        super().__init__(trace, sim, net)
        # Occupancy hint: reserve the (src, dst) λ-lane at dependency-release
        # time rather than injection time, so release *order* — the proxy the
        # capture network cannot provide — binds lane occupancy the way the
        # execution-driven transaction order does.  Only meaningful on
        # backends with dedicated per-pair lanes; a no-op elsewhere.
        self._lane_ready: dict[tuple[int, int], int] = {}
        self._lane_ser = (
            net.lane_serialization_cycles
            if awgr_occupancy_hint
            and hasattr(net, "lane_serialization_cycles")
            else None)
        self._hint_deferred = 0
        self._hint_deferred_cycles = 0
        if not 0.0 <= keep_dep_fraction <= 1.0:
            raise ValueError(f"keep_dep_fraction out of range: {keep_dep_fraction}")
        if degraded_gap_policy not in GAP_POLICIES:
            raise ValueError(
                f"unknown degraded_gap_policy {degraded_gap_policy!r} "
                f"(expected one of {GAP_POLICIES})")
        self._gap_policy = degraded_gap_policy
        use_anchor = degraded_gap_policy != GAP_POLICY_CAPTURED
        self._rederive_markers = use_anchor
        self._dependents: dict[int, list[TraceRecord]] = {}
        self._roots: list[TraceRecord] = []
        # Records waiting on both a cause and a bound: remaining trigger
        # count and the running earliest-start maximum.
        self._prereqs_left: dict[int, int] = {}
        self._start_time: dict[int, int] = {}
        # Degraded-record machinery: anchor msg_id -> [(record, captured
        # inter-send delta)], plus interp's per-node (captured, replayed)
        # injection history for intact records.
        self._anchored: dict[int, list[tuple[TraceRecord, int]]] = {}
        self._anchored_ids: set[int] = set()
        self._degraded_ids: set[int] = set()
        self._warp_hist: dict[int, list[tuple[int, int]]] = {}
        self._fallback_captured = 0

        by_id = {r.msg_id: r for r in trace.records}
        marked = set(trace.meta.get(DEGRADED_RECORDS_META_KEY, ()))
        self._marked_degraded = len(marked & set(by_id))
        drop_rng = np.random.default_rng(dep_drop_seed)
        dropped = 0
        missing_triggers = 0
        degraded: list[TraceRecord] = []
        for r in trace.records:
            if r.cause_id != -1:
                keep = (keep_dep_fraction >= 1.0
                        or drop_rng.random() < keep_dep_fraction)
                if not keep:
                    dropped += 1
                    (degraded if use_anchor else self._roots).append(r)
                    continue
                missing = any(t != -1 and t not in by_id
                              for t in (r.cause_id, r.bound_id))
                if missing:
                    missing_triggers += 1
                if use_anchor and (missing or r.msg_id in marked):
                    degraded.append(r)
                    continue
                # captured policy keeps today's behaviour: kept records with
                # missing triggers enter the machinery and stall (diagnosed).
                self._dependents.setdefault(r.cause_id, []).append(r)
                prereqs = 1
                if r.bound_id != -1:
                    self._dependents.setdefault(r.bound_id, []).append(r)
                    prereqs = 2
                self._prereqs_left[r.msg_id] = prereqs
            elif use_anchor and r.msg_id in marked:
                degraded.append(r)
            else:
                self._roots.append(r)
        self.dropped_deps = dropped
        self._missing_triggers = missing_triggers
        self._assign_anchors(degraded)
        self.demoted_cyclic = self._demote_cycles()
        # Bound once: per-correction timeline tracing (opt-in, None normally).
        self._tl = timeline_or_none()

    def _assign_anchors(self, degraded: list[TraceRecord]) -> None:
        """Anchor each degraded record to its predecessor on the same source
        node in captured ``(t_inject, msg_id)`` order.

        The predecessor may itself be degraded — the chain telescopes, which
        is exactly what makes the all-degraded limit coincide with naive
        replay.  A degraded record with no predecessor becomes a captured-
        timestamp root (``fallback_captured``).
        """
        if not degraded:
            return
        self._degraded_ids = {r.msg_id for r in degraded}
        prev: dict[int, TraceRecord] = {}
        for r in sorted(self.trace.records,
                        key=lambda r: (r.t_inject, r.msg_id)):
            if r.msg_id in self._degraded_ids:
                p = prev.get(r.src)
                if p is None:
                    self._fallback_captured += 1
                    self._roots.append(r)
                else:
                    self._anchored.setdefault(p.msg_id, []).append(
                        (r, r.t_inject - p.t_inject))
                    self._anchored_ids.add(r.msg_id)
            prev[r.src] = r

    def _demote_cycles(self) -> list[int]:
        """Demote dependency-cycle members to timestamp-driven roots.

        A validated :class:`Trace` is acyclic, but this replayer also accepts
        hand-built traces (ablation studies, adversarial tests).  A cycle of
        zero-latency records would wait on itself forever and surface only as
        an opaque ``messages_unreplayed`` count; instead, every record on a
        cycle falls back to its captured timestamp — the same fallback
        ``keep_dep_fraction`` ablation uses — and is reported in
        ``ReplayResult.demoted_cyclic``.  Records stalled on triggers that
        are *missing from the trace* are left alone: that is a diagnosable
        data bug, reported via the ``stalled_*`` fields.
        """
        by_id = {r.msg_id: r for r in self.trace.records}
        # Fixpoint: which dependents can ever fire given the roots.
        left = dict(self._prereqs_left)
        frontier = [r.msg_id for r in self._roots]
        while frontier:
            mid = frontier.pop()
            for dep in self._dependents.get(mid, ()):
                left[dep.msg_id] -= 1
                if left[dep.msg_id] == 0:
                    frontier.append(dep.msg_id)
        blocked = {mid for mid, n in left.items() if n > 0}
        if not blocked:
            return []
        # Blocked records tainted by a trigger missing from the trace stall
        # legitimately; propagate the taint through their dependents.
        taint: set[int] = set()
        stack = [
            mid for mid in blocked
            if any(t != -1 and t not in by_id
                   for t in (by_id[mid].cause_id, by_id[mid].bound_id))
        ]
        while stack:
            mid = stack.pop()
            if mid in taint:
                continue
            taint.add(mid)
            stack.extend(
                dep.msg_id for dep in self._dependents.get(mid, ())
                if dep.msg_id in blocked and dep.msg_id not in taint
            )
        # The untainted blocked records each wait (directly or transitively)
        # on a cycle.  Demote the actual cycle members; their descendants
        # then fire normally off the demoted roots' deliveries.
        subgraph = blocked - taint
        demoted = sorted(_cycle_members(
            subgraph,
            lambda mid: (t for t in (by_id[mid].cause_id, by_id[mid].bound_id)
                         if t in subgraph),
        ))
        for mid in demoted:
            del self._prereqs_left[mid]
            self._start_time.pop(mid, None)
            rec = by_id[mid]
            for trig in {rec.cause_id, rec.bound_id} - {-1}:
                self._dependents[trig] = [
                    d for d in self._dependents[trig] if d.msg_id != mid
                ]
            self._roots.append(rec)
        return demoted

    def run(self) -> ReplayResult:
        t0 = _walltime.perf_counter()
        # True roots re-fire at their captured offset; ablated records
        # fall back to their absolute captured timestamp (same value —
        # gap == t_inject only for true roots, so distinguish).
        self.sim.schedule_many(
            ((r.gap if r.cause_id == -1 else r.t_inject), self._send, (r,))
            for r in self._roots)
        self.sim.run()
        stalled_count, stalled_ids, stalled_on = self._stall_diagnostics()
        rederived_ids = tuple(sorted(
            mid for mid in self._anchored_ids if mid in self.injections))
        exposure = FaultExposure(
            policy=self._gap_policy,
            ablated=self.dropped_deps,
            marked_degraded=self._marked_degraded,
            missing_triggers=self._missing_triggers,
            rederived=len(rederived_ids),
            fallback_captured=self._fallback_captured,
            rederived_msg_ids=rederived_ids,
        )
        result = self._result(
            _walltime.perf_counter() - t0,
            dropped_deps=self.dropped_deps,
            demoted_cyclic=len(self.demoted_cyclic),
            stalled_count=stalled_count,
            stalled_msg_ids=stalled_ids,
            stalled_on=stalled_on,
            rederived_records=len(rederived_ids),
            fault_exposure=exposure,
        )
        if self._lane_ser is not None:
            result.extra["occupancy_hint"] = {
                "deferred": self._hint_deferred,
                "deferred_cycles": self._hint_deferred_cycles,
            }
        return result

    def _node_warp(self, node: int) -> float:
        """``interp`` policy: local replayed-vs-captured time dilation on
        ``node``, from its two most recent dependency-intact injections."""
        hist = self._warp_hist.get(node)
        if not hist or len(hist) < 2:
            return 1.0
        (c1, t1), (c2, t2) = hist
        if c2 <= c1:
            return 1.0
        lo, hi = self._WARP_CLAMP
        return min(hi, max(lo, (t2 - t1) / (c2 - c1)))

    def _send(self, r: TraceRecord) -> None:
        super()._send(r)
        now = self.injections[r.msg_id]
        if (self._gap_policy == GAP_POLICY_INTERP
                and r.msg_id not in self._degraded_ids):
            hist = self._warp_hist.setdefault(r.src, [])
            hist.append((r.t_inject, now))
            if len(hist) > 2:
                hist.pop(0)
        # Release degraded records anchored to this injection: they re-fire
        # the captured inter-send delta after the anchor's *replayed* time.
        for dep, delta in self._anchored.get(r.msg_id, ()):
            if self._gap_policy == GAP_POLICY_INTERP:
                delta = max(0, round(delta * self._node_warp(r.src)))
            if self._tl is not None:
                self._tl.record(now + delta, f"node{dep.src}",
                                "replay.rederive")
            self.sim.schedule(now + delta, self._send, (dep,))

    def _publish_metrics(self, result: ReplayResult) -> None:
        """Base counters plus the self-correction diagnostics the paper's
        accuracy argument rests on: how many injection times were re-derived
        online, by how much they moved vs the captured timestamps, and how
        many dependents stalled waiting on undelivered triggers."""
        super()._publish_metrics(result)
        scope = self._obs
        stalled = {
            mid for mid, left in self._prereqs_left.items() if left > 0
        }
        corrected = [
            mid for mid in self._start_time if mid not in stalled
        ]
        scope.counter("corrections_applied").inc(len(corrected))
        scope.counter("stalled").inc(len(stalled))
        scope.counter("dropped_deps").inc(self.dropped_deps)
        scope.counter("demoted_cyclic").inc(len(self.demoted_cyclic))
        scope.counter("rederived").inc(result.rederived_records)
        scope.counter("fallback_captured").inc(self._fallback_captured)
        scope.counter("missing_triggers").inc(self._missing_triggers)
        scope.counter("marked_degraded").inc(self._marked_degraded)
        shift = scope.distribution("correction_shift_cycles")
        captured = {r.msg_id: r.t_inject for r in self.trace.records}
        for mid in corrected:
            shift.observe(self._start_time[mid] - captured[mid])

    # Cap on per-message stall detail so a badly broken dependency graph
    # cannot blow up the result object.
    _STALL_DETAIL_CAP = 50

    def _stall_diagnostics(self) -> tuple[int, list[int], dict[int, list[int]]]:
        """Post-mortem for records whose prerequisites never delivered.

        A dependent record is *stalled* when the queue drained while it was
        still waiting on one or more trigger edges — its cause (or bound)
        message was never delivered because the dependency graph references
        msg_ids missing from the trace, or because it stalled transitively
        behind such a record.  Without this, such records only surface as an
        opaque ``messages_unreplayed`` count.  Returns ``(count, msg_ids,
        stalled_on)`` with the id lists capped at ``_STALL_DETAIL_CAP``.
        """
        stalled = sorted(
            mid for mid, left in self._prereqs_left.items() if left > 0
        )
        if not stalled:
            return 0, [], {}
        by_id = {r.msg_id: r for r in self.trace.records}
        detail: dict[int, list[int]] = {}
        for mid in stalled[: self._STALL_DETAIL_CAP]:
            r = by_id[mid]
            detail[mid] = [
                trigger
                for trigger in (r.cause_id, r.bound_id)
                if trigger != -1 and trigger not in self.deliveries
            ]
        return len(stalled), stalled[: self._STALL_DETAIL_CAP], detail

    def _on_deliver(self, msg: Message) -> None:
        super()._on_deliver(msg)
        for dep in self._dependents.get(msg.id, ()):
            # Earliest-start rule: each trigger edge contributes
            # deliver + its own capture-measured delay; the max wins.
            edge_gap = dep.gap if msg.id == dep.cause_id else dep.bound_gap
            candidate = msg.deliver_time + edge_gap
            prev = self._start_time.get(dep.msg_id)
            if prev is None or candidate > prev:
                self._start_time[dep.msg_id] = candidate
            left = self._prereqs_left[dep.msg_id] - 1
            self._prereqs_left[dep.msg_id] = left
            if left == 0:
                start = self._start_time[dep.msg_id]
                if self._lane_ser is not None:
                    key = (dep.src, dep.dst)
                    busy_until = self._lane_ready.get(key, 0)
                    if busy_until > start:
                        self._hint_deferred += 1
                        self._hint_deferred_cycles += busy_until - start
                        start = busy_until
                    self._lane_ready[key] = (
                        start + self._lane_ser(dep.size_bytes))
                if self._tl is not None:
                    self._tl.record(start, f"node{dep.src}",
                                    "replay.correction")
                self.sim.schedule(start, self._send, (dep,))


def replay_trace(
    trace: Trace,
    network_factory: NetworkFactory,
    cfg: Optional[TraceConfig] = None,
) -> ReplayResult:
    """One-call replay using the mode and engine selected in ``cfg``.

    With the default ``event`` engine a fresh network is built from
    ``network_factory`` and the discrete-event replayers run on it.  With
    ``engine="generational"`` the vectorized engine takes over; it needs the
    target's :class:`~repro.config.OnocConfig` rather than a live network,
    which the harness factories expose as a ``.onoc`` attribute
    (``None`` on electrical factories — the generational engine only models
    the optical backends).
    """
    cfg = cfg or TraceConfig()
    if cfg.engine == ENGINE_GENERATIONAL:
        if cfg.awgr_occupancy_hint:
            raise ValueError(
                "awgr_occupancy_hint is event-engine only: the generational "
                "windowed solver prices lanes at injection time and has no "
                "release-order reservation state")
        onoc = getattr(network_factory, "onoc", None)
        if onoc is None:
            raise ValueError(
                "generational engine needs an optical target: the network "
                "factory does not expose an OnocConfig via '.onoc' (use "
                "repro.harness.builders.optical_factory, or pass "
                "engine='event' for electrical targets)")
        from repro.core.generational import replay_trace_generational
        return replay_trace_generational(trace, onoc, cfg)
    sim, net = network_factory()
    overlay = _attach_degradation(net, cfg)
    if cfg.mode == TRACE_NAIVE:
        result = NaiveReplayer(trace, sim, net).run()
    else:
        result = SelfCorrectingReplayer(
            trace, sim, net,
            keep_dep_fraction=cfg.keep_dep_fraction,
            dep_drop_seed=cfg.dep_drop_seed,
            degraded_gap_policy=cfg.degraded_gap_policy,
            awgr_occupancy_hint=cfg.awgr_occupancy_hint,
        ).run()
    if overlay is not None:
        _record_resilience(trace, result, overlay)
    return result


def _attach_degradation(net: NetworkAdapter, cfg: TraceConfig):
    """Build the degradation overlay from ``cfg.fault_events`` and attach it
    to the optical serving layer (a hybrid degrades its ``.optical``
    sublayer; the electrical layer has no photonic drift to model).

    Returns the overlay, or ``None`` when the timeseries is empty — in
    which case the network is left completely untouched, preserving the
    byte-identical stock replay path.
    """
    if not cfg.fault_events:
        return None
    target = getattr(net, "optical", net)
    if not hasattr(target, "degrade"):
        raise ValueError(
            "degradation timeseries need an optical (or hybrid) target; "
            f"{type(target).__name__} has no degradation hook")
    from repro.resilience.overlay import DegradationOverlay
    overlay = DegradationOverlay.build(cfg.fault_events, target.cfg,
                                       cfg.mitigation)
    target.degrade = overlay
    return overlay


def _record_resilience(trace: Trace, result: ReplayResult, overlay) -> None:
    """Post-hoc penalty accounting into ``result.extra['resilience']``.

    Computed from the *final* injection schedule — never inside the serve
    loop — so the accounting is identical for both engines and immune to
    relaxation-pass re-scans.
    """
    from repro.resilience.overlay import resilience_extra
    recs = [r for r in trace.records if r.msg_id in result.injections]
    result.extra["resilience"] = resilience_extra(
        overlay,
        [result.injections[r.msg_id] for r in recs],
        [r.src for r in recs],
        [r.dst for r in recs],
        [r.size_bytes for r in recs],
    )
