"""Trace artifact: dependency-annotated message records.

A record stores, besides the usual (src, dst, size, kind, timestamp) tuple
of a classic network trace, the two fields the self-correction model needs:

* ``cause_id`` — the message whose *arrival* triggered this send (-1 for
  spontaneous sends at program start),
* ``gap`` — the network-independent time between that arrival and this send
  (core compute, cache hits, directory occupancy...), and
* ``bound_id`` / ``bound_gap`` — optional secondary trigger edge: when a
  send was released by the *later* of two arrivals (a queued directory
  request: its own arrival vs the previous transaction's completion), both
  edges are recorded with their own capture-measured delays and replay uses
  the classic DAG earliest-start rule
  ``inject = max(deliver(cause) + gap, deliver(bound) + bound_gap)``.
  On the capture network both sums equal the captured injection time (the
  non-binding arm's delay simply absorbs its slack), so the max re-evaluates
  correctly under any target network's timing.

``key`` is a semantic identity ``(src, dst, kind, line, occurrence)`` that is
stable across runs of the same workload on different networks, used to match
per-message latencies between a replay and an execution-driven reference.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

SemanticKey = tuple[int, int, str, int, int]

#: ``Trace.meta`` key listing msg_ids whose dependency annotations were
#: stripped by the fault-injection layer (see :mod:`repro.validate.faults`).
#: Such records look like roots structurally; the self-correcting replayer
#: treats them as *degraded* and applies its ``degraded_gap_policy`` instead
#: of trusting the captured timestamp.
DEGRADED_RECORDS_META_KEY = "degraded_records"


@dataclass(frozen=True)
class TraceRecord:
    """One captured network message."""

    msg_id: int
    key: SemanticKey
    src: int
    dst: int
    size_bytes: int
    kind: str
    t_inject: int
    t_deliver: int
    cause_id: int          # msg_id of the trigger, or -1
    gap: int               # t_inject - deliver(cause); t_inject if no cause
    bound_id: int = -1     # msg_id of the secondary trigger, or -1
    bound_gap: int = 0     # t_inject - deliver(bound) when bound_id != -1

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0 or self.src == self.dst:
            raise ValueError(f"bad endpoints in record {self.msg_id}")
        if self.size_bytes < 1:
            raise ValueError(f"bad size in record {self.msg_id}")
        if self.t_deliver < self.t_inject:
            raise ValueError(f"record {self.msg_id} delivered before injected")
        if self.gap < 0:
            raise ValueError(f"record {self.msg_id} has negative gap {self.gap}")
        if self.bound_id != -1:
            if self.cause_id == -1:
                raise ValueError(
                    f"record {self.msg_id} has a bound but no cause")
            if self.bound_gap < 0:
                raise ValueError(
                    f"record {self.msg_id} has negative bound_gap")

    @property
    def latency(self) -> int:
        return self.t_deliver - self.t_inject


@dataclass(frozen=True)
class EndMarker:
    """Per-core completion: finish time relative to the core's last arrival."""

    node: int
    t_finish: int
    cause_id: int          # last message whose arrival unblocked the core
    gap: int               # t_finish - deliver(cause); t_finish if no cause

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"negative node {self.node}")
        if self.gap < 0:
            raise ValueError(f"end marker for node {self.node}: negative gap")


@dataclass
class Trace:
    """A complete captured trace plus provenance metadata."""

    records: list[TraceRecord]
    end_markers: list[EndMarker]
    exec_time: int
    meta: dict = field(default_factory=dict)

    # ---------------------------------------------------------- validation
    def validate(self) -> None:
        """Check referential integrity and causality; raises ValueError."""
        by_id = {r.msg_id: r for r in self.records}
        if len(by_id) != len(self.records):
            raise ValueError("duplicate msg_ids in trace")
        keys = {r.key for r in self.records}
        if len(keys) != len(self.records):
            raise ValueError("duplicate semantic keys in trace")
        for r in self.records:
            if r.cause_id != -1:
                cause = by_id.get(r.cause_id)
                if cause is None:
                    raise ValueError(
                        f"record {r.msg_id}: cause {r.cause_id} not in trace"
                    )
                if cause.t_deliver > r.t_inject:
                    raise ValueError(
                        f"record {r.msg_id}: injected at {r.t_inject} before "
                        f"cause {cause.msg_id} delivered at {cause.t_deliver}"
                    )
                if cause.t_deliver + r.gap != r.t_inject:
                    raise ValueError(
                        f"record {r.msg_id}: gap {r.gap} inconsistent"
                    )
            elif r.gap != r.t_inject:
                raise ValueError(f"root record {r.msg_id}: gap != t_inject")
            if r.bound_id != -1:
                bound = by_id.get(r.bound_id)
                if bound is None:
                    raise ValueError(
                        f"record {r.msg_id}: bound {r.bound_id} not in trace")
                if bound.t_deliver + r.bound_gap != r.t_inject:
                    raise ValueError(
                        f"record {r.msg_id}: bound_gap {r.bound_gap} "
                        "inconsistent")
        self._check_acyclic(by_id)
        for m in self.end_markers:
            if m.cause_id != -1 and m.cause_id not in by_id:
                raise ValueError(
                    f"end marker node {m.node}: cause {m.cause_id} missing"
                )
        if self.end_markers:
            latest = max(m.t_finish for m in self.end_markers)
            if latest != self.exec_time:
                raise ValueError(
                    f"exec_time {self.exec_time} != max end marker {latest}"
                )

    def _check_acyclic(self, by_id: dict[int, "TraceRecord"]) -> None:
        """Reject dependency cycles.

        The per-edge causality checks above admit cycles made entirely of
        zero-latency, equal-timestamp records (every edge gap 0) — a shape no
        real network can capture but one that would stall the self-correcting
        replayer forever.  Propagate "can fire" from the roots; any record
        left unfired sits on a cycle (its triggers are all present, so
        nothing else can block it).
        """
        prereqs = {
            r.msg_id: (1 if r.cause_id != -1 else 0) + (1 if r.bound_id != -1 else 0)
            for r in self.records
        }
        dependents: dict[int, list[int]] = {}
        for r in self.records:
            for trig in (r.cause_id, r.bound_id):
                if trig != -1:
                    dependents.setdefault(trig, []).append(r.msg_id)
        frontier = [mid for mid, n in prereqs.items() if n == 0]
        fired = 0
        while frontier:
            mid = frontier.pop()
            fired += 1
            for dep in dependents.get(mid, ()):
                prereqs[dep] -= 1
                if prereqs[dep] == 0:
                    frontier.append(dep)
        if fired != len(self.records):
            cyclic = sorted(mid for mid, n in prereqs.items() if n > 0)
            raise ValueError(
                f"dependency cycle among msg_ids {cyclic[:10]}"
                f"{'...' if len(cyclic) > 10 else ''}"
            )

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.records)

    def dependency_depth(self) -> int:
        """Longest cause chain (records processed in causal order)."""
        depth: dict[int, int] = {}
        best = 0
        for r in sorted(self.records, key=lambda r: (r.t_deliver, r.msg_id)):
            d = depth.get(r.cause_id, 0) + 1 if r.cause_id != -1 else 1
            depth[r.msg_id] = d
            best = max(best, d)
        return best

    def roots(self) -> list[TraceRecord]:
        return [r for r in self.records if r.cause_id == -1]

    def bytes_total(self) -> int:
        return sum(r.size_bytes for r in self.records)

    # -------------------------------------------------------- serialization
    def to_json(self) -> str:
        """Portable JSON form (keys become lists; tuples restored on load)."""
        return json.dumps({
            "meta": self.meta,
            "exec_time": self.exec_time,
            "records": [
                [r.msg_id, list(r.key), r.src, r.dst, r.size_bytes, r.kind,
                 r.t_inject, r.t_deliver, r.cause_id, r.gap, r.bound_id,
                 r.bound_gap]
                for r in self.records
            ],
            "end_markers": [
                [m.node, m.t_finish, m.cause_id, m.gap]
                for m in self.end_markers
            ],
        })

    @staticmethod
    def from_json(text: str) -> "Trace":
        obj = json.loads(text)
        records = [
            TraceRecord(
                msg_id=row[0],
                key=(row[1][0], row[1][1], row[1][2], row[1][3], row[1][4]),
                src=row[2], dst=row[3], size_bytes=row[4], kind=row[5],
                t_inject=row[6], t_deliver=row[7], cause_id=row[8], gap=row[9],
                # Older trace files lack the bound columns.
                bound_id=row[10] if len(row) > 10 else -1,
                bound_gap=row[11] if len(row) > 11 else 0,
            )
            for row in obj["records"]
        ]
        markers = [
            EndMarker(node=row[0], t_finish=row[1], cause_id=row[2], gap=row[3])
            for row in obj["end_markers"]
        ]
        trace = Trace(records=records, end_markers=markers,
                      exec_time=obj["exec_time"], meta=obj.get("meta", {}))
        trace.validate()
        return trace

    def to_binary(self) -> bytes:
        """Chunked binary form (see :mod:`repro.core.tracebin`)."""
        from repro.core import tracebin
        return tracebin.dumps(self)

    @staticmethod
    def from_binary(data: bytes) -> "Trace":
        from repro.core import tracebin
        return tracebin.loads(data)


def latencies_by_key(records: Iterable[TraceRecord]) -> dict[SemanticKey, int]:
    """Semantic key -> end-to-end latency map (reference-building helper)."""
    return {r.key: r.latency for r in records}
