"""Trace capture: the coupling between the full-system run and the trace.

Implements the :class:`repro.system.cmp.CaptureHook` protocol.  During the
run it only appends lightweight tuples; the trace is materialised by
:meth:`finalize` after the simulation drains (when every message's delivery
time is known).
"""

from __future__ import annotations

from typing import Optional

from repro.net import Message
from repro.core.trace import EndMarker, SemanticKey, Trace, TraceRecord
from repro.system.protocol import ProtPayload


class TraceCapture:
    """Records dependency-annotated network messages from a system run."""

    def __init__(self) -> None:
        self._sent: list[tuple[Message, Optional[Message], Optional[Message]]] = []
        self._occurrence: dict[tuple[int, int, str, int], int] = {}
        self._keys: dict[int, SemanticKey] = {}      # msg_id -> key
        self._finishes: list[tuple[int, int, Optional[Message]]] = []

    # ------------------------------------------------------------ hooks
    def on_network_send(self, msg: Message) -> None:
        """Called by FullSystem for every message entering the network."""
        payload = msg.payload
        if not isinstance(payload, ProtPayload):
            raise TypeError(
                "TraceCapture requires protocol messages (ProtPayload); "
                f"got {type(payload).__name__}"
            )
        cause = payload.cause  # already normalised to a network msg or None
        # Incremental acyclicity: sends are hooked in simulation order, so a
        # trigger that has not itself been captured yet is a *forward*
        # reference — the only way a dependency cycle (possible solely under
        # degenerate zero-latency timing) can enter the trace.  Reject it at
        # the send that closes the cycle, naming the protocol transition,
        # instead of leaving it for the post-hoc ``Trace.validate()``
        # fire-fixpoint to flag anonymously after the run.
        for role, trig in (("cause", cause), ("bound", payload.bound)):
            if trig is not None and trig.id not in self._keys:
                raise RuntimeError(
                    f"dependency cycle at capture: {msg.kind} "
                    f"{msg.src}->{msg.dst} (line={payload.line}, "
                    f"aux={payload.aux}, seq={payload.seq}) names the "
                    f"not-yet-sent message {trig.id} ({trig.kind}) as its "
                    f"{role} — the protocol threaded a trigger forward in "
                    "time"
                )
        base = (msg.src, msg.dst, msg.kind,
                payload.line if payload.line >= 0 else payload.aux)
        occ = self._occurrence.get(base, 0)
        self._occurrence[base] = occ + 1
        self._keys[msg.id] = (*base[:3], base[3], occ)
        self._sent.append((msg, cause, payload.bound))

    def on_core_finish(self, node: int, finish_time: int,
                       cause: Optional[Message]) -> None:
        self._finishes.append((node, finish_time, cause))

    # --------------------------------------------------------- finalise
    def finalize(self, meta: Optional[dict] = None) -> Trace:
        """Build the validated Trace (call after the simulation drains)."""
        records: list[TraceRecord] = []
        captured_ids = set(self._keys)
        for msg, cause, bound in self._sent:
            if msg.deliver_time < 0:
                raise RuntimeError(
                    f"message {msg} was captured but never delivered — "
                    "network did not drain"
                )
            for trig in (cause, bound):
                if trig is not None and trig.id not in captured_ids:
                    # A trigger outside the captured set would be a
                    # cause-threading bug (all network messages are captured).
                    raise RuntimeError(
                        f"message {msg.id} triggered by uncaptured "
                        f"message {trig.id}"
                    )
            if cause is None:
                gap = msg.inject_time
                cause_id = -1
                bound_id = -1
                bound_gap = 0
            else:
                gap = msg.inject_time - cause.deliver_time
                cause_id = cause.id
                if gap < 0:
                    raise RuntimeError(
                        f"message {msg.id} injected {-gap} cycles before its "
                        "cause was delivered — causality bug"
                    )
                if bound is not None:
                    bound_id = bound.id
                    bound_gap = msg.inject_time - bound.deliver_time
                    if bound_gap < 0:
                        raise RuntimeError(
                            f"message {msg.id} injected before its bound "
                            "was delivered — causality bug"
                        )
                else:
                    bound_id = -1
                    bound_gap = 0
            records.append(TraceRecord(
                msg_id=msg.id,
                key=self._keys[msg.id],
                src=msg.src,
                dst=msg.dst,
                size_bytes=msg.size_bytes,
                kind=msg.kind,
                t_inject=msg.inject_time,
                t_deliver=msg.deliver_time,
                cause_id=cause_id,
                gap=gap,
                bound_id=bound_id,
                bound_gap=bound_gap,
            ))
        markers: list[EndMarker] = []
        for node, t_finish, cause in self._finishes:
            if cause is None:
                markers.append(EndMarker(node, t_finish, -1, t_finish))
            else:
                markers.append(EndMarker(
                    node, t_finish, cause.id, t_finish - cause.deliver_time
                ))
        records.sort(key=lambda r: (r.t_inject, r.msg_id))
        markers.sort(key=lambda m: m.node)
        # Canonicalise msg_ids to 0..n-1 in injection order.  Raw Message
        # ids come from a process-global counter, so without this the same
        # (config, seed) capture would serialize differently depending on
        # what ran earlier in the process — breaking byte-identical golden
        # traces and content-addressed caching.
        remap = {r.msg_id: i for i, r in enumerate(records)}
        remap[-1] = -1
        records = [
            TraceRecord(
                msg_id=remap[r.msg_id], key=r.key, src=r.src, dst=r.dst,
                size_bytes=r.size_bytes, kind=r.kind, t_inject=r.t_inject,
                t_deliver=r.t_deliver, cause_id=remap[r.cause_id], gap=r.gap,
                bound_id=remap[r.bound_id], bound_gap=r.bound_gap,
            )
            for r in records
        ]
        markers = [
            EndMarker(m.node, m.t_finish, remap[m.cause_id], m.gap)
            for m in markers
        ]
        exec_time = max((m.t_finish for m in markers), default=0)
        trace = Trace(records=records, end_markers=markers,
                      exec_time=exec_time, meta=dict(meta or {}))
        trace.validate()
        return trace

    def finalize_to_binary(self, path, meta: Optional[dict] = None) -> Trace:
        """Finalize and stream the trace to a binary file at ``path``.

        Canonical msg_ids require the global injection-order sort, so the
        records are materialised once either way; the *write* side streams
        chunk-by-chunk through :class:`repro.core.tracebin.BinaryTraceWriter`,
        which is what keeps capture-to-disk memory bounded for large runs.
        """
        from repro.core import tracebin
        trace = self.finalize(meta)
        tracebin.write_file(trace, path)
        return trace

    # ----------------------------------------------------------- queries
    @property
    def messages_captured(self) -> int:
        return len(self._sent)
