"""Binary out-of-core trace format (``.trace.bin``).

JSON traces parse at a few hundred thousand rows per second and must be
materialised wholesale; at the million-message scale ROADMAP item 2 targets,
the *representation* dominates replay cost.  This module defines a chunked,
columnar binary container that loads one or two orders of magnitude faster
and supports streaming readers whose resident set is bounded by the chunk
size, not the trace size.

Layout (little-endian throughout; full spec in ``docs/TRACE_FORMAT.md``)::

    magic "REPROTRC" | u32 version
    then a sequence of blocks:  [u8 type][u32 payload_len][payload]

Block types:

* ``META``    — JSON object: the ``Trace.meta`` dict.
* ``KINDS``   — JSON list of *new* kind strings, appended to an incremental
  string table shared by the record ``kind`` and semantic-key kind columns.
* ``RECORDS`` — one chunk of records, column-major: a u32 record count, then
  16 columns, each a u32 byte length followed by a varint stream.  Signed
  columns are zigzag-encoded; ``msg_id`` and ``t_inject`` are delta-coded
  (the delta base resets each chunk, so chunks decode independently).
* ``MARKERS`` — the end markers, same columnar shape (4 columns).
* ``END``     — JSON footer with record/marker/chunk counts and
  ``exec_time``.  Mandatory: a file without it is truncated.

The varint codec is vectorized (NumPy byte-scatter/gather over at most ten
passes, the maximum encoded length of a u64), so encode and decode cost is
a handful of array operations per column rather than per value.
"""

from __future__ import annotations

import io
import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Optional, Union

import numpy as np

from repro.core.trace import EndMarker, Trace, TraceRecord

MAGIC = b"REPROTRC"
VERSION = 1

#: Records per RECORDS block.  65536 * <=10 B/varint keeps the largest
#: column under a megabyte, so a streaming reader's footprint is O(chunk).
CHUNK_RECORDS = 65536

_BLOCK_META = 1
_BLOCK_KINDS = 2
_BLOCK_RECORDS = 3
_BLOCK_MARKERS = 4
_BLOCK_END = 5

_HEADER = struct.Struct("<8sI")
_BLOCK_HEAD = struct.Struct("<BI")
_U32 = struct.Struct("<I")

#: Longest varint encoding of a 64-bit value.
_VARINT_MAX_LEN = 10


class TraceBinError(ValueError):
    """Malformed binary trace (bad magic, bad version, truncation, corruption)."""


# ----------------------------------------------------------------- varints
def _encode_varints(values: np.ndarray) -> bytes:
    """LEB128-encode a uint64 array, vectorized (one pass per output byte)."""
    v = np.ascontiguousarray(values, dtype=np.uint64)
    n = len(v)
    if n == 0:
        return b""
    lengths = np.ones(n, dtype=np.int64)
    tmp = v >> np.uint64(7)
    while tmp.any():
        lengths += tmp != 0
        tmp >>= np.uint64(7)
    offsets = np.zeros(n, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    out = np.zeros(int(offsets[-1] + lengths[-1]), dtype=np.uint8)
    shifted = v.copy()
    for i in range(int(lengths.max())):
        live = lengths > i
        cont = lengths > i + 1
        out[offsets[live] + i] = (
            (shifted[live] & np.uint64(0x7F))
            | (cont[live].astype(np.uint64) << np.uint64(7))
        ).astype(np.uint8)
        shifted >>= np.uint64(7)
    return out.tobytes()


def _decode_varints(data: bytes, count: int, what: str) -> np.ndarray:
    """Decode exactly ``count`` varints spanning exactly ``data``."""
    if count == 0:
        if data:
            raise TraceBinError(f"corrupt trace: trailing bytes in {what}")
        return np.zeros(0, dtype=np.uint64)
    buf = np.frombuffer(data, dtype=np.uint8)
    ends = np.flatnonzero((buf & 0x80) == 0)
    if len(ends) < count:
        raise TraceBinError(f"truncated varint stream in {what}")
    ends = ends[:count]
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if int(lengths.max()) > _VARINT_MAX_LEN:
        raise TraceBinError(f"corrupt trace: oversized varint in {what}")
    if int(ends[-1]) + 1 != len(buf):
        raise TraceBinError(f"corrupt trace: trailing bytes in {what}")
    vals = np.zeros(count, dtype=np.uint64)
    for i in range(int(lengths.max())):
        live = lengths > i
        vals[live] |= (
            buf[starts[live] + i].astype(np.uint64) & np.uint64(0x7F)
        ) << np.uint64(7 * i)
    return vals


def _zigzag(a: np.ndarray) -> np.ndarray:
    a = np.ascontiguousarray(a, dtype=np.int64)
    return (a.astype(np.uint64) << np.uint64(1)) ^ (a >> np.int64(63)).astype(
        np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    return (u >> np.uint64(1)).astype(np.int64) ^ -(
        (u & np.uint64(1)).astype(np.int64))


# ---------------------------------------------------------------- columns
#: (name, coding) in on-disk order.  ``key_src``/``key_dst`` are stored
#: relative to ``src``/``dst`` (usually zero), ``msg_id``/``t_inject`` as
#: zigzag deltas; everything non-negative by Trace validation is raw.
_RECORD_COLUMNS = (
    ("msg_id", "sdelta"),
    ("src", "unsigned"),
    ("dst", "unsigned"),
    ("size_bytes", "unsigned"),
    ("kind_idx", "unsigned"),
    ("t_inject", "sdelta"),
    ("latency", "unsigned"),
    ("cause_id", "signed"),
    ("gap", "unsigned"),
    ("bound_id", "signed"),
    ("bound_gap", "unsigned"),
    ("key_src_rel", "signed"),
    ("key_dst_rel", "signed"),
    ("key_kind_idx", "unsigned"),
    ("key_line", "signed"),
    ("key_occ", "signed"),
)

_MARKER_COLUMNS = (
    ("node", "unsigned"),
    ("t_finish", "signed"),
    ("cause_id", "signed"),
    ("gap", "unsigned"),
)


def _encode_column(a: np.ndarray, coding: str, what: str) -> bytes:
    a = np.ascontiguousarray(a, dtype=np.int64)
    if coding == "unsigned":
        if len(a) and int(a.min()) < 0:
            raise TraceBinError(f"negative value in unsigned column {what}")
        u = a.astype(np.uint64)
    elif coding == "signed":
        u = _zigzag(a)
    else:  # sdelta
        u = _zigzag(np.diff(a, prepend=np.int64(0)))
    return _encode_varints(u)


def _decode_column(data: bytes, count: int, coding: str,
                   what: str) -> np.ndarray:
    u = _decode_varints(data, count, what)
    if coding == "unsigned":
        return u.astype(np.int64)
    if coding == "signed":
        return _unzigzag(u)
    return np.cumsum(_unzigzag(u), dtype=np.int64)


@dataclass
class RecordChunk:
    """One decoded RECORDS block as int64 column arrays.

    ``kinds`` is the string table as of this chunk; ``kind_idx`` /
    ``key_kind_idx`` index into it.  ``t_deliver`` is derived
    (``t_inject + latency``) to match :class:`TraceRecord`.
    """

    msg_id: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    size_bytes: np.ndarray
    kind_idx: np.ndarray
    t_inject: np.ndarray
    latency: np.ndarray
    cause_id: np.ndarray
    gap: np.ndarray
    bound_id: np.ndarray
    bound_gap: np.ndarray
    key_src: np.ndarray
    key_dst: np.ndarray
    key_kind_idx: np.ndarray
    key_line: np.ndarray
    key_occ: np.ndarray
    kinds: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.msg_id)

    @property
    def t_deliver(self) -> np.ndarray:
        return self.t_inject + self.latency

    def to_records(self) -> list[TraceRecord]:
        kinds = self.kinds
        rows = zip(self.msg_id.tolist(), self.src.tolist(), self.dst.tolist(),
                   self.size_bytes.tolist(), self.kind_idx.tolist(),
                   self.t_inject.tolist(), self.latency.tolist(),
                   self.cause_id.tolist(), self.gap.tolist(),
                   self.bound_id.tolist(), self.bound_gap.tolist(),
                   self.key_src.tolist(), self.key_dst.tolist(),
                   self.key_kind_idx.tolist(), self.key_line.tolist(),
                   self.key_occ.tolist())
        try:
            return [
                TraceRecord(
                    msg_id=mid, key=(ks, kd, kinds[kk], kl, ko),
                    src=src, dst=dst, size_bytes=size, kind=kinds[ki],
                    t_inject=ti, t_deliver=ti + lat, cause_id=cid, gap=gap,
                    bound_id=bid, bound_gap=bgap,
                )
                for (mid, src, dst, size, ki, ti, lat, cid, gap, bid, bgap,
                     ks, kd, kk, kl, ko) in rows
            ]
        except IndexError as exc:
            raise TraceBinError(
                "corrupt trace: kind index outside string table") from exc


def _chunk_from_records(records: list[TraceRecord],
                        kind_idx: dict[str, int]) -> np.ndarray:
    return np.array(
        [(r.msg_id, r.src, r.dst, r.size_bytes, kind_idx[r.kind],
          r.t_inject, r.t_deliver - r.t_inject, r.cause_id, r.gap,
          r.bound_id, r.bound_gap, r.key[0] - r.src, r.key[1] - r.dst,
          kind_idx[r.key[2]], r.key[3], r.key[4])
         for r in records],
        dtype=np.int64,
    ).reshape(len(records), len(_RECORD_COLUMNS))


# ------------------------------------------------------------------ writer
class BinaryTraceWriter:
    """Streaming writer: records are flushed chunk-by-chunk as they arrive.

    Usage::

        with open(path, "wb") as fp:
            w = BinaryTraceWriter(fp, meta=trace.meta)
            w.add_records(records)       # may be called repeatedly
            w.add_markers(markers)
            w.close(exec_time)

    Nothing proportional to the full trace is retained: at most one chunk
    of pending records plus the kind string table.
    """

    def __init__(self, fp: BinaryIO, meta: Optional[dict] = None,
                 chunk_records: int = CHUNK_RECORDS) -> None:
        if chunk_records < 1:
            raise ValueError("chunk_records must be positive")
        self._fp = fp
        self._chunk_records = chunk_records
        self._pending: list[TraceRecord] = []
        self._markers: list[EndMarker] = []
        self._kind_idx: dict[str, int] = {}
        self._record_count = 0
        self._chunk_count = 0
        self._closed = False
        fp.write(_HEADER.pack(MAGIC, VERSION))
        # Insertion order is preserved (not sorted) so a JSON<->binary
        # round-trip is byte-stable in both directions.
        self._write_block(_BLOCK_META, json.dumps(meta or {}).encode())

    def _write_block(self, btype: int, payload: bytes) -> None:
        self._fp.write(_BLOCK_HEAD.pack(btype, len(payload)))
        self._fp.write(payload)

    def _intern_kinds(self, records: list[TraceRecord]) -> None:
        new: list[str] = []
        for r in records:
            for kind in (r.kind, r.key[2]):
                if kind not in self._kind_idx:
                    self._kind_idx[kind] = len(self._kind_idx)
                    new.append(kind)
        if new:
            self._write_block(_BLOCK_KINDS, json.dumps(new).encode())

    def _flush_chunk(self) -> None:
        records, self._pending = self._pending, []
        if not records:
            return
        self._intern_kinds(records)
        cols = _chunk_from_records(records, self._kind_idx)
        out = io.BytesIO()
        out.write(_U32.pack(len(records)))
        for i, (name, coding) in enumerate(_RECORD_COLUMNS):
            enc = _encode_column(cols[:, i], coding, name)
            out.write(_U32.pack(len(enc)))
            out.write(enc)
        self._write_block(_BLOCK_RECORDS, out.getvalue())
        self._record_count += len(records)
        self._chunk_count += 1

    def add_records(self, records: Iterable[TraceRecord]) -> None:
        if self._closed:
            raise ValueError("writer already closed")
        for r in records:
            self._pending.append(r)
            if len(self._pending) >= self._chunk_records:
                self._flush_chunk()

    def add_markers(self, markers: Iterable[EndMarker]) -> None:
        if self._closed:
            raise ValueError("writer already closed")
        self._markers.extend(markers)

    def close(self, exec_time: int) -> None:
        if self._closed:
            return
        self._flush_chunk()
        cols = np.array(
            [(m.node, m.t_finish, m.cause_id, m.gap) for m in self._markers],
            dtype=np.int64).reshape(len(self._markers), len(_MARKER_COLUMNS))
        out = io.BytesIO()
        out.write(_U32.pack(len(self._markers)))
        for i, (name, coding) in enumerate(_MARKER_COLUMNS):
            enc = _encode_column(cols[:, i], coding, name)
            out.write(_U32.pack(len(enc)))
            out.write(enc)
        self._write_block(_BLOCK_MARKERS, out.getvalue())
        self._write_block(_BLOCK_END, json.dumps({
            "record_count": self._record_count,
            "marker_count": len(self._markers),
            "chunks": self._chunk_count,
            "exec_time": exec_time,
        }, sort_keys=True).encode())
        self._closed = True


def dump(trace: Trace, fp: BinaryIO,
         chunk_records: int = CHUNK_RECORDS) -> None:
    """Write ``trace`` to a binary file object."""
    writer = BinaryTraceWriter(fp, meta=trace.meta,
                               chunk_records=chunk_records)
    writer.add_records(trace.records)
    writer.add_markers(trace.end_markers)
    writer.close(trace.exec_time)


def dumps(trace: Trace, chunk_records: int = CHUNK_RECORDS) -> bytes:
    """Serialize ``trace`` to binary bytes (deterministic for equal traces)."""
    out = io.BytesIO()
    dump(trace, out, chunk_records=chunk_records)
    return out.getvalue()


def write_file(trace: Trace, path: Union[str, Path],
               chunk_records: int = CHUNK_RECORDS) -> Path:
    path = Path(path)
    with open(path, "wb") as fp:
        dump(trace, fp, chunk_records=chunk_records)
    return path


# ------------------------------------------------------------------ reader
def _read_exact(fp: BinaryIO, n: int, what: str) -> bytes:
    data = fp.read(n)
    if len(data) != n:
        raise TraceBinError(f"truncated trace: unexpected EOF in {what}")
    return data


def _check_header(fp: BinaryIO) -> None:
    head = fp.read(_HEADER.size)
    if len(head) < _HEADER.size or head[:len(MAGIC)] != MAGIC:
        raise TraceBinError(
            f"bad magic: not a binary trace (expected {MAGIC!r})")
    (_, version) = _HEADER.unpack(head)
    if version != VERSION:
        raise TraceBinError(
            f"unsupported binary trace version {version} "
            f"(this reader handles version {VERSION})")


def _iter_blocks(fp: BinaryIO,
                 skip_payloads: frozenset[int] = frozenset(),
                 ) -> Iterator[tuple[int, bytes, int]]:
    """Yield (type, payload, payload_len); END terminates the stream.

    Payloads for types in ``skip_payloads`` are seeked over and yielded as
    ``b""`` — this is what makes a summary scan O(block count) in I/O.
    """
    saw_end = False
    while True:
        head = fp.read(_BLOCK_HEAD.size)
        if not head:
            break
        if len(head) < _BLOCK_HEAD.size:
            raise TraceBinError("truncated trace: partial block header")
        btype, length = _BLOCK_HEAD.unpack(head)
        if btype not in (_BLOCK_META, _BLOCK_KINDS, _BLOCK_RECORDS,
                         _BLOCK_MARKERS, _BLOCK_END):
            raise TraceBinError(f"corrupt trace: unknown block type {btype}")
        if btype in skip_payloads and btype != _BLOCK_END:
            fp.seek(length, 1)
            yield btype, b"", length
        else:
            yield btype, _read_exact(fp, length, f"block type {btype}"), length
        if btype == _BLOCK_END:
            saw_end = True
            break
    if not saw_end:
        raise TraceBinError("truncated trace: missing END block")


def _decode_record_block(payload: bytes,
                         kinds: tuple[str, ...]) -> RecordChunk:
    if len(payload) < 4:
        raise TraceBinError("truncated trace: short RECORDS block")
    count = _U32.unpack_from(payload)[0]
    off = 4
    cols: dict[str, np.ndarray] = {}
    for name, coding in _RECORD_COLUMNS:
        if off + 4 > len(payload):
            raise TraceBinError("truncated trace: short RECORDS block")
        clen = _U32.unpack_from(payload, off)[0]
        off += 4
        if off + clen > len(payload):
            raise TraceBinError("truncated trace: short RECORDS column")
        cols[name] = _decode_column(payload[off:off + clen], count, coding,
                                    name)
        off += clen
    if off != len(payload):
        raise TraceBinError("corrupt trace: trailing bytes in RECORDS block")
    return RecordChunk(
        msg_id=cols["msg_id"], src=cols["src"], dst=cols["dst"],
        size_bytes=cols["size_bytes"], kind_idx=cols["kind_idx"],
        t_inject=cols["t_inject"], latency=cols["latency"],
        cause_id=cols["cause_id"], gap=cols["gap"],
        bound_id=cols["bound_id"], bound_gap=cols["bound_gap"],
        key_src=cols["key_src_rel"] + cols["src"],
        key_dst=cols["key_dst_rel"] + cols["dst"],
        key_kind_idx=cols["key_kind_idx"], key_line=cols["key_line"],
        key_occ=cols["key_occ"], kinds=kinds,
    )


def _decode_marker_block(payload: bytes) -> list[EndMarker]:
    if len(payload) < 4:
        raise TraceBinError("truncated trace: short MARKERS block")
    count = _U32.unpack_from(payload)[0]
    off = 4
    cols = []
    for name, coding in _MARKER_COLUMNS:
        if off + 4 > len(payload):
            raise TraceBinError("truncated trace: short MARKERS block")
        clen = _U32.unpack_from(payload, off)[0]
        off += 4
        cols.append(_decode_column(payload[off:off + clen], count, coding,
                                   name))
        off += clen
    if off != len(payload):
        raise TraceBinError("corrupt trace: trailing bytes in MARKERS block")
    node, t_finish, cause_id, gap = (c.tolist() for c in cols)
    return [EndMarker(node=n, t_finish=t, cause_id=c, gap=g)
            for n, t, c, g in zip(node, t_finish, cause_id, gap)]


def _parse_kinds(payload: bytes, kinds: list[str]) -> None:
    new = json.loads(payload.decode())
    if not isinstance(new, list) or not all(isinstance(k, str) for k in new):
        raise TraceBinError("corrupt trace: malformed KINDS block")
    kinds.extend(new)


def _load_stream(fp: BinaryIO, validate: bool = True) -> Trace:
    _check_header(fp)
    meta: dict = {}
    kinds: list[str] = []
    records: list[TraceRecord] = []
    markers: list[EndMarker] = []
    footer: Optional[dict] = None
    for btype, payload, _ in _iter_blocks(fp):
        if btype == _BLOCK_META:
            meta = json.loads(payload.decode())
        elif btype == _BLOCK_KINDS:
            _parse_kinds(payload, kinds)
        elif btype == _BLOCK_RECORDS:
            records.extend(
                _decode_record_block(payload, tuple(kinds)).to_records())
        elif btype == _BLOCK_MARKERS:
            markers = _decode_marker_block(payload)
        elif btype == _BLOCK_END:
            footer = json.loads(payload.decode())
    assert footer is not None
    if footer.get("record_count") != len(records) \
            or footer.get("marker_count") != len(markers):
        raise TraceBinError(
            "corrupt trace: END footer counts disagree with decoded blocks")
    trace = Trace(records=records, end_markers=markers,
                  exec_time=footer["exec_time"], meta=meta)
    if validate:
        trace.validate()
    return trace


def load(fp: BinaryIO) -> Trace:
    """Read a full :class:`Trace` from a binary file object."""
    return _load_stream(fp)


def loads(data: bytes) -> Trace:
    """Read a full :class:`Trace` from binary bytes."""
    return _load_stream(io.BytesIO(data))


def read_file(path: Union[str, Path]) -> Trace:
    with open(path, "rb") as fp:
        return _load_stream(fp)


def iter_chunks(source: Union[str, Path, BinaryIO]) -> Iterator[RecordChunk]:
    """Stream RECORDS chunks without materialising the whole trace.

    Resident memory is O(chunk): each block is read, decoded into column
    arrays, yielded, and released.  Markers and ``exec_time`` are *not*
    surfaced here — fetch them first with :func:`read_summary` (a seek-only
    scan), then stream the records.
    """
    own = not hasattr(source, "read")
    fp: BinaryIO = open(source, "rb") if own else source  # type: ignore
    try:
        _check_header(fp)
        kinds: list[str] = []
        for btype, payload, _ in _iter_blocks(fp):
            if btype == _BLOCK_KINDS:
                _parse_kinds(payload, kinds)
            elif btype == _BLOCK_RECORDS:
                yield _decode_record_block(payload, tuple(kinds))
    finally:
        if own:
            fp.close()


def read_summary(source: Union[str, Path, BinaryIO]) -> dict:
    """Header/footer scan: meta, markers, counts — without decoding records.

    RECORDS payloads are seeked over, so the cost is O(blocks), not O(trace).
    Returns ``{"meta", "kinds", "markers", "exec_time", "record_count",
    "marker_count", "chunks", "version"}``.
    """
    own = not hasattr(source, "read")
    fp: BinaryIO = open(source, "rb") if own else source  # type: ignore
    try:
        _check_header(fp)
        meta: dict = {}
        kinds: list[str] = []
        markers: list[EndMarker] = []
        footer: dict = {}
        chunks = 0
        for btype, payload, _ in _iter_blocks(
                fp, skip_payloads=frozenset({_BLOCK_RECORDS})):
            if btype == _BLOCK_META:
                meta = json.loads(payload.decode())
            elif btype == _BLOCK_KINDS:
                _parse_kinds(payload, kinds)
            elif btype == _BLOCK_RECORDS:
                chunks += 1
            elif btype == _BLOCK_MARKERS:
                markers = _decode_marker_block(payload)
            elif btype == _BLOCK_END:
                footer = json.loads(payload.decode())
        if footer.get("chunks") != chunks:
            raise TraceBinError(
                "corrupt trace: END footer chunk count disagrees with file")
        return {
            "meta": meta,
            "kinds": tuple(kinds),
            "markers": markers,
            "exec_time": footer.get("exec_time", 0),
            "record_count": footer.get("record_count", 0),
            "marker_count": footer.get("marker_count", 0),
            "chunks": chunks,
            "version": VERSION,
        }
    finally:
        if own:
            fp.close()


#: Block-type names for :func:`scan_blocks` / ``repro trace info``.
_BLOCK_NAMES = {
    _BLOCK_META: "META",
    _BLOCK_KINDS: "KINDS",
    _BLOCK_RECORDS: "RECORDS",
    _BLOCK_MARKERS: "MARKERS",
    _BLOCK_END: "END",
}


def scan_blocks(source: Union[str, Path, BinaryIO]) -> dict:
    """Truncation-tolerant O(header) block scan for inspection tooling.

    Walks the block headers only: RECORDS and MARKERS payloads are never
    read (let alone decoded), so the scan touches ``12 + 5 * n_blocks``
    bytes of record data regardless of trace size, and corrupt *payload*
    bytes cannot make it fail.  Unlike the loading readers this scan does
    not demand an END block: a truncated file yields whatever prefix of
    blocks is intact plus ``truncated=True``, which is exactly what you
    want from ``repro trace info`` when triaging a half-written capture.
    The magic/version check stays strict, as does the unknown-block check
    (those are corruption, not truncation).

    Returns ``{"meta", "kinds" (count), "footer" (dict or None),
    "blocks" ([{"type", "payload_bytes"}, ...]), "truncated",
    "version"}``.
    """
    own = not hasattr(source, "read")
    fp: BinaryIO = open(source, "rb") if own else source  # type: ignore
    try:
        _check_header(fp)
        pos = fp.tell()
        file_end = fp.seek(0, 2)
        fp.seek(pos)
        meta: dict = {}
        kinds_count = 0
        footer: Optional[dict] = None
        blocks: list[dict] = []
        truncated = False
        while True:
            head = fp.read(_BLOCK_HEAD.size)
            if not head:
                break
            if len(head) < _BLOCK_HEAD.size:
                truncated = True
                break
            btype, length = _BLOCK_HEAD.unpack(head)
            if btype not in _BLOCK_NAMES:
                raise TraceBinError(
                    f"corrupt trace: unknown block type {btype}")
            if fp.tell() + length > file_end:
                truncated = True
                break
            if btype in (_BLOCK_META, _BLOCK_KINDS, _BLOCK_END):
                payload = _read_exact(fp, length, f"block type {btype}")
                if btype == _BLOCK_META:
                    meta = json.loads(payload.decode())
                elif btype == _BLOCK_KINDS:
                    kinds_count += len(json.loads(payload.decode()))
                else:
                    footer = json.loads(payload.decode())
            else:
                fp.seek(length, 1)
            blocks.append({"type": _BLOCK_NAMES[btype],
                           "payload_bytes": length})
            if btype == _BLOCK_END:
                break
        if footer is None:
            truncated = True
        return {
            "meta": meta,
            "kinds": kinds_count,
            "footer": footer,
            "blocks": blocks,
            "truncated": truncated,
            "version": VERSION,
        }
    finally:
        if own:
            fp.close()


# -------------------------------------------------------------- detection
def is_binary_trace(source: Union[str, Path, bytes]) -> bool:
    """True when ``source`` (path or bytes) starts with the format magic."""
    if isinstance(source, bytes):
        return source[:len(MAGIC)] == MAGIC
    path = Path(source)
    try:
        with open(path, "rb") as fp:
            return fp.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace file in either format, autodetected by magic bytes."""
    path = Path(path)
    if is_binary_trace(path):
        return read_file(path)
    return Trace.from_json(path.read_text())


def trace_info(path: Union[str, Path]) -> dict:
    """Inspect a trace file (either format) without a full decode.

    For binary traces this is the :func:`scan_blocks` header walk —
    record payloads are never decoded, per-block sizes come straight from
    the 5-byte block heads, and a truncated file still yields the intact
    prefix (``truncated=True``) instead of an error.  Counts and
    ``exec_time`` come from the END footer, so they are ``None`` for a
    truncated file.  For JSON the whole file must be parsed (there is no
    cheap scan — which is part of why the binary format exists).
    """
    path = Path(path)
    if is_binary_trace(path):
        s = scan_blocks(path)
        footer = s["footer"]
        chunk_bytes = [b["payload_bytes"] for b in s["blocks"]
                       if b["type"] == "RECORDS"]
        if footer is not None and footer.get("chunks") != len(chunk_bytes):
            raise TraceBinError(
                "corrupt trace: END footer chunk count disagrees with file")
        blocks: dict[str, dict] = {}
        for b in s["blocks"]:
            agg = blocks.setdefault(b["type"], {"count": 0, "bytes": 0})
            agg["count"] += 1
            agg["bytes"] += b["payload_bytes"]
        return {
            "format": "binary",
            "version": s["version"],
            "file_bytes": path.stat().st_size,
            "truncated": s["truncated"],
            "records": footer.get("record_count") if footer else None,
            "end_markers": footer.get("marker_count") if footer else None,
            "chunks": len(chunk_bytes),
            "kinds": s["kinds"],
            "exec_time": footer.get("exec_time") if footer else None,
            "blocks": blocks,
            "record_chunk_bytes": chunk_bytes,
            "meta": s["meta"],
        }
    trace = Trace.from_json(path.read_text())
    return {
        "format": "json",
        "version": None,
        "file_bytes": path.stat().st_size,
        "truncated": False,
        "records": len(trace.records),
        "end_markers": len(trace.end_markers),
        "chunks": 1,
        "kinds": len({r.kind for r in trace.records}
                     | {r.key[2] for r in trace.records}),
        "exec_time": trace.exec_time,
        "blocks": {},
        "record_chunk_bytes": [],
        "meta": trace.meta,
    }
