"""Trace characterisation: workload structure from the trace alone.

A downstream user of a trace toolchain needs to *understand* a trace before
trusting replays of it: how bursty is injection, how concentrated are
destinations, how deep and wide is the dependency structure, where does the
critical chain run.  :func:`profile_trace` computes all of it in one pass
over the records; ``examples/trace_inspection.py`` prints it.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.trace import Trace
from repro.stats import OnlineStats


@dataclass
class TraceProfile:
    """Computed characterisation of one trace."""

    messages: int
    bytes_total: int
    exec_time: int
    kind_mix: dict[str, int]
    roots: int
    dependency_depth: int
    max_fanout: int
    mean_fanout: float
    dest_entropy_bits: float
    dest_entropy_max_bits: float
    injection_cv: float          # coefficient of variation of per-window rate
    gap_stats: dict[str, float]
    critical_gap_sum: int        # total compute gap along the deepest chain
    extra: dict = field(default_factory=dict)

    def as_rows(self) -> list[dict]:
        """Table rows for pretty-printing."""
        rows = [
            {"property": "messages", "value": self.messages},
            {"property": "bytes", "value": self.bytes_total},
            {"property": "exec time (cycles)", "value": self.exec_time},
            {"property": "roots", "value": self.roots},
            {"property": "dependency depth", "value": self.dependency_depth},
            {"property": "fanout max / mean",
             "value": f"{self.max_fanout} / {self.mean_fanout:.2f}"},
            {"property": "destination entropy",
             "value": f"{self.dest_entropy_bits:.2f} / "
                      f"{self.dest_entropy_max_bits:.2f} bits"},
            {"property": "injection burstiness (CV)",
             "value": f"{self.injection_cv:.2f}"},
            {"property": "compute gap mean/max",
             "value": f"{self.gap_stats['mean']:.1f} / "
                      f"{self.gap_stats['max']:.0f}"},
            {"property": "critical-chain gap sum",
             "value": self.critical_gap_sum},
        ]
        return rows


def destination_entropy(trace: Trace) -> tuple[float, float]:
    """Shannon entropy of the destination distribution (and its maximum,
    ``log2(distinct destinations possible)``); low entropy = hotspot."""
    counts = Counter(r.dst for r in trace.records)
    total = sum(counts.values())
    if total == 0:
        return 0.0, 0.0
    ent = -sum((c / total) * math.log2(c / total) for c in counts.values())
    nodes = max((max(r.src, r.dst) for r in trace.records), default=0) + 1
    return ent, math.log2(nodes) if nodes > 1 else 0.0


def injection_burstiness(trace: Trace, window: int = 256) -> float:
    """Coefficient of variation of the per-window injection count.

    ~0 for smooth open-loop traffic; >1 for barrier-phased bursts.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if not trace.records:
        return 0.0
    horizon = max(trace.exec_time, max(r.t_inject for r in trace.records) + 1)
    nbins = max(1, -(-horizon // window))
    counts = np.zeros(nbins, dtype=np.int64)
    for r in trace.records:
        counts[r.t_inject // window] += 1
    mean = counts.mean()
    return float(counts.std() / mean) if mean > 0 else 0.0


def dependency_fanout(trace: Trace) -> Counter:
    """children-count -> number of records with that many dependents."""
    children = Counter(r.cause_id for r in trace.records if r.cause_id != -1)
    fanout = Counter(children[r.msg_id] for r in trace.records)
    return fanout


def critical_chain(trace: Trace) -> tuple[int, int]:
    """(depth, gap_sum) of the deepest dependency chain.

    ``gap_sum`` is the total *compute* time along it — the part of the
    critical path no network can remove (the Amdahl floor of any
    interconnect upgrade, directly readable from the trace).
    """
    depth: dict[int, int] = {}
    gaps: dict[int, int] = {}
    best_depth, best_gaps = 0, 0
    for r in sorted(trace.records, key=lambda r: (r.t_deliver, r.msg_id)):
        if r.cause_id == -1:
            d, g = 1, r.gap
        else:
            d = depth.get(r.cause_id, 0) + 1
            g = gaps.get(r.cause_id, 0) + r.gap
        depth[r.msg_id] = d
        gaps[r.msg_id] = g
        if d > best_depth:
            best_depth, best_gaps = d, g
    return best_depth, best_gaps


def profile_trace(trace: Trace, window: int = 256) -> TraceProfile:
    """Full characterisation (one pass each over records)."""
    kind_mix = Counter(r.kind for r in trace.records)
    gap_acc = OnlineStats()
    for r in trace.records:
        if r.cause_id != -1:
            gap_acc.add(r.gap)
    fanout = dependency_fanout(trace)
    total_children = sum(k * v for k, v in fanout.items())
    ent, ent_max = destination_entropy(trace)
    depth, gap_sum = critical_chain(trace)
    return TraceProfile(
        messages=len(trace),
        bytes_total=trace.bytes_total(),
        exec_time=trace.exec_time,
        kind_mix=dict(kind_mix),
        roots=len(trace.roots()),
        dependency_depth=depth,
        max_fanout=max(fanout, default=0),
        mean_fanout=total_children / len(trace) if len(trace) else 0.0,
        dest_entropy_bits=ent,
        dest_entropy_max_bits=ent_max,
        injection_cv=injection_burstiness(trace, window),
        gap_stats=gap_acc.as_dict(),
        critical_gap_sum=gap_sum,
    )
