"""Command-line interface: the full methodology without writing Python.

Subcommands::

    capture    run the full system on a network, write the trace
               (JSON or chunked binary, --format)
    replay     replay a trace file on a target network (format autodetected,
               --engine selects event-driven vs generational replay)
    trace      trace-file utilities: convert between JSON and binary,
               print header info without loading the records
    accuracy   capture + reference + both replay modes, print the report
    casestudy  execution-driven ONOC vs electrical comparison
    sweep      synthetic load-latency series for one network/pattern
    validate   differential validation + invariant checks + golden corpus
    serve      run the resident simulation service (see docs/SERVING.md)
    submit     submit a job to a running service and print the result
    cache      inspect or clear the sweep result cache
    metrics    pretty-print a metrics JSON written with --metrics-out
    info       print the resolved configuration (Table-1 style)
    exp        declarative experiment layer: list the catalog and configs,
               run a YAML/JSON config (archiving provenance), diff two
               archives (``--gate`` for CI regression checks) — see
               docs/EXPERIMENTS_LAYER.md

Sweep-shaped subcommands (``sweep``, ``accuracy``) accept ``--jobs N`` to
shard independent simulations across processes and ``--cache-dir DIR`` (or
``--cache`` for the default location) to reuse previously computed points —
see :mod:`repro.harness.parallel`.

Every subcommand accepts the :mod:`repro.obs` instrumentation flags:
``--metrics`` prints the merged counter/gauge/distribution registry after
the command's own output, ``--metrics-out FILE`` dumps it as JSON (readable
back via ``repro metrics FILE``), and ``--trace-out FILE`` records an event
timeline and writes Chrome-trace JSON for ``chrome://tracing`` /
https://ui.perfetto.dev — see ``docs/OBSERVABILITY.md``.

Run ``python -m repro <subcommand> --help`` for flags.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import sys
from dataclasses import replace

from repro import obs
from repro.config import (
    ExperimentConfig,
    NocConfig,
    ONOC_CIRCUIT_MESH,
    ONOC_CROSSBAR,
    OnocConfig,
    SystemConfig,
    TraceConfig,
)
from repro.core import Trace, replay_trace
from repro.harness import (
    SweepRunner,
    accuracy_rows_parallel,
    cache_clear,
    cache_info,
    case_study,
    default_cache_dir,
    electrical_factory,
    format_table,
    load_latency_sweep_parallel,
    optical_factory,
    run_execution_driven,
)
from repro.traffic import PATTERNS


def _square_side(cores: int) -> int:
    side = math.isqrt(cores)
    if side * side != cores:
        raise SystemExit(f"--cores must be a perfect square, got {cores}")
    return side


def build_experiment(args: argparse.Namespace) -> ExperimentConfig:
    """Experiment config from common CLI flags."""
    side = _square_side(args.cores)
    return ExperimentConfig(
        system=SystemConfig(num_cores=args.cores,
                            num_mem_ctrls=max(1, args.cores // 4)),
        noc=NocConfig(width=side, height=side),
        onoc=OnocConfig(num_nodes=args.cores,
                        num_wavelengths=args.wavelengths),
        seed=args.seed,
    )


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cores", type=int, default=16,
                   help="core count (perfect square; default 16)")
    p.add_argument("--seed", type=int, default=7, help="master seed")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload scale factor")
    p.add_argument("--wavelengths", type=int, default=64,
                   help="WDM wavelengths per optical channel")


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--metrics", action="store_true",
                   help="collect repro.obs instrumentation and print the "
                        "merged metrics registry after the command output")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the metrics registry as JSON (pretty-print "
                        "it later with `repro metrics FILE`)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="record an event timeline and write Chrome-trace "
                        "JSON (open in chrome://tracing or Perfetto)")


def _add_degrade_flags(p: argparse.ArgumentParser,
                       spec_only: bool = False) -> None:
    from repro.config import MITIGATION_NONE, MITIGATIONS
    from repro.resilience import GENERATOR_FAMILIES

    families = "+".join(sorted(GENERATOR_FAMILIES))
    if spec_only:
        spec_help = (f"apply a seeded fault timeseries to every scenario: "
                     f"'+'-joined generator families from {{{families}}}")
    else:
        spec_help = (f"degrade the fabric mid-replay: a fault-timeseries "
                     f"file (CSV/JSON) or a '+'-joined generator spec from "
                     f"{{{families}}} seeded by --seed")
    p.add_argument("--degrade", default=None, metavar="SPEC", help=spec_help)
    p.add_argument("--degrade-intensity", type=float, default=0.5,
                   metavar="F",
                   help="generator intensity in [0,1] (default 0.5)")
    p.add_argument("--mitigation", default=MITIGATION_NONE,
                   choices=MITIGATIONS,
                   help="mitigation policy for degraded resources "
                        "(default none)")


def _add_sweep_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for independent simulations "
                        "(default 1 = serial; 0 = all cores)")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory (content-addressed JSON)")
    p.add_argument("--cache", action="store_true",
                   help=f"cache results under the default location "
                        f"({default_cache_dir()}) or $REPRO_CACHE_DIR")


def _runner(args: argparse.Namespace) -> SweepRunner:
    cache_dir = args.cache_dir
    if cache_dir is None and getattr(args, "cache", False):
        cache_dir = default_cache_dir()
    workers = args.jobs if args.jobs != 0 else None
    return SweepRunner(workers=workers, cache_dir=cache_dir)


def cmd_capture(args: argparse.Namespace) -> int:
    exp = build_experiment(args)
    res, trace, _ = run_execution_driven(exp, args.workload, args.network,
                                         scale=args.scale)
    assert trace is not None
    out = pathlib.Path(args.out)
    if args.format == "binary":
        from repro.core import tracebin
        tracebin.write_file(trace, out)
    else:
        out.write_text(trace.to_json())
    print(f"captured {len(trace)} messages over {res.exec_time_cycles} cycles "
          f"-> {out} ({out.stat().st_size // 1024} KiB, {args.format})")
    return 0


_OPTICAL_TARGETS = {
    "crossbar": ONOC_CROSSBAR,
    "circuit_mesh": ONOC_CIRCUIT_MESH,
    "swmr_crossbar": "swmr_crossbar",
    "awgr": "awgr",
}


def _target_factory(args: argparse.Namespace, exp: ExperimentConfig):
    if args.target == "electrical":
        return electrical_factory(exp.noc, exp.seed)
    onoc = replace(exp.onoc, topology=_OPTICAL_TARGETS[args.target])
    return optical_factory(onoc, exp.seed)


def _resolve_degrade(spec: str, trace, cores: int, seed: int,
                     intensity: float):
    """Fault timeseries from a ``--degrade`` value: an existing CSV/JSON
    file is parsed, anything else is treated as a ``family[+family]``
    generator spec seeded from ``--seed`` with the horizon tied to the
    trace's injection span."""
    from repro.resilience import FaultTimeseries, generate_timeseries

    path = pathlib.Path(spec)
    if path.is_file():
        return FaultTimeseries.from_text(path.read_text())
    horizon = max((r.t_inject for r in trace.records), default=1)
    return generate_timeseries(spec, seed=seed, num_nodes=cores,
                               horizon=max(1, horizon), intensity=intensity)


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.core import load_trace

    trace = load_trace(pathlib.Path(args.trace))   # JSON or binary, by magic
    cores = trace.meta.get("num_cores", args.cores)
    args.cores = cores
    exp = build_experiment(args)
    fault_events: tuple = ()
    if args.degrade:
        fault_events = _resolve_degrade(
            args.degrade, trace, cores, args.seed,
            args.degrade_intensity).as_tuples()
    result = replay_trace(
        trace, _target_factory(args, exp),
        TraceConfig(mode=args.mode, engine=args.engine,
                    fault_events=fault_events, mitigation=args.mitigation,
                    awgr_occupancy_hint=args.occupancy_hint))
    print(f"mode={result.mode} target={args.target} engine={args.engine}")
    print(f"predicted exec time : {result.exec_time_estimate} cycles")
    print(f"messages replayed   : {result.messages_replayed} "
          f"({result.messages_unreplayed} unreplayed)")
    print(f"wall clock          : {result.wall_clock_s:.3f}s "
          f"({result.sim_events} events)")
    res = result.extra.get("resilience")
    if res is not None:
        pen = res["penalty"]
        print(f"degradation         : {res['events']} fault events, "
              f"mitigation={res['mitigation']}")
        print(f"penalty cycles      : {pen['total_cycles']} "
              f"(slowdown {pen['slowdown_cycles']}, detour "
              f"{pen['detour_cycles']}, retune {pen['retune_cycles']}; "
              f"{pen['messages_affected']}/{pen['messages_total']} messages)")
    hint = result.extra.get("occupancy_hint")
    if hint is not None:
        print(f"occupancy hint      : {hint['deferred']} injections "
              f"deferred ({hint['deferred_cycles']} cycles)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.core import load_trace, tracebin

    src = pathlib.Path(args.file)
    if args.trace_op == "info":
        info = tracebin.trace_info(src)
        skip = ("meta", "blocks", "record_chunk_bytes")
        rows = [{"property": k, "value": v}
                for k, v in info.items() if k not in skip]
        for name, agg in info.get("blocks", {}).items():
            rows.append({"property": f"block.{name}",
                         "value": f"{agg['count']} x {agg['bytes']} B"})
        chunk_bytes = info.get("record_chunk_bytes", [])
        if chunk_bytes:
            shown = ", ".join(str(b) for b in chunk_bytes[:8])
            if len(chunk_bytes) > 8:
                shown += f", ... ({len(chunk_bytes)} chunks)"
            rows.append({"property": "chunk_bytes", "value": shown})
        for k, v in sorted(info.get("meta", {}).items()):
            if isinstance(v, dict):  # e.g. an embedded synth profile
                rows += [{"property": f"meta.{k}.{k2}", "value": v2}
                         for k2, v2 in sorted(v.items())]
            else:
                rows.append({"property": f"meta.{k}", "value": v})
        print(format_table(rows, title=f"trace {src}"))
        return 0
    # convert: whichever format the source is, write the other (or --to).
    trace = load_trace(src)
    to = args.to
    if to is None:
        to = "json" if tracebin.is_binary_trace(src) else "binary"
    out = pathlib.Path(args.out) if args.out else src.with_suffix(
        ".json" if to == "json" else ".rtrc")
    if to == "binary":
        tracebin.write_file(trace, out)
    else:
        out.write_text(trace.to_json())
    print(f"converted {src} -> {out} ({to}, {len(trace)} records, "
          f"{out.stat().st_size // 1024} KiB)")
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    from repro.core import is_binary_trace, load_trace
    from repro.core.tracebin import CHUNK_RECORDS
    from repro.synth import (
        SynthProfile,
        default_profile,
        fit_profile,
        generate_to_file,
        trace_stats,
    )

    def _profile_rows(profile):
        return [{"parameter": k, "value": v}
                for k, v in sorted(profile.as_dict().items())]

    if args.synth_op == "generate":
        if args.profile:
            profile = SynthProfile.load(args.profile)
        else:
            profile = default_profile(args.nodes, args.messages,
                                      pattern=args.pattern)
        chunk = args.chunk_records or CHUNK_RECORDS
        out = generate_to_file(profile, args.out, scale=args.scale,
                               seed=args.seed, chunk_records=chunk)
        print(f"generated {out['messages']} messages -> {out['path']} "
              f"({out['file_bytes'] // 1024} KiB, exec_time "
              f"{out['exec_time']}, {out['wall_clock_s']:.2f} s)")
        return 0

    src = pathlib.Path(args.file)
    if args.synth_op == "fit":
        trace = load_trace(src)
        profile = fit_profile(trace, pattern=args.pattern)
        out = pathlib.Path(args.out) if args.out else src.with_suffix(
            ".profile.json")
        out.write_text(profile.to_json())
        print(format_table(_profile_rows(profile),
                           title=f"fitted profile -> {out}"))
        return 0

    # describe: a profile JSON prints its parameters; a trace file prints
    # the fidelity statistics the generator would be held to.
    if not is_binary_trace(src):
        try:
            profile = SynthProfile.load(src)
        except (ValueError, KeyError, TypeError):
            profile = None
        if profile is not None:
            print(format_table(_profile_rows(profile),
                               title=f"profile {src}"))
            return 0
    stats = trace_stats(load_trace(src))
    rows = [{"statistic": k, "value": round(v, 4) if isinstance(v, float)
             else v} for k, v in stats.items()]
    print(format_table(rows, title=f"fidelity statistics {src}"))
    return 0


def cmd_accuracy(args: argparse.Namespace) -> int:
    exp = build_experiment(args)
    workloads = [w for w in args.workload.split(",") if w]
    acc_rows = accuracy_rows_parallel(_runner(args), exp, workloads,
                                      scale=args.scale)
    for row in acc_rows:
        rows = [
            {"mode": "naive", "estimate": row.naive_estimate,
             "exec_err_%": round(row.naive.exec_time_error_pct, 2),
             "mean_lat_err_%": round(row.naive.mean_latency_error_pct, 2)},
            {"mode": "self_correcting",
             "estimate": row.self_correcting_estimate,
             "exec_err_%": round(row.self_correcting.exec_time_error_pct, 2),
             "mean_lat_err_%": round(
                 row.self_correcting.mean_latency_error_pct, 2)},
        ]
        print(format_table(
            rows,
            title=f"{row.workload}: reference exec {row.ref_exec_time} cycles"))
    return 0


def cmd_casestudy(args: argparse.Namespace) -> int:
    exp = build_experiment(args)
    r = case_study(exp, args.workload, scale=args.scale)
    print(format_table([{
        "workload": r.workload,
        "exec_electrical": r.exec_electrical,
        "exec_optical": r.exec_optical,
        "speedup_x": round(r.speedup, 3),
        "lat_reduction_%": round(r.latency_reduction_pct, 1),
    }], title="Case study"))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    exp = build_experiment(args)
    rates = [float(r) for r in args.rates.split(",")]
    points = load_latency_sweep_parallel(
        _runner(args), args.network, exp, args.pattern, rates)
    rows = [{
        "rate": p.injection_rate,
        "avg_latency": round(p.avg_latency, 1),
        "p99": p.p99_latency,
        "throughput": round(p.throughput_flits_cycle, 3),
        "saturated": p.saturated,
    } for p in points]
    print(format_table(rows,
                       title=f"{args.network} / {args.pattern} load-latency"))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core import profile_trace, sharing_summary

    trace = Trace.from_json(pathlib.Path(args.trace).read_text())
    meta = ", ".join(f"{k}={v}" for k, v in trace.meta.items())
    print(f"trace: {args.trace} ({meta})")
    print(format_table(profile_trace(trace).as_rows(), title="Profile"))
    print()
    print(format_table(
        [{"sharing class": k, "lines": v}
         for k, v in sharing_summary(trace).items()],
        title="Line sharing"))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import generate_report

    exp = build_experiment(args)
    workloads = [w for w in args.workloads.split(",") if w]
    text = generate_report(exp, workloads, scale=args.scale)
    out = pathlib.Path(args.out)
    out.write_text(text)
    print(f"wrote {out} ({len(text.splitlines())} lines)")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro import validate as V

    golden_dir = pathlib.Path(args.golden_dir)
    if args.engines:
        report = V.check_engines(golden_dir)
        for line in report.summary_lines():
            print(line)
        return 0 if report.passed else 1

    if args.regen_golden:
        written = V.regen_golden(golden_dir)
        print(f"regenerated golden corpus: {len(written)} files in "
              f"{golden_dir}")
        for f in written:
            print(f"  {f.name}")
        return 0

    if args.repro:
        scenario = V.load_repro_scenario(pathlib.Path(args.repro))
        outcome = V.run_scenario(scenario, deep=args.deep)
        print(f"replayed repro {scenario.name}: "
              f"{'PASS' if outcome.passed else 'FAIL'}")
        for line in outcome.violations + outcome.envelope_breaches:
            print(f"  {line}")
        return 0 if outcome.passed else 1

    if args.faults == "matrix":
        # Error-vs-severity sweep per fault family on the reference
        # capture/target mismatch pair, gated on smooth degradation.
        base = V.Scenario("fft", 16, 16, 0.1, "awgr", "crossbar",
                          fault_seed=args.fault_seed,
                          gap_policy=args.gap_policy)
        matrix = V.run_fault_matrix(base, runner=_runner(args))
        print(f"fault matrix on {base.name} "
              f"(sc exec error by severity, policy={args.gap_policy}):")
        for line in matrix.summary_lines():
            print(line)
        return 0 if matrix.passed else 1

    if args.smoke:
        scenarios = V.smoke_scenarios()
    else:
        workloads = (tuple(w for w in args.workloads.split(",") if w)
                     if args.workloads else V.SCENARIO_WORKLOADS)
        scenarios = V.generate_scenarios(args.n, args.seed,
                                         workloads=workloads)
    if args.faults or args.gap_policy != "neighbor_gap" or args.degrade:
        from dataclasses import replace as _replace
        faults = V.parse_fault_specs(args.faults) if args.faults else ()
        scenarios = [
            _replace(s, faults=faults, fault_seed=args.fault_seed,
                     gap_policy=args.gap_policy,
                     degrade=args.degrade or "",
                     degrade_intensity=args.degrade_intensity,
                     mitigation=args.mitigation)
            for s in scenarios
        ]
    repro_dir = pathlib.Path(args.repro_dir)
    report = V.run_differential(
        scenarios, runner=_runner(args), deep=args.deep,
        repro_dir=repro_dir, do_shrink=not args.no_shrink)
    for line in report.summary_lines():
        print(line)
    if not report.passed:
        print(f"repro files in {repro_dir}:")
        for path in report.repro_paths:
            print(f"  {path}")
        return 1

    if args.smoke or args.check_golden:
        failures = V.check_golden(golden_dir)
        if failures:
            print(f"golden corpus FAILED ({len(failures)}):")
            for f in failures:
                print(f"  {f}")
            return 1
        print(f"golden corpus ok ({len(V.GOLDEN_SCENARIOS)} scenarios, "
              f"{golden_dir})")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import DEFAULT_PORT, SimulationServer

    cache_dir = args.cache_dir
    if cache_dir is None and args.cache:
        cache_dir = default_cache_dir()
    port = args.port if args.port is not None else DEFAULT_PORT
    peers = [p for chunk in (args.peers or "").split(",")
             if (p := chunk.strip())]
    server = SimulationServer(
        host=args.host, port=port, workers=args.workers,
        max_pending=args.max_pending, job_timeout_s=args.timeout,
        cache_dir=str(cache_dir) if cache_dir else None, salt=args.salt,
        node_id=args.node_id, peers=peers, lru_entries=args.lru_entries)

    async def _run() -> None:
        await server.start()
        fabric = (f", fabric node {server.node_id} "
                  f"({len(server.membership.members)} members)"
                  if peers or args.node_id else "")
        print(f"repro.serve listening on {server.host}:{server.port} "
              f"({server.workers} workers, max {server.max_pending} pending, "
              f"cache {'on: ' + str(cache_dir) if cache_dir else 'off'}"
              f"{fabric})",
              flush=True)
        server.install_signal_handlers()
        await server.wait_closed()
        print("repro.serve drained and stopped", flush=True)

    asyncio.run(_run())
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.harness.parallel import encode_value
    from repro.serve import DEFAULT_PORT, JobFailed, ServeClient, Shed

    port = args.port if args.port is not None else DEFAULT_PORT
    with ServeClient(host=args.host, port=port) as client:
        if args.ping:
            print(_json.dumps(client.ping(), indent=2, sort_keys=True))
            return 0
        if args.status:
            print(_json.dumps(client.status(), indent=2, sort_keys=True))
            return 0
        if args.list_jobs:
            print(_json.dumps(client.jobs(), indent=2, sort_keys=True))
            return 0
        if args.drain:
            print(_json.dumps(client.drain(), indent=2, sort_keys=True))
            return 0
        if not args.op:
            raise SystemExit("submit: an operation name is required "
                             "(or --ping/--status/--jobs/--drain)")

        def on_event(event: dict) -> None:
            if args.watch and event.get("event") not in ("done",):
                print(f"# {_json.dumps(event, sort_keys=True)}",
                      file=sys.stderr, flush=True)

        try:
            result = client.submit_json(
                args.op, args.params, quiet=not args.watch,
                timeout_s=args.timeout, on_event=on_event)
        except Shed as exc:
            print(f"shed: {exc.reason}", file=sys.stderr)
            return 75       # EX_TEMPFAIL: back off and resubmit
        except JobFailed as exc:
            # The original worker-side traceback, not a bare failed status.
            print(str(exc), file=sys.stderr)
            return 1
        print(_json.dumps(encode_value(result), indent=2, sort_keys=True))
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache_dir = args.dir or default_cache_dir()
    if args.clear:
        removed = cache_clear(cache_dir)
        print(f"cleared {removed} cached results from {cache_dir}")
        return 0
    info = cache_info(cache_dir)
    print(format_table([
        {"property": "directory", "value": info["dir"]},
        {"property": "entries", "value": info["entries"]},
        {"property": "size_kib", "value": info["bytes"] // 1024},
    ], title="Sweep result cache"))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    snap = obs.load_metrics(args.file)
    print(obs.format_metrics(snap, title=f"metrics ({args.file})"))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    exp = build_experiment(args)
    print(format_table([
        {"parameter": "cores", "value": exp.system.num_cores},
        {"parameter": "baseline NoC",
         "value": f"{exp.noc.width}x{exp.noc.height} {exp.noc.topology}"},
        {"parameter": "ONOC",
         "value": f"{exp.onoc.num_nodes}-node {exp.onoc.topology}, "
                  f"{exp.onoc.num_wavelengths} λ"},
        {"parameter": "channel bandwidth",
         "value": f"{exp.onoc.channel_gbps} Gb/s"},
        {"parameter": "seed", "value": exp.seed},
    ], title="Resolved configuration"))
    return 0


def cmd_exp_list(args: argparse.Namespace) -> int:
    from repro import exp as E

    rows = []
    for name in E.experiment_names():
        base = E.get_experiment(name)
        rows.append({
            "experiment": name,
            "parameters": len(base.schema.specs),
            "description": base.description.split(".")[0] + ".",
        })
    print(format_table(rows, title="Experiment catalog"))
    configs_root = pathlib.Path(args.configs)
    if not configs_root.is_dir():
        print(f"\n(no config directory {configs_root})")
        return 0
    crows = []
    for path in E.discover_configs(configs_root):
        try:
            cfg = E.resolve_config(path)
        except E.SchemaError as exc:
            crows.append({"config": str(path), "experiment": "ERROR",
                          "hash": "", "note": str(exc)[:60]})
            continue
        crows.append({"config": str(path), "experiment": cfg.experiment,
                      "hash": cfg.config_hash[:10], "note": ""})
    print()
    print(format_table(crows, title=f"Configs under {configs_root}"))
    return 0


def cmd_exp_run(args: argparse.Namespace) -> int:
    from repro import exp as E

    overrides = E.parse_set_override(args.set or [])
    cfg = E.resolve_config(args.config, overrides)
    tasks = E.compile_config(cfg)
    print(f"{cfg.name}: experiment={cfg.experiment} "
          f"hash={cfg.config_hash[:10]} tasks={len(tasks)}")
    if args.dry_run:
        for t in tasks:
            print(f"  {t.fn}  key={t.cache_key()[:12]}")
        return 0

    if args.serve:
        from repro.serve import DEFAULT_PORT, ServeClient

        host, _, port = args.serve.partition(":")
        client = ServeClient(host=host or "127.0.0.1",
                             port=int(port) if port else DEFAULT_PORT)
        executor: object = E.ServeExecutor(client, timeout_s=args.timeout)
    else:
        client = None
        executor = _runner(args)
    try:
        out = E.run_experiment(cfg, executor,
                               archive_root=args.archive_root,
                               baseline_out=args.baseline_out)
    finally:
        if client is not None:
            client.close()
    print(format_table(out.rows, title=f"{cfg.name} ({cfg.experiment})"))
    if out.stats is not None:
        print(f"tasks: {out.stats.executed} executed, {out.stats.cached} "
              f"cached, {out.elapsed_s:.1f}s")
    if out.archive_dir is not None:
        print(f"archive: {out.archive_dir}")
    if args.baseline_out:
        print(f"baseline: {args.baseline_out}")
    return 0


def cmd_exp_diff(args: argparse.Namespace) -> int:
    from repro import exp as E

    a = E.load_archive(args.a)
    b = E.load_archive(args.b)
    gate = None
    if args.tol is not None:
        base_gate = a.gate
        gate = E.GateSpec(args.tol, dict(base_gate.tolerances))
    report = E.diff_archives(a, b, gate=gate)
    print(E.format_diff(report, gated=args.gate))
    if args.gate and not report.gate_ok:
        return 1
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-Correction Trace Model ONOC simulator (IPDPSW'12 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("capture", help="capture a dependency-annotated trace")
    _add_common(p)
    _add_obs_flags(p)
    p.add_argument("--workload", required=True)
    p.add_argument("--network", choices=("electrical", "optical"),
                   default="electrical")
    p.add_argument("--out", default="trace.json")
    p.add_argument("--format", choices=("json", "binary"), default="json",
                   help="trace file format (binary = chunked out-of-core "
                        "format, see docs/TRACE_FORMAT.md)")
    p.set_defaults(fn=cmd_capture)

    p = sub.add_parser("replay",
                       help="replay a trace file (JSON or binary) on a target")
    _add_common(p)
    _add_obs_flags(p)
    p.add_argument("--trace", required=True)
    p.add_argument("--target",
                   choices=("electrical", "crossbar", "circuit_mesh",
                            "swmr_crossbar", "awgr"),
                   default="crossbar")
    p.add_argument("--mode", choices=("naive", "self_correcting"),
                   default="self_correcting")
    p.add_argument("--engine", choices=("event", "generational"),
                   default="event",
                   help="replay implementation: reference event-driven, or "
                        "vectorized generational (optical targets only)")
    _add_degrade_flags(p)
    p.add_argument("--occupancy-hint", action="store_true",
                   help="online λ-lane occupancy hint (event engine, "
                        "per-pair-lane targets): reserve lanes at "
                        "dependency-release time; workload-specific, see "
                        "the awgr-occupancy-hint envelope note")
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("trace",
                       help="trace-file utilities (convert / info)")
    tsub = p.add_subparsers(dest="trace_op", required=True)
    tp = tsub.add_parser("convert",
                         help="convert a trace between JSON and binary")
    tp.add_argument("file", help="source trace file (format autodetected)")
    tp.add_argument("--to", choices=("json", "binary"), default=None,
                    help="target format (default: the other one)")
    tp.add_argument("--out", default=None,
                    help="output path (default: source with .json/.rtrc)")
    tp.set_defaults(fn=cmd_trace)
    tp = tsub.add_parser("info",
                         help="print header/summary without loading records")
    tp.add_argument("file", help="trace file (JSON or binary)")
    tp.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "synth",
        help="synthetic workload generator (generate / fit / describe)")
    ssub = p.add_subparsers(dest="synth_op", required=True)
    sp = ssub.add_parser(
        "generate",
        help="stream a synthetic trace into the binary container")
    sp.add_argument("--out", required=True, help="output .rtrc path")
    sp.add_argument("--profile", default=None,
                    help="profile JSON from 'repro synth fit' (default: a "
                         "built-in profile for --nodes/--messages)")
    sp.add_argument("--nodes", type=int, default=1024)
    sp.add_argument("--messages", type=int, default=100_000)
    sp.add_argument("--pattern", default="uniform")
    sp.add_argument("--scale", type=float, default=1.0,
                    help="message-count multiplier on the profile")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--chunk-records", type=int, default=None,
                    help="records per RECORDS chunk (default: the "
                         "container's standard chunk size)")
    sp.set_defaults(fn=cmd_synth)
    sp = ssub.add_parser(
        "fit", help="fit a generator profile to a captured trace")
    sp.add_argument("file", help="source trace (JSON or binary)")
    sp.add_argument("--out", default=None,
                    help="profile JSON path (default: <trace>.profile.json)")
    sp.add_argument("--pattern", default=None,
                    help="override the pattern heuristic with this "
                         "catalogue pattern")
    sp.set_defaults(fn=cmd_synth)
    sp = ssub.add_parser(
        "describe",
        help="describe a profile JSON or a trace's fidelity statistics")
    sp.add_argument("file", help="profile JSON, or a trace (JSON/binary)")
    sp.set_defaults(fn=cmd_synth)

    p = sub.add_parser("accuracy", help="full accuracy experiment")
    _add_common(p)
    _add_obs_flags(p)
    _add_sweep_flags(p)
    p.add_argument("--workload", required=True,
                   help="kernel name, or comma-separated list")
    p.set_defaults(fn=cmd_accuracy)

    p = sub.add_parser("casestudy", help="ONOC vs electrical case study")
    _add_common(p)
    _add_obs_flags(p)
    p.add_argument("--workload", required=True)
    p.set_defaults(fn=cmd_casestudy)

    p = sub.add_parser("sweep", help="synthetic load-latency sweep")
    _add_common(p)
    _add_obs_flags(p)
    _add_sweep_flags(p)
    p.add_argument("--pattern", choices=sorted(PATTERNS), default="uniform")
    p.add_argument("--network",
                   choices=("electrical", "crossbar", "circuit_mesh"),
                   default="electrical")
    p.add_argument("--rates", default="0.02,0.05,0.1,0.2,0.3")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "validate",
        help="differential validation: randomized scenarios, invariants, "
             "golden corpus (see docs/VALIDATION.md)")
    _add_obs_flags(p)
    _add_sweep_flags(p)
    p.add_argument("--smoke", action="store_true",
                   help="fixed cheap scenario tier + golden corpus check "
                        "(the CI gate)")
    p.add_argument("--n", type=int, default=12,
                   help="randomized scenario count (ignored with --smoke)")
    p.add_argument("--seed", type=int, default=7,
                   help="scenario-generation seed (report is deterministic "
                        "in it, for any --jobs)")
    p.add_argument("--deep", action="store_true",
                   help="add metamorphic checks (self-consistency + "
                        "gap-scaling); ~4x replay cost")
    p.add_argument("--workloads", default=None, metavar="W1,W2,...",
                   help="comma-separated workload pool for random scenarios "
                        "(default: the cheap five; the nightly tier adds "
                        "lu,cholesky,randshare)")
    p.add_argument("--no-shrink", action="store_true",
                   help="report failures without minimizing them")
    p.add_argument("--repro-dir", default="validate-repros",
                   help="where failing-scenario repro JSONs are written")
    p.add_argument("--repro", default=None, metavar="FILE",
                   help="re-run one repro JSON written by a previous failure")
    p.add_argument("--golden-dir", default="tests/golden",
                   help="golden corpus location")
    p.add_argument("--check-golden", action="store_true",
                   help="also verify the golden corpus (implied by --smoke)")
    p.add_argument("--regen-golden", action="store_true",
                   help="regenerate the golden corpus and exit")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="inject trace faults into every scenario, e.g. "
                        "'drop_deps:0.3,jitter:8'; the special value "
                        "'matrix' runs the per-family severity sweep with "
                        "the smooth-degradation gate instead")
    p.add_argument("--fault-seed", type=int, default=777,
                   help="seed for fault-injection decisions")
    p.add_argument("--gap-policy", default="neighbor_gap",
                   choices=("captured", "neighbor_gap", "interp"),
                   help="degraded-gap policy for self-correcting replays "
                        "(default neighbor_gap)")
    p.add_argument("--engines", action="store_true",
                   help="run the generational-vs-event engine differential "
                        "on the golden corpus (all backends x gap policies "
                        "x fault matrix + degraded cells + binary/JSON "
                        "identity) and exit")
    _add_degrade_flags(p, spec_only=True)
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser(
        "serve",
        help="run the resident simulation service (NDJSON TCP + HTTP "
             "healthz/metrics/jobs; see docs/SERVING.md)")
    _add_obs_flags(p)
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1; the protocol is "
                        "for trusted clients only)")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port (default 7433; 0 = ephemeral)")
    p.add_argument("--workers", type=int, default=2,
                   help="simulation worker processes (default 2)")
    p.add_argument("--max-pending", type=int, default=32,
                   help="admission-control cap on queued+running jobs; "
                        "submits beyond it are shed (default 32)")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-job deadline in seconds (none by "
                        "default; requests may set their own)")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory shared with sweep runs")
    p.add_argument("--cache", action="store_true",
                   help="cache under the default location or $REPRO_CACHE_DIR")
    p.add_argument("--salt", default="",
                   help="extra cache-key salt (matches SweepRunner's)")
    p.add_argument("--peers", default="",
                   help="comma-separated host:port list of fabric peers; "
                        "this node announces itself to them and joins the "
                        "consistent-hash ring (see docs/SERVING.md)")
    p.add_argument("--node-id", default=None,
                   help="stable fabric node id (default: host:port)")
    p.add_argument("--lru-entries", type=int, default=1024,
                   help="hot in-memory result-cache entries (default 1024)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit one job to a running service and print its result")
    p.add_argument("op", nargs="?", default=None,
                   help="operation alias (echo, scenario_json, accuracy_json, "
                        "casestudy, resolve_config, ...)")
    p.add_argument("--params", default="",
                   help="JSON object of keyword parameters for the operation")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="service port (default 7433)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job deadline in seconds")
    p.add_argument("--watch", action="store_true",
                   help="stream progress events to stderr while waiting")
    p.add_argument("--ping", action="store_true", help="liveness probe")
    p.add_argument("--status", action="store_true",
                   help="print service status and counters")
    p.add_argument("--jobs", dest="list_jobs", action="store_true",
                   help="list active + recent jobs")
    p.add_argument("--drain", action="store_true",
                   help="ask the service to drain and shut down")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("cache", help="inspect or clear the sweep result cache")
    _add_obs_flags(p)
    p.add_argument("--dir", default=None,
                   help="cache directory (default: the standard location)")
    p.add_argument("--clear", action="store_true", help="delete all entries")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("metrics",
                       help="pretty-print a metrics JSON dump "
                            "(written with --metrics-out)")
    p.add_argument("file", help="metrics JSON file")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("info", help="print the resolved configuration")
    _add_common(p)
    _add_obs_flags(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("analyze",
                       help="profile a captured trace (structure + sharing)")
    _add_obs_flags(p)
    p.add_argument("--trace", required=True)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("report",
                       help="run the evaluation and write a markdown report")
    _add_common(p)
    _add_obs_flags(p)
    p.add_argument("--workloads", default="fft,lu,randshare",
                   help="comma-separated kernel list")
    p.add_argument("--out", default="report.md")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "exp",
        help="declarative experiments: list / run / diff "
             "(see docs/EXPERIMENTS_LAYER.md)")
    esub = p.add_subparsers(dest="exp_op", required=True)

    ep = esub.add_parser("list",
                         help="list the experiment catalog and the configs "
                              "found under --configs")
    ep.add_argument("--configs", default="benchmarks/experiments",
                    help="config directory to scan "
                         "(default benchmarks/experiments)")
    ep.set_defaults(fn=cmd_exp_list)

    ep = esub.add_parser(
        "run",
        help="run one YAML/JSON config and archive the outcome")
    _add_obs_flags(ep)
    _add_sweep_flags(ep)
    ep.add_argument("config", help="config file (.yaml/.yml/.json)")
    ep.add_argument("--set", action="append", metavar="KEY=VALUE",
                    help="override one parameter (JSON-parsed value; "
                         "repeatable)")
    ep.add_argument("--archive-root", default=None, metavar="DIR",
                    help="write a provenance archive directory under DIR")
    ep.add_argument("--baseline-out", default=None, metavar="FILE",
                    help="also write the manifest alone to FILE (the "
                         "checked-in-baseline format)")
    ep.add_argument("--serve", default=None, metavar="HOST:PORT",
                    help="submit the compiled tasks to a repro.serve node "
                         "instead of running locally")
    ep.add_argument("--timeout", type=float, default=None,
                    help="per-task deadline when using --serve")
    ep.add_argument("--dry-run", action="store_true",
                    help="print the compiled task list and exit")
    ep.set_defaults(fn=cmd_exp_run)

    ep = esub.add_parser(
        "diff",
        help="diff two archives (or baseline manifests): parameter deltas "
             "+ per-metric relative change")
    ep.add_argument("a", help="reference archive dir or baseline file")
    ep.add_argument("b", help="candidate archive dir or baseline file")
    ep.add_argument("--gate", action="store_true",
                    help="apply the tolerance policy and exit non-zero on "
                         "any out-of-tolerance metric")
    ep.add_argument("--tol", type=float, default=None, metavar="PCT",
                    help="override the default tolerance (percent) while "
                         "keeping per-metric glob rules")
    ep.set_defaults(fn=cmd_exp_diff)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    want_metrics = getattr(args, "metrics", False)
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    if not (want_metrics or metrics_out or trace_out):
        return args.fn(args)

    # Instrumentation must be live before any simulator/network is built —
    # components bind their probes at construction time (see repro.obs).
    was_enabled = obs.enabled()
    obs.reset()
    obs.enable(True)
    tl = obs.enable_timeline() if trace_out else None
    try:
        rc = args.fn(args)
        snapshot = obs.registry().snapshot()
        if want_metrics:
            print()
            print(obs.format_metrics(snapshot))
        if metrics_out:
            path = obs.dump_metrics(metrics_out, snapshot)
            print(f"wrote metrics -> {path}")
        if tl is not None:
            path = tl.write_chrome_trace(trace_out)
            print(f"wrote chrome trace -> {path} "
                  f"({len(tl)} events, {tl.dropped} dropped)")
        return rc
    finally:
        obs.disable_timeline()
        obs.enable(was_enabled)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
