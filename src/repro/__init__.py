"""repro — Self-Correction Trace Model: A Full-System Simulator for ONOC.

Reproduction of Zhang, He & Fan, IPDPSW 2012 (see DESIGN.md for scope and
the source-text caveat).  Public API tour:

>>> from repro import (
...     default_16core_config, run_execution_driven, replay_trace, TraceConfig,
... )
>>> exp = default_16core_config()
>>> _, trace, _ = run_execution_driven(exp, "fft", "electrical")  # capture
>>> # ... replay `trace` on the optical network, self-correcting:
>>> from repro.harness import optical_factory
>>> result = replay_trace(trace, optical_factory(exp.onoc, exp.seed),
...                       TraceConfig(mode="self_correcting"))

Layers (bottom-up): :mod:`repro.engine` (event kernel), :mod:`repro.noc`
(electrical baseline), :mod:`repro.onoc` (optical networks),
:mod:`repro.system` (full-system CMP), :mod:`repro.core` (the trace model),
:mod:`repro.traffic` / :mod:`repro.power` / :mod:`repro.stats`
(characterisation), :mod:`repro.harness` (per-figure experiment drivers).
"""

from repro.config import (
    CacheConfig,
    ConfigError,
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    PhotonicDeviceConfig,
    SystemConfig,
    TraceConfig,
    default_16core_config,
)
from repro.core import (
    IterativeRefiner,
    NaiveReplayer,
    SelfCorrectingReplayer,
    Trace,
    TraceCapture,
    compare_to_reference,
    replay_trace,
)
from repro.engine import Simulator
from repro.harness import run_execution_driven
from repro.net import Message, NetworkAdapter
from repro.noc import ElectricalNetwork
from repro.onoc import OpticalCrossbar, CircuitSwitchedMesh, build_optical_network
from repro.system import FullSystem, build_workload

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CircuitSwitchedMesh",
    "ConfigError",
    "ElectricalNetwork",
    "ExperimentConfig",
    "FullSystem",
    "IterativeRefiner",
    "Message",
    "NaiveReplayer",
    "NetworkAdapter",
    "NocConfig",
    "OnocConfig",
    "OpticalCrossbar",
    "PhotonicDeviceConfig",
    "SelfCorrectingReplayer",
    "Simulator",
    "SystemConfig",
    "Trace",
    "TraceCapture",
    "TraceConfig",
    "build_optical_network",
    "build_workload",
    "compare_to_reference",
    "default_16core_config",
    "replay_trace",
    "run_execution_driven",
    "__version__",
]
