"""Event and event-queue primitives for the discrete-event kernel.

The queue is a plain binary heap (``heapq``) keyed on ``(time, priority,
seq)``.  ``seq`` is a monotonically increasing sequence number assigned at
scheduling time; it guarantees a *stable* order among events that share a
timestamp and priority, which in turn guarantees deterministic simulations —
a hard requirement for the trace self-correction experiments, where two runs
of the same configuration must produce identical message timings.

Fast path
---------
Heap entries are plain tuples, not :class:`Event` objects:

* ``(time, priority, seq, fn, args)`` — the common, non-cancellable case;
* ``(time, priority, seq, fn, args, event)`` — only when the caller asked
  for a cancellable handle via :meth:`EventQueue.push_cancellable`.

Tuple comparison happens entirely in C and, because ``seq`` is unique, never
reaches the ``fn``/``args`` slots — so ordering is exactly the old
``(time, priority, seq)`` rule with none of the per-comparison Python-level
``__lt__`` dispatch the previous :class:`Event`-on-heap design paid.  The
two entry shapes share indices 0–4, so consumers read ``entry[0]`` (time),
``entry[3]`` (fn) and ``entry[4]`` (args) without caring which kind they
got; ``len(entry) == 6`` identifies a cancellable entry.

:meth:`EventQueue.push_many` bulk-loads a whole schedule (the trace
replayers' startup pattern) by appending raw entries and heapifying once —
O(n) instead of n heap-pushes from a Python loop.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator, Optional, Tuple

#: A heap entry: ``(time, priority, seq, fn, args[, event])``.
Entry = Tuple[Any, ...]


class Event:
    """A cancellable handle to a scheduled callback.

    Only created for callers that explicitly request cancellation rights
    (:meth:`EventQueue.push_cancellable` /
    :meth:`repro.engine.simulator.Simulator.schedule_cancellable`); the fast
    scheduling path allocates no handle at all.  An event may be
    *cancelled*, which leaves its entry in the heap but marks it dead; the
    queue skips dead entries on pop.  This is the classic "lazy deletion"
    scheme — O(1) cancel at the cost of transient heap garbage, which is
    much cheaper than heap re-siftings for NoC workloads where timeouts are
    frequently cancelled.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "_alive", "_queue")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple[Any, ...],
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self._alive = True
        self._queue = queue

    @property
    def alive(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return self._alive

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        if self._alive:
            self._alive = False
            q = self._queue
            if q is not None:
                q._live -= 1
                q._cancelled += 1
                self._queue = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "dead"
        return (
            f"Event(t={self.time}, prio={self.priority}, seq={self.seq}, "
            f"fn={getattr(self.fn, '__qualname__', self.fn)!r}, {state})"
        )


class EventQueue:
    """Binary-heap event queue with deterministic tie-breaking.

    Not thread-safe; the simulation kernel is single-threaded by design
    (parallel experiments shard whole simulations — see
    :mod:`repro.harness.parallel` — never one event loop).
    """

    __slots__ = ("_heap", "_seq", "_live", "_cancelled")

    def __init__(self) -> None:
        self._heap: list[Entry] = []
        self._seq = 0
        self._live = 0
        self._cancelled = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events."""
        return self._live

    @property
    def cancelled_total(self) -> int:
        """Events explicitly cancelled over the queue's lifetime (a cheap
        lifetime counter read by the kernel probe; ``clear`` is not a
        cancellation)."""
        return self._cancelled

    def __bool__(self) -> bool:
        return self._live > 0

    # -------------------------------------------------------------- pushing
    def push(
        self,
        time: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> None:
        """Schedule ``fn(*args)`` at ``time`` (fast path, no handle)."""
        heapq.heappush(self._heap, (time, priority, self._seq, fn, args))
        self._seq += 1
        self._live += 1

    def push_cancellable(
        self,
        time: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at ``time``; returns a cancellable handle."""
        ev = Event(time, priority, self._seq, fn, args, self)
        heapq.heappush(self._heap,
                       (time, priority, self._seq, fn, args, ev))
        self._seq += 1
        self._live += 1
        return ev

    def push_many(
        self,
        items: Iterable[tuple[int, Callable[..., None], tuple[Any, ...]]],
        priority: int = 0,
    ) -> int:
        """Bulk-schedule ``(time, fn, args)`` triples; returns the count.

        Entries get consecutive sequence numbers in iteration order, so the
        deterministic tie-break is identical to pushing them one by one.
        The heap is rebuilt with a single O(n) ``heapify`` instead of n
        sift-ups, which is the dominant cost when a replayer preloads an
        entire trace schedule.
        """
        heap = self._heap
        seq = self._seq
        start = seq
        for time, fn, args in items:
            heap.append((time, priority, seq, fn, args))
            seq += 1
        n = seq - start
        if n:
            self._seq = seq
            self._live += n
            heapq.heapify(heap)
        return n

    # ------------------------------------------------------------ consuming
    def cancel(self, ev: Event) -> None:
        """Cancel a pending event (no-op if already dead)."""
        ev.cancel()

    def pop(self) -> Optional[Entry]:
        """Remove and return the next live entry, or ``None`` if empty.

        The entry is a ``(time, priority, seq, fn, args[, event])`` tuple;
        dead (cancelled) entries are discarded transparently.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if len(entry) == 6:
                ev = entry[5]
                if not ev._alive:
                    continue
                ev._alive = False  # consumed
                ev._queue = None
            self._live -= 1
            return entry
        return None

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event without popping it."""
        heap = self._heap
        while heap:
            head = heap[0]
            if len(head) == 6 and not head[5]._alive:
                heapq.heappop(heap)
                continue
            return head[0]
        return None

    def clear(self) -> None:
        """Drop all pending events."""
        for entry in self._heap:
            if len(entry) == 6:
                entry[5]._alive = False
                entry[5]._queue = None
        self._heap.clear()
        self._live = 0

    def iter_pending(self) -> Iterator[Entry]:
        """Iterate live entries in arbitrary (heap) order — for inspection."""
        return (
            entry for entry in self._heap
            if len(entry) != 6 or entry[5]._alive
        )
