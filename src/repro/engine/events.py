"""Event and event-queue primitives for the discrete-event kernel.

The queue is a plain binary heap (``heapq``) keyed on ``(time, priority,
seq)``.  ``seq`` is a monotonically increasing sequence number assigned at
scheduling time; it guarantees a *stable* order among events that share a
timestamp and priority, which in turn guarantees deterministic simulations —
a hard requirement for the trace self-correction experiments, where two runs
of the same configuration must produce identical message timings.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.engine.simulator.Simulator.schedule`
    rather than directly.  An event may be *cancelled*, which leaves it in the
    heap but marks it dead; the queue skips dead events on pop.  This is the
    classic "lazy deletion" scheme — O(1) cancel at the cost of transient heap
    garbage, which profiling showed is much cheaper than heap re-siftings for
    NoC workloads where timeouts are frequently cancelled.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "_alive")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self._alive = True

    @property
    def alive(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return self._alive

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self._alive = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "dead"
        return (
            f"Event(t={self.time}, prio={self.priority}, seq={self.seq}, "
            f"fn={getattr(self.fn, '__qualname__', self.fn)!r}, {state})"
        )


class EventQueue:
    """Binary-heap event queue with deterministic tie-breaking.

    Not thread-safe; the simulation kernel is single-threaded by design
    (parallel experiments shard whole simulations, never one event loop).
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at ``time``; returns a cancellable handle."""
        ev = Event(time, priority, self._seq, fn, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def cancel(self, ev: Event) -> None:
        """Cancel a pending event (no-op if already dead)."""
        if ev._alive:
            ev._alive = False
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty.

        Dead (cancelled) events are discarded transparently.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev._alive:
                ev._alive = False  # consumed
                self._live -= 1
                return ev
        return None

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event without popping it."""
        heap = self._heap
        while heap and not heap[0]._alive:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0

    def iter_pending(self) -> Iterator[Event]:
        """Iterate live events in arbitrary (heap) order — for inspection."""
        return (ev for ev in self._heap if ev._alive)
