"""Base class for simulated components."""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.events import Event
from repro.engine.simulator import Simulator


class Entity:
    """A named component attached to a :class:`Simulator`.

    Provides scheduling sugar and a per-entity random stream.  Subclasses
    are ordinary Python objects; the kernel imposes no component graph —
    wiring (who calls whom) is done explicitly by the network/system builders
    so that the call topology is visible in one place.
    """

    __slots__ = ("sim", "name")

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name

    def schedule(
        self,
        delay: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> None:
        """Schedule ``fn(*args)`` ``delay`` cycles from now (fast path)."""
        self.sim.schedule_after(delay, fn, args, priority)

    def schedule_cancellable(
        self,
        delay: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` ``delay`` cycles from now; cancellable."""
        return self.sim.schedule_after_cancellable(delay, fn, args, priority)

    @property
    def now(self) -> int:
        """Current simulated time."""
        return self.sim.now

    def rng(self):
        """This entity's private random stream (seeded from sim seed + name)."""
        return self.sim.rng.stream(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"
