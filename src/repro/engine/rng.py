"""Hierarchical deterministic random-number streams.

Every stochastic component (traffic generator, workload kernel, arbiter with
random tie-breaking, ...) gets its *own* ``numpy`` Generator derived from the
master seed and a stable string key.  This gives two properties the
experiments depend on:

* **Reproducibility** — (seed, key) fully determines a stream.
* **Isolation** — adding a new random consumer does not perturb the streams
  of existing components, so accuracy comparisons between simulator variants
  see identical workloads.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngFactory:
    """Factory of named, independent ``numpy.random.Generator`` streams."""

    __slots__ = ("seed", "_cache")

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, key: str) -> np.random.Generator:
        """Return the (cached) generator for ``key``.

        The same key always yields the same generator object within one
        factory, so repeated lookups continue the stream rather than
        restarting it.
        """
        gen = self._cache.get(key)
        if gen is None:
            # zlib.crc32 is stable across processes and Python versions,
            # unlike hash(); SeedSequence mixes it with the master seed.
            key_hash = zlib.crc32(key.encode("utf-8"))
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(key_hash,))
            gen = np.random.Generator(np.random.PCG64(ss))
            self._cache[key] = gen
        return gen

    def fresh(self, key: str) -> np.random.Generator:
        """Return a *restarted* generator for ``key`` (drops cached state)."""
        self._cache.pop(key, None)
        return self.stream(key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngFactory(seed={self.seed}, streams={sorted(self._cache)})"
