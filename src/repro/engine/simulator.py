"""The discrete-event simulator loop and simulated clock.

Time is an integer number of *cycles* of the fastest clock in the system
(the network core clock).  Integer time avoids floating-point drift across
hundreds of millions of events and makes event ordering exact; components
with slower clocks (e.g. a 2 GHz core on a 5 GHz network clock) schedule at
multiples of their period.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.engine.events import Event, EventQueue
from repro.engine.rng import RngFactory


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (scheduling in the past, etc.)."""


class Simulator:
    """Single-threaded deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed; all randomness in a simulation derives from it through
        :class:`~repro.engine.rng.RngFactory`, so a (config, seed) pair fully
        determines the run.
    max_events:
        Safety valve — the run aborts with :class:`SimulationError` after this
        many events, catching accidental infinite self-rescheduling loops in
        component code instead of hanging the test suite.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(10, fired.append, (10,))
    >>> _ = sim.schedule(5, fired.append, (5,))
    >>> sim.run()
    >>> fired
    [5, 10]
    >>> sim.now
    10
    """

    __slots__ = (
        "_queue",
        "_now",
        "_running",
        "_event_count",
        "max_events",
        "rng",
        "_end_hooks",
    )

    def __init__(self, seed: int = 0, max_events: int = 2_000_000_000) -> None:
        self._queue = EventQueue()
        self._now = 0
        self._running = False
        self._event_count = 0
        self.max_events = max_events
        self.rng = RngFactory(seed)
        self._end_hooks: list[Callable[[], None]] = []

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    @property
    def event_count(self) -> int:
        """Total events executed so far (profiling / progress metric)."""
        return self._event_count

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    # ------------------------------------------------------------ scheduling
    def schedule(
        self,
        time: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self._now} "
                f"(fn={getattr(fn, '__qualname__', fn)!r})"
            )
        return self._queue.push(time, fn, args, priority)

    def schedule_after(
        self,
        delay: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` ``delay`` cycles from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, fn, args, priority)

    def cancel(self, ev: Event) -> None:
        """Cancel a previously scheduled event."""
        self._queue.cancel(ev)

    def add_end_hook(self, fn: Callable[[], None]) -> None:
        """Register a callback invoked once when :meth:`run` drains the queue."""
        self._end_hooks.append(fn)

    # ------------------------------------------------------------- execution
    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or simulated time would exceed ``until``.

        With ``until`` given, the clock is left at ``min(until, last event
        time)``; events scheduled at exactly ``until`` ARE executed (closed
        interval), matching the usual "run N cycles" semantics of cycle
        simulators.
        """
        if self._running:
            raise SimulationError("re-entrant Simulator.run() call")
        self._running = True
        queue = self._queue
        try:
            while True:
                next_t = queue.peek_time()
                if next_t is None:
                    break
                if until is not None and next_t > until:
                    self._now = until
                    return
                ev = queue.pop()
                assert ev is not None
                self._now = ev.time
                self._event_count += 1
                if self._event_count > self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events} at t={self._now}"
                    )
                ev.fn(*ev.args)
            for hook in self._end_hooks:
                hook()
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one event; return False if the queue was empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        self._now = ev.time
        self._event_count += 1
        ev.fn(*ev.args)
        return True

    def reset(self) -> None:
        """Clear all pending events and rewind the clock (RNG is untouched)."""
        self._queue.clear()
        self._now = 0
        self._event_count = 0
