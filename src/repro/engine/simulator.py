"""The discrete-event simulator loop and simulated clock.

Time is an integer number of *cycles* of the fastest clock in the system
(the network core clock).  Integer time avoids floating-point drift across
hundreds of millions of events and makes event ordering exact; components
with slower clocks (e.g. a 2 GHz core on a 5 GHz network clock) schedule at
multiples of their period.

The run loop is the hottest code in the repository — every simulated cycle
of every experiment goes through it — so it trades a little readability for
speed: it operates directly on the queue's heap with hoisted locals instead
of going through ``EventQueue.peek_time``/``pop`` (one heap access per
event instead of two, no attribute lookups per iteration).  The observable
semantics are identical to the method-call formulation and are pinned by
the golden determinism tests in ``tests/test_engine_golden.py``.
"""

from __future__ import annotations

from heapq import heappop
from time import perf_counter
from typing import Any, Callable, Iterable, Optional

from repro.engine.events import Event, EventQueue
from repro.engine.rng import RngFactory


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (scheduling in the past, etc.)."""


class Simulator:
    """Single-threaded deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed; all randomness in a simulation derives from it through
        :class:`~repro.engine.rng.RngFactory`, so a (config, seed) pair fully
        determines the run.
    max_events:
        Safety valve — the run aborts with :class:`SimulationError` after this
        many events, catching accidental infinite self-rescheduling loops in
        component code instead of hanging the test suite.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> sim.schedule(10, fired.append, (10,))
    >>> sim.schedule(5, fired.append, (5,))
    >>> sim.run()
    >>> fired
    [5, 10]
    >>> sim.now
    10
    """

    __slots__ = (
        "_queue",
        "_now",
        "_running",
        "_event_count",
        "max_events",
        "rng",
        "_end_hooks",
        "_probe",
    )

    def __init__(self, seed: int = 0, max_events: int = 2_000_000_000) -> None:
        self._queue = EventQueue()
        self._now = 0
        self._running = False
        self._event_count = 0
        self.max_events = max_events
        self.rng = RngFactory(seed)
        self._end_hooks: list[Callable[[], None]] = []
        self._probe = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    @property
    def event_count(self) -> int:
        """Total events executed so far (profiling / progress metric)."""
        return self._event_count

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    # ------------------------------------------------------------ scheduling
    def schedule(
        self,
        time: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> None:
        """Schedule ``fn(*args)`` at absolute ``time`` (>= now).

        Fast path: no handle is allocated.  Use
        :meth:`schedule_cancellable` when the caller may need to cancel.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self._now} "
                f"(fn={getattr(fn, '__qualname__', fn)!r})"
            )
        self._queue.push(time, fn, args, priority)

    def schedule_cancellable(
        self,
        time: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at ``time``; returns a cancellable handle."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self._now} "
                f"(fn={getattr(fn, '__qualname__', fn)!r})"
            )
        return self._queue.push_cancellable(time, fn, args, priority)

    def schedule_after(
        self,
        delay: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> None:
        """Schedule ``fn(*args)`` ``delay`` cycles from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._queue.push(self._now + delay, fn, args, priority)

    def schedule_after_cancellable(
        self,
        delay: int,
        fn: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Like :meth:`schedule_after` but returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push_cancellable(self._now + delay, fn, args,
                                            priority)

    def schedule_many(
        self,
        items: Iterable[tuple[int, Callable[..., None], tuple[Any, ...]]],
        priority: int = 0,
    ) -> int:
        """Bulk-schedule ``(time, fn, args)`` triples; returns the count.

        Equivalent to calling :meth:`schedule` once per item (same
        deterministic ordering) but heapifies the whole batch in one pass —
        the trace replayers use this to preload an entire schedule.
        """
        now = self._now

        def _checked() -> Iterable[tuple[int, Callable[..., None], tuple]]:
            for time, fn, args in items:
                if time < now:
                    raise SimulationError(
                        f"cannot schedule at t={time} < now={now} "
                        f"(fn={getattr(fn, '__qualname__', fn)!r})"
                    )
                yield time, fn, args

        return self._queue.push_many(_checked(), priority)

    def cancel(self, ev: Event) -> None:
        """Cancel a previously scheduled (cancellable) event."""
        ev.cancel()

    def add_end_hook(self, fn: Callable[[], None]) -> None:
        """Register a callback invoked once when :meth:`run` drains the queue."""
        self._end_hooks.append(fn)

    # ---------------------------------------------------------- observability
    @property
    def probe(self):
        """The attached kernel probe, or ``None`` (the zero-overhead default)."""
        return self._probe

    def attach_probe(self, probe) -> None:
        """Attach a kernel probe (see :class:`repro.obs.KernelProbe`).

        With a probe attached, :meth:`run` switches to an instrumented loop
        that additionally tracks the heap high-water mark, events fired and
        cancelled, and wall time, reporting them via ``probe.record_run``
        after every run.  Without one (the default) the hot loop is
        untouched — the disabled path costs a single ``is not None`` check
        per ``run()`` call, not per event.
        """
        self._probe = probe

    def detach_probe(self) -> None:
        """Return to the uninstrumented run loop."""
        self._probe = None

    # ------------------------------------------------------------- execution
    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or simulated time would exceed ``until``.

        With ``until`` given, the clock is left at ``min(until, last event
        time)``; events scheduled at exactly ``until`` ARE executed (closed
        interval), matching the usual "run N cycles" semantics of cycle
        simulators.
        """
        if self._probe is not None:
            return self._run_instrumented(until)
        if self._running:
            raise SimulationError("re-entrant Simulator.run() call")
        self._running = True
        queue = self._queue
        heap = queue._heap
        pop = heappop
        max_events = self.max_events
        try:
            while heap:
                entry = heap[0]
                if len(entry) == 6 and not entry[5]._alive:
                    pop(heap)       # discard dead (cancelled) entry
                    continue
                t = entry[0]
                if until is not None and t > until:
                    self._now = until
                    return
                pop(heap)
                queue._live -= 1
                if len(entry) == 6:
                    ev = entry[5]
                    ev._alive = False   # consumed
                    ev._queue = None
                self._now = t
                count = self._event_count + 1
                self._event_count = count
                if count > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={t}"
                    )
                entry[3](*entry[4])
            for hook in self._end_hooks:
                hook()
        finally:
            self._running = False

    def _run_instrumented(self, until: Optional[int] = None) -> None:
        """:meth:`run` with kernel statistics collection (probe attached).

        Observable simulation semantics are identical to the fast loop —
        same event order, same clock behaviour, pinned by running the
        golden determinism tests under an attached probe — plus heap
        high-water tracking per iteration and one ``probe.record_run`` call
        per run (covering early ``until`` exits and exceptions alike).
        """
        if self._running:
            raise SimulationError("re-entrant Simulator.run() call")
        self._running = True
        queue = self._queue
        heap = queue._heap
        pop = heappop
        max_events = self.max_events
        start_events = self._event_count
        start_now = self._now
        start_cancelled = queue._cancelled
        high_water = len(heap)
        wall_t0 = perf_counter()
        try:
            while heap:
                if len(heap) > high_water:
                    high_water = len(heap)
                entry = heap[0]
                if len(entry) == 6 and not entry[5]._alive:
                    pop(heap)       # discard dead (cancelled) entry
                    continue
                t = entry[0]
                if until is not None and t > until:
                    self._now = until
                    return
                pop(heap)
                queue._live -= 1
                if len(entry) == 6:
                    ev = entry[5]
                    ev._alive = False   # consumed
                    ev._queue = None
                self._now = t
                count = self._event_count + 1
                self._event_count = count
                if count > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={t}"
                    )
                entry[3](*entry[4])
            for hook in self._end_hooks:
                hook()
        finally:
            self._running = False
            self._probe.record_run(
                events=self._event_count - start_events,
                cancelled=queue._cancelled - start_cancelled,
                heap_high_water=high_water,
                wall_s=perf_counter() - wall_t0,
                cycles=self._now - start_now,
            )

    def step(self) -> bool:
        """Execute exactly one event; return False if the queue was empty.

        Semantics match :meth:`run` one event at a time: the ``max_events``
        guard applies, and the end hooks fire when the step that consumed
        the last event drains the queue.
        """
        entry = self._queue.pop()
        if entry is None:
            return False
        self._now = entry[0]
        count = self._event_count + 1
        self._event_count = count
        if count > self.max_events:
            raise SimulationError(
                f"exceeded max_events={self.max_events} at t={self._now}"
            )
        entry[3](*entry[4])
        if not self._queue:
            for hook in self._end_hooks:
                hook()
        return True

    def reset(self) -> None:
        """Clear all pending events and rewind the clock (RNG is untouched)."""
        self._queue.clear()
        self._now = 0
        self._event_count = 0
