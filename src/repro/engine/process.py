"""Lightweight coroutine processes on top of the event kernel.

The core simulators use plain callbacks for speed, but sequential behaviours
(test harnesses, experiment scripts, future device models) read much better
as coroutines.  A process is a generator that yields:

* an ``int`` — sleep that many cycles;
* a :class:`Signal` — park until someone calls :meth:`Signal.fire`;
* another :class:`Process` — park until that process finishes.

Example::

    def writer(sim, sig):
        yield 10
        sig.fire()

    def reader(sim, sig):
        yield sig            # wakes at t=10
        yield 5              # ... t=15

    sig = Signal()
    spawn(sim, writer(sim, sig))
    spawn(sim, reader(sim, sig))
    sim.run()
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.engine.simulator import SimulationError, Simulator

ProcessGen = Generator[Any, Any, Any]


class Signal:
    """One-shot broadcast: processes waiting on it resume when fired."""

    __slots__ = ("_fired", "_waiters", "fire_time")

    def __init__(self) -> None:
        self._fired = False
        self._waiters: list["Process"] = []
        self.fire_time: Optional[int] = None

    @property
    def fired(self) -> bool:
        return self._fired

    def fire(self, sim: Optional[Simulator] = None) -> None:
        """Fire the signal; waiting processes resume in wait order.

        ``sim`` is only needed to stamp :attr:`fire_time`; waiters carry
        their own simulator references.
        """
        if self._fired:
            return
        self._fired = True
        if sim is not None:
            self.fire_time = sim.now
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume(None)

    def _add_waiter(self, proc: "Process") -> bool:
        """Returns False if already fired (waiter should not park)."""
        if self._fired:
            return False
        self._waiters.append(proc)
        return True


class Process:
    """A running coroutine; see module docstring for the yield protocol."""

    __slots__ = ("sim", "gen", "name", "_done", "_done_signal", "result",
                 "_killed")

    def __init__(self, sim: Simulator, gen: ProcessGen, name: str = "proc") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self._done = False
        self._done_signal = Signal()
        self.result: Any = None
        self._killed = False

    @property
    def done(self) -> bool:
        return self._done

    def kill(self) -> None:
        """Stop the process; it never resumes (pending wakeups are inert)."""
        self._killed = True
        if not self._done:
            self._finish(None)

    # -------------------------------------------------------------- driving
    def _resume(self, value: Any) -> None:
        if self._done or self._killed:
            return
        try:
            yielded = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, int):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}")
            self.sim.schedule_after(yielded, self._resume, (None,))
        elif isinstance(yielded, Signal):
            if not yielded._add_waiter(self):
                # Already fired: continue on the next cycle boundary.
                self.sim.schedule_after(0, self._resume, (None,))
        elif isinstance(yielded, Process):
            if not yielded._done_signal._add_waiter(self):
                self.sim.schedule_after(0, self._resume, (None,))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {yielded!r} "
                "(expected int, Signal, or Process)")

    def _finish(self, result: Any) -> None:
        self._done = True
        self.result = result
        self._done_signal.fire(self.sim)


def spawn(sim: Simulator, gen: ProcessGen, name: str = "proc",
          delay: int = 0) -> Process:
    """Start a coroutine process ``delay`` cycles from now."""
    proc = Process(sim, gen, name)
    sim.schedule_after(delay, proc._resume, (None,))
    return proc
