"""Discrete-event simulation kernel.

This package provides the minimal, deterministic discrete-event core that
every other subsystem (electrical NoC, optical NoC, CMP full-system model,
trace replayers) is built on:

* :class:`~repro.engine.events.Event` / :class:`~repro.engine.events.EventQueue`
  — a binary-heap event queue with stable FIFO tie-breaking so that equal
  timestamps are processed in schedule order, which makes whole-simulation
  results bit-reproducible for a fixed seed.
* :class:`~repro.engine.simulator.Simulator` — the event loop, simulated
  clock, and scheduling API.
* :class:`~repro.engine.entity.Entity` — base class for simulated components.
* :class:`~repro.engine.rng.RngFactory` — hierarchical deterministic random
  streams (one independent stream per component).
"""

from repro.engine.entity import Entity
from repro.engine.events import Event, EventQueue
from repro.engine.process import Process, Signal, spawn
from repro.engine.rng import RngFactory
from repro.engine.simulator import SimulationError, Simulator

__all__ = [
    "Entity",
    "Event",
    "EventQueue",
    "Process",
    "RngFactory",
    "Signal",
    "SimulationError",
    "Simulator",
    "spawn",
]
