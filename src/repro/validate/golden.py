"""Golden corpus: checked-in traces + pinned accuracy numbers.

The differential harness bounds error loosely over a randomized space; the
golden corpus is the opposite end of the spectrum — a handful of fixed
scenarios whose captured traces and measured accuracy are checked into
``tests/golden/`` and must reproduce *exactly*:

* ``<name>.trace.json`` — the captured trace, byte-for-byte,
* ``envelopes.json``   — per-scenario execution times, error percentages
  (rounded to 4 decimals) and a sha256 of each trace file.

``repro validate --regen-golden`` rewrites the corpus;
:func:`check_golden` re-captures and re-replays everything and reports any
drift.  Because the simulator is integer-cycle and deterministic in
(config, seed), any diff is a semantic change to capture or replay — the
corpus turns silent model drift into a reviewable file diff.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.config import ONOC_TOPOLOGIES, OnocConfig
from repro.core.replay import SelfCorrectingReplayer
from repro.core.trace import Trace
from repro.harness.builders import optical_factory, run_execution_driven
from repro.validate import invariants as inv
from repro.validate.scenario import Scenario, ScenarioOutcome, run_scenario

#: Fixed corpus scenarios.  Keep them cheap: the corpus is re-verified in CI.
GOLDEN_SCENARIOS = (
    Scenario("fft", 16, 101, 0.25, "electrical", "crossbar"),
    Scenario("radix", 16, 102, 0.25, "electrical", "awgr"),
    Scenario("prodcons", 4, 103, 0.5, "electrical", "circuit_mesh"),
    Scenario("stencil", 16, 104, 0.25, "crossbar", "swmr_crossbar"),
)

ENVELOPES_FILE = "envelopes.json"
GOLDEN_FORMAT = 1


def _trace_path(golden_dir: Path, scenario: Scenario) -> Path:
    return Path(golden_dir) / f"{scenario.name}.trace.json"


def _capture(scenario: Scenario) -> Trace:
    exp = scenario.experiment()
    if scenario.capture == "electrical":
        _, trace, _ = run_execution_driven(
            exp, scenario.workload, "electrical", scale=scenario.scale)
    else:
        cap_exp = dataclasses.replace(
            exp, onoc=dataclasses.replace(exp.onoc,
                                          topology=scenario.capture))
        _, trace, _ = run_execution_driven(
            cap_exp, scenario.workload, "optical", scale=scenario.scale)
    assert trace is not None
    return trace


def _envelope_entry(outcome: ScenarioOutcome, trace_bytes: bytes) -> dict:
    return {
        "trace_sha256": hashlib.sha256(trace_bytes).hexdigest(),
        "trace_messages": outcome.trace_messages,
        "ref_exec_time": outcome.ref_exec_time,
        "sc_exec_estimate": outcome.sc_exec_estimate,
        "naive_exec_estimate": outcome.naive_exec_estimate,
        "sc_exec_error_pct": round(outcome.sc_exec_error_pct, 4),
        "sc_mean_latency_error_pct":
            round(outcome.sc_mean_latency_error_pct, 4),
        "naive_exec_error_pct": round(outcome.naive_exec_error_pct, 4),
        "sc_demoted_cyclic": outcome.sc_demoted_cyclic,
        "sc_unreplayed": outcome.sc_unreplayed,
    }


def measure_gap_scaling_dip(golden_dir: Path,
                            factors: tuple[int, ...] = (1, 2, 4)) -> float:
    """Worst non-monotone dip (%) in the gap-scaling sweep over the corpus.

    Replays every stored golden trace, gap-scaled by each factor, on *all*
    optical backends with the self-correcting replayer, and returns the
    largest percentage by which a larger scale factor predicted a *shorter*
    execution than the previous one (0.0 when the prediction is strictly
    monotone, which is what every measured corpus to date shows).  This is
    the empirical basis for ``invariants.GAP_SCALING_SLACK_PCT``; regen pins
    it in ``envelopes.json`` so any drift is a reviewable diff.
    """
    worst = 0.0
    for scenario in GOLDEN_SCENARIOS:
        trace = Trace.from_json(
            _trace_path(golden_dir, scenario).read_text())
        for topology in ONOC_TOPOLOGIES:
            factory = optical_factory(
                OnocConfig(num_nodes=scenario.cores,
                           num_wavelengths=scenario.wavelengths,
                           topology=topology),
                scenario.seed)
            prev = None
            for k in sorted(factors):
                scaled = inv.scale_trace_gaps(trace, k)
                sim, net = factory()
                est = SelfCorrectingReplayer(scaled, sim, net).run() \
                    .exec_time_estimate
                if prev is not None and est < prev:
                    worst = max(worst, (prev - est) / prev * 100.0)
                prev = est
    return worst


def regen_golden(golden_dir: Path) -> list[Path]:
    """(Re)write the whole corpus; returns the files written.

    Deterministic: running twice on the same platform produces byte-identical
    files, which is exactly what the acceptance check in CI asserts.
    """
    golden_dir = Path(golden_dir)
    golden_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    envelopes: dict = {"format": GOLDEN_FORMAT, "scenarios": {}}
    env_path = golden_dir / ENVELOPES_FILE
    if env_path.exists():
        # Curated analysis notes (e.g. the radix->awgr outlier study) are
        # hand-written and survive a regen.
        notes = json.loads(env_path.read_text()).get("notes")
        if notes:
            envelopes["notes"] = notes
    for scenario in GOLDEN_SCENARIOS:
        trace = _capture(scenario)
        trace_bytes = (trace.to_json() + "\n").encode()
        path = _trace_path(golden_dir, scenario)
        path.write_bytes(trace_bytes)
        written.append(path)
        outcome = run_scenario(scenario)
        envelopes["scenarios"][scenario.name] = _envelope_entry(
            outcome, trace_bytes)
    envelopes["bounds"] = {
        "gap_scaling_max_dip_pct": round(
            measure_gap_scaling_dip(golden_dir), 4),
        "gap_scaling_slack_pct": inv.GAP_SCALING_SLACK_PCT,
    }
    env_path.write_text(
        json.dumps(envelopes, indent=2, sort_keys=True) + "\n")
    written.append(env_path)
    return written


def check_golden(golden_dir: Path) -> list[str]:
    """Verify the corpus against a fresh capture + replay; returns failures."""
    golden_dir = Path(golden_dir)
    failures: list[str] = []
    env_path = golden_dir / ENVELOPES_FILE
    if not env_path.exists():
        return [f"missing {env_path} — run `repro validate --regen-golden`"]
    envelopes = json.loads(env_path.read_text())
    if envelopes.get("format") != GOLDEN_FORMAT:
        return [f"unsupported golden format in {env_path}"]
    recorded = envelopes.get("scenarios", {})

    # The pinned gap-scaling measurement must exist and must not exceed the
    # slack the metamorphic check actually grants (else the slack constant
    # no longer covers reality and needs re-deriving, not hand-editing).
    pinned_dip = envelopes.get("bounds", {}).get("gap_scaling_max_dip_pct")
    if pinned_dip is None:
        failures.append("bounds.gap_scaling_max_dip_pct missing from "
                        "envelopes — regen needed")
    elif pinned_dip > inv.GAP_SCALING_SLACK_PCT:
        failures.append(
            f"pinned gap-scaling dip {pinned_dip}% exceeds "
            f"GAP_SCALING_SLACK_PCT={inv.GAP_SCALING_SLACK_PCT}%")

    for scenario in GOLDEN_SCENARIOS:
        name = scenario.name
        entry = recorded.get(name)
        path = _trace_path(golden_dir, scenario)
        if entry is None or not path.exists():
            failures.append(f"{name}: missing from corpus — regen needed")
            continue

        stored_bytes = path.read_bytes()
        sha = hashlib.sha256(stored_bytes).hexdigest()
        if sha != entry["trace_sha256"]:
            failures.append(f"{name}: trace file does not match its "
                            "recorded sha256")
        stored_trace = Trace.from_json(stored_bytes.decode())
        for v in inv.check_trace(stored_trace):
            failures.append(f"{name}: stored trace violates {v}")

        fresh = _capture(scenario)
        fresh_bytes = (fresh.to_json() + "\n").encode()
        if fresh_bytes != stored_bytes:
            failures.append(f"{name}: fresh capture differs from the stored "
                            "trace (capture semantics changed — regen and "
                            "review the diff)")
            continue

        outcome = run_scenario(scenario)
        got = _envelope_entry(outcome, fresh_bytes)
        for key, want in entry.items():
            if got.get(key) != want:
                failures.append(
                    f"{name}: {key} = {got.get(key)!r}, corpus pins {want!r}")
    unknown = set(recorded) - {s.name for s in GOLDEN_SCENARIOS}
    for name in sorted(unknown):
        failures.append(f"{name}: in corpus but not in GOLDEN_SCENARIOS")
    return failures
