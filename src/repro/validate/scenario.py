"""Scenario space for the differential harness.

A :class:`Scenario` is one point in the (capture network x target backend x
workload x core count x scale) space: everything needed to reproduce a
differential run is in its fields, so a failing scenario serializes to a
small JSON blob anyone can replay with ``repro validate --repro <file>``.

:func:`run_scenario` is deliberately a *module-level* function of codec-
friendly arguments so :class:`repro.harness.SweepRunner` can ship it to
worker processes and content-hash it into the on-disk result cache.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.config import (
    ExperimentConfig,
    GAP_POLICIES,
    GAP_POLICY_CAPTURED,
    GAP_POLICY_NEIGHBOR,
    MITIGATION_NONE,
    MITIGATIONS,
    NocConfig,
    OnocConfig,
    ONOC_TOPOLOGIES,
    SystemConfig,
    TRACE_NAIVE,
    TRACE_SELF_CORRECTING,
    TraceConfig,
)
from repro.core import compare_to_reference, replay_trace
from repro.resilience import GENERATOR_FAMILIES, generate_timeseries
from repro.validate.faults import FaultModel, apply_faults
from repro.harness.builders import (
    backend_in_order_channels,
    electrical_factory,
    optical_factory,
    run_execution_driven,
)
from repro.validate import invariants as inv

#: Capture-side network names: the electrical baseline plus every backend.
CAPTURE_NETWORKS = ("electrical",) + ONOC_TOPOLOGIES

#: Workloads cheap enough for randomized fan-out (the full catalogue is in
#: repro.system; these five cover the traffic-shape space).
SCENARIO_WORKLOADS = ("fft", "radix", "prodcons", "barnes", "stencil")


@dataclass(frozen=True)
class Scenario:
    """One differential-test configuration (fully reproducible from fields)."""

    workload: str
    cores: int
    seed: int
    scale: float
    capture: str                    # "electrical" or an ONOC topology
    target: str                     # ONOC topology replayed/validated against
    wavelengths: int = 32
    keep_dep_fraction: float = 1.0  # < 1 ablates dependency edges
    faults: tuple = ()              # FaultModel sequence applied to the trace
    fault_seed: int = 777
    gap_policy: str = GAP_POLICY_NEIGHBOR
    degrade: str = ""               # generator families ("+"-joined), "" off
    degrade_intensity: float = 0.5
    mitigation: str = MITIGATION_NONE

    def __post_init__(self) -> None:
        side = math.isqrt(self.cores)
        if side * side != self.cores or self.cores < 4:
            raise ValueError(f"cores must be a square >= 4, got {self.cores}")
        if self.capture not in CAPTURE_NETWORKS:
            raise ValueError(f"unknown capture network {self.capture!r}")
        if self.target not in ONOC_TOPOLOGIES:
            raise ValueError(f"unknown target backend {self.target!r}")
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if not 0.0 <= self.keep_dep_fraction <= 1.0:
            raise ValueError("keep_dep_fraction must be in [0, 1]")
        if self.gap_policy not in GAP_POLICIES:
            raise ValueError(f"unknown gap_policy {self.gap_policy!r}")
        if self.degrade:
            unknown = set(self.degrade.split("+")) - set(GENERATOR_FAMILIES)
            if unknown:
                raise ValueError(
                    f"unknown degradation families {sorted(unknown)} "
                    f"(available: {sorted(GENERATOR_FAMILIES)})")
        if not 0.0 <= self.degrade_intensity <= 1.0:
            raise ValueError("degrade_intensity must be in [0, 1]")
        if self.mitigation not in MITIGATIONS:
            raise ValueError(f"unknown mitigation {self.mitigation!r}")
        # Normalize (frozen dataclass: assign via object.__setattr__) so the
        # scenario content-hashes identically however the faults were given.
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if not isinstance(f, FaultModel):
                raise ValueError(f"faults entries must be FaultModel, got "
                                 f"{f!r}")
        # AWGR routes each (src, dst) pair on its own wavelength, so the
        # backend itself requires num_wavelengths >= num_nodes - 1.
        if "awgr" in (self.capture, self.target) \
                and self.wavelengths < self.cores - 1:
            raise ValueError(
                f"awgr needs >= {self.cores - 1} wavelengths for "
                f"{self.cores} cores, got {self.wavelengths}")

    @property
    def name(self) -> str:
        frac = ("" if self.keep_dep_fraction == 1.0
                else f"-keep{self.keep_dep_fraction:g}")
        # Default-valued new fields leave golden/smoke names untouched.
        faults = "".join(
            f"-{f.name}{f.severity:g}" for f in self.faults)
        policy = ("" if self.gap_policy == GAP_POLICY_NEIGHBOR
                  else f"-{self.gap_policy}")
        degrade = ("" if not self.degrade
                   else f"-dg.{self.degrade}"
                        f".i{self.degrade_intensity:g}.{self.mitigation}")
        return (f"{self.workload}-c{self.cores}-s{self.seed}"
                f"-x{self.scale:g}-w{self.wavelengths}"
                f"-{self.capture}-to-{self.target}{frac}{faults}{policy}"
                f"{degrade}")

    def experiment(self) -> ExperimentConfig:
        side = math.isqrt(self.cores)
        return ExperimentConfig(
            system=SystemConfig(num_cores=self.cores,
                                num_mem_ctrls=max(1, self.cores // 4)),
            noc=NocConfig(width=side, height=side),
            onoc=OnocConfig(num_nodes=self.cores,
                            num_wavelengths=self.wavelengths,
                            topology=self.target),
            seed=self.seed,
        )


@dataclass(frozen=True)
class ErrorEnvelope:
    """Acceptable divergence between the trace model and ground truth.

    The defaults are deliberately loose structural bounds — the differential
    harness hunts for *model breakage* (stalls, invariant violations, wild
    error blow-ups), not for the paper's headline precision, which the golden
    corpus pins per-configuration.  Naive replay error is *unbounded by
    design* (it embeds the capture network's timing, so a slow capture
    network replayed onto a fast target can be off by any factor); its bound
    only exists to catch a harness returning garbage.
    """

    max_sc_exec_error_pct: float = 25.0
    max_sc_mean_latency_error_pct: float = 60.0
    max_naive_exec_error_pct: float = 100_000.0
    max_unreplayed: int = 0
    self_consistency_pct: float = 5.0

    def check(self, outcome: "ScenarioOutcome") -> list[str]:
        """Envelope breaches for ``outcome`` (empty list = within bounds).

        Ablated scenarios (``keep_dep_fraction < 1``) intentionally degrade
        the model toward naive replay, so their self-correcting error is held
        to the naive bound instead of the precision bound.
        """
        bad: list[str] = []
        # Faulted scenarios intentionally degrade toward naive replay, the
        # same way keep_dep_fraction ablation does: naive bound applies.
        # Degraded-fabric scenarios diverge from the *pristine* execution-
        # driven reference by design, so they get the same loose bound.
        ablated = (outcome.scenario.keep_dep_fraction < 1.0
                   or bool(outcome.scenario.faults)
                   or bool(outcome.scenario.degrade))
        sc_bound = (self.max_naive_exec_error_pct if ablated
                    else self.max_sc_exec_error_pct)
        if outcome.sc_exec_error_pct > sc_bound:
            bad.append(
                f"self-correcting exec error {outcome.sc_exec_error_pct:.2f}%"
                f" > {sc_bound}%")
        if (not ablated and outcome.sc_mean_latency_error_pct
                > self.max_sc_mean_latency_error_pct):
            bad.append(
                f"self-correcting latency error "
                f"{outcome.sc_mean_latency_error_pct:.2f}%"
                f" > {self.max_sc_mean_latency_error_pct}%")
        if outcome.naive_exec_error_pct > self.max_naive_exec_error_pct:
            bad.append(
                f"naive exec error {outcome.naive_exec_error_pct:.2f}%"
                f" > {self.max_naive_exec_error_pct}%")
        # The captured policy stalls on fault-severed triggers by design;
        # every other policy must replay everything even under faults.
        stalls_expected = (bool(outcome.scenario.faults)
                           and outcome.scenario.gap_policy
                           == GAP_POLICY_CAPTURED)
        if not stalls_expected and outcome.sc_unreplayed > self.max_unreplayed:
            bad.append(
                f"{outcome.sc_unreplayed} messages unreplayed"
                f" (allowed {self.max_unreplayed})")
        return bad


@dataclass
class ScenarioOutcome:
    """Everything :func:`run_scenario` measured for one scenario."""

    scenario: Scenario
    trace_messages: int
    ref_exec_time: int
    sc_exec_estimate: int
    naive_exec_estimate: int
    sc_exec_error_pct: float
    sc_mean_latency_error_pct: float
    naive_exec_error_pct: float
    sc_unreplayed: int
    sc_demoted_cyclic: int
    sc_rederived: int = 0           # degraded records re-derived from anchors
    fault_damaged: int = 0          # records the fault layer touched
    violations: list[str] = field(default_factory=list)
    envelope_breaches: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations and not self.envelope_breaches

    def failure_summary(self) -> str:
        parts = self.violations + self.envelope_breaches
        return "; ".join(parts[:6]) + ("..." if len(parts) > 6 else "")


def run_scenario(
    scenario: Scenario,
    envelope: Optional[ErrorEnvelope] = None,
    deep: bool = False,
) -> ScenarioOutcome:
    """Run the full differential check for one scenario.

    Capture an execution-driven trace on ``scenario.capture``, run the
    execution-driven ground truth on ``scenario.target``, replay the
    captured trace there with both replayers, then apply the invariant
    catalogue and the error envelope.  ``scenario.faults`` are applied to
    the captured trace (after the pristine-trace checks, seeded by
    ``scenario.fault_seed``), and the self-correcting replay runs under
    ``scenario.gap_policy``.  ``deep=True`` adds the two metamorphic checks
    (self-consistency and gap-scaling), roughly quadrupling the replay cost.
    """
    envelope = envelope or ErrorEnvelope()
    exp = scenario.experiment()
    if scenario.capture == "electrical":
        cap_exp = exp
        cap_factory = electrical_factory(exp.noc, exp.seed)
        _, trace, _ = run_execution_driven(
            cap_exp, scenario.workload, "electrical", scale=scenario.scale)
    else:
        cap_onoc = dataclasses.replace(exp.onoc, topology=scenario.capture)
        cap_exp = dataclasses.replace(exp, onoc=cap_onoc)
        cap_factory = optical_factory(cap_onoc, exp.seed)
        _, trace, _ = run_execution_driven(
            cap_exp, scenario.workload, "optical", scale=scenario.scale)
    assert trace is not None

    # Backends whose in_order_channels capability flag is set are held to
    # the strict per-channel FIFO form of the monotonicity invariant.  The
    # pristine trace is checked *before* fault injection — faults then damage
    # a known-good artifact.
    violations = [str(v) for v in inv.check_trace(
        trace, strict_fifo=backend_in_order_channels(scenario.capture))]

    fault_reports = ()
    if scenario.faults:
        trace, fault_reports = apply_faults(
            trace, scenario.faults, scenario.fault_seed)

    # Degradation timeseries: deterministic in (families, seed, cores) with
    # the horizon tied to the captured injection span, so the same scenario
    # always replays under the same fabric weather.
    fault_events: tuple = ()
    if scenario.degrade:
        horizon = max((r.t_inject for r in trace.records), default=1)
        fault_events = generate_timeseries(
            scenario.degrade, seed=scenario.seed,
            num_nodes=scenario.cores, horizon=max(1, horizon),
            intensity=scenario.degrade_intensity).as_tuples()

    ref_res, ref_trace, _ = run_execution_driven(
        exp, scenario.workload, "optical", scale=scenario.scale)
    assert ref_trace is not None
    factory = optical_factory(exp.onoc, exp.seed)
    naive = replay_trace(trace, factory,
                         TraceConfig(mode=TRACE_NAIVE,
                                     fault_events=fault_events,
                                     mitigation=scenario.mitigation))
    sc = replay_trace(
        trace, factory,
        TraceConfig(mode=TRACE_SELF_CORRECTING,
                    keep_dep_fraction=scenario.keep_dep_fraction,
                    degraded_gap_policy=scenario.gap_policy,
                    fault_events=fault_events,
                    mitigation=scenario.mitigation))
    # The disable mitigation's detour latency legitimately reorders
    # overlapping same-channel flights, so degraded replays skip the strict
    # FIFO form of the channel invariant.
    strict_target = (backend_in_order_channels(scenario.target)
                     and not fault_events)
    violations += [str(v) for v in inv.check_replay(
        trace, naive, strict_fifo=strict_target)]
    violations += [str(v) for v in inv.check_replay(
        trace, sc, strict_fifo=strict_target)]

    if deep:
        violations += [str(v) for v in inv.check_self_consistency(
            trace, cap_factory, tolerance_pct=envelope.self_consistency_pct)]
        violations += [str(v) for v in inv.check_gap_scaling(trace, factory)]

    sc_report = compare_to_reference(sc, ref_trace)
    naive_report = compare_to_reference(naive, ref_trace)
    outcome = ScenarioOutcome(
        scenario=scenario,
        trace_messages=len(trace),
        ref_exec_time=ref_res.exec_time_cycles,
        sc_exec_estimate=sc.exec_time_estimate,
        naive_exec_estimate=naive.exec_time_estimate,
        sc_exec_error_pct=sc_report.exec_time_error_pct,
        sc_mean_latency_error_pct=sc_report.mean_latency_error_pct,
        naive_exec_error_pct=naive_report.exec_time_error_pct,
        sc_unreplayed=sc.messages_unreplayed,
        sc_demoted_cyclic=sc.demoted_cyclic,
        sc_rederived=sc.rederived_records,
        fault_damaged=sum(r.damaged_count for r in fault_reports),
        violations=violations,
    )
    outcome.envelope_breaches = envelope.check(outcome)
    return outcome
