"""Differential harness: randomized scenario fan-out, shrinking, repro files.

The harness samples seeded scenarios from the (capture x target x workload x
cores x scale) space, runs each through :func:`repro.validate.scenario.run_scenario`
— fanning out over worker processes via :class:`repro.harness.SweepRunner` —
and reduces every failure to a *minimal* scenario by greedily simplifying one
dimension at a time while the failure reproduces.  Shrunk failures serialize
to small repro JSONs (see :func:`write_repro`) that ``repro validate --repro``
replays directly.

Determinism: scenario generation uses only ``random.Random(seed)``, the
simulator is deterministic in (config, seed), and SweepRunner returns results
in submission order — so the full report is identical for any ``--jobs``
value and across runs.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Optional

from repro.config import ONOC_TOPOLOGIES
from repro.validate.scenario import (
    CAPTURE_NETWORKS,
    ErrorEnvelope,
    SCENARIO_WORKLOADS,
    Scenario,
    ScenarioOutcome,
    run_scenario,
)

#: Module-path reference SweepRunner workers resolve (must stay importable).
RUN_SCENARIO_REF = "repro.validate.scenario:run_scenario"


def generate_scenarios(
    n: int,
    seed: int,
    workloads: tuple[str, ...] = SCENARIO_WORKLOADS,
) -> list[Scenario]:
    """``n`` seeded random scenarios (deterministic in ``(n, seed,
    workloads)``).

    The first ``len(CAPTURE_NETWORKS) x len(ONOC_TOPOLOGIES)`` draws sweep
    every capture->target pair once before free sampling, so even small
    batches exercise every backend combination.  ``workloads`` widens (or
    narrows) the sampled workload pool — the nightly CI tier passes the
    heavyweight kernels (lu, cholesky, randshare) that are too slow for the
    per-push smoke gate.
    """
    if not workloads:
        raise ValueError("workloads must be non-empty")
    from repro.system import WORKLOADS as _ALL
    unknown = [w for w in workloads if w not in _ALL]
    if unknown:
        raise ValueError(f"unknown workloads: {', '.join(unknown)} "
                         f"(known: {', '.join(sorted(_ALL))})")
    rng = random.Random(seed)
    pairs = [(c, t) for c in CAPTURE_NETWORKS for t in ONOC_TOPOLOGIES
             if c != t]
    rng.shuffle(pairs)
    out: list[Scenario] = []
    for i in range(n):
        if i < len(pairs):
            capture, target = pairs[i]
        else:
            capture = rng.choice(CAPTURE_NETWORKS)
            target = rng.choice([t for t in ONOC_TOPOLOGIES if t != capture])
        cores = rng.choice((4, 16, 16, 64))
        wavelengths = rng.choice((16, 32, 64))
        if "awgr" in (capture, target):
            # AWGR is only feasible with >= cores-1 wavelengths.
            wavelengths = min(w for w in (16, 32, 64) if w >= cores - 1)
        out.append(Scenario(
            workload=rng.choice(workloads),
            cores=cores,
            seed=rng.randrange(1, 10_000),
            scale=rng.choice((0.1, 0.25, 0.5)),
            capture=capture,
            target=target,
            wavelengths=wavelengths,
            keep_dep_fraction=rng.choice((1.0, 1.0, 1.0, 0.9)),
        ))
    return out


def smoke_scenarios() -> list[Scenario]:
    """The fixed CI smoke tier: cheap, covers every backend as a target."""
    return [
        Scenario("fft", 16, 11, 0.25, "electrical", "crossbar"),
        Scenario("radix", 16, 12, 0.25, "electrical", "circuit_mesh"),
        Scenario("prodcons", 16, 13, 0.25, "electrical", "swmr_crossbar"),
        Scenario("barnes", 16, 14, 0.25, "electrical", "awgr"),
        Scenario("stencil", 4, 15, 0.5, "crossbar", "circuit_mesh"),
        Scenario("fft", 16, 16, 0.1, "awgr", "crossbar",
                 keep_dep_fraction=0.9),
    ]


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

def _shrink_candidates(s: Scenario) -> list[Scenario]:
    """One-step simplifications of ``s``, most aggressive first.

    Infeasible combinations (e.g. dropping wavelengths below what an awgr
    endpoint needs) are rejected by Scenario validation and skipped.
    """
    raw = []
    if s.cores > 4:
        raw.append({"cores": max(4, s.cores // 4)})
    if s.scale > 0.1:
        raw.append({"scale": max(0.1, round(s.scale / 2, 3))})
    if s.keep_dep_fraction != 1.0:
        raw.append({"keep_dep_fraction": 1.0})
    if s.wavelengths > 16:
        raw.append({"wavelengths": 16})
    if s.capture != "electrical":
        raw.append({"capture": "electrical"})
    cands: list[Scenario] = []
    for change in raw:
        try:
            cands.append(replace(s, **change))
        except ValueError:
            continue
    return cands


def shrink(
    scenario: Scenario,
    envelope: Optional[ErrorEnvelope] = None,
    deep: bool = False,
    max_steps: int = 12,
    runner_fn: Callable[..., ScenarioOutcome] = run_scenario,
) -> tuple[Scenario, ScenarioOutcome]:
    """Greedily minimize a failing scenario while it still fails.

    Each round tries the one-step simplifications of the current scenario in
    order and keeps the first that still fails; stops when none do (a local
    minimum) or after ``max_steps``.  Returns the minimal scenario and its
    outcome.  ``runner_fn`` is injectable for tests.
    """
    current = scenario
    outcome = runner_fn(current, envelope, deep)
    if outcome.passed:
        raise ValueError(f"scenario {scenario.name} does not fail; "
                         "nothing to shrink")
    for _ in range(max_steps):
        for cand in _shrink_candidates(current):
            cand_outcome = runner_fn(cand, envelope, deep)
            if not cand_outcome.passed:
                current, outcome = cand, cand_outcome
                break
        else:
            break
    return current, outcome


# ---------------------------------------------------------------------------
# Repro files
# ---------------------------------------------------------------------------

REPRO_FORMAT = 1


def write_repro(outcome: ScenarioOutcome, out_dir: Path) -> Path:
    """Serialize a failing outcome to ``<out_dir>/<scenario-name>.json``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{outcome.scenario.name}.json"
    blob = {
        "format": REPRO_FORMAT,
        "scenario": asdict(outcome.scenario),
        "violations": outcome.violations,
        "envelope_breaches": outcome.envelope_breaches,
        "measured": {
            "trace_messages": outcome.trace_messages,
            "ref_exec_time": outcome.ref_exec_time,
            "sc_exec_estimate": outcome.sc_exec_estimate,
            "naive_exec_estimate": outcome.naive_exec_estimate,
            "sc_exec_error_pct": round(outcome.sc_exec_error_pct, 4),
            "sc_mean_latency_error_pct":
                round(outcome.sc_mean_latency_error_pct, 4),
            "naive_exec_error_pct": round(outcome.naive_exec_error_pct, 4),
            "sc_unreplayed": outcome.sc_unreplayed,
            "sc_demoted_cyclic": outcome.sc_demoted_cyclic,
        },
    }
    path.write_text(json.dumps(blob, indent=2, sort_keys=True) + "\n")
    return path


def load_repro_scenario(path: Path) -> Scenario:
    """Scenario back out of a repro JSON written by :func:`write_repro`."""
    blob = json.loads(Path(path).read_text())
    if blob.get("format") != REPRO_FORMAT:
        raise ValueError(f"unsupported repro format in {path}")
    return Scenario(**blob["scenario"])


# ---------------------------------------------------------------------------
# Batch driver
# ---------------------------------------------------------------------------

@dataclass
class DifferentialReport:
    """Aggregate result of one differential batch."""

    outcomes: list[ScenarioOutcome]
    shrunk: list[ScenarioOutcome] = field(default_factory=list)
    repro_paths: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.passed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary_lines(self) -> list[str]:
        lines = [f"{len(self.outcomes)} scenarios, "
                 f"{len(self.failures)} failed"]
        for o in self.outcomes:
            status = "ok  " if o.passed else "FAIL"
            lines.append(
                f"  {status} {o.scenario.name}: "
                f"sc {o.sc_exec_error_pct:.2f}% / naive "
                f"{o.naive_exec_error_pct:.2f}% exec error, "
                f"{o.trace_messages} msgs"
                + (f" — {o.failure_summary()}" if not o.passed else ""))
        for o in self.shrunk:
            lines.append(f"  shrunk -> {o.scenario.name}: "
                         f"{o.failure_summary()}")
        return lines


def run_differential(
    scenarios: list[Scenario],
    runner=None,
    envelope: Optional[ErrorEnvelope] = None,
    deep: bool = False,
    repro_dir: Optional[Path] = None,
    do_shrink: bool = True,
) -> DifferentialReport:
    """Run a batch of scenarios, shrink failures, write repro files.

    ``runner`` is a :class:`repro.harness.SweepRunner` (or None to run
    sequentially in-process).  Results are deterministic in the scenario
    list regardless of worker count.
    """
    envelope = envelope or ErrorEnvelope()
    if runner is None:
        outcomes = [run_scenario(s, envelope, deep) for s in scenarios]
    else:
        outcomes = runner.map(RUN_SCENARIO_REF,
                              [(s,) for s in scenarios],
                              envelope=envelope, deep=deep)
    report = DifferentialReport(outcomes=outcomes)
    for failing in report.failures:
        if do_shrink:
            minimal, min_outcome = shrink(failing.scenario, envelope, deep)
        else:
            min_outcome = failing
        report.shrunk.append(min_outcome)
        if repro_dir is not None:
            report.repro_paths.append(
                str(write_repro(min_outcome, repro_dir)))
    return report
