"""Differential harness: randomized scenario fan-out, shrinking, repro files.

The harness samples seeded scenarios from the (capture x target x workload x
cores x scale) space, runs each through :func:`repro.validate.scenario.run_scenario`
— fanning out over worker processes via :class:`repro.harness.SweepRunner` —
and reduces every failure to a *minimal* scenario by greedily simplifying one
dimension at a time while the failure reproduces.  Shrunk failures serialize
to small repro JSONs (see :func:`write_repro`) that ``repro validate --repro``
replays directly.

Determinism: scenario generation uses only ``random.Random(seed)``, the
simulator is deterministic in (config, seed), and SweepRunner returns results
in submission order — so the full report is identical for any ``--jobs``
value and across runs.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Optional

from repro.config import ONOC_TOPOLOGIES
from repro.validate.faults import (
    FAULT_FAMILIES,
    fault_from_dict,
    fault_to_dict,
)
from repro.validate.scenario import (
    CAPTURE_NETWORKS,
    ErrorEnvelope,
    SCENARIO_WORKLOADS,
    Scenario,
    ScenarioOutcome,
    run_scenario,
)

#: Module-path reference SweepRunner workers resolve (must stay importable).
RUN_SCENARIO_REF = "repro.validate.scenario:run_scenario"


def generate_scenarios(
    n: int,
    seed: int,
    workloads: tuple[str, ...] = SCENARIO_WORKLOADS,
) -> list[Scenario]:
    """``n`` seeded random scenarios (deterministic in ``(n, seed,
    workloads)``).

    The first ``len(CAPTURE_NETWORKS) x len(ONOC_TOPOLOGIES)`` draws sweep
    every capture->target pair once before free sampling, so even small
    batches exercise every backend combination.  ``workloads`` widens (or
    narrows) the sampled workload pool — the nightly CI tier passes the
    heavyweight kernels (lu, cholesky, randshare) that are too slow for the
    per-push smoke gate.
    """
    if not workloads:
        raise ValueError("workloads must be non-empty")
    from repro.system import WORKLOADS as _ALL
    unknown = [w for w in workloads if w not in _ALL]
    if unknown:
        raise ValueError(f"unknown workloads: {', '.join(unknown)} "
                         f"(known: {', '.join(sorted(_ALL))})")
    rng = random.Random(seed)
    pairs = [(c, t) for c in CAPTURE_NETWORKS for t in ONOC_TOPOLOGIES
             if c != t]
    rng.shuffle(pairs)
    out: list[Scenario] = []
    for i in range(n):
        if i < len(pairs):
            capture, target = pairs[i]
        else:
            capture = rng.choice(CAPTURE_NETWORKS)
            target = rng.choice([t for t in ONOC_TOPOLOGIES if t != capture])
        cores = rng.choice((4, 16, 16, 64))
        wavelengths = rng.choice((16, 32, 64))
        if "awgr" in (capture, target):
            # AWGR is only feasible with >= cores-1 wavelengths.
            wavelengths = min(w for w in (16, 32, 64) if w >= cores - 1)
        out.append(Scenario(
            workload=rng.choice(workloads),
            cores=cores,
            seed=rng.randrange(1, 10_000),
            scale=rng.choice((0.1, 0.25, 0.5)),
            capture=capture,
            target=target,
            wavelengths=wavelengths,
            keep_dep_fraction=rng.choice((1.0, 1.0, 1.0, 0.9)),
        ))
    return out


def smoke_scenarios() -> list[Scenario]:
    """The fixed CI smoke tier: cheap, covers every backend as a target."""
    return [
        Scenario("fft", 16, 11, 0.25, "electrical", "crossbar"),
        Scenario("radix", 16, 12, 0.25, "electrical", "circuit_mesh"),
        Scenario("prodcons", 16, 13, 0.25, "electrical", "swmr_crossbar"),
        Scenario("barnes", 16, 14, 0.25, "electrical", "awgr"),
        Scenario("stencil", 4, 15, 0.5, "crossbar", "circuit_mesh"),
        Scenario("fft", 16, 16, 0.1, "awgr", "crossbar",
                 keep_dep_fraction=0.9),
    ]


# ---------------------------------------------------------------------------
# Fault matrix
# ---------------------------------------------------------------------------

#: Severity grid for error-vs-fault-severity curves (0 = pristine anchor).
DEFAULT_FAULT_SEVERITIES = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)

#: Maximum tolerated |Δ exec error| per unit severity between adjacent grid
#: points.  Measured on the reference mismatch pair (fft-16, awgr captured,
#: crossbar target, naive endpoint ~132%): under ``neighbor_gap`` the
#: steepest legitimate segment is ``rewire`` 0 -> 0.1 at a slope of ~633
#: (rewired causality is arithmetically silent, so the replayer cannot soften
#: it), while the ``captured`` re-anchoring cliff concentrates the whole
#: pristine-to-naive range in one 0.1 step — a slope of ~1290.  900 splits
#: the two with >40% margin each way.
DEFAULT_MAX_SLOPE_PCT_PER_UNIT = 900.0


def fault_matrix_scenarios(
    base: Scenario,
    families: Optional[tuple[str, ...]] = None,
    severities: tuple[float, ...] = DEFAULT_FAULT_SEVERITIES,
    fault_seed: int = 777,
) -> dict[str, list[tuple[float, Scenario]]]:
    """Per-family severity sweeps derived from ``base``.

    Every family shares the severity-0 point (the pristine base scenario),
    so the curves anchor at the same origin.
    """
    families = families or tuple(sorted(FAULT_FAMILIES))
    unknown = [f for f in families if f not in FAULT_FAMILIES]
    if unknown:
        raise ValueError(f"unknown fault families: {', '.join(unknown)} "
                         f"(known: {', '.join(sorted(FAULT_FAMILIES))})")
    out: dict[str, list[tuple[float, Scenario]]] = {}
    for fam in families:
        build = FAULT_FAMILIES[fam]
        out[fam] = [
            (sev,
             base if sev == 0.0 else replace(
                 base, faults=(build(sev),), fault_seed=fault_seed))
            for sev in sorted(severities)
        ]
    return out


def check_fault_matrix_smooth(
    points: list[tuple[float, float]],
    max_slope_pct_per_unit: float = DEFAULT_MAX_SLOPE_PCT_PER_UNIT,
) -> list[str]:
    """Breaches of the smooth-degradation property for one family's curve.

    ``points`` is ``[(severity, sc_exec_error_pct), ...]``.  Between each
    pair of adjacent severities the error may move at most
    ``max_slope_pct_per_unit`` error points per unit severity — a cliff
    (the historical re-anchoring collapse) concentrates the entire
    pristine-to-naive error range in one small severity step and fails.
    """
    bad: list[str] = []
    pts = sorted(points)
    for (s1, e1), (s2, e2) in zip(pts, pts[1:]):
        if s2 <= s1:
            continue
        slope = abs(e2 - e1) / (s2 - s1)
        if slope > max_slope_pct_per_unit:
            bad.append(
                f"error jumps {abs(e2 - e1):.1f} points between severity "
                f"{s1:g} and {s2:g} (slope {slope:.0f} > "
                f"{max_slope_pct_per_unit:g} per unit severity)")
    return bad


@dataclass
class FaultMatrixReport:
    """Per-family severity curves plus smoothness breaches."""

    curves: dict[str, list[tuple[float, ScenarioOutcome]]]
    breaches: dict[str, list[str]] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return (not any(self.breaches.values())
                and all(o.passed for pts in self.curves.values()
                        for _, o in pts))

    def summary_lines(self) -> list[str]:
        lines = []
        for fam, pts in sorted(self.curves.items()):
            curve = ", ".join(
                f"{sev:g}:{o.sc_exec_error_pct:.1f}%" for sev, o in pts)
            status = "ok  " if not self.breaches.get(fam) else "FAIL"
            lines.append(f"  {status} {fam}: {curve}")
            for b in self.breaches.get(fam, ()):
                lines.append(f"       {b}")
        return lines


def run_fault_matrix(
    base: Scenario,
    families: Optional[tuple[str, ...]] = None,
    severities: tuple[float, ...] = DEFAULT_FAULT_SEVERITIES,
    fault_seed: int = 777,
    runner=None,
    envelope: Optional[ErrorEnvelope] = None,
    max_slope_pct_per_unit: float = DEFAULT_MAX_SLOPE_PCT_PER_UNIT,
) -> FaultMatrixReport:
    """Sweep fault severity per family and check smooth degradation.

    Scenarios across families are flattened into one batch (deduplicated on
    the shared severity-0 point) so a SweepRunner can fan the whole matrix
    out at once.
    """
    envelope = envelope or ErrorEnvelope()
    matrix = fault_matrix_scenarios(base, families, severities, fault_seed)
    unique: dict[str, Scenario] = {}
    for pts in matrix.values():
        for _, s in pts:
            unique.setdefault(s.name, s)
    ordered = list(unique.values())
    if runner is None:
        results = [run_scenario(s, envelope) for s in ordered]
    else:
        results = runner.map(RUN_SCENARIO_REF,
                             [(s,) for s in ordered], envelope=envelope)
    by_name = {s.name: o for s, o in zip(ordered, results)}
    curves = {
        fam: [(sev, by_name[s.name]) for sev, s in pts]
        for fam, pts in matrix.items()
    }
    breaches = {
        fam: check_fault_matrix_smooth(
            [(sev, o.sc_exec_error_pct) for sev, o in pts],
            max_slope_pct_per_unit)
        for fam, pts in curves.items()
    }
    return FaultMatrixReport(curves=curves,
                             breaches={f: b for f, b in breaches.items() if b})


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

def _shrink_candidates(s: Scenario) -> list[Scenario]:
    """One-step simplifications of ``s``, most aggressive first.

    Infeasible combinations (e.g. dropping wavelengths below what an awgr
    endpoint needs) are rejected by Scenario validation and skipped.
    """
    raw = []
    if s.cores > 4:
        raw.append({"cores": max(4, s.cores // 4)})
    if s.scale > 0.1:
        raw.append({"scale": max(0.1, round(s.scale / 2, 3))})
    if s.keep_dep_fraction != 1.0:
        raw.append({"keep_dep_fraction": 1.0})
    if s.faults:
        # Drop the last fault first (faults compose left-to-right, so the
        # prefix is still a meaningful, smaller damage model).
        raw.append({"faults": s.faults[:-1]})
    if s.wavelengths > 16:
        raw.append({"wavelengths": 16})
    if s.capture != "electrical":
        raw.append({"capture": "electrical"})
    cands: list[Scenario] = []
    for change in raw:
        try:
            cands.append(replace(s, **change))
        except ValueError:
            continue
    return cands


def shrink(
    scenario: Scenario,
    envelope: Optional[ErrorEnvelope] = None,
    deep: bool = False,
    max_steps: int = 12,
    runner_fn: Callable[..., ScenarioOutcome] = run_scenario,
) -> tuple[Scenario, ScenarioOutcome]:
    """Greedily minimize a failing scenario while it still fails.

    Each round tries the one-step simplifications of the current scenario in
    order and keeps the first that still fails; stops when none do (a local
    minimum) or after ``max_steps``.  Returns the minimal scenario and its
    outcome.  ``runner_fn`` is injectable for tests.
    """
    current = scenario
    outcome = runner_fn(current, envelope, deep)
    if outcome.passed:
        raise ValueError(f"scenario {scenario.name} does not fail; "
                         "nothing to shrink")
    for _ in range(max_steps):
        for cand in _shrink_candidates(current):
            cand_outcome = runner_fn(cand, envelope, deep)
            if not cand_outcome.passed:
                current, outcome = cand, cand_outcome
                break
        else:
            break
    return current, outcome


# ---------------------------------------------------------------------------
# Repro files
# ---------------------------------------------------------------------------

REPRO_FORMAT = 1


def write_repro(outcome: ScenarioOutcome, out_dir: Path) -> Path:
    """Serialize a failing outcome to ``<out_dir>/<scenario-name>.json``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{outcome.scenario.name}.json"
    scenario_blob = asdict(outcome.scenario)
    # asdict flattens nested fault dataclasses into anonymous dicts; replace
    # them with the tagged form fault_from_dict can reconstruct.
    scenario_blob["faults"] = [fault_to_dict(f)
                               for f in outcome.scenario.faults]
    blob = {
        "format": REPRO_FORMAT,
        "scenario": scenario_blob,
        "violations": outcome.violations,
        "envelope_breaches": outcome.envelope_breaches,
        "measured": {
            "trace_messages": outcome.trace_messages,
            "ref_exec_time": outcome.ref_exec_time,
            "sc_exec_estimate": outcome.sc_exec_estimate,
            "naive_exec_estimate": outcome.naive_exec_estimate,
            "sc_exec_error_pct": round(outcome.sc_exec_error_pct, 4),
            "sc_mean_latency_error_pct":
                round(outcome.sc_mean_latency_error_pct, 4),
            "naive_exec_error_pct": round(outcome.naive_exec_error_pct, 4),
            "sc_unreplayed": outcome.sc_unreplayed,
            "sc_demoted_cyclic": outcome.sc_demoted_cyclic,
            "sc_rederived": outcome.sc_rederived,
            "fault_damaged": outcome.fault_damaged,
        },
    }
    path.write_text(json.dumps(blob, indent=2, sort_keys=True) + "\n")
    return path


def load_repro_scenario(path: Path) -> Scenario:
    """Scenario back out of a repro JSON written by :func:`write_repro`."""
    blob = json.loads(Path(path).read_text())
    if blob.get("format") != REPRO_FORMAT:
        raise ValueError(f"unsupported repro format in {path}")
    fields = dict(blob["scenario"])
    fields["faults"] = tuple(
        fault_from_dict(f) for f in fields.get("faults", ()))
    return Scenario(**fields)


# ---------------------------------------------------------------------------
# Batch driver
# ---------------------------------------------------------------------------

@dataclass
class DifferentialReport:
    """Aggregate result of one differential batch."""

    outcomes: list[ScenarioOutcome]
    shrunk: list[ScenarioOutcome] = field(default_factory=list)
    repro_paths: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.passed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary_lines(self) -> list[str]:
        lines = [f"{len(self.outcomes)} scenarios, "
                 f"{len(self.failures)} failed"]
        for o in self.outcomes:
            status = "ok  " if o.passed else "FAIL"
            lines.append(
                f"  {status} {o.scenario.name}: "
                f"sc {o.sc_exec_error_pct:.2f}% / naive "
                f"{o.naive_exec_error_pct:.2f}% exec error, "
                f"{o.trace_messages} msgs"
                + (f" — {o.failure_summary()}" if not o.passed else ""))
        for o in self.shrunk:
            lines.append(f"  shrunk -> {o.scenario.name}: "
                         f"{o.failure_summary()}")
        return lines


def run_differential(
    scenarios: list[Scenario],
    runner=None,
    envelope: Optional[ErrorEnvelope] = None,
    deep: bool = False,
    repro_dir: Optional[Path] = None,
    do_shrink: bool = True,
) -> DifferentialReport:
    """Run a batch of scenarios, shrink failures, write repro files.

    ``runner`` is a :class:`repro.harness.SweepRunner` (or None to run
    sequentially in-process).  Results are deterministic in the scenario
    list regardless of worker count.
    """
    envelope = envelope or ErrorEnvelope()
    if runner is None:
        outcomes = [run_scenario(s, envelope, deep) for s in scenarios]
    else:
        outcomes = runner.map(RUN_SCENARIO_REF,
                              [(s,) for s in scenarios],
                              envelope=envelope, deep=deep)
    report = DifferentialReport(outcomes=outcomes)
    for failing in report.failures:
        if do_shrink:
            minimal, min_outcome = shrink(failing.scenario, envelope, deep)
        else:
            min_outcome = failing
        report.shrunk.append(min_outcome)
        if repro_dir is not None:
            report.repro_paths.append(
                str(write_repro(min_outcome, repro_dir)))
    return report
