"""Engine differential: generational (vectorized) vs event-driven replay.

The generational engine (:mod:`repro.core.generational`) promises
*envelope-level* equivalence with the reference event engine, not
per-message equality: both engines resolve the same dependency DAG against
the same closed-form backend timing, but they may settle on different —
equally self-consistent — FIFO schedules when contending messages tie (see
``docs/TRACE_FORMAT.md`` for the contract and its three documented
deviations).  This module pins that contract over the golden corpus:

* **counts must match exactly** — messages replayed/unreplayed, ablated
  dependency edges, demoted cyclic records, stalls, re-derived records are
  all integer bookkeeping with no scheduling freedom;
* **exec-time estimates must agree within a small relative tolerance** —
  3% for the deterministic policies, 6% when the ``interp`` warp heuristic
  meets ablation (the warp is measured from the previous relaxation pass
  rather than online, a documented approximation);
* **the generational result must satisfy the invariant catalogue**
  (:func:`repro.validate.invariants.check_replay`) including strict
  per-channel FIFO where the backend guarantees it;
* **binary-format replay must be result-identical to JSON-format replay** —
  same trace bytes in, same ``ReplayResult`` out, regardless of container.

The matrix is all four golden scenarios (one per optical backend) x replay
modes x gap policies x dependency ablation x a representative slice of the
fault families.  ``repro validate --engines`` runs it from the CLI.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import (
    ENGINE_EVENT,
    ENGINE_GENERATIONAL,
    GAP_POLICIES,
    GAP_POLICY_CAPTURED,
    GAP_POLICY_INTERP,
    MITIGATIONS,
    OnocConfig,
    TRACE_NAIVE,
    TRACE_SELF_CORRECTING,
    TraceConfig,
)
from repro.core.replay import ReplayResult, replay_trace
from repro.core.trace import Trace
from repro.harness.builders import backend_in_order_channels, optical_factory
from repro.resilience import generate_timeseries
from repro.validate import invariants as inv
from repro.validate.faults import apply_faults, parse_fault_specs
from repro.validate.golden import GOLDEN_SCENARIOS, _trace_path

#: Relative exec-estimate tolerance (percent) between the engines.
EXEC_TOL_PCT = 3.0
#: Looser bound when the ``interp`` warp heuristic is active on a degraded
#: trace — the generational engine measures the node-local warp from its
#: previous relaxation pass, the event engine measures it online.
EXEC_TOL_PCT_INTERP = 6.0

#: Fault slice for the matrix: one selection fault, one timing fault, one
#: structural fault, at the moderate severities the fault-matrix gate uses.
ENGINE_FAULT_SPECS = ("drop_deps:0.3", "jitter:8", "truncate:0.1")

#: Degraded slice: one seeded fault *timeseries* per backend cell, replayed
#: through both engines under identical events (the resilience subsystem's
#: engine-equivalence pin).  Intensity stays moderate on purpose: extreme
#: degradation (>= 0.9) multiplies FIFO occupancies up to ~20x, which
#: widens the engines' documented same-cycle scheduling freedom beyond the
#: exec tolerance without indicating a semantic divergence.
ENGINE_DEGRADE_FAMILY = "thermal_drift+corruption_bursts"
ENGINE_DEGRADE_INTENSITY = 0.7

#: Count fields of :class:`ReplayResult` that must match *exactly*.
COUNT_FIELDS = (
    "messages_replayed",
    "messages_unreplayed",
    "dropped_deps",
    "demoted_cyclic",
    "stalled_count",
    "rederived_records",
)


@dataclass(frozen=True)
class EngineCell:
    """One point of the engine differential matrix."""

    scenario: str
    topology: str
    mode: str
    policy: str
    keep: float
    faults: str
    event_exec: int
    gen_exec: int
    tol_pct: float
    count_mismatches: tuple[str, ...]
    violations: tuple[str, ...]
    converged: bool

    @property
    def rel_err_pct(self) -> float:
        base = max(1, abs(self.event_exec))
        return abs(self.gen_exec - self.event_exec) / base * 100.0

    @property
    def passed(self) -> bool:
        return (not self.count_mismatches and not self.violations
                and self.converged and self.rel_err_pct <= self.tol_pct)

    def describe(self) -> str:
        flags = []
        if self.count_mismatches:
            flags.append(f"counts differ: {', '.join(self.count_mismatches)}")
        if self.violations:
            flags.append(f"{len(self.violations)} invariant violations")
        if not self.converged:
            flags.append("did not converge")
        if self.rel_err_pct > self.tol_pct:
            flags.append(f"exec err {self.rel_err_pct:.2f}% > "
                         f"{self.tol_pct:.1f}%")
        tag = "ok" if self.passed else "FAIL (" + "; ".join(flags) + ")"
        fault_tag = f" faults={self.faults}" if self.faults else ""
        return (f"{self.scenario:>9s}->{self.topology:<13s} {self.mode:>15s} "
                f"{self.policy:<12s} keep={self.keep:<4g}{fault_tag} "
                f"ev={self.event_exec} gen={self.gen_exec} "
                f"({self.rel_err_pct:+.2f}%) {tag}")


@dataclass
class EngineReport:
    """Full engine-differential outcome (cells + format-identity checks)."""

    cells: list[EngineCell] = field(default_factory=list)
    format_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (not self.format_failures
                and all(c.passed for c in self.cells))

    def summary_lines(self) -> list[str]:
        lines = [f"engine differential: {len(self.cells)} cells, "
                 f"{sum(1 for c in self.cells if not c.passed)} failed, "
                 f"binary/JSON identity "
                 f"{'ok' if not self.format_failures else 'FAILED'}"]
        lines += [c.describe() for c in self.cells]
        lines += [f"  format: {f}" for f in self.format_failures]
        lines.append(f"engine differential {'PASS' if self.passed else 'FAIL'}")
        return lines


def _counts_diff(ev: ReplayResult, gen: ReplayResult) -> tuple[str, ...]:
    out = []
    for name in COUNT_FIELDS:
        a, b = getattr(ev, name), getattr(gen, name)
        if a != b:
            out.append(f"{name} {a}!={b}")
    return tuple(out)


def compare_engines(
    trace: Trace,
    onoc: OnocConfig,
    cfg: TraceConfig,
    seed: int,
    scenario: str = "?",
    faults: str = "",
) -> EngineCell:
    """Run both engines on one (trace, target, config) point and score it."""
    ev = replay_trace(trace, optical_factory(onoc, seed),
                      dataclasses.replace(cfg, engine=ENGINE_EVENT))
    gen = replay_trace(trace, optical_factory(onoc, seed),
                       dataclasses.replace(cfg, engine=ENGINE_GENERATIONAL))
    # The ``disable`` mitigation's detour latency can legitimately deliver
    # an earlier-injected message after a later one on the same channel
    # (the detour rides a different physical path), so degraded replays are
    # exempt from the strict per-channel FIFO form.
    strict = (backend_in_order_channels(onoc.topology)
              and not cfg.fault_events)
    violations = tuple(
        str(v) for v in inv.check_replay(trace, gen, strict_fifo=strict))
    interp_degraded = (cfg.degraded_gap_policy == GAP_POLICY_INTERP
                       and (cfg.keep_dep_fraction < 1.0 or bool(faults)))
    tol = EXEC_TOL_PCT_INTERP if interp_degraded else EXEC_TOL_PCT
    return EngineCell(
        scenario=scenario,
        topology=onoc.topology,
        mode=cfg.mode,
        policy=cfg.degraded_gap_policy,
        keep=cfg.keep_dep_fraction,
        faults=faults,
        event_exec=ev.exec_time_estimate,
        gen_exec=gen.exec_time_estimate,
        tol_pct=tol,
        count_mismatches=_counts_diff(ev, gen),
        violations=violations,
        converged=bool(gen.extra.get("converged", False)),
    )


def _format_identity(trace: Trace, onoc: OnocConfig, seed: int,
                     scenario: str) -> list[str]:
    """Binary-container replay must equal JSON-container replay exactly."""
    failures: list[str] = []
    rt = Trace.from_binary(trace.to_binary())
    json_rt = Trace.from_json(trace.to_json())
    for engine in (ENGINE_EVENT, ENGINE_GENERATIONAL):
        cfg = TraceConfig(mode=TRACE_SELF_CORRECTING, engine=engine)
        a = replay_trace(json_rt, optical_factory(onoc, seed), cfg)
        b = replay_trace(rt, optical_factory(onoc, seed), cfg)
        if (a.exec_time_estimate != b.exec_time_estimate
                or a.injections != b.injections
                or a.deliveries != b.deliveries):
            failures.append(
                f"{scenario}->{onoc.topology} [{engine}]: binary-loaded "
                f"trace replays differently from JSON-loaded "
                f"(exec {a.exec_time_estimate} vs {b.exec_time_estimate})")
    return failures


def check_engines(golden_dir: Path,
                  fast: bool = False) -> EngineReport:
    """Run the engine differential over the golden corpus.

    ``fast=True`` trims the matrix to one gap policy and no fault slice —
    the per-commit test-suite subset; the full matrix backs
    ``repro validate --engines`` and the CI perf/validation legs.
    """
    golden_dir = Path(golden_dir)
    report = EngineReport()
    policies = (GAP_POLICY_CAPTURED,) if fast else GAP_POLICIES
    keeps = (1.0, 0.9)
    for cell_idx, scenario in enumerate(GOLDEN_SCENARIOS):
        trace = Trace.from_json(_trace_path(golden_dir, scenario).read_text())
        onoc = OnocConfig(num_nodes=scenario.cores,
                          num_wavelengths=scenario.wavelengths,
                          topology=scenario.target)
        name = scenario.workload
        report.cells.append(compare_engines(
            trace, onoc, TraceConfig(mode=TRACE_NAIVE), scenario.seed,
            scenario=name))
        for policy in policies:
            for keep in keeps:
                cfg = TraceConfig(mode=TRACE_SELF_CORRECTING,
                                  degraded_gap_policy=policy,
                                  keep_dep_fraction=keep,
                                  dep_drop_seed=7)
                report.cells.append(compare_engines(
                    trace, onoc, cfg, scenario.seed, scenario=name))
        if not fast:
            for spec in ENGINE_FAULT_SPECS:
                damaged, _ = apply_faults(
                    trace, parse_fault_specs(spec), seed=777)
                cfg = TraceConfig(mode=TRACE_SELF_CORRECTING)
                report.cells.append(compare_engines(
                    damaged, onoc, cfg, scenario.seed,
                    scenario=name, faults=spec))
        # Degraded cell: one per backend, identical fault timeseries through
        # both engines (cycling the mitigation policy across the corpus so
        # each one is engine-pinned somewhere).
        horizon = max((r.t_inject for r in trace.records), default=1)
        series = generate_timeseries(
            ENGINE_DEGRADE_FAMILY, seed=scenario.seed,
            num_nodes=scenario.cores, horizon=max(1, horizon),
            intensity=ENGINE_DEGRADE_INTENSITY)
        mitigation = MITIGATIONS[cell_idx % len(MITIGATIONS)]
        cfg = TraceConfig(mode=TRACE_SELF_CORRECTING,
                          fault_events=series.as_tuples(),
                          mitigation=mitigation)
        report.cells.append(compare_engines(
            trace, onoc, cfg, scenario.seed, scenario=name,
            faults=f"degrade:{ENGINE_DEGRADE_FAMILY}/{mitigation}"))
        report.format_failures += _format_identity(
            trace, onoc, scenario.seed, name)
    return report
