"""Invariant catalogue: structural properties every trace and replay obeys.

Each invariant is a named predicate over a :class:`~repro.core.trace.Trace`
(or a ``(Trace, ReplayResult)`` pair) that the paper's methodology implies
but the type system cannot enforce.  Checkers return
:class:`Violation` lists instead of raising, so the differential harness can
collect every broken property of a failing scenario in one pass and the
test-suite can assert on specific invariant names.

Trace invariants
----------------
``trace.unique_ids``              msg_ids and semantic keys are unique.
``trace.referential_integrity``   cause/bound ids resolve to in-trace
                                  records; a bound edge implies a cause edge.
``trace.causality``               every injection equals its trigger's
                                  delivery plus the captured edge gap (roots:
                                  gap equals the absolute offset); gaps >= 0.
``trace.acyclicity``              the dependency graph has a schedulable
                                  topological order (no zero-latency cycles).
``trace.latency_nonnegative``     no record is delivered before injection.
``trace.end_marker_consistency``  end-marker causes resolve and ``exec_time``
                                  equals the latest marker finish.
``trace.channel_monotonicity``    per (src, dst) channel, a message injected
                                  at or after another's delivery is delivered
                                  strictly later (non-overlapping messages
                                  never reorder).  With ``strict_fifo=True``
                                  the full FIFO form is checked too: any
                                  later-injected message delivers later, even
                                  when flights overlap.  Strict FIFO is an
                                  *opt-in* invariant keyed to the backend's
                                  ``in_order_channels`` capability flag —
                                  wormhole VC arbitration legitimately
                                  reorders overlapping flights, while every
                                  optical backend serializes each channel.

Replay invariants
-----------------
``replay.conservation``           replayed + unreplayed == len(trace);
                                  deliveries are a subset of injections;
                                  counts match the maps.
``replay.causality``              self-correcting injections equal the max
                                  over trigger edges of (simulated delivery +
                                  edge gap); naive injections equal captured
                                  timestamps.
``replay.stall_accounting``       the typed stall diagnostics agree with the
                                  unreplayed count (and are absent for naive
                                  replays, which always replay everything).
``replay.latency_map_consistency`` ``latencies_by_key`` equals delivery minus
                                  injection for every delivered message.
``replay.exec_estimate_consistency`` the execution-time estimate equals the
                                  end-marker rule applied to the observed
                                  deliveries.
``replay.channel_monotonicity``   the channel ordering rule above, applied to
                                  the replayed timeline.

Metamorphic properties (need a network factory, used by the differential
harness and the property tests):

* :func:`check_self_consistency` — replaying a trace on its own capture
  network reproduces the captured execution time within a tolerance.
* :func:`check_gap_scaling` — scaling every edge gap by k >= 1 (via
  :func:`scale_trace_gaps`) never *decreases* the predicted execution time.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.config import GAP_POLICY_CAPTURED
from repro.core.replay import (
    ReplayResult,
    SelfCorrectingReplayer,
    _estimate_exec_time,
)
from repro.core.trace import EndMarker, Trace, TraceRecord

# Invariant names (referenced by tests and repro reports).
TRACE_UNIQUE_IDS = "trace.unique_ids"
TRACE_REFERENTIAL = "trace.referential_integrity"
TRACE_CAUSALITY = "trace.causality"
TRACE_ACYCLICITY = "trace.acyclicity"
TRACE_LATENCY = "trace.latency_nonnegative"
TRACE_END_MARKERS = "trace.end_marker_consistency"
TRACE_CHANNEL_ORDER = "trace.channel_monotonicity"
REPLAY_CONSERVATION = "replay.conservation"
REPLAY_CAUSALITY = "replay.causality"
REPLAY_STALLS = "replay.stall_accounting"
REPLAY_LATENCY_MAP = "replay.latency_map_consistency"
REPLAY_EXEC_ESTIMATE = "replay.exec_estimate_consistency"
REPLAY_CHANNEL_ORDER = "replay.channel_monotonicity"
META_SELF_CONSISTENCY = "metamorphic.self_consistency"
META_GAP_SCALING = "metamorphic.gap_scaling_monotonicity"

#: Slack for the gap-scaling monotonicity check, in percent.  Measured, not
#: guessed: sweeping every golden trace across all four optical backends with
#: scale factors (1, 2, 4) (``tests/test_gap_scaling_slack.py``) — plus 24
#: randomized differential scenarios — observes *zero* non-monotone dips:
#: the prediction is strictly increasing in the gap scale everywhere we can
#: measure.  0.25% keeps a small allowance for congestion thinning on
#: unmeasured workloads (longer gaps can shave queueing latency) while
#: catching real monotonicity regressions at a quarter of the old 1%
#: wiggle.  The measured bound is pinned in ``tests/golden/envelopes.json``
#: under ``bounds.gap_scaling_max_dip_pct`` and re-asserted by the test.
GAP_SCALING_SLACK_PCT = 0.25

#: Every structural invariant checked by :func:`check_trace` /
#: :func:`check_replay` (the metamorphic ones need a network factory).
ALL_INVARIANTS = (
    TRACE_UNIQUE_IDS,
    TRACE_REFERENTIAL,
    TRACE_CAUSALITY,
    TRACE_ACYCLICITY,
    TRACE_LATENCY,
    TRACE_END_MARKERS,
    TRACE_CHANNEL_ORDER,
    REPLAY_CONSERVATION,
    REPLAY_CAUSALITY,
    REPLAY_STALLS,
    REPLAY_LATENCY_MAP,
    REPLAY_EXEC_ESTIMATE,
    REPLAY_CHANNEL_ORDER,
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant, anchored to a message where possible."""

    invariant: str
    message: str
    msg_id: int = -1

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        anchor = f" [msg {self.msg_id}]" if self.msg_id != -1 else ""
        return f"{self.invariant}{anchor}: {self.message}"


# Cap per-invariant violation lists so a completely corrupt artifact cannot
# produce megabytes of diagnostics.
_VIOLATION_CAP = 20


class _Collector:
    def __init__(self) -> None:
        self.violations: list[Violation] = []
        self._per_invariant: dict[str, int] = {}

    def add(self, invariant: str, message: str, msg_id: int = -1) -> None:
        n = self._per_invariant.get(invariant, 0)
        if n < _VIOLATION_CAP:
            self.violations.append(Violation(invariant, message, msg_id))
        elif n == _VIOLATION_CAP:
            self.violations.append(Violation(
                invariant, "further violations suppressed"))
        self._per_invariant[invariant] = n + 1


# ---------------------------------------------------------------------------
# Trace invariants
# ---------------------------------------------------------------------------

def check_trace(trace: Trace, strict_fifo: bool = False) -> list[Violation]:
    """Check every structural trace invariant; returns all violations.

    ``strict_fifo=True`` additionally holds every (src, dst) channel to full
    FIFO delivery order — pass it when the capture network's
    ``in_order_channels`` capability flag is set (see
    :func:`repro.harness.backend_in_order_channels`).
    """
    out = _Collector()
    by_id: dict[int, TraceRecord] = {}
    for r in trace.records:
        if r.msg_id in by_id:
            out.add(TRACE_UNIQUE_IDS, f"duplicate msg_id {r.msg_id}", r.msg_id)
        by_id[r.msg_id] = r
    seen_keys: set = set()
    for r in trace.records:
        if r.key in seen_keys:
            out.add(TRACE_UNIQUE_IDS, f"duplicate semantic key {r.key}",
                    r.msg_id)
        seen_keys.add(r.key)

    for r in trace.records:
        if r.t_deliver < r.t_inject:
            out.add(TRACE_LATENCY,
                    f"delivered at {r.t_deliver} before injection "
                    f"{r.t_inject}", r.msg_id)
        if r.bound_id != -1 and r.cause_id == -1:
            out.add(TRACE_REFERENTIAL, "bound edge without a cause edge",
                    r.msg_id)
        for label, trig, gap in (("cause", r.cause_id, r.gap),
                                 ("bound", r.bound_id, r.bound_gap)):
            if trig == -1:
                continue
            t = by_id.get(trig)
            if t is None:
                out.add(TRACE_REFERENTIAL,
                        f"{label} {trig} not in trace", r.msg_id)
            elif t.t_deliver + gap != r.t_inject:
                out.add(TRACE_CAUSALITY,
                        f"{label} delivered at {t.t_deliver} + gap {gap} "
                        f"!= injection {r.t_inject}", r.msg_id)
        if r.gap < 0 or r.bound_gap < 0:
            out.add(TRACE_CAUSALITY, "negative edge gap", r.msg_id)
        if r.cause_id == -1 and r.gap != r.t_inject:
            out.add(TRACE_CAUSALITY,
                    f"root gap {r.gap} != injection offset {r.t_inject}",
                    r.msg_id)

    _check_acyclic(trace, by_id, out)
    _check_end_markers(trace, by_id, out)
    _check_channel_order(
        ((r.src, r.dst, r.t_inject, r.t_deliver, r.msg_id)
         for r in trace.records),
        TRACE_CHANNEL_ORDER, out, strict_fifo=strict_fifo)
    return out.violations


def _check_acyclic(trace: Trace, by_id: dict[int, TraceRecord],
                   out: _Collector) -> None:
    prereqs = {
        r.msg_id: sum(1 for t in (r.cause_id, r.bound_id)
                      if t != -1 and t in by_id)
        for r in trace.records
    }
    dependents: dict[int, list[int]] = {}
    for r in trace.records:
        for trig in (r.cause_id, r.bound_id):
            if trig != -1 and trig in by_id:
                dependents.setdefault(trig, []).append(r.msg_id)
    frontier = [mid for mid, n in prereqs.items() if n == 0]
    while frontier:
        mid = frontier.pop()
        for dep in dependents.get(mid, ()):
            prereqs[dep] -= 1
            if prereqs[dep] == 0:
                frontier.append(dep)
    cyclic = sorted(mid for mid, n in prereqs.items() if n > 0)
    for mid in cyclic:
        out.add(TRACE_ACYCLICITY, "record sits on a dependency cycle", mid)


def _check_end_markers(trace: Trace, by_id: dict[int, TraceRecord],
                       out: _Collector) -> None:
    for m in trace.end_markers:
        if m.cause_id != -1 and m.cause_id not in by_id:
            out.add(TRACE_END_MARKERS,
                    f"end marker node {m.node}: cause {m.cause_id} missing")
        if m.gap < 0:
            out.add(TRACE_END_MARKERS,
                    f"end marker node {m.node}: negative gap {m.gap}")
    if trace.end_markers:
        latest = max(m.t_finish for m in trace.end_markers)
        if latest != trace.exec_time:
            out.add(TRACE_END_MARKERS,
                    f"exec_time {trace.exec_time} != latest end marker "
                    f"{latest}")


def _check_channel_order(timeline, invariant: str, out: _Collector,
                         strict_fifo: bool = False) -> None:
    """Non-overlapping messages on one (src, dst) channel never reorder.

    For two messages a, b on the same channel with ``b`` injected at or
    after ``a``'s delivery (disjoint flight windows), ``b`` must deliver
    strictly after ``a``.  Messages with overlapping flights are free to
    reorder — wormhole VC arbitration legitimately does.

    ``strict_fifo=True`` additionally requires full FIFO: ``b`` injected
    strictly after ``a`` (overlapping or not) delivers strictly after ``a``.
    Same-cycle injections are exempt (the serialization order of a tie is
    arbitration detail, not a channel property).  Only enable this for
    backends whose ``in_order_channels`` flag is set.
    """
    channels: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
    for src, dst, t_inject, t_deliver, mid in timeline:
        channels.setdefault((src, dst), []).append((t_inject, t_deliver, mid))
    if strict_fifo:
        for (src, dst), msgs in channels.items():
            order = sorted(msgs)
            i = 0
            prev_max_del = None   # latest delivery among earlier injections
            while i < len(order):
                j = i
                while j < len(order) and order[j][0] == order[i][0]:
                    t_inject, t_deliver, mid = order[j]
                    if prev_max_del is not None and t_deliver <= prev_max_del:
                        out.add(invariant,
                                f"channel {src}->{dst}: strict FIFO broken — "
                                f"injected at {t_inject} and delivered at "
                                f"{t_deliver}, but an earlier injection "
                                f"delivered at {prev_max_del}", mid)
                    j += 1
                group_max = max(d for _, d, _ in order[i:j])
                prev_max_del = (group_max if prev_max_del is None
                                else max(prev_max_del, group_max))
                i = j
    for (src, dst), msgs in channels.items():
        # For each message b, the binding predecessor is the latest-delivered
        # message a on the channel with deliver(a) <= inject(b) (disjoint
        # flight windows); b must deliver strictly after it.
        dels = sorted((d, m) for _, d, m in msgs)
        times = [d for d, _ in dels]
        for t_inject, t_deliver, mid in msgs:
            i = bisect_right(times, t_inject) - 1
            while i >= 0 and dels[i][1] == mid:
                i -= 1
            if i >= 0 and t_deliver <= dels[i][0]:
                out.add(invariant,
                        f"channel {src}->{dst}: delivered at {t_deliver} "
                        f"despite a disjoint predecessor delivering at "
                        f"{dels[i][0]}", mid)


# ---------------------------------------------------------------------------
# Replay invariants
# ---------------------------------------------------------------------------

def check_replay(trace: Trace, result: ReplayResult,
                 strict_fifo: bool = False) -> list[Violation]:
    """Check every replay invariant of ``result`` against its trace.

    ``strict_fifo=True`` holds the replayed timeline to full per-channel
    FIFO — pass it when the *target* backend's ``in_order_channels``
    capability flag is set.
    """
    out = _Collector()
    by_id = {r.msg_id: r for r in trace.records}

    # replay.conservation
    if result.messages_replayed + result.messages_unreplayed != len(trace):
        out.add(REPLAY_CONSERVATION,
                f"replayed {result.messages_replayed} + unreplayed "
                f"{result.messages_unreplayed} != trace length {len(trace)}")
    if result.messages_replayed != len(result.injections):
        out.add(REPLAY_CONSERVATION,
                f"messages_replayed {result.messages_replayed} != "
                f"{len(result.injections)} injections")
    for mid in result.deliveries:
        if mid not in result.injections:
            out.add(REPLAY_CONSERVATION,
                    "delivered without being injected", mid)
        if mid not in by_id:
            out.add(REPLAY_CONSERVATION,
                    "delivered message not in trace", mid)

    _check_replay_causality(trace, result, by_id, out)
    _check_stall_accounting(trace, result, out)

    # replay.latency_map_consistency
    key_of = {r.msg_id: r.key for r in trace.records}
    lat_count = 0
    for mid, t in result.deliveries.items():
        key = key_of.get(mid)
        if key is None:
            continue
        lat_count += 1
        expect = t - result.injections.get(mid, 0)
        if result.latencies_by_key.get(key) != expect:
            out.add(REPLAY_LATENCY_MAP,
                    f"latency map says {result.latencies_by_key.get(key)}, "
                    f"deliver - inject = {expect}", mid)
    if len(result.latencies_by_key) != lat_count:
        out.add(REPLAY_LATENCY_MAP,
                f"{len(result.latencies_by_key)} latency entries for "
                f"{lat_count} deliveries")

    # replay.exec_estimate_consistency — recompute with the same end-marker
    # re-derivation the replayer used (non-captured degraded-gap policies
    # re-derive markers whose cause never delivered).
    exposure = result.fault_exposure
    rederive = exposure is not None and exposure.policy != GAP_POLICY_CAPTURED
    expect = _estimate_exec_time(trace, result.deliveries,
                                 rederive_markers=rederive)
    if result.exec_time_estimate != expect:
        out.add(REPLAY_EXEC_ESTIMATE,
                f"estimate {result.exec_time_estimate} != end-marker rule "
                f"applied to deliveries ({expect})")

    _check_channel_order(
        ((by_id[mid].src, by_id[mid].dst, result.injections[mid],
          t_deliver, mid)
         for mid, t_deliver in result.deliveries.items()
         if mid in by_id and mid in result.injections),
        REPLAY_CHANNEL_ORDER, out, strict_fifo=strict_fifo)
    return out.violations


def _check_replay_causality(trace: Trace, result: ReplayResult,
                            by_id: dict[int, TraceRecord],
                            out: _Collector) -> None:
    if result.mode == "naive" or result.mode == "fixed_schedule":
        if result.mode == "naive":
            for r in trace.records:
                got = result.injections.get(r.msg_id)
                if got is not None and got != r.t_inject:
                    out.add(REPLAY_CAUSALITY,
                            f"naive injection {got} != captured timestamp "
                            f"{r.t_inject}", r.msg_id)
        return
    # Self-correcting: the DAG earliest-start rule, checkable only for
    # records whose every trigger was delivered in this replay (ablated or
    # demoted records legitimately used their captured timestamps instead).
    # Records re-derived from a neighbor anchor (degraded-gap policies) are
    # exempt: their injection is anchor-relative by design.
    exposure = result.fault_exposure
    rederived = (set(exposure.rederived_msg_ids)
                 if exposure is not None else set())
    for r in trace.records:
        if (r.cause_id == -1 or r.msg_id not in result.injections
                or r.msg_id in rederived):
            continue
        cause_t = result.deliveries.get(r.cause_id)
        if cause_t is None:
            continue
        expected = cause_t + r.gap
        if r.bound_id != -1:
            bound_t = result.deliveries.get(r.bound_id)
            if bound_t is None:
                continue
            expected = max(expected, bound_t + r.bound_gap)
        got = result.injections[r.msg_id]
        if got != expected and got != r.t_inject:
            out.add(REPLAY_CAUSALITY,
                    f"injection {got} is neither the earliest-start time "
                    f"{expected} nor the captured fallback {r.t_inject}",
                    r.msg_id)


def _check_stall_accounting(trace: Trace, result: ReplayResult,
                            out: _Collector) -> None:
    if result.mode == "naive":
        if result.messages_unreplayed != 0 or result.stalled_count != 0:
            out.add(REPLAY_STALLS,
                    "naive replay reported unreplayed/stalled messages")
        return
    if result.mode == "self_correcting":
        if result.stalled_count != result.messages_unreplayed:
            out.add(REPLAY_STALLS,
                    f"stalled_count {result.stalled_count} != unreplayed "
                    f"{result.messages_unreplayed}")
    if len(result.stalled_msg_ids) > result.stalled_count:
        out.add(REPLAY_STALLS, "more stalled ids than stalled_count")
    for mid in result.stalled_msg_ids:
        if mid in result.injections:
            out.add(REPLAY_STALLS, "stalled message was injected", mid)
    for mid, triggers in result.stalled_on.items():
        for trig in triggers:
            if trig in result.deliveries:
                out.add(REPLAY_STALLS,
                        f"stalled on {trig}, which was delivered", mid)


# ---------------------------------------------------------------------------
# Metamorphic properties
# ---------------------------------------------------------------------------

def scale_trace_gaps(trace: Trace, k: int) -> Trace:
    """A new trace with every edge gap multiplied by integer ``k`` >= 0.

    Timing fields are re-derived in causal order so the result is a *valid*
    trace: each record keeps its captured network latency, while its
    injection moves to ``deliver(cause) + k*gap`` (roots: ``k * offset``).
    Used by the gap-scaling metamorphic check — the paper's model says
    compute time between arrivals is network-independent, so stretching it
    can only push the predicted finish later.
    """
    if k < 0:
        raise ValueError(f"scale factor must be >= 0, got {k}")
    by_id = {r.msg_id: r for r in trace.records}
    new_deliver: dict[int, int] = {}
    new_records: dict[int, TraceRecord] = {}

    def build(mid: int) -> int:
        if mid in new_deliver:
            return new_deliver[mid]
        r = by_id[mid]
        if r.cause_id == -1:
            inject = k * r.gap
            gap = inject
            bound_gap = 0
        else:
            inject = build(r.cause_id) + k * r.gap
            if r.bound_id != -1:
                inject = max(inject, build(r.bound_id) + k * r.bound_gap)
            gap = inject - new_deliver[r.cause_id]
            bound_gap = (inject - new_deliver[r.bound_id]
                         if r.bound_id != -1 else 0)
        deliver = inject + r.latency
        new_deliver[mid] = deliver
        new_records[mid] = TraceRecord(
            msg_id=r.msg_id, key=r.key, src=r.src, dst=r.dst,
            size_bytes=r.size_bytes, kind=r.kind, t_inject=inject,
            t_deliver=deliver, cause_id=r.cause_id, gap=gap,
            bound_id=r.bound_id, bound_gap=bound_gap)
        return deliver

    # Iterative worklist (deep cause chains overflow Python recursion).
    order = sorted(trace.records, key=lambda r: (r.t_inject, r.msg_id))
    for r in order:
        stack = [r.msg_id]
        while stack:
            mid = stack[-1]
            rec = by_id[mid]
            pending = [t for t in (rec.cause_id, rec.bound_id)
                       if t != -1 and t not in new_deliver]
            if pending:
                stack.extend(pending)
                continue
            build(mid)
            stack.pop()

    markers = []
    for m in trace.end_markers:
        if m.cause_id == -1:
            markers.append(EndMarker(m.node, k * m.gap, -1, k * m.gap))
        else:
            finish = new_deliver[m.cause_id] + k * m.gap
            markers.append(EndMarker(m.node, finish, m.cause_id, k * m.gap))
    exec_time = max((m.t_finish for m in markers), default=0)
    scaled = Trace(
        records=[new_records[r.msg_id] for r in order],
        end_markers=markers, exec_time=exec_time,
        meta={**trace.meta, "gap_scale": k})
    scaled.validate()
    return scaled


def check_self_consistency(
    trace: Trace,
    capture_factory: Callable,
    tolerance_pct: float = 5.0,
) -> list[Violation]:
    """Replaying on the capture network must reproduce the captured timing.

    The self-correcting replayer re-derives each injection from simulated
    deliveries; on the network the trace was captured from, those deliveries
    track the captured ones and the predicted execution time lands within
    ``tolerance_pct`` of the captured one (exactness is not guaranteed —
    arbitration resolves ties by arrival order, which replay perturbs).
    """
    sim, net = capture_factory()
    result = SelfCorrectingReplayer(trace, sim, net).run()
    out = _Collector()
    if result.messages_unreplayed:
        out.add(META_SELF_CONSISTENCY,
                f"{result.messages_unreplayed} messages unreplayed on the "
                "capture network")
    if trace.exec_time > 0:
        err = abs(result.exec_time_estimate - trace.exec_time) \
            / trace.exec_time * 100.0
        if err > tolerance_pct:
            out.add(META_SELF_CONSISTENCY,
                    f"exec-time estimate {result.exec_time_estimate} is "
                    f"{err:.2f}% from captured {trace.exec_time} "
                    f"(tolerance {tolerance_pct}%)")
    return out.violations


def check_gap_scaling(
    trace: Trace,
    target_factory: Callable,
    factors: Sequence[int] = (1, 2, 4),
    slack_pct: float = GAP_SCALING_SLACK_PCT,
) -> list[Violation]:
    """Stretching compute gaps by k must not shrink the predicted exec time.

    Monotonicity is checked with ``slack_pct`` slack: longer gaps thin out
    congestion, which can shave *network* latency even as total time grows,
    so tiny non-monotonic wiggles on congestion-bound traces are legitimate.
    The default is the measured bound ``GAP_SCALING_SLACK_PCT`` (see its
    docstring for provenance).
    """
    out = _Collector()
    prev_k: Optional[int] = None
    prev_estimate = 0
    for k in sorted(factors):
        if k < 1:
            raise ValueError(f"scale factors must be >= 1, got {k}")
        scaled = scale_trace_gaps(trace, k)
        sim, net = target_factory()
        result = SelfCorrectingReplayer(scaled, sim, net).run()
        if prev_k is not None:
            floor = prev_estimate * (1.0 - slack_pct / 100.0)
            if result.exec_time_estimate < floor:
                out.add(META_GAP_SCALING,
                        f"gap scale {k} predicts {result.exec_time_estimate}"
                        f" < scale {prev_k} prediction {prev_estimate}")
        prev_k, prev_estimate = k, result.exec_time_estimate
    return out.violations
