"""repro.validate — differential & property-based validation subsystem.

Three layers, each usable on its own:

* :mod:`repro.validate.invariants` — structural invariant catalogue over
  ``Trace`` / ``ReplayResult`` pairs plus metamorphic checks,
* :mod:`repro.validate.faults` — seeded, composable trace fault models
  (dependency drop, jitter, truncation, node loss, rewiring) with typed
  damage reports,
* :mod:`repro.validate.differential` — seeded randomized scenario fan-out
  (via ``SweepRunner``), fault-severity matrices, failure shrinking and
  repro-JSON serialization,
* :mod:`repro.validate.golden` — checked-in golden corpus with pinned
  accuracy numbers (``tests/golden/``),
* :mod:`repro.validate.engines` — generational-vs-event replay engine
  differential over the golden corpus (``repro validate --engines``).

CLI entry point: ``repro validate`` (see ``docs/VALIDATION.md``).
"""

from repro.validate.engines import (
    EngineCell,
    EngineReport,
    check_engines,
    compare_engines,
)
from repro.validate.differential import (
    DifferentialReport,
    FaultMatrixReport,
    check_fault_matrix_smooth,
    fault_matrix_scenarios,
    generate_scenarios,
    load_repro_scenario,
    run_differential,
    run_fault_matrix,
    shrink,
    smoke_scenarios,
    write_repro,
)
from repro.validate.faults import (
    FAULT_FAMILIES,
    DropDepEdges,
    FaultModel,
    FaultReport,
    NodeRecordLoss,
    RewireDeps,
    TimestampJitter,
    TruncateTail,
    apply_faults,
    parse_fault_specs,
)
from repro.validate.golden import (
    GOLDEN_SCENARIOS,
    check_golden,
    regen_golden,
)
from repro.validate.invariants import (
    ALL_INVARIANTS,
    Violation,
    check_gap_scaling,
    check_replay,
    check_self_consistency,
    check_trace,
    scale_trace_gaps,
)
from repro.validate.scenario import (
    SCENARIO_WORKLOADS,
    ErrorEnvelope,
    Scenario,
    ScenarioOutcome,
    run_scenario,
)

__all__ = [
    "ALL_INVARIANTS",
    "EngineCell",
    "EngineReport",
    "check_engines",
    "compare_engines",
    "DifferentialReport",
    "DropDepEdges",
    "ErrorEnvelope",
    "FAULT_FAMILIES",
    "FaultMatrixReport",
    "FaultModel",
    "FaultReport",
    "GOLDEN_SCENARIOS",
    "NodeRecordLoss",
    "RewireDeps",
    "SCENARIO_WORKLOADS",
    "Scenario",
    "ScenarioOutcome",
    "TimestampJitter",
    "TruncateTail",
    "Violation",
    "apply_faults",
    "check_fault_matrix_smooth",
    "check_gap_scaling",
    "check_golden",
    "check_replay",
    "check_self_consistency",
    "check_trace",
    "fault_matrix_scenarios",
    "generate_scenarios",
    "load_repro_scenario",
    "parse_fault_specs",
    "regen_golden",
    "run_differential",
    "run_fault_matrix",
    "run_scenario",
    "scale_trace_gaps",
    "shrink",
    "smoke_scenarios",
    "write_repro",
]
