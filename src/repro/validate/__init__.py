"""repro.validate — differential & property-based validation subsystem.

Three layers, each usable on its own:

* :mod:`repro.validate.invariants` — structural invariant catalogue over
  ``Trace`` / ``ReplayResult`` pairs plus metamorphic checks,
* :mod:`repro.validate.differential` — seeded randomized scenario fan-out
  (via ``SweepRunner``), failure shrinking and repro-JSON serialization,
* :mod:`repro.validate.golden` — checked-in golden corpus with pinned
  accuracy numbers (``tests/golden/``).

CLI entry point: ``repro validate`` (see ``docs/VALIDATION.md``).
"""

from repro.validate.differential import (
    DifferentialReport,
    generate_scenarios,
    load_repro_scenario,
    run_differential,
    shrink,
    smoke_scenarios,
    write_repro,
)
from repro.validate.golden import (
    GOLDEN_SCENARIOS,
    check_golden,
    regen_golden,
)
from repro.validate.invariants import (
    ALL_INVARIANTS,
    Violation,
    check_gap_scaling,
    check_replay,
    check_self_consistency,
    check_trace,
    scale_trace_gaps,
)
from repro.validate.scenario import (
    SCENARIO_WORKLOADS,
    ErrorEnvelope,
    Scenario,
    ScenarioOutcome,
    run_scenario,
)

__all__ = [
    "ALL_INVARIANTS",
    "DifferentialReport",
    "ErrorEnvelope",
    "GOLDEN_SCENARIOS",
    "SCENARIO_WORKLOADS",
    "Scenario",
    "ScenarioOutcome",
    "Violation",
    "check_gap_scaling",
    "check_golden",
    "check_replay",
    "check_self_consistency",
    "check_trace",
    "generate_scenarios",
    "load_repro_scenario",
    "regen_golden",
    "run_differential",
    "run_scenario",
    "scale_trace_gaps",
    "shrink",
    "smoke_scenarios",
    "write_repro",
]
