"""Trace fault injection: seeded, composable damage models for replay testing.

Production trace pipelines do not hand the replayer pristine artifacts: probes
drop dependency annotations, capture buffers wrap and lose the tail, whole
nodes go dark, clocks jitter, and post-processing occasionally mis-threads
causality.  This module makes each of those failure modes an explicit, seeded
:class:`FaultModel` applied to a captured :class:`~repro.core.trace.Trace`,
returning the damaged trace *plus* a typed :class:`FaultReport` listing
exactly what was damaged — so tests can assert on the injected damage and the
replayer's degradation accounting against it.

Fault catalogue
---------------
``drop_deps``   :class:`DropDepEdges` — strip the cause/bound annotation from
                a fraction of dependent records (the trace-side generalization
                of the replayer's ``keep_dep_fraction`` ablation).  Stripped
                records are flagged in ``Trace.meta`` under
                ``DEGRADED_RECORDS_META_KEY`` — a real repair pipeline knows
                which records failed annotation checks — so the replayer can
                apply its degraded-gap policy instead of trusting them.
``jitter``      :class:`TimestampJitter` — Gaussian noise (plus optional
                multiplicative skew) on every edge gap and network latency,
                rebuilt in causal order so the damaged trace stays internally
                consistent: the classic "capture clock is not the reference
                clock" fault.
``truncate``    :class:`TruncateTail` — capture stopped early: every record
                injected after a cutoff time is lost.  Surviving records (and
                end markers) may now reference missing msg_ids.
``node_loss``   :class:`NodeRecordLoss` — per-node record loss: a subset of
                source nodes loses a fraction of its records (a dead probe or
                a dropped per-node buffer).
``rewire``      :class:`RewireDeps` — mis-threaded causality: a fraction of
                dependent records have their cause edge rewired to a different
                plausible (earlier-delivered) record, with the gap recomputed
                so the damage is arithmetically silent.

Determinism and composition
---------------------------
Every per-record decision is a pure function of ``(seed, msg_id)`` via a
splitmix64 hash — no sequential RNG state.  Consequently the three *selection*
faults (``drop_deps``, ``truncate``, ``node_loss``) commute pairwise: they
decide record-by-record from immutable fields, so application order cannot
change the outcome.  ``jitter`` and ``rewire`` rewrite timing/edges that other
faults read, so sequences involving them are order-sensitive (documented, not
checked).  :func:`apply_faults` applies a sequence left-to-right, deriving an
independent sub-seed per step.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, fields
from typing import Callable, ClassVar, Sequence

from repro.core.trace import (
    DEGRADED_RECORDS_META_KEY,
    EndMarker,
    Trace,
    TraceRecord,
)

_MASK64 = (1 << 64) - 1


def _mix64(*parts) -> int:
    """Deterministic 64-bit hash of ints/strings (splitmix64 finalizer chain).

    Platform- and process-independent (unlike ``hash``), cheap enough to call
    once per record, and stateless — the foundation of per-record fault
    decisions that survive reordering and composition.
    """
    x = 0x9E3779B97F4A7C15
    for p in parts:
        if isinstance(p, str):
            p = int.from_bytes(p.encode("utf-8"), "little")
        x = (x ^ (p & _MASK64)) & _MASK64
        x = (x * 0xBF58476D1CE4E5B9) & _MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
        x ^= x >> 31
    return x


def _unit(*parts) -> float:
    """Uniform float in [0, 1) derived from :func:`_mix64`."""
    return _mix64(*parts) / 2.0**64


def _gauss(*parts) -> float:
    """Standard-normal draw derived from :func:`_mix64` (Box–Muller)."""
    u1 = max(_unit(*parts, 1), 1e-12)
    u2 = _unit(*parts, 2)
    return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultReport:
    """What one fault model actually damaged, with exact msg_id lists.

    Only the fields relevant to the fault kind are populated; the rest keep
    their empty defaults, so tests can assert both on what *was* injected and
    on what was not.
    """

    fault: str
    severity: float
    seed: int
    records_before: int
    records_after: int
    dropped_edges: tuple[int, ...] = ()    # records whose cause/bound was stripped
    removed_records: tuple[int, ...] = ()  # records deleted from the trace
    shifted_records: tuple[int, ...] = ()  # records whose timestamps moved
    rewired_records: tuple[int, ...] = ()  # records whose cause was rewired
    lost_nodes: tuple[int, ...] = ()       # source nodes hit by node_loss
    max_abs_shift: int = 0                 # largest |t_inject change| (jitter)

    @property
    def damaged_count(self) -> int:
        """Total records this fault touched (any damage category)."""
        return len(set(self.dropped_edges) | set(self.removed_records)
                   | set(self.shifted_records) | set(self.rewired_records))


def _clone(r: TraceRecord, **changes) -> TraceRecord:
    kwargs = {f.name: getattr(r, f.name) for f in fields(TraceRecord)}
    kwargs.update(changes)
    return TraceRecord(**kwargs)


def _with_degraded_meta(trace: Trace, records: list[TraceRecord],
                        newly_degraded: Sequence[int],
                        end_markers=None, exec_time=None) -> Trace:
    """Rebuild a trace, merging ``newly_degraded`` into the degraded-ids meta
    and dropping ids that no longer resolve to a surviving record."""
    present = {r.msg_id for r in records}
    degraded = (set(trace.meta.get(DEGRADED_RECORDS_META_KEY, ()))
                | set(newly_degraded)) & present
    meta = dict(trace.meta)
    if degraded:
        meta[DEGRADED_RECORDS_META_KEY] = sorted(degraded)
    else:
        meta.pop(DEGRADED_RECORDS_META_KEY, None)
    return Trace(
        records=records,
        end_markers=(trace.end_markers if end_markers is None
                     else end_markers),
        exec_time=trace.exec_time if exec_time is None else exec_time,
        meta=meta,
    )


# ---------------------------------------------------------------------------
# Fault models
# ---------------------------------------------------------------------------

class FaultModel:
    """Base class: a seeded, deterministic trace transformation."""

    name: ClassVar[str] = "fault"

    @property
    def severity(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    def apply(self, trace: Trace, seed: int) -> tuple[Trace, FaultReport]:
        raise NotImplementedError


@dataclass(frozen=True)
class DropDepEdges(FaultModel):
    """Strip the dependency annotation from ``fraction`` of dependent records.

    Damaged records become structural roots (``cause_id = -1``, ``gap =
    t_inject``, bound cleared) and are flagged in the trace meta so the
    replayer knows they are degraded rather than genuine program-start sends.
    """

    name: ClassVar[str] = "drop_deps"
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")

    @property
    def severity(self) -> float:
        return self.fraction

    def apply(self, trace: Trace, seed: int) -> tuple[Trace, FaultReport]:
        dropped: list[int] = []
        records: list[TraceRecord] = []
        for r in trace.records:
            if r.cause_id != -1 and _unit(seed, r.msg_id) < self.fraction:
                dropped.append(r.msg_id)
                records.append(_clone(r, cause_id=-1, gap=r.t_inject,
                                      bound_id=-1, bound_gap=0))
            else:
                records.append(r)
        report = FaultReport(
            fault=self.name, severity=self.fraction, seed=seed,
            records_before=len(trace), records_after=len(records),
            dropped_edges=tuple(dropped))
        return _with_degraded_meta(trace, records, dropped), report


@dataclass(frozen=True)
class TimestampJitter(FaultModel):
    """Gaussian noise (σ = ``sigma_cycles``) plus multiplicative ``skew`` on
    every edge gap and latency, rebuilt in causal order.

    The damaged trace remains internally consistent (it still validates):
    this models a capture clock that disagrees with the reference clock, not
    a corrupted file.  End-marker gaps are perturbed the same way and
    ``exec_time`` re-derived, so the artifact lies coherently.
    """

    name: ClassVar[str] = "jitter"
    sigma_cycles: float
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma_cycles < 0:
            raise ValueError(
                f"sigma_cycles must be >= 0, got {self.sigma_cycles}")
        if self.skew <= -1.0:
            raise ValueError(f"skew must be > -1, got {self.skew}")

    @property
    def severity(self) -> float:
        return self.sigma_cycles

    def _stretch(self, value: int, noise: float) -> int:
        return max(0, round(value * (1.0 + self.skew)
                            + noise * self.sigma_cycles))

    def apply(self, trace: Trace, seed: int) -> tuple[Trace, FaultReport]:
        by_id = {r.msg_id: r for r in trace.records}
        new_deliver: dict[int, int] = {}
        new_records: dict[int, TraceRecord] = {}

        def build(r: TraceRecord) -> None:
            latency = max(1, round(max(1, r.latency) * (1.0 + self.skew)
                                   + _gauss(seed, r.msg_id, "lat")
                                   * self.sigma_cycles))
            noise = _gauss(seed, r.msg_id, "gap")
            cause = by_id.get(r.cause_id, None) if r.cause_id != -1 else None
            if r.cause_id == -1:
                inject = self._stretch(r.gap, noise)
                gap, bound_id, bound_gap = inject, -1, 0
            elif cause is None:
                # Cause already missing (composed after a record-loss fault):
                # keep the stale annotation, jitter the absolute stamp.
                inject = self._stretch(r.t_inject, noise)
                gap, bound_id, bound_gap = r.gap, r.bound_id, r.bound_gap
            else:
                inject = new_deliver[r.cause_id] + self._stretch(r.gap, noise)
                bound_id = r.bound_id
                if bound_id != -1 and bound_id in new_deliver:
                    inject = max(
                        inject,
                        new_deliver[bound_id]
                        + self._stretch(r.bound_gap,
                                        _gauss(seed, r.msg_id, "bound")))
                elif bound_id != -1:
                    bound_id = -1          # bound lost earlier in the chain
                gap = inject - new_deliver[r.cause_id]
                bound_gap = (inject - new_deliver[bound_id]
                             if bound_id != -1 else 0)
            new_deliver[r.msg_id] = inject + latency
            new_records[r.msg_id] = _clone(
                r, t_inject=inject, t_deliver=inject + latency, gap=gap,
                bound_id=bound_id, bound_gap=bound_gap)

        # Iterative causal-order worklist (deep chains overflow recursion).
        order = sorted(trace.records, key=lambda r: (r.t_inject, r.msg_id))
        for root in order:
            stack = [root.msg_id]
            while stack:
                mid = stack[-1]
                rec = by_id[mid]
                pending = [t for t in (rec.cause_id, rec.bound_id)
                           if t != -1 and t in by_id and t not in new_deliver]
                if pending:
                    stack.extend(pending)
                    continue
                if mid not in new_records:
                    build(rec)
                stack.pop()

        markers: list[EndMarker] = []
        for m in trace.end_markers:
            noise = _gauss(seed, "marker", m.node)
            if m.cause_id == -1 or m.cause_id not in new_deliver:
                finish = self._stretch(m.t_finish, noise)
                markers.append(EndMarker(m.node, finish, m.cause_id,
                                         finish if m.cause_id == -1
                                         else m.gap))
            else:
                gap = self._stretch(m.gap, noise)
                markers.append(EndMarker(
                    m.node, new_deliver[m.cause_id] + gap, m.cause_id, gap))
        exec_time = max((m.t_finish for m in markers),
                        default=max(new_deliver.values(), default=0))

        records = [new_records[r.msg_id] for r in order]
        shifted = tuple(r.msg_id for r in order
                        if new_records[r.msg_id].t_inject != r.t_inject)
        max_shift = max(
            (abs(new_records[r.msg_id].t_inject - r.t_inject)
             for r in order), default=0)
        report = FaultReport(
            fault=self.name, severity=self.sigma_cycles, seed=seed,
            records_before=len(trace), records_after=len(records),
            shifted_records=shifted, max_abs_shift=max_shift)
        return _with_degraded_meta(trace, records, (), end_markers=markers,
                                   exec_time=exec_time), report


@dataclass(frozen=True)
class TruncateTail(FaultModel):
    """Capture stopped early: drop every record injected in the last
    ``fraction`` of the captured execution window.

    The cutoff is a pure function of the record's own ``t_inject`` and the
    trace's ``exec_time``, so truncation commutes with the other selection
    faults.  End markers and ``exec_time`` are deliberately left untouched —
    that *is* the damage: the artifact claims a full run it no longer
    contains.
    """

    name: ClassVar[str] = "truncate"
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")

    @property
    def severity(self) -> float:
        return self.fraction

    def apply(self, trace: Trace, seed: int) -> tuple[Trace, FaultReport]:
        horizon = trace.exec_time or max(
            (r.t_inject for r in trace.records), default=0)
        cutoff = math.floor(horizon * (1.0 - self.fraction))
        kept = [r for r in trace.records if r.t_inject <= cutoff]
        removed = tuple(r.msg_id for r in trace.records
                        if r.t_inject > cutoff)
        report = FaultReport(
            fault=self.name, severity=self.fraction, seed=seed,
            records_before=len(trace), records_after=len(kept),
            removed_records=removed)
        return _with_degraded_meta(trace, kept, ()), report


@dataclass(frozen=True)
class NodeRecordLoss(FaultModel):
    """A subset of source nodes loses ``fraction`` of its records.

    Node selection and per-record loss are both hashed decisions, so this
    commutes with ``drop_deps`` and ``truncate``.  Models a dead or flaky
    per-node capture probe.
    """

    name: ClassVar[str] = "node_loss"
    fraction: float
    node_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if not 0.0 < self.node_fraction <= 1.0:
            raise ValueError(
                f"node_fraction must be in (0, 1], got {self.node_fraction}")

    @property
    def severity(self) -> float:
        return self.fraction

    def apply(self, trace: Trace, seed: int) -> tuple[Trace, FaultReport]:
        nodes = sorted({r.src for r in trace.records})
        lost_nodes = tuple(n for n in nodes
                           if _unit(seed, "node", n) < self.node_fraction)
        lost_set = set(lost_nodes)
        kept: list[TraceRecord] = []
        removed: list[int] = []
        for r in trace.records:
            if r.src in lost_set and _unit(seed, r.msg_id) < self.fraction:
                removed.append(r.msg_id)
            else:
                kept.append(r)
        report = FaultReport(
            fault=self.name, severity=self.fraction, seed=seed,
            records_before=len(trace), records_after=len(kept),
            removed_records=tuple(removed), lost_nodes=lost_nodes)
        return _with_degraded_meta(trace, kept, ()), report


@dataclass(frozen=True)
class RewireDeps(FaultModel):
    """Mis-thread causality: rewire the cause edge of ``fraction`` of
    dependent records to a different earlier-delivered record.

    The gap is recomputed against the new cause's delivery so every per-edge
    arithmetic check still balances — the damage is only visible as wrong
    *structure*.  Rewires that would create a dependency cycle (possible only
    in degenerate zero-latency traces) are reverted, keeping the fault's
    output schedulable.
    """

    name: ClassVar[str] = "rewire"
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")

    @property
    def severity(self) -> float:
        return self.fraction

    @staticmethod
    def _unfireable(records: list[TraceRecord]) -> set[int]:
        """Records that can never fire given the roots (fire-fixpoint)."""
        present = {r.msg_id for r in records}
        prereqs = {
            r.msg_id: sum(1 for t in (r.cause_id, r.bound_id)
                          if t != -1 and t in present)
            for r in records
        }
        dependents: dict[int, list[int]] = {}
        for r in records:
            for t in (r.cause_id, r.bound_id):
                if t != -1 and t in present:
                    dependents.setdefault(t, []).append(r.msg_id)
        frontier = [mid for mid, n in prereqs.items() if n == 0]
        while frontier:
            mid = frontier.pop()
            for dep in dependents.get(mid, ()):
                prereqs[dep] -= 1
                if prereqs[dep] == 0:
                    frontier.append(dep)
        return {mid for mid, n in prereqs.items() if n > 0}

    def apply(self, trace: Trace, seed: int) -> tuple[Trace, FaultReport]:
        originals = {r.msg_id: r for r in trace.records}
        deliveries = sorted((r.t_deliver, r.msg_id) for r in trace.records)
        deliver_times = [t for t, _ in deliveries]
        records: list[TraceRecord] = []
        rewired: set[int] = set()
        for r in trace.records:
            if r.cause_id == -1 or _unit(seed, r.msg_id) >= self.fraction:
                records.append(r)
                continue
            hi = bisect_right(deliver_times, r.t_inject)
            candidates = [mid for _, mid in deliveries[:hi]
                          if mid not in (r.msg_id, r.cause_id)]
            if not candidates:
                records.append(r)
                continue
            new_cause = candidates[_mix64(seed, r.msg_id, "pick")
                                   % len(candidates)]
            rewired.add(r.msg_id)
            records.append(_clone(
                r, cause_id=new_cause,
                gap=r.t_inject - originals[new_cause].t_deliver,
                bound_id=-1, bound_gap=0))
        # Revert any rewire that manufactured a cycle (pre-existing damage,
        # e.g. from composed record-loss faults, is left alone).
        pre_existing = self._unfireable(list(trace.records))
        while True:
            bad = (self._unfireable(records) - pre_existing) & rewired
            if not bad:
                break
            records = [originals[r.msg_id] if r.msg_id in bad else r
                       for r in records]
            rewired -= bad
        report = FaultReport(
            fault=self.name, severity=self.fraction, seed=seed,
            records_before=len(trace), records_after=len(records),
            rewired_records=tuple(sorted(rewired)))
        return _with_degraded_meta(trace, records, ()), report


# ---------------------------------------------------------------------------
# Composition, severity families, spec parsing
# ---------------------------------------------------------------------------

def apply_faults(
    trace: Trace,
    faults: Sequence[FaultModel],
    seed: int,
) -> tuple[Trace, tuple[FaultReport, ...]]:
    """Apply ``faults`` left-to-right, each with an independent derived seed.

    Deterministic in ``(trace, faults, seed)``.  Sub-seeds are keyed on the
    fault *name* (plus an occurrence counter for repeated kinds), not the
    sequence position — so reordering a sequence of distinct selection
    faults leaves every per-record decision unchanged, which is what makes
    them commute.  Returns the damaged trace and one :class:`FaultReport`
    per fault, in application order.
    """
    reports: list[FaultReport] = []
    occurrence: dict[str, int] = {}
    for i, fault in enumerate(faults):
        if not isinstance(fault, FaultModel):
            raise TypeError(f"faults[{i}] is not a FaultModel: {fault!r}")
        nth = occurrence.get(fault.name, 0)
        occurrence[fault.name] = nth + 1
        trace, report = fault.apply(trace, _mix64(seed, fault.name, nth))
        reports.append(report)
    return trace, tuple(reports)


#: Severity-parameterized constructors (severity in [0, 1]) for fault-matrix
#: sweeps: error-vs-severity curves use one family at a time.
_JITTER_SEVERITY_CYCLES = 40.0

FAULT_FAMILIES: dict[str, Callable[[float], FaultModel]] = {
    "drop_deps": lambda s: DropDepEdges(s),
    "truncate": lambda s: TruncateTail(s),
    "node_loss": lambda s: NodeRecordLoss(s),
    "rewire": lambda s: RewireDeps(s),
    "jitter": lambda s: TimestampJitter(s * _JITTER_SEVERITY_CYCLES),
}

_FAULT_KINDS: dict[str, type[FaultModel]] = {
    cls.name: cls
    for cls in (DropDepEdges, TimestampJitter, TruncateTail,
                NodeRecordLoss, RewireDeps)
}


def parse_fault_specs(spec: str) -> tuple[FaultModel, ...]:
    """Parse a CLI fault list: ``"drop_deps:0.3,jitter:8,truncate:0.1"``.

    Each element is ``name:param[:param2]`` — the params are the fault's
    positional dataclass fields (``jitter:8:0.05`` sets sigma and skew,
    ``node_loss:0.3:0.5`` sets fraction and node_fraction).
    """
    out: list[FaultModel] = []
    for part in (p.strip() for p in spec.split(",") if p.strip()):
        pieces = part.split(":")
        kind = _FAULT_KINDS.get(pieces[0])
        if kind is None:
            raise ValueError(
                f"unknown fault {pieces[0]!r}; "
                f"expected one of {sorted(_FAULT_KINDS)}")
        try:
            params = [float(p) for p in pieces[1:]]
        except ValueError as exc:
            raise ValueError(f"bad fault parameter in {part!r}") from exc
        if not params:
            raise ValueError(f"fault {part!r} needs at least one parameter")
        out.append(kind(*params))
    if not out:
        raise ValueError(f"no faults in spec {spec!r}")
    return tuple(out)


def fault_to_dict(fault: FaultModel) -> dict:
    """JSON-friendly form (round-trips via :func:`fault_from_dict`)."""
    return {"kind": fault.name,
            **{f.name: getattr(fault, f.name) for f in fields(fault)}}


def fault_from_dict(blob: dict) -> FaultModel:
    blob = dict(blob)
    kind = _FAULT_KINDS.get(blob.pop("kind", None))
    if kind is None:
        raise ValueError(f"unknown fault kind in {blob!r}")
    return kind(**blob)
