"""Full-system chip-multiprocessor substrate.

A simplified but *executable* 2012-era CMP: in-order blocking cores run
synthetic application kernels (:mod:`repro.system.workloads`) whose loads and
stores traverse real private L1 caches, a distributed shared L2 (S-NUCA, one
slice per node) with an MSI directory protocol, and memory controllers — all
messages travelling over whichever interconnect (electrical or optical) is
plugged in through :class:`repro.net.NetworkAdapter`.

This substrate plays the role the paper's commercial full-system host
(Simics/GEMS-class running real binaries) played: it *generates* the real
coherence traffic that the trace model captures, and it *is* the
execution-driven reference that trace replays are judged against.

Protocol simplifications (documented in DESIGN.md): single outstanding miss
per core, home-serialised per-line transactions, silent shared evictions,
and no L2 recall — the L2 victim search skips lines with active directory
state (serving such lines bypasses allocation instead).
"""

from repro.system.cache import CacheArray, CacheLineState
from repro.system.cmp import FullSystem, SystemResult
from repro.system.ops import OP_BARRIER, OP_COMPUTE, OP_LOAD, OP_STORE, Program
from repro.system.workloads import WORKLOADS, build_workload

__all__ = [
    "CacheArray",
    "CacheLineState",
    "FullSystem",
    "OP_BARRIER",
    "OP_COMPUTE",
    "OP_LOAD",
    "OP_STORE",
    "Program",
    "SystemResult",
    "WORKLOADS",
    "build_workload",
]
