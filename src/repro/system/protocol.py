"""Coherence-protocol message plumbing: payloads, sizes, cause threading.

Every protocol message carries a :class:`ProtPayload` whose ``cause`` field
threads the *causal trigger* through the system: the network message whose
arrival (transitively) provoked this send.  The trace-capture layer reads it
to annotate trace records with dependency edges — the information the paper's
self-correction model adds over plain timestamped traces.

Cause-threading rule: when a handler processes network message X and sends Y,
Y's cause is X; when it processes a *local* (same-node, off-network) message
L, Y inherits L's own cause.  :func:`derive_cause` implements this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SystemConfig
from repro.net import (
    MSG_BARRIER_ARRIVE,
    MSG_BARRIER_RELEASE,
    MSG_INV,
    MSG_INV_ACK,
    MSG_MEM_READ,
    MSG_MEM_RESP,
    MSG_REQ_READ,
    MSG_REQ_WRITE,
    MSG_RESP_DATA,
    MSG_WRITEBACK,
    Message,
)

# Downgrade/recall requests from the home to the current owner.
MSG_FETCH = "fetch"            # owner supplies data, downgrades M -> S
MSG_FETCH_INV = "fetch_inv"    # owner supplies data and invalidates

CTRL_KINDS = frozenset({
    MSG_REQ_READ, MSG_REQ_WRITE, MSG_INV, MSG_INV_ACK, MSG_MEM_READ,
    MSG_FETCH, MSG_FETCH_INV, MSG_BARRIER_ARRIVE, MSG_BARRIER_RELEASE,
})
DATA_KINDS = frozenset({MSG_RESP_DATA, MSG_WRITEBACK, MSG_MEM_RESP})


def message_size(cfg: SystemConfig, kind: str) -> int:
    """Wire size of a protocol message of ``kind``."""
    if kind in CTRL_KINDS:
        return cfg.ctrl_msg_bytes
    if kind in DATA_KINDS:
        return cfg.data_msg_bytes
    raise ValueError(f"unknown protocol message kind {kind!r}")


@dataclass
class ProtPayload:
    """Protocol fields riding on a :class:`repro.net.Message`.

    ``line`` — cache-line index (byte address / line size); -1 for barriers.
    ``requester`` — original requesting node for forwarded transactions.
    ``aux`` — kind-specific scalar (barrier id, excl flag, ...).
    ``seq`` — per-line transaction sequence number stamped by the home;
    responses, invalidations and fetches carry the issuing transaction's
    seq so an L1 can order messages that raced in the network (a FETCH that
    overtakes the RESP_DATA granting ownership is deferred, a stale one is
    dropped).
    ``cause`` — causal-trigger network message (see module docstring).
    ``bound`` — optional *secondary* trigger: a message whose delivery also
    lower-bounds this send (a queued directory request is released by
    ``max(its own arrival, previous transaction's completion)``; whichever
    arm was not binding on the capture network would otherwise be lost).
    ``local`` — True for same-node messages that never touch the network.
    """

    line: int = -1
    requester: int = -1
    aux: int = 0
    seq: int = -1
    cause: Optional[Message] = None
    bound: Optional[Message] = None
    local: bool = False


def derive_cause(msg: Optional[Message]) -> Optional[Message]:
    """The network-level causal trigger represented by ``msg``.

    Network messages are their own trigger; local messages pass through the
    trigger they inherited.  ``None`` stays ``None`` (spontaneous activity at
    program start).
    """
    if msg is None:
        return None
    payload = msg.payload
    if isinstance(payload, ProtPayload) and payload.local:
        return payload.cause
    return msg


def line_of(addr: int, line_bytes: int) -> int:
    """Byte address -> cache-line index."""
    if addr < 0:
        raise ValueError(f"negative address {addr}")
    return addr // line_bytes
