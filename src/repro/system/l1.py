"""Private L1 cache controller (MSI, single outstanding miss per core).

The controller sits between the in-order core and the network:

* hits complete after ``l1.hit_latency`` cycles;
* a load miss issues GETS, a store miss/upgrade issues GETX, both to the
  line's *home* L2 slice (address-interleaved); the core blocks until
  RESP_DATA returns;
* evicting a MODIFIED victim emits a WRITEBACK to the victim's home;
* inbound INV / FETCH / FETCH_INV are serviced even while a miss is pending
  (stale fetches for absent lines are dropped — the crossing WRITEBACK
  supplies the data at the home instead).
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.net import (
    MSG_INV,
    MSG_INV_ACK,
    MSG_REQ_READ,
    MSG_REQ_WRITE,
    MSG_RESP_DATA,
    MSG_WRITEBACK,
    Message,
)
from repro.system.cache import CacheArray, CacheLineState
from repro.system.protocol import MSG_FETCH, MSG_FETCH_INV, ProtPayload

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.cmp import FullSystem

# Callback signature: the message whose arrival completed the access
# (None for pure hits).
DoneCb = Callable[[Optional[Message]], None]


class L1Controller:
    """One core's private L1 + its slice of the MSI state machine."""

    __slots__ = ("node", "sys", "cache", "_pending_line", "_pending_write",
                 "_pending_cb", "_deferred_fetch", "_deferred_inv_seq",
                 "upgrades", "writebacks")

    def __init__(self, node: int, system: "FullSystem") -> None:
        self.node = node
        self.sys = system
        self.cache = CacheArray(system.cfg.l1)
        self._pending_line: Optional[int] = None
        self._pending_write = False
        self._pending_cb: Optional[DoneCb] = None
        # Race handling: a FETCH/INV for the pending line that belongs to a
        # *later* home transaction than our outstanding one may overtake our
        # RESP_DATA in the network; we park it here and order by seq once the
        # response (which carries our transaction's seq) arrives.
        self._deferred_fetch: Optional[Message] = None
        self._deferred_inv_seq = -1
        self.upgrades = 0
        self.writebacks = 0

    # ------------------------------------------------------------ core API
    def access(
        self,
        line: int,
        is_write: bool,
        done: DoneCb,
        cause: Optional[Message],
    ) -> None:
        """Blocking access from the core; ``done`` fires when it completes."""
        if self._pending_line is not None:
            raise RuntimeError(
                f"core {self.node}: second outstanding miss (in-order core "
                "issues one at a time)"
            )
        state = self.cache.lookup(line)
        hit = state == CacheLineState.MODIFIED or (
            state == CacheLineState.SHARED and not is_write
        )
        if hit:
            self.sys.sim.schedule_after(
                self.sys.cfg.l1.hit_latency, done, (None,)
            )
            return
        # Miss or upgrade: allocate room first, then request.
        if state == CacheLineState.INVALID:
            self._make_room(line, cause)
        else:
            self.upgrades += 1
        self._pending_line = line
        self._pending_write = is_write
        self._pending_cb = done
        kind = MSG_REQ_WRITE if is_write else MSG_REQ_READ
        self.sys.send_protocol(
            self.node,
            self.sys.home_of(line),
            kind,
            ProtPayload(line=line, requester=self.node, cause=cause),
        )

    def _make_room(self, line: int, cause: Optional[Message]) -> None:
        """Pre-evict so the response can install without a nested eviction."""
        evicted = self.cache.install(line, CacheLineState.SHARED)
        # Immediately mark the placeholder invalid again — install happens on
        # response.  (Two-step keeps CacheArray simple and LRU honest.)
        self.cache.set_state(line, CacheLineState.INVALID)
        if evicted is not None:
            victim_line, victim_state = evicted
            if victim_state == CacheLineState.MODIFIED:
                self.writebacks += 1
                self.sys.send_protocol(
                    self.node,
                    self.sys.home_of(victim_line),
                    MSG_WRITEBACK,
                    ProtPayload(line=victim_line, requester=self.node,
                                cause=cause),
                )
            # SHARED victims drop silently; the directory keeps a stale
            # sharer bit and the eventual INV is acked without data.

    # ------------------------------------------------------- network inbox
    def handle(self, msg: Message) -> None:
        """Dispatch an inbound protocol message addressed to this L1."""
        kind = msg.kind
        if kind == MSG_RESP_DATA:
            self._on_response(msg)
        elif kind == MSG_INV:
            self._on_inv(msg)
        elif kind in (MSG_FETCH, MSG_FETCH_INV):
            self._on_fetch(msg, invalidate=(kind == MSG_FETCH_INV))
        else:
            raise ValueError(f"L1 {self.node}: unexpected message kind {kind!r}")

    def _on_response(self, msg: Message) -> None:
        payload: ProtPayload = msg.payload
        line = payload.line
        if line != self._pending_line:
            raise RuntimeError(
                f"core {self.node}: response for line {line} but pending "
                f"{self._pending_line}"
            )
        state = (
            CacheLineState.MODIFIED if self._pending_write else CacheLineState.SHARED
        )
        evicted = self.cache.install(line, state)
        assert evicted is None, "room was reserved at miss time"
        cb = self._pending_cb
        self._pending_line = None
        self._pending_write = False
        self._pending_cb = None
        self._service_deferred(line, msg, payload.seq)
        assert cb is not None
        # One cycle to move the critical word into the pipeline.
        self.sys.sim.schedule_after(1, cb, (msg,))

    def _service_deferred(self, line: int, resp: Message, resp_seq: int) -> None:
        """Apply racing FETCH/INV messages that arrived before our response.

        Only messages issued by a transaction *later* than ours (seq order)
        act on the freshly installed copy; earlier ones were satisfied by a
        crossing writeback or targeted our previous copy, and are dropped.
        """
        fetch = self._deferred_fetch
        inv_seq = self._deferred_inv_seq
        self._deferred_fetch = None
        self._deferred_inv_seq = -1
        if fetch is not None and fetch.payload.seq > resp_seq:
            if self.cache.peek(line) != CacheLineState.MODIFIED:
                raise RuntimeError(
                    f"core {self.node}: deferred fetch for line {line} but "
                    "installed copy is not MODIFIED"
                )
            self._on_fetch(fetch, invalidate=(fetch.kind == MSG_FETCH_INV))
        elif inv_seq > resp_seq:
            self.cache.invalidate(line)  # ack was already sent on arrival

    def _on_inv(self, msg: Message) -> None:
        payload: ProtPayload = msg.payload
        self.cache.invalidate(payload.line)
        if payload.line == self._pending_line:
            # May target the copy our in-flight response is about to install;
            # remember the issuing transaction's seq and re-check then.
            self._deferred_inv_seq = max(self._deferred_inv_seq, payload.seq)
        # Ack even when not resident (silent eviction races); the ack must
        # not wait for our response or the home would deadlock.
        self.sys.send_protocol(
            self.node,
            msg.src,
            MSG_INV_ACK,
            ProtPayload(line=payload.line, requester=payload.requester,
                        seq=payload.seq, cause=msg),
        )

    def _on_fetch(self, msg: Message, invalidate: bool) -> None:
        payload: ProtPayload = msg.payload
        line = payload.line
        if line == self._pending_line:
            # Raced ahead of our RESP_DATA; park it (at most one live fetch
            # can exist — the home serialises per-line transactions).
            if (
                self._deferred_fetch is None
                or payload.seq > self._deferred_fetch.payload.seq
            ):
                self._deferred_fetch = msg
            return
        state = self.cache.peek(line)
        if state != CacheLineState.MODIFIED:
            # Stale fetch: our WRITEBACK is already in flight to the home,
            # which will treat it as the data reply.  Nothing to send.
            return
        if invalidate:
            self.cache.invalidate(line)
        else:
            self.cache.set_state(line, CacheLineState.SHARED)
        self.sys.send_protocol(
            self.node,
            msg.src,
            MSG_WRITEBACK,
            ProtPayload(line=line, requester=payload.requester, cause=msg,
                        aux=1),  # aux=1: fetch reply, not an eviction
        )

    # ------------------------------------------------------------- queries
    @property
    def busy(self) -> bool:
        return self._pending_line is not None
