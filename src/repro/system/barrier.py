"""Centralised barrier coordinator (lives at node 0).

Cores send BARRIER_ARRIVE; when the count reaches ``num_cores`` the
coordinator broadcasts BARRIER_RELEASE.  The release's causal trigger is the
*last* arrival — exactly the dependency a self-correcting trace needs to
re-time barrier waits on a different network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net import MSG_BARRIER_ARRIVE, MSG_BARRIER_RELEASE, Message
from repro.system.protocol import ProtPayload

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.cmp import FullSystem

COORDINATOR_NODE = 0


class BarrierCoordinator:
    """Counts arrivals per barrier id and releases all cores."""

    __slots__ = ("sys", "node", "_counts", "barriers_completed")

    def __init__(self, system: "FullSystem") -> None:
        self.sys = system
        self.node = COORDINATOR_NODE
        self._counts: dict[int, int] = {}
        self.barriers_completed = 0

    def handle(self, msg: Message) -> None:
        if msg.kind != MSG_BARRIER_ARRIVE:
            raise ValueError(f"barrier coordinator: unexpected kind {msg.kind!r}")
        bid = msg.payload.aux
        n = self._counts.get(bid, 0) + 1
        self._counts[bid] = n
        if n > self.sys.cfg.num_cores:
            raise RuntimeError(f"barrier {bid}: more arrivals than cores")
        if n == self.sys.cfg.num_cores:
            del self._counts[bid]
            self.barriers_completed += 1
            for core in range(self.sys.cfg.num_cores):
                self.sys.send_protocol(
                    self.node,
                    core,
                    MSG_BARRIER_RELEASE,
                    ProtPayload(line=-1, requester=core, aux=bid, cause=msg),
                )

    @property
    def pending(self) -> dict[int, int]:
        """Barrier id -> arrivals so far (inspection hook)."""
        return dict(self._counts)
