"""Memory controller: fixed-latency, fully pipelined DRAM model."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net import MSG_MEM_READ, MSG_MEM_RESP, Message
from repro.system.protocol import ProtPayload

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.cmp import FullSystem


class MemController:
    """Services MEM_READ requests after ``mem_latency`` cycles.

    Fully pipelined (no bandwidth limit): the 2012-era trace-model papers
    treat off-chip memory as a fixed-latency sink, and the experiments here
    stress the *network*, not the DRAM scheduler.
    """

    __slots__ = ("node", "sys", "requests_served")

    def __init__(self, node: int, system: "FullSystem") -> None:
        self.node = node
        self.sys = system
        self.requests_served = 0

    def handle(self, msg: Message) -> None:
        if msg.kind != MSG_MEM_READ:
            raise ValueError(f"memctrl {self.node}: unexpected kind {msg.kind!r}")
        self.requests_served += 1
        payload: ProtPayload = msg.payload
        self.sys.sim.schedule_after(
            self.sys.cfg.mem_latency, self._reply, (msg, payload)
        )

    def _reply(self, req: Message, payload: ProtPayload) -> None:
        self.sys.send_protocol(
            self.node,
            req.src,
            MSG_MEM_RESP,
            ProtPayload(line=payload.line, requester=payload.requester,
                        cause=req),
        )
