"""Radix-sort-like kernel: local histogram, then scatter permutation.

Per digit pass each core streams its own keys (local region, high L1 hit
rate after the first pass), then scatters records to bucket owners chosen
pseudo-randomly per key — a uniform-random store permutation that churns
ownership (GETX + invalidations) across the whole machine.
"""

from __future__ import annotations

import numpy as np

from repro.system.ops import OP_BARRIER, Program
from repro.system.workloads.base import (
    BarrierIds,
    jittered_compute,
    load,
    private_line,
    scaled,
    store,
)


def generate_radix(
    num_cores: int, rng: np.random.Generator, scale: float = 1.0
) -> list[Program]:
    """Histogram + scatter passes; ``scale`` multiplies keys per core."""
    digits = 3
    keys_per_core = scaled(48, scale)
    key_lines = 16                       # resident key working set (lines)
    bids = BarrierIds()
    programs: list[Program] = [[] for _ in range(num_cores)]

    for d in range(digits):
        hist_bid = bids.next_id()
        scatter_bid = bids.next_id()
        # Bucket assignment drawn once so all interconnects see the same
        # permutation (base offset 2048 avoids the key region).
        buckets = rng.integers(0, num_cores, size=(num_cores, keys_per_core))
        slots = rng.integers(0, 256, size=(num_cores, keys_per_core))
        for core in range(num_cores):
            prog = programs[core]
            # Histogram: stream local keys.
            for j in range(keys_per_core):
                prog.append(load(private_line(core, (d * key_lines + j) % key_lines)))
                prog.append(jittered_compute(rng, 2))
            prog.append((OP_BARRIER, hist_bid))
            # Scatter: write each record to its bucket owner's region.
            for j in range(keys_per_core):
                owner = int(buckets[core, j])
                slot = 2048 + int(slots[core, j])
                prog.append(store(private_line(owner, slot)))
                prog.append(jittered_compute(rng, 2))
            prog.append((OP_BARRIER, scatter_bid))
    return programs
