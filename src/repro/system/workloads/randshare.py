"""Migratory random-sharing kernel (unstructured irregular application).

Each core interleaves local work with accesses to a global shared pool:
load-then-store on the same pooled line (the migratory pattern — ownership
hops core to core), with pseudo-random targets and compute gaps.  No global
structure, few barriers: the stress case for a trace model because message
timing is dominated by data-dependent coherence chains.
"""

from __future__ import annotations

import numpy as np

from repro.system.ops import OP_BARRIER, Program
from repro.system.workloads.base import (
    BarrierIds,
    jittered_compute,
    load,
    private_line,
    scaled,
    shared_line,
    store,
)


def generate_randshare(
    num_cores: int, rng: np.random.Generator, scale: float = 1.0
) -> list[Program]:
    """Irregular migratory sharing; ``scale`` multiplies op count."""
    ops_per_core = scaled(120, scale)
    pool_lines = max(num_cores * 8, 64)
    phases = 3
    bids = BarrierIds()
    programs: list[Program] = [[] for _ in range(num_cores)]

    per_phase = max(1, ops_per_core // phases)
    for phase in range(phases):
        bid = bids.next_id()
        # All random choices drawn up front, identically for every network.
        is_shared = rng.random(size=(num_cores, per_phase)) < 0.4
        pool_idx = rng.integers(0, pool_lines, size=(num_cores, per_phase))
        local_idx = rng.integers(0, 96, size=(num_cores, per_phase))
        for core in range(num_cores):
            prog = programs[core]
            for j in range(per_phase):
                if is_shared[core, j]:
                    line = shared_line(int(pool_idx[core, j]))
                    prog.append(load(line))
                    prog.append(jittered_compute(rng, 4))
                    prog.append(store(line))      # migratory: read-modify-write
                else:
                    prog.append(load(private_line(core, int(local_idx[core, j]))))
                prog.append(jittered_compute(rng, 5))
            prog.append((OP_BARRIER, bid))
    return programs
