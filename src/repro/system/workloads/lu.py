"""LU-decomposition-like kernel with a rotating pivot owner.

Iteration *k*: the owner core ``k % num_cores`` computes and publishes the
pivot block; after a barrier every other core reads the pivot block (a burst
of reads against one producer's freshly-written lines — invalidation-heavy,
hotspot-shaped traffic), updates its trailing blocks, and barriers again.
"""

from __future__ import annotations

import numpy as np

from repro.system.ops import OP_BARRIER, Program
from repro.system.workloads.base import (
    BarrierIds,
    jittered_compute,
    load,
    private_line,
    scaled,
    store,
)


def generate_lu(
    num_cores: int, rng: np.random.Generator, scale: float = 1.0
) -> list[Program]:
    """Pivot-owner broadcast pattern; ``scale`` multiplies iterations."""
    iterations = scaled(8, scale)
    pivot_lines = 12
    trailing_lines = 8
    bids = BarrierIds()
    programs: list[Program] = [[] for _ in range(num_cores)]

    for k in range(iterations):
        owner = k % num_cores
        publish_bid = bids.next_id()
        done_bid = bids.next_id()
        # Pivot region rotates within the owner's private space so that each
        # iteration touches fresh lines.
        pivot_base = (k * pivot_lines) % 512
        for core in range(num_cores):
            prog = programs[core]
            if core == owner:
                prog.append(jittered_compute(rng, 40))  # factor the pivot
                for j in range(pivot_lines):
                    prog.append(store(private_line(owner, pivot_base + j)))
                    prog.append(jittered_compute(rng, 3))
            prog.append((OP_BARRIER, publish_bid))
            if core != owner:
                for j in range(pivot_lines):
                    prog.append(load(private_line(owner, pivot_base + j)))
                    prog.append(jittered_compute(rng, 2))
            # Trailing update on own blocks.
            trail_base = 1024 + (k * trailing_lines) % 512
            for j in range(trailing_lines):
                prog.append(store(private_line(core, trail_base + j)))
                prog.append(jittered_compute(rng, 4))
            prog.append((OP_BARRIER, done_bid))
    return programs
