"""Synthetic application kernels — the "real workload" substitute.

The paper ran real parallel applications on a commercial full-system host.
Offline we substitute deterministic synthetic kernels whose communication
*structure* matches the classic SPLASH-2-style programs the 2012 ONOC papers
evaluated (see DESIGN.md, substitutions table): butterfly all-to-all (fft),
pivot-owner hotspots (lu), scatter permutation (radix), nearest-neighbour
ghost exchange (stencil), pairwise streaming (prodcons) and migratory random
sharing (randshare).  Each generator is a pure function of
``(num_cores, seed, scale)``, so the *same instruction streams* run on every
interconnect — the invariant the trace methodology depends on.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.system.ops import Program, check_barrier_consistency, validate_program
from repro.system.workloads.barnes import generate_barnes
from repro.system.workloads.cholesky import generate_cholesky
from repro.system.workloads.fft import generate_fft
from repro.system.workloads.lu import generate_lu
from repro.system.workloads.prodcons import generate_prodcons
from repro.system.workloads.radix import generate_radix
from repro.system.workloads.randshare import generate_randshare
from repro.system.workloads.stencil import generate_stencil

WorkloadFn = Callable[[int, np.random.Generator, float], list[Program]]

WORKLOADS: dict[str, WorkloadFn] = {
    "barnes": generate_barnes,
    "cholesky": generate_cholesky,
    "fft": generate_fft,
    "lu": generate_lu,
    "radix": generate_radix,
    "stencil": generate_stencil,
    "prodcons": generate_prodcons,
    "randshare": generate_randshare,
}


def build_workload(
    name: str, num_cores: int, seed: int, scale: float = 1.0
) -> list[Program]:
    """Generate one core program per node for workload ``name``.

    Deterministic in (name, num_cores, seed, scale); validated for opcode
    sanity and barrier consistency before being returned.
    """
    try:
        fn = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    if num_cores < 1:
        raise ValueError(f"num_cores must be >= 1, got {num_cores}")
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    # crc32 (not hash()) so program generation is stable across processes.
    import zlib

    rng = np.random.default_rng(np.random.SeedSequence(
        entropy=seed, spawn_key=(zlib.crc32(name.encode()),)
    ))
    programs = fn(num_cores, rng, scale)
    if len(programs) != num_cores:
        raise RuntimeError(f"workload {name} produced {len(programs)} programs")
    programs = [validate_program(p) for p in programs]
    check_barrier_consistency(programs)
    return programs
