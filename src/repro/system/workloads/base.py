"""Shared helpers for workload generators."""

from __future__ import annotations

import itertools

import numpy as np

from repro.system.ops import (
    OP_COMPUTE,
    OP_LOAD,
    OP_STORE,
    Op,
)

LINE_BYTES = 64
# Each core owns a disjoint region of this many lines; the S-NUCA home
# interleaving still spreads these across every L2 slice.
PRIVATE_REGION_LINES = 4096
# Shared pool placed above all private regions (for randshare etc.).
SHARED_POOL_BASE_CORE = 1 << 16


def private_line(core: int, index: int) -> int:
    """Line index ``index`` within ``core``'s private region."""
    if index < 0 or index >= PRIVATE_REGION_LINES:
        raise ValueError(f"private index {index} out of region")
    return core * PRIVATE_REGION_LINES + index


def shared_line(index: int) -> int:
    """Line index ``index`` in the global shared pool."""
    if index < 0:
        raise ValueError(f"negative shared index {index}")
    return SHARED_POOL_BASE_CORE * PRIVATE_REGION_LINES + index


def addr(line: int) -> int:
    """Line index -> byte address."""
    return line * LINE_BYTES


def load(line: int) -> Op:
    return (OP_LOAD, addr(line))


def store(line: int) -> Op:
    return (OP_STORE, addr(line))


def compute(cycles: int) -> Op:
    return (OP_COMPUTE, int(cycles))


class BarrierIds:
    """Monotone barrier-id source shared by all cores of one workload."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def next_id(self) -> int:
        return next(self._counter)


def jittered_compute(rng: np.random.Generator, mean: int) -> Op:
    """Compute op with +-50% uniform jitter (drawn once at generation time,
    so the jitter is identical on every network)."""
    lo = max(1, mean // 2)
    hi = max(lo + 1, (3 * mean) // 2)
    return compute(int(rng.integers(lo, hi)))


def scaled(n: int, scale: float, minimum: int = 1) -> int:
    """Scale a phase/iteration count, keeping at least ``minimum``."""
    return max(minimum, int(round(n * scale)))
