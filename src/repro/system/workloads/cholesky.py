"""Cholesky-like right-looking panel factorisation.

Panel *k* is factored by its owner (round-robin), published through a
barrier, and then every core updates its assigned trailing panels against
it — and the trailing set *shrinks* as k advances, so the kernel has real
load imbalance that grows over time.  Imbalance phases are where
execution-time prediction is hardest for a trace model (idle cores wait on
barriers whose release chains cross the machine), making this a deliberately
adversarial addition to the suite.
"""

from __future__ import annotations

import numpy as np

from repro.system.ops import OP_BARRIER, Program
from repro.system.workloads.base import (
    BarrierIds,
    jittered_compute,
    load,
    private_line,
    scaled,
    store,
)


def generate_cholesky(
    num_cores: int, rng: np.random.Generator, scale: float = 1.0
) -> list[Program]:
    """Right-looking factorisation; ``scale`` multiplies the panel count."""
    # At least num_cores + 2 panels so every core owns a panel and has
    # trailing updates (round-robin assignment covers all cores).
    panels = scaled(num_cores + 2, scale, minimum=4)
    panel_lines = 10
    bids = BarrierIds()
    programs: list[Program] = [[] for _ in range(num_cores)]

    def panel_region(k: int) -> tuple[int, int]:
        """(owner core, base line) of panel k."""
        return k % num_cores, 1536 + (k * panel_lines) % 512

    for k in range(panels):
        owner, base = panel_region(k)
        factored_bid = bids.next_id()
        updated_bid = bids.next_id()
        # Trailing panels k+1 .. panels-1, assigned round-robin.
        trailing = list(range(k + 1, panels))
        for core in range(num_cores):
            prog = programs[core]
            if core == owner:
                prog.append(jittered_compute(rng, 60))  # factor the panel
                for j in range(panel_lines):
                    prog.append(store(private_line(owner, base + j)))
                    prog.append(jittered_compute(rng, 2))
            prog.append((OP_BARRIER, factored_bid))
            my_trailing = [t for t in trailing if t % num_cores == core]
            for t in my_trailing:
                # Read the factored panel, update own trailing panel.
                for j in range(panel_lines):
                    prog.append(load(private_line(owner, base + j)))
                t_owner, t_base = panel_region(t)
                for j in range(panel_lines):
                    prog.append(store(private_line(t_owner, t_base + j)))
                    prog.append(jittered_compute(rng, 3))
            if not my_trailing:
                prog.append(jittered_compute(rng, 5))   # idle-ish tail cores
            prog.append((OP_BARRIER, updated_bid))
    return programs
