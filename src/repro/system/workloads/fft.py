"""FFT-like butterfly kernel.

``log2(num_cores)`` phases; in phase *p* core *i* exchanges data with partner
``i XOR 2^p``: it reads a slab of the partner's private region, computes the
butterflies, and writes its own slab.  Barriers separate phases.  This
produces the classic distance-doubling all-to-all pattern that saturates a
mesh's bisection and that optical crossbars flatten.
"""

from __future__ import annotations

import numpy as np

from repro.system.ops import OP_BARRIER, Program
from repro.system.workloads.base import (
    BarrierIds,
    jittered_compute,
    load,
    private_line,
    scaled,
    store,
)


def generate_fft(
    num_cores: int, rng: np.random.Generator, scale: float = 1.0
) -> list[Program]:
    """Butterfly exchange; ``scale`` multiplies the slab size."""
    phases = max(1, (num_cores - 1).bit_length())
    slab = scaled(24, scale)            # lines exchanged per phase
    bids = BarrierIds()
    programs: list[Program] = [[] for _ in range(num_cores)]

    # Double-buffered like real FFTs: phase p reads the buffer partners
    # wrote in phase p-1 (stable across the barrier) and writes the other
    # buffer, so no line is concurrently loaded and stored within a phase —
    # the communication pattern is identical on every interconnect.
    def write_base(p: int) -> int:
        return (p % 2) * 512

    # Initial touch: each core warms the buffer phase 0 will read.
    for core in range(num_cores):
        prog = programs[core]
        for j in range(slab):
            prog.append(store(private_line(core, write_base(-1) + j)))
            prog.append(jittered_compute(rng, 4))
    start_bid = bids.next_id()
    for prog in programs:
        prog.append((OP_BARRIER, start_bid))

    for p in range(phases):
        bid = bids.next_id()
        read_base = write_base(p - 1)
        for core in range(num_cores):
            prog = programs[core]
            partner = core ^ (1 << p)
            if partner >= num_cores:
                partner = core  # odd core counts: self-phase, local only
            for j in range(slab):
                if partner != core:
                    prog.append(load(private_line(partner, read_base + j)))
                prog.append(jittered_compute(rng, 6))
                prog.append(store(private_line(core, write_base(p) + j)))
            prog.append((OP_BARRIER, bid))
    return programs
