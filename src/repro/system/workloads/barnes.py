"""Barnes-Hut-like kernel: read-mostly tree walks + migratory cell updates.

Per iteration core 0 rebuilds the shared octree (stores to the shared pool),
a barrier publishes it, then every core walks pseudo-random root-to-leaf
paths (read-only loads of shared tree lines — wide read sharing), computes
forces, stores its own bodies (private), and occasionally read-modify-writes
a shared accumulator cell (migratory ownership).  The irregular, read-heavy
sharing is the classic contrast to the streaming kernels.
"""

from __future__ import annotations

import numpy as np

from repro.system.ops import OP_BARRIER, Program
from repro.system.workloads.base import (
    BarrierIds,
    jittered_compute,
    load,
    private_line,
    scaled,
    shared_line,
    store,
)

TREE_LEVELS = 4
TREE_FANOUT = 4


def _tree_line(level: int, index: int) -> int:
    """Shared-pool line of tree node ``index`` at ``level``."""
    base = sum(TREE_FANOUT ** lvl for lvl in range(level))
    return shared_line(1024 + base + index)


def generate_barnes(
    num_cores: int, rng: np.random.Generator, scale: float = 1.0
) -> list[Program]:
    """Tree-walk kernel; ``scale`` multiplies walks per core."""
    iterations = 2
    walks_per_core = scaled(12, scale)
    bodies_per_core = 8
    bids = BarrierIds()
    programs: list[Program] = [[] for _ in range(num_cores)]
    tree_size = [TREE_FANOUT ** lvl for lvl in range(TREE_LEVELS)]

    for it in range(iterations):
        built_bid = bids.next_id()
        done_bid = bids.next_id()
        # All random walk choices drawn up front — identical on any network.
        paths = rng.integers(0, TREE_FANOUT,
                             size=(num_cores, walks_per_core, TREE_LEVELS - 1))
        touch_cell = rng.random(size=(num_cores, walks_per_core)) < 0.2
        cells = rng.integers(0, 64, size=(num_cores, walks_per_core))
        for core in range(num_cores):
            prog = programs[core]
            if core == 0:
                # Rebuild the tree: store every node.
                for level in range(TREE_LEVELS):
                    for idx in range(tree_size[level]):
                        prog.append(store(_tree_line(level, idx)))
                prog.append(jittered_compute(rng, 30))
            prog.append((OP_BARRIER, built_bid))
            for w in range(walks_per_core):
                idx = 0
                prog.append(load(_tree_line(0, 0)))       # root
                for level in range(1, TREE_LEVELS):
                    idx = idx * TREE_FANOUT + int(paths[core, w, level - 1])
                    prog.append(load(_tree_line(level, idx)))
                    prog.append(jittered_compute(rng, 3))
                # Update own body (private store).
                prog.append(store(private_line(core, 3072 + w % bodies_per_core)))
                if touch_cell[core, w]:
                    # Migratory shared accumulator.
                    cell = shared_line(2048 + int(cells[core, w]))
                    prog.append(load(cell))
                    prog.append(jittered_compute(rng, 2))
                    prog.append(store(cell))
                prog.append(jittered_compute(rng, 5))
            prog.append((OP_BARRIER, done_bid))
    return programs
