"""Producer/consumer pipeline kernel.

Cores pair up across the chip (core *i* with ``i + n/2``): producers write a
buffer of lines, a barrier publishes it, consumers read it (every read is a
remote fetch of a freshly-modified line: the pure producer->consumer sharing
pattern).  Roles swap halfway so both directions are exercised.
"""

from __future__ import annotations

import numpy as np

from repro.system.ops import OP_BARRIER, Program
from repro.system.workloads.base import (
    BarrierIds,
    jittered_compute,
    load,
    private_line,
    scaled,
    store,
)


def generate_prodcons(
    num_cores: int, rng: np.random.Generator, scale: float = 1.0
) -> list[Program]:
    """Paired streaming; ``scale`` multiplies rounds."""
    rounds = scaled(6, scale)
    buf_lines = 16
    half = max(1, num_cores // 2)
    bids = BarrierIds()
    programs: list[Program] = [[] for _ in range(num_cores)]

    for r in range(rounds):
        produced_bid = bids.next_id()
        consumed_bid = bids.next_id()
        swap = r >= rounds // 2
        base = (r * buf_lines) % 512
        for core in range(num_cores):
            prog = programs[core]
            in_first_half = core < half
            producing = in_first_half != swap
            partner = core + half if in_first_half else core - half
            if partner >= num_cores:          # odd core count: self-paired
                partner = core
            if producing:
                for j in range(buf_lines):
                    prog.append(store(private_line(core, base + j)))
                    prog.append(jittered_compute(rng, 3))
            else:
                prog.append(jittered_compute(rng, 10))
            prog.append((OP_BARRIER, produced_bid))
            if not producing and partner != core:
                for j in range(buf_lines):
                    prog.append(load(private_line(partner, base + j)))
                    prog.append(jittered_compute(rng, 3))
            prog.append((OP_BARRIER, consumed_bid))
    return programs
