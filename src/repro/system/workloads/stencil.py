"""2-D Jacobi-stencil kernel: nearest-neighbour ghost-cell exchange.

Cores tile a near-square grid.  Each iteration a core loads the boundary
("ghost") lines of its four grid neighbours, computes, and stores its own
interior — short-distance traffic an electrical mesh serves well, making
this the workload where optical distance-independence matters least (a
useful contrast point in the case study).
"""

from __future__ import annotations

import numpy as np

from repro.system.ops import OP_BARRIER, Program
from repro.system.workloads.base import (
    BarrierIds,
    jittered_compute,
    load,
    private_line,
    scaled,
    store,
)


def _grid(num_cores: int) -> tuple[int, int]:
    side = int(np.sqrt(num_cores))
    while side > 1 and num_cores % side:
        side -= 1
    return side, num_cores // side


def generate_stencil(
    num_cores: int, rng: np.random.Generator, scale: float = 1.0
) -> list[Program]:
    """Ghost exchange over a factored core grid; ``scale`` -> iterations."""
    width, height = _grid(num_cores)
    iterations = scaled(6, scale)
    ghost_lines = 6                     # boundary lines read per neighbour
    interior_lines = 10
    bids = BarrierIds()
    programs: list[Program] = [[] for _ in range(num_cores)]

    def neighbours(core: int) -> list[int]:
        x, y = core % width, core // width
        out = []
        if x > 0:
            out.append(core - 1)
        if x < width - 1:
            out.append(core + 1)
        if y > 0:
            out.append(core - width)
        if y < height - 1:
            out.append(core + width)
        return out

    # Double-buffered like real stencil codes: iteration `it` reads the
    # buffer its neighbours wrote in iteration `it-1` (stable across the
    # barrier) and writes the other buffer — no intra-phase read/write race,
    # so the communication pattern is identical on every interconnect.
    def write_base(it: int) -> int:
        return ((it + 1) % 2) * 512 + (it * ghost_lines) % 256

    for it in range(iterations):
        bid = bids.next_id()
        read_base = write_base(it - 1)
        for core in range(num_cores):
            prog = programs[core]
            for nb in neighbours(core):
                for j in range(ghost_lines):
                    prog.append(load(private_line(nb, read_base + j)))
                    prog.append(jittered_compute(rng, 2))
            prog.append(jittered_compute(rng, 20))  # relax interior
            for j in range(interior_lines):
                prog.append(store(private_line(core, write_base(it) + j)))
                prog.append(jittered_compute(rng, 2))
            prog.append((OP_BARRIER, bid))
    return programs
