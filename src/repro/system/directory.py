"""Home L2 slice: directory controller + shared data array.

Each node owns an address-interleaved slice of the shared L2 (S-NUCA) and the
directory entries for those lines.  Transactions on one line are serialised
at the home: a second GETS/GETX for a busy line waits in a per-line FIFO.

Races handled (the classic MSI crossing cases):

* *Eviction writeback vs. fetch*: the home waits for owner data; whether the
  owner's WRITEBACK was a fetch reply or an eviction already in flight, the
  first WRITEBACK from the owner completes the transaction (the L1 drops
  stale fetches for lines it no longer holds in M).
* *Owner re-requesting its own evicted line*: the directory still names the
  requester as owner; no fetch is sent — the in-flight eviction WRITEBACK is
  the data source.
* *Silent shared evictions*: INV to a node that dropped its copy is simply
  acked without data.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.net import (
    MSG_INV,
    MSG_INV_ACK,
    MSG_MEM_READ,
    MSG_MEM_RESP,
    MSG_REQ_READ,
    MSG_REQ_WRITE,
    MSG_RESP_DATA,
    MSG_WRITEBACK,
    Message,
)
from repro.system.cache import CacheArray, CacheLineState
from repro.system.protocol import MSG_FETCH, MSG_FETCH_INV, ProtPayload

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.cmp import FullSystem


class DirEntry:
    """Stable directory state of one line at its home."""

    __slots__ = ("state", "owner", "sharers", "seq")

    def __init__(self) -> None:
        self.state = CacheLineState.INVALID
        self.owner = -1
        self.sharers: set[int] = set()
        # Monotone per-line transaction counter; lets L1s order racing
        # messages (see ProtPayload.seq).
        self.seq = 0


class Txn:
    """One in-flight transaction (GETS/GETX being serviced)."""

    __slots__ = (
        "line",
        "requester",
        "is_write",
        "seq",
        "need_acks",
        "need_owner_data",
        "need_mem",
        "cause",
        "bound",
        "finishing",
        "prev_owner",
    )

    def __init__(self, line: int, requester: int, is_write: bool,
                 seq: int, cause: Message, bound: Message | None) -> None:
        self.line = line
        self.requester = requester
        self.is_write = is_write
        self.seq = seq
        self.need_acks = 0
        self.need_owner_data = False
        self.need_mem = False
        self.cause = cause          # latest message that advanced this txn
        # Secondary lower bound for dequeued transactions: the request's own
        # arrival (txn start = max(arrival, previous completion)).
        self.bound = bound
        self.finishing = False
        self.prev_owner = -1

    @property
    def ready(self) -> bool:
        return (
            self.need_acks == 0
            and not self.need_owner_data
            and not self.need_mem
            and not self.finishing
        )


class HomeSlice:
    """Directory + L2 data slice at one node."""

    __slots__ = ("node", "sys", "l2", "directory", "txns", "waiting",
                 "mem_reads", "invalidations_sent", "fetches_sent")

    def __init__(self, node: int, system: "FullSystem") -> None:
        self.node = node
        self.sys = system
        self.l2 = CacheArray(system.cfg.l2_slice)
        self.directory: dict[int, DirEntry] = {}
        self.txns: dict[int, Txn] = {}
        self.waiting: dict[int, deque[Message]] = {}
        self.mem_reads = 0
        self.invalidations_sent = 0
        self.fetches_sent = 0

    # -------------------------------------------------------------- inbox
    def handle(self, msg: Message) -> None:
        kind = msg.kind
        if kind in (MSG_REQ_READ, MSG_REQ_WRITE):
            line = msg.payload.line
            if line in self.txns:
                self.waiting.setdefault(line, deque()).append(msg)
            else:
                self._start(msg)
        elif kind == MSG_INV_ACK:
            self._on_inv_ack(msg)
        elif kind == MSG_WRITEBACK:
            self._on_writeback(msg)
        elif kind == MSG_MEM_RESP:
            self._on_mem_resp(msg)
        else:
            raise ValueError(f"home {self.node}: unexpected kind {kind!r}")

    # ------------------------------------------------------- transactions
    def _entry(self, line: int) -> DirEntry:
        e = self.directory.get(line)
        if e is None:
            e = DirEntry()
            self.directory[line] = e
        return e

    def _start(self, req: Message, inherited_cause: Message | None = None) -> None:
        """Begin servicing a GETS/GETX.

        ``inherited_cause`` is set when ``req`` was dequeued after waiting for
        a previous transaction on the same line: the event that actually
        *triggered* this transaction is whatever completed the previous one,
        not the (long-delivered) request itself.  Threading it keeps the
        captured gaps network-independent — attributing the queue wait to the
        request would bake the capture network's timing into the trace.
        """
        payload: ProtPayload = req.payload
        line, r = payload.line, payload.requester
        is_write = req.kind == MSG_REQ_WRITE
        trigger = inherited_cause if inherited_cause is not None else req
        # NOTE: a dequeued request's own arrival is deliberately NOT recorded
        # as a secondary bound edge.  In this protocol a queued transaction
        # starts exactly at the previous transaction's finish (its request
        # always arrived earlier), so the bound edge is inactive at capture —
        # and its measured slack is capture-network-dependent, which measured
        # 3-5x *worse* replay accuracy when threaded through (see
        # EXPERIMENTS.md, "two-trigger ablation").  The trace format and the
        # replayers fully support bound edges for protocols that need them.
        bound = None
        entry = self._entry(line)
        txn = Txn(line, r, is_write, seq=entry.seq, cause=trigger, bound=bound)
        entry.seq += 1
        self.txns[line] = txn

        if entry.state == CacheLineState.MODIFIED:
            txn.need_owner_data = True
            txn.prev_owner = entry.owner
            if entry.owner != r:
                self.fetches_sent += 1
                self.sys.send_protocol(
                    self.node,
                    entry.owner,
                    MSG_FETCH_INV if is_write else MSG_FETCH,
                    ProtPayload(line=line, requester=r, seq=txn.seq,
                                cause=trigger, bound=bound),
                )
            # owner == r: its eviction WRITEBACK is already in flight and
            # will serve as the data arrival.
        elif is_write:
            others = entry.sharers - {r}
            txn.need_acks = len(others)
            for s in sorted(others):
                self.invalidations_sent += 1
                self.sys.send_protocol(
                    self.node, s, MSG_INV,
                    ProtPayload(line=line, requester=r, seq=txn.seq,
                                cause=trigger, bound=bound),
                )
            if r not in entry.sharers:
                self._ensure_data(txn, trigger)
        else:
            self._ensure_data(txn, trigger)

        self._maybe_finish(txn)

    def _ensure_data(self, txn: Txn, trigger: Message) -> None:
        """Source the line's data from the L2 array or from memory."""
        if self.l2.lookup(txn.line) != CacheLineState.INVALID:
            return
        txn.need_mem = True
        self.mem_reads += 1
        self.sys.send_protocol(
            self.node,
            self.sys.memctrl_of(txn.line),
            MSG_MEM_READ,
            ProtPayload(line=txn.line, requester=self.node, cause=trigger,
                        bound=txn.bound),
        )

    # ------------------------------------------------------ txn advancing
    def _on_inv_ack(self, msg: Message) -> None:
        txn = self.txns.get(msg.payload.line)
        if txn is None or txn.need_acks <= 0:
            raise RuntimeError(
                f"home {self.node}: unexpected INV_ACK for line "
                f"{msg.payload.line}"
            )
        txn.need_acks -= 1
        txn.cause = msg
        self._maybe_finish(txn)

    def _on_writeback(self, msg: Message) -> None:
        payload: ProtPayload = msg.payload
        line = payload.line
        txn = self.txns.get(line)
        if txn is not None and txn.need_owner_data:
            txn.need_owner_data = False
            txn.cause = msg
            self._install_l2(line)
            entry = self._entry(line)
            if not txn.is_write and txn.prev_owner != txn.requester:
                # FETCH downgrade: old owner keeps a shared copy...
                if payload.aux == 1:
                    entry.sharers = {txn.prev_owner}
                else:
                    # ...unless this was actually a crossing eviction.
                    entry.sharers = set()
            else:
                entry.sharers = set()
            entry.owner = -1
            entry.state = (
                CacheLineState.SHARED if entry.sharers else CacheLineState.INVALID
            )
            self._maybe_finish(txn)
            return
        # Plain eviction writeback.
        entry = self._entry(line)
        if entry.state != CacheLineState.MODIFIED or entry.owner != msg.src:
            raise RuntimeError(
                f"home {self.node}: writeback for line {line} from {msg.src} "
                f"but dir state {entry.state.name}/owner {entry.owner}"
            )
        entry.state = CacheLineState.INVALID
        entry.owner = -1
        entry.sharers = set()
        self._install_l2(line)

    def _on_mem_resp(self, msg: Message) -> None:
        txn = self.txns.get(msg.payload.line)
        if txn is None or not txn.need_mem:
            raise RuntimeError(
                f"home {self.node}: unexpected MEM_RESP for line "
                f"{msg.payload.line}"
            )
        txn.need_mem = False
        txn.cause = msg
        self._install_l2(msg.payload.line)
        self._maybe_finish(txn)

    def _install_l2(self, line: int) -> None:
        """Install data, bypassing allocation if every victim is pinned."""
        def victim_ok(victim_line: int, _state: CacheLineState) -> bool:
            if victim_line in self.txns:
                return False
            e = self.directory.get(victim_line)
            return e is None or e.state == CacheLineState.INVALID

        try:
            self.l2.install(line, CacheLineState.VALID, victim_ok)
        except RuntimeError:
            pass  # all ways pinned by live directory state: serve-and-bypass

    # ----------------------------------------------------------- finishing
    def _maybe_finish(self, txn: Txn) -> None:
        if txn.ready:
            txn.finishing = True
            self.sys.sim.schedule_after(
                self.sys.cfg.l2_slice.hit_latency, self._finish, (txn,)
            )

    def _finish(self, txn: Txn) -> None:
        line = txn.line
        entry = self._entry(line)
        if txn.is_write:
            entry.state = CacheLineState.MODIFIED
            entry.owner = txn.requester
            entry.sharers = set()
        else:
            entry.state = CacheLineState.SHARED
            entry.owner = -1
            entry.sharers.add(txn.requester)
        self.sys.send_protocol(
            self.node,
            txn.requester,
            MSG_RESP_DATA,
            ProtPayload(line=line, requester=txn.requester,
                        aux=1 if txn.is_write else 0, seq=txn.seq,
                        cause=txn.cause, bound=txn.bound),
        )
        del self.txns[line]
        q = self.waiting.get(line)
        if q:
            nxt = q.popleft()
            if not q:
                del self.waiting[line]
            # The dequeued transaction is triggered by whatever completed
            # this one (see _start's inherited_cause note).
            self._start(nxt, inherited_cause=txn.cause)

    # ------------------------------------------------------------- queries
    def busy_lines(self) -> list[int]:
        return sorted(self.txns)
