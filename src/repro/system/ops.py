"""Core operation encoding.

Programs are flat lists of small tuples — the hot interpreter loop in
:mod:`repro.system.core` indexes them millions of times, so plain tuples with
an integer opcode beat dataclass instances by a wide margin (guide: avoid
per-item object churn in hot paths).

    (OP_COMPUTE, cycles)      spin the core for ``cycles``
    (OP_LOAD, addr)           blocking load of byte address ``addr``
    (OP_STORE, addr)          blocking store to byte address ``addr``
    (OP_BARRIER, barrier_id)  global barrier; ids must be unique and issued
                              in the same order by every core
"""

from __future__ import annotations

from typing import Iterable

OP_COMPUTE = 0
OP_LOAD = 1
OP_STORE = 2
OP_BARRIER = 3

_OP_NAMES = {OP_COMPUTE: "compute", OP_LOAD: "load", OP_STORE: "store",
             OP_BARRIER: "barrier"}

Op = tuple[int, int]
Program = list[Op]


def validate_program(program: Iterable[Op]) -> Program:
    """Check opcode/operand sanity; returns the program as a list."""
    out: Program = []
    for i, op in enumerate(program):
        if len(op) != 2:
            raise ValueError(f"op {i}: expected (opcode, operand), got {op!r}")
        code, arg = op
        if code not in _OP_NAMES:
            raise ValueError(f"op {i}: unknown opcode {code}")
        if code == OP_COMPUTE and arg < 0:
            raise ValueError(f"op {i}: negative compute cycles {arg}")
        if code in (OP_LOAD, OP_STORE) and arg < 0:
            raise ValueError(f"op {i}: negative address {arg}")
        if code == OP_BARRIER and arg < 0:
            raise ValueError(f"op {i}: negative barrier id {arg}")
        out.append((code, arg))
    return out


def op_histogram(program: Iterable[Op]) -> dict[str, int]:
    """Count ops by kind (workload characterisation helper)."""
    counts = {name: 0 for name in _OP_NAMES.values()}
    for code, _ in program:
        counts[_OP_NAMES[code]] += 1
    return counts


def check_barrier_consistency(programs: list[Program]) -> list[int]:
    """Verify all cores issue the same barrier sequence; returns it.

    A mismatched barrier sequence would deadlock the simulated machine, so
    workload generators call this before handing programs to the system.
    """
    sequences = [
        [arg for code, arg in prog if code == OP_BARRIER] for prog in programs
    ]
    first = sequences[0]
    for core, seq in enumerate(sequences[1:], start=1):
        if seq != first:
            raise ValueError(
                f"core {core} barrier sequence {seq[:8]}... differs from "
                f"core 0's {first[:8]}..."
            )
    if len(set(first)) != len(first):
        raise ValueError(f"barrier ids must be unique, got {first}")
    return first
