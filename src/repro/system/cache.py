"""Set-associative cache array with LRU replacement and MSI line states."""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.config import CacheConfig


class CacheLineState(enum.IntEnum):
    """MSI stable states (the L2 data array only uses PRESENT/INVALID
    semantics and stores VALID)."""

    INVALID = 0
    SHARED = 1
    MODIFIED = 2
    VALID = 3


class _Line:
    __slots__ = ("tag", "state", "lru")

    def __init__(self) -> None:
        self.tag = -1
        self.state = CacheLineState.INVALID
        self.lru = 0


class CacheArray:
    """One cache structure addressed by *line index* (byte addr / line size).

    The array tracks tags and states only — simulated data values are never
    materialised (timing simulation does not need them).
    """

    def __init__(self, cfg: CacheConfig) -> None:
        self.cfg = cfg
        self.num_sets = cfg.num_sets
        self.assoc = cfg.assoc
        self._sets = [[_Line() for _ in range(cfg.assoc)] for _ in range(self.num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -------------------------------------------------------------- lookup
    def _set_of(self, line_index: int) -> list[_Line]:
        if line_index < 0:
            raise ValueError(f"negative line index {line_index}")
        return self._sets[line_index % self.num_sets]

    def lookup(self, line_index: int) -> CacheLineState:
        """State of ``line_index`` (INVALID if absent); touches LRU on hit."""
        for way in self._set_of(line_index):
            if way.tag == line_index and way.state != CacheLineState.INVALID:
                self._tick += 1
                way.lru = self._tick
                self.hits += 1
                return way.state
        self.misses += 1
        return CacheLineState.INVALID

    def peek(self, line_index: int) -> CacheLineState:
        """State without touching LRU or hit/miss counters."""
        for way in self._set_of(line_index):
            if way.tag == line_index and way.state != CacheLineState.INVALID:
                return way.state
        return CacheLineState.INVALID

    # ------------------------------------------------------------- update
    def set_state(self, line_index: int, state: CacheLineState) -> None:
        """Change the state of a resident line (or drop it with INVALID)."""
        for way in self._set_of(line_index):
            if way.tag == line_index and way.state != CacheLineState.INVALID:
                way.state = state
                if state == CacheLineState.INVALID:
                    way.tag = -1
                return
        raise KeyError(f"line {line_index} not resident")

    def install(
        self,
        line_index: int,
        state: CacheLineState,
        victim_ok: Optional[Callable[[int, CacheLineState], bool]] = None,
    ) -> Optional[tuple[int, CacheLineState]]:
        """Insert a line, evicting LRU if the set is full.

        ``victim_ok(line, state)`` may veto candidate victims (the L2 slice
        uses it to pin lines with live directory state).  Returns the evicted
        ``(line_index, state)`` or None.  Raises ``RuntimeError`` if the set
        is full and every resident line is vetoed (caller should bypass
        allocation instead).
        """
        if state == CacheLineState.INVALID:
            raise ValueError("cannot install a line in INVALID state")
        ways = self._set_of(line_index)
        self._tick += 1
        # Refresh in place if already present.
        for way in ways:
            if way.tag == line_index and way.state != CacheLineState.INVALID:
                way.state = state
                way.lru = self._tick
                return None
        # Free way?
        for way in ways:
            if way.state == CacheLineState.INVALID:
                way.tag = line_index
                way.state = state
                way.lru = self._tick
                return None
        # Evict LRU among allowed victims.
        candidates = [
            w for w in ways if victim_ok is None or victim_ok(w.tag, w.state)
        ]
        if not candidates:
            raise RuntimeError(
                f"no evictable way for line {line_index} (all pinned)"
            )
        victim = min(candidates, key=lambda w: w.lru)
        evicted = (victim.tag, victim.state)
        self.evictions += 1
        victim.tag = line_index
        victim.state = state
        victim.lru = self._tick
        return evicted

    def invalidate(self, line_index: int) -> CacheLineState:
        """Drop a line if resident; returns its prior state."""
        for way in self._set_of(line_index):
            if way.tag == line_index and way.state != CacheLineState.INVALID:
                prior = way.state
                way.tag = -1
                way.state = CacheLineState.INVALID
                return prior
        return CacheLineState.INVALID

    # ------------------------------------------------------------ queries
    def resident_lines(self) -> list[int]:
        """All resident line indices (test/inspection hook)."""
        return sorted(
            w.tag
            for s in self._sets
            for w in s
            if w.state != CacheLineState.INVALID
        )

    @property
    def occupancy(self) -> int:
        return sum(
            1 for s in self._sets for w in s if w.state != CacheLineState.INVALID
        )
