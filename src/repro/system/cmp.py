"""FullSystem: wires cores, caches, directory slices, memory controllers and
the barrier coordinator onto an interconnect.

The interconnect is any :class:`repro.net.NetworkAdapter`; same-node protocol
messages bypass it through a 1-cycle local path (an L1 talking to the L2
slice on its own tile does not cross the network).  An optional trace-capture
object observes every *network* message send and each core's completion —
that is the entire coupling between the full-system front end and the trace
model, mirroring the paper's architecture.
"""

from __future__ import annotations

import time as _walltime
from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.config import SystemConfig
from repro.engine import Simulator
from repro.net import (
    MSG_BARRIER_ARRIVE,
    MSG_BARRIER_RELEASE,
    MSG_INV,
    MSG_INV_ACK,
    MSG_MEM_READ,
    MSG_MEM_RESP,
    MSG_REQ_READ,
    MSG_REQ_WRITE,
    MSG_RESP_DATA,
    MSG_WRITEBACK,
    Message,
    NetworkAdapter,
)
from repro.system.barrier import BarrierCoordinator
from repro.system.core import Core
from repro.system.directory import HomeSlice
from repro.system.l1 import L1Controller
from repro.system.memctrl import MemController
from repro.system.ops import Program, check_barrier_consistency
from repro.system.protocol import (
    MSG_FETCH,
    MSG_FETCH_INV,
    ProtPayload,
    derive_cause,
    message_size,
)

LOCAL_DELIVERY_LATENCY = 1

_L1_KINDS = frozenset({MSG_RESP_DATA, MSG_INV, MSG_FETCH, MSG_FETCH_INV})
_HOME_KINDS = frozenset({MSG_REQ_READ, MSG_REQ_WRITE, MSG_INV_ACK,
                         MSG_WRITEBACK, MSG_MEM_RESP})


class CaptureHook(Protocol):
    """What FullSystem needs from a trace-capture object."""

    def on_network_send(self, msg: Message) -> None: ...

    def on_core_finish(self, node: int, finish_time: int,
                       cause: Optional[Message]) -> None: ...


@dataclass
class SystemResult:
    """Outcome of one execution-driven run."""

    exec_time_cycles: int
    per_core_finish: list[int]
    wall_clock_s: float
    l1_hits: int
    l1_misses: int
    mem_reads: int
    barriers: int
    messages: int
    avg_network_latency: float
    extra: dict = field(default_factory=dict)


class FullSystem:
    """Execution-driven CMP simulation over a pluggable interconnect."""

    def __init__(
        self,
        sim: Simulator,
        cfg: SystemConfig,
        network: NetworkAdapter,
        programs: list[Program],
        capture: Optional[CaptureHook] = None,
    ) -> None:
        if len(programs) != cfg.num_cores:
            raise ValueError(
                f"{len(programs)} programs for {cfg.num_cores} cores"
            )
        if network.num_nodes != cfg.num_cores:
            raise ValueError(
                f"network has {network.num_nodes} nodes for {cfg.num_cores} cores"
            )
        check_barrier_consistency(programs)
        self.sim = sim
        self.cfg = cfg
        self.network = network
        self.capture = capture
        self.l1s = [L1Controller(n, self) for n in range(cfg.num_cores)]
        self.homes = [HomeSlice(n, self) for n in range(cfg.num_cores)]
        self.cores = [Core(n, self, p) for n, p in enumerate(programs)]
        self.barrier = BarrierCoordinator(self)
        # Memory controllers at evenly spaced nodes.
        step = cfg.num_cores / cfg.num_mem_ctrls
        self.memctrl_nodes = sorted({int(i * step) for i in range(cfg.num_mem_ctrls)})
        self.memctrls = {n: MemController(n, self) for n in self.memctrl_nodes}
        self._finished = 0
        network.set_delivery_handler(self._dispatch)

    # ----------------------------------------------------------- placement
    def home_of(self, line: int) -> int:
        """Home node of a line (address-interleaved S-NUCA)."""
        return line % self.cfg.num_cores

    def memctrl_of(self, line: int) -> int:
        """Memory-controller node serving a line."""
        return self.memctrl_nodes[line % len(self.memctrl_nodes)]

    # ------------------------------------------------------------- sending
    def send_protocol(self, src: int, dst: int, kind: str,
                      payload: ProtPayload) -> None:
        """Send a protocol message, normalising its causal trigger(s)."""
        payload.cause = derive_cause(payload.cause)
        payload.bound = derive_cause(payload.bound)
        if payload.bound is payload.cause:
            payload.bound = None
        msg = Message(src, dst, message_size(self.cfg, kind), kind, payload)
        if src == dst:
            payload.local = True
            msg.inject_time = self.sim.now
            self.sim.schedule_after(
                LOCAL_DELIVERY_LATENCY, self._deliver_local, (msg,)
            )
        else:
            self.network.send(msg)
            if self.capture is not None:
                self.capture.on_network_send(msg)

    def _deliver_local(self, msg: Message) -> None:
        msg.deliver_time = self.sim.now
        self._dispatch(msg)

    # ------------------------------------------------------------ dispatch
    def _dispatch(self, msg: Message) -> None:
        kind = msg.kind
        if kind in _L1_KINDS:
            self.l1s[msg.dst].handle(msg)
        elif kind in _HOME_KINDS:
            self.homes[msg.dst].handle(msg)
        elif kind == MSG_MEM_READ:
            ctrl = self.memctrls.get(msg.dst)
            if ctrl is None:
                raise RuntimeError(f"MEM_READ to non-controller node {msg.dst}")
            ctrl.handle(msg)
        elif kind == MSG_BARRIER_ARRIVE:
            self.barrier.handle(msg)
        elif kind == MSG_BARRIER_RELEASE:
            self.cores[msg.dst].handle(msg)
        else:
            raise ValueError(f"undispatchable message kind {kind!r}")

    # ------------------------------------------------------------- running
    def on_core_finished(self, core: Core) -> None:
        self._finished += 1
        if self.capture is not None:
            self.capture.on_core_finish(
                core.node, self.sim.now, core.last_cause
            )

    def run(self, max_cycles: Optional[int] = None) -> SystemResult:
        """Run to completion; raises on deadlock/timeout with diagnostics."""
        t0 = _walltime.perf_counter()
        for core in self.cores:
            core.start()
        self.sim.run(until=max_cycles)
        wall = _walltime.perf_counter() - t0
        if self._finished != self.cfg.num_cores:
            stuck = [c.node for c in self.cores if not c.finished]
            busy = {h.node: h.busy_lines() for h in self.homes if h.txns}
            raise RuntimeError(
                f"system did not finish: cores stuck {stuck}, "
                f"busy home lines {busy}, pending barriers "
                f"{self.barrier.pending}, t={self.sim.now}"
            )
        finishes = [c.finish_time for c in self.cores]
        assert all(f is not None for f in finishes)
        return SystemResult(
            exec_time_cycles=max(finishes),          # type: ignore[arg-type]
            per_core_finish=finishes,                # type: ignore[arg-type]
            wall_clock_s=wall,
            l1_hits=sum(l1.cache.hits for l1 in self.l1s),
            l1_misses=sum(l1.cache.misses for l1 in self.l1s),
            mem_reads=sum(h.mem_reads for h in self.homes),
            barriers=self.barrier.barriers_completed,
            messages=self.network.stats.messages_delivered,
            avg_network_latency=self.network.stats.latency.mean,
        )
