"""In-order core: interprets a program of compute/load/store/barrier ops.

The core is blocking — one outstanding memory operation — so its causal
history is a chain: every network message it originates is triggered by the
last network message that unblocked it (``last_cause``), with the elapsed
compute/hit time as the recorded gap.  That chain is what the trace capture
serialises.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.net import MSG_BARRIER_ARRIVE, MSG_BARRIER_RELEASE, Message
from repro.system.barrier import COORDINATOR_NODE
from repro.system.ops import OP_COMPUTE, OP_LOAD, OP_STORE, Program
from repro.system.protocol import ProtPayload, derive_cause, line_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.cmp import FullSystem


class Core:
    """One in-order core executing a fixed program."""

    __slots__ = (
        "node",
        "sys",
        "program",
        "pc",
        "last_cause",
        "finish_time",
        "_waiting_barrier",
        "loads",
        "stores",
        "compute_cycles",
    )

    def __init__(self, node: int, system: "FullSystem", program: Program) -> None:
        self.node = node
        self.sys = system
        self.program = program
        self.pc = 0
        # Last network message whose arrival unblocked this core (None until
        # the first response/release arrives).
        self.last_cause: Optional[Message] = None
        self.finish_time: Optional[int] = None
        self._waiting_barrier: Optional[int] = None
        self.loads = 0
        self.stores = 0
        self.compute_cycles = 0

    # ------------------------------------------------------------- control
    def start(self) -> None:
        self.sys.sim.schedule(self.sys.sim.now, self._step)

    def _step(self) -> None:
        """Execute ops until one blocks (or the program ends)."""
        prog = self.program
        while self.pc < len(prog):
            code, arg = prog[self.pc]
            self.pc += 1
            if code == OP_COMPUTE:
                if arg > 0:
                    self.compute_cycles += arg
                    self.sys.sim.schedule_after(arg, self._step)
                    return
                continue
            if code == OP_LOAD or code == OP_STORE:
                is_write = code == OP_STORE
                if is_write:
                    self.stores += 1
                else:
                    self.loads += 1
                line = line_of(arg, self.sys.cfg.l1.line_bytes)
                self.sys.l1s[self.node].access(
                    line, is_write, self._mem_done, self.last_cause
                )
                return
            # OP_BARRIER
            self._waiting_barrier = arg
            self.sys.send_protocol(
                self.node,
                COORDINATOR_NODE,
                MSG_BARRIER_ARRIVE,
                ProtPayload(line=-1, requester=self.node, aux=arg,
                            cause=self.last_cause),
            )
            return
        self.finish_time = self.sys.sim.now
        self.sys.on_core_finished(self)

    # ----------------------------------------------------------- callbacks
    def _mem_done(self, completing: Optional[Message]) -> None:
        """A load/store finished; ``completing`` is None on a pure L1 hit."""
        cause = derive_cause(completing)
        if cause is not None:
            self.last_cause = cause
        self._step()

    def handle(self, msg: Message) -> None:
        """Inbound BARRIER_RELEASE."""
        if msg.kind != MSG_BARRIER_RELEASE:
            raise ValueError(f"core {self.node}: unexpected kind {msg.kind!r}")
        bid = msg.payload.aux
        if self._waiting_barrier != bid:
            raise RuntimeError(
                f"core {self.node}: release for barrier {bid} while waiting "
                f"for {self._waiting_barrier}"
            )
        self._waiting_barrier = None
        cause = derive_cause(msg)
        if cause is not None:
            self.last_cause = cause
        self._step()

    # ------------------------------------------------------------- queries
    @property
    def finished(self) -> bool:
        return self.finish_time is not None
