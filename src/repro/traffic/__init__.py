"""Synthetic traffic generation for network characterisation (Fig. 3)."""

from repro.traffic.patterns import (
    PATTERNS,
    bit_complement,
    bit_reverse,
    hotspot,
    neighbor,
    tornado,
    transpose,
    uniform_random,
)
from repro.traffic.generator import SyntheticTrafficGenerator, TrafficResult, run_synthetic

__all__ = [
    "PATTERNS",
    "SyntheticTrafficGenerator",
    "TrafficResult",
    "bit_complement",
    "bit_reverse",
    "hotspot",
    "neighbor",
    "run_synthetic",
    "tornado",
    "transpose",
    "uniform_random",
]
