"""Destination-selection functions for the classic synthetic patterns.

Each pattern maps ``(src, num_nodes, rng)`` to a destination node (which may
equal ``src``; the generator skips self-sends).  Deterministic patterns
ignore the rng.  Node layout for spatial patterns assumes the near-square
grid used by the mesh topology (``side = isqrt(num_nodes)``).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

PatternFn = Callable[[int, int, np.random.Generator], int]


def _side(num_nodes: int) -> int:
    side = math.isqrt(num_nodes)
    if side * side != num_nodes:
        raise ValueError(
            f"spatial patterns need a square node count, got {num_nodes}"
        )
    return side


def uniform_random(src: int, n: int, rng: np.random.Generator) -> int:
    """Each message targets a uniformly random node."""
    return int(rng.integers(0, n))


def bit_complement(src: int, n: int, rng: np.random.Generator) -> int:
    """dst = ~src; worst-case average distance on a mesh.

    For non-power-of-two node counts this degrades to the mirror node
    ``n - 1 - src`` (same long-haul character).
    """
    if n & (n - 1) == 0:
        return (n - 1) ^ src
    return n - 1 - src


def bit_reverse(src: int, n: int, rng: np.random.Generator) -> int:
    """dst = bit-reversed src (power-of-two node counts)."""
    if n & (n - 1):
        raise ValueError(f"bit_reverse needs a power-of-two node count, got {n}")
    bits = n.bit_length() - 1
    out = 0
    s = src
    for _ in range(bits):
        out = (out << 1) | (s & 1)
        s >>= 1
    return out


def transpose(src: int, n: int, rng: np.random.Generator) -> int:
    """(x, y) -> (y, x) on the node grid; stresses one mesh diagonal."""
    side = _side(n)
    x, y = src % side, src // side
    return x * side + y

def neighbor(src: int, n: int, rng: np.random.Generator) -> int:
    """dst = east neighbour (wrapping); best case for a mesh."""
    side = _side(n)
    x, y = src % side, src // side
    return y * side + (x + 1) % side


def tornado(src: int, n: int, rng: np.random.Generator) -> int:
    """Half-way around each dimension; adversarial for rings/tori."""
    side = _side(n)
    x, y = src % side, src // side
    return y * side + (x + side // 2) % side


def hotspot(src: int, n: int, rng: np.random.Generator) -> int:
    """10% of traffic to node 0, the rest uniform (memory-controller-like)."""
    if rng.random() < 0.1:
        return 0
    return int(rng.integers(0, n))


PATTERNS: dict[str, PatternFn] = {
    "uniform": uniform_random,
    "bit_complement": bit_complement,
    "bit_reverse": bit_reverse,
    "transpose": transpose,
    "neighbor": neighbor,
    "tornado": tornado,
    "hotspot": hotspot,
}
