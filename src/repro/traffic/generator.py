"""Open-loop synthetic traffic driver.

Each node injects packets by a Bernoulli process at ``injection_rate`` flits
per node per cycle (the standard open-loop load model), with destinations
drawn from a selectable pattern.  After ``warmup`` cycles statistics reset;
after ``measure`` cycles injection stops and the network drains.  Saturation
is detected as unbounded backlog growth.
"""

from __future__ import annotations

import math
import time as _walltime
from dataclasses import dataclass
from typing import Optional

from repro.engine import Simulator
from repro.net import Message, NetworkAdapter
from repro.stats import OnlineStats
from repro.traffic.patterns import PATTERNS, PatternFn


@dataclass
class TrafficResult:
    """Measured behaviour of one (pattern, rate) point."""

    pattern: str
    injection_rate: float
    offered_messages: int
    delivered_messages: int
    avg_latency: float
    p99_latency: float
    throughput_flits_cycle: float
    saturated: bool
    wall_clock_s: float


class SyntheticTrafficGenerator:
    """Bernoulli open-loop injector over any NetworkAdapter."""

    def __init__(
        self,
        sim: Simulator,
        net: NetworkAdapter,
        pattern: str,
        injection_rate: float,
        message_bytes: int = 64,
        flit_bytes: int = 16,
        seed_key: str = "traffic",
    ) -> None:
        if pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {pattern!r}; one of {sorted(PATTERNS)}")
        if not 0.0 < injection_rate <= 1.0:
            raise ValueError(f"injection_rate must be in (0, 1], got {injection_rate}")
        if message_bytes < 1 or flit_bytes < 1:
            raise ValueError("message_bytes and flit_bytes must be >= 1")
        self.sim = sim
        self.net = net
        self.pattern = pattern
        self.pattern_fn: PatternFn = PATTERNS[pattern]
        self.injection_rate = injection_rate
        self.message_bytes = message_bytes
        self.flits_per_message = max(1, math.ceil(message_bytes / flit_bytes))
        self.rng = sim.rng.stream(seed_key)
        # Per-message Bernoulli probability so that the *flit* injection rate
        # equals injection_rate.
        self.p_msg = injection_rate / self.flits_per_message
        self.offered = 0
        self._measuring = False
        self._lat = OnlineStats()
        self._lat_samples: list[int] = []
        self._delivered = 0
        self._delivered_flits = 0
        net.set_delivery_handler(self._on_deliver)

    # ------------------------------------------------------------ injection
    def _inject_cycle(self, stop_at: int) -> None:
        now = self.sim.now
        n = self.net.num_nodes
        draws = self.rng.random(n)
        for src in range(n):
            if draws[src] >= self.p_msg:
                continue
            dst = self.pattern_fn(src, n, self.rng)
            if dst == src:
                continue
            self.offered += 1
            msg = Message(src, dst, self.message_bytes,
                          payload=self._measuring)
            self.net.send(msg)
        if now + 1 <= stop_at:
            self.sim.schedule(now + 1, self._inject_cycle, (stop_at,))

    def _on_deliver(self, msg: Message) -> None:
        if msg.payload:  # injected during the measurement window
            self._delivered += 1
            self._delivered_flits += self.flits_per_message
            lat = msg.latency
            self._lat.add(lat)
            self._lat_samples.append(lat)

    # ---------------------------------------------------------------- run
    def run(
        self,
        warmup: int = 1000,
        measure: int = 5000,
        drain_limit: Optional[int] = None,
        saturation_latency: int = 1000,
    ) -> TrafficResult:
        """Warm up, measure, drain; returns the measured point.

        ``saturated`` is flagged when fewer than 90% of measured-window
        messages were delivered by the drain limit (latency unbounded, the
        reported value is a lower bound), or when the average latency blew
        past ``saturation_latency`` — queueing delay dominating transit by
        orders of magnitude, the standard load-latency cutoff.
        """
        t0 = _walltime.perf_counter()
        drain_limit = drain_limit or (warmup + measure) * 4
        self._measuring = False
        self.sim.schedule(self.sim.now, self._inject_cycle,
                          (self.sim.now + warmup + measure,))
        self.sim.run(until=self.sim.now + warmup)
        self._measuring = True
        measured_start_offered = self.offered
        self.sim.run(until=self.sim.now + measure)
        self._measuring = False
        offered_in_window = self.offered - measured_start_offered
        # Drain.
        self.sim.run(until=self.sim.now + drain_limit)
        wall = _walltime.perf_counter() - t0
        delivered = self._delivered
        saturated = (
            delivered < 0.9 * offered_in_window
            or self._lat.mean > saturation_latency
        )
        if self._lat_samples:
            samples = sorted(self._lat_samples)
            p99 = samples[min(len(samples) - 1, int(0.99 * len(samples)))]
        else:
            p99 = 0
        return TrafficResult(
            pattern=self.pattern,
            injection_rate=self.injection_rate,
            offered_messages=offered_in_window,
            delivered_messages=delivered,
            avg_latency=self._lat.mean,
            p99_latency=float(p99),
            throughput_flits_cycle=self._delivered_flits / measure / self.net.num_nodes,
            saturated=saturated,
            wall_clock_s=wall,
        )


def run_synthetic(
    make_network,
    pattern: str,
    injection_rate: float,
    seed: int = 1,
    message_bytes: int = 64,
    warmup: int = 1000,
    measure: int = 5000,
) -> TrafficResult:
    """Convenience: fresh simulator + network, one measured point.

    ``make_network(sim)`` builds the adapter under test.
    """
    sim = Simulator(seed=seed)
    net = make_network(sim)
    gen = SyntheticTrafficGenerator(sim, net, pattern, injection_rate,
                                    message_bytes=message_bytes)
    return gen.run(warmup=warmup, measure=measure)
