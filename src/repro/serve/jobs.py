"""Job bookkeeping: lifecycle states, single-flight dedup, event fan-out.

A *job* is one unit of simulation work, identified by the content-addressed
key of its :class:`repro.harness.SweepTask` — the same
``sha256(fn + args + kwargs + salt)`` the sweep cache uses.  Identity by
content gives single-flight dedup for free: while a job is in flight, an
identical request attaches to it as another *subscriber* instead of
spawning a second execution, and every subscriber receives the same event
stream and result.

The :class:`JobTable` owns all jobs: active ones (queued/running) indexed by
key for dedup, plus a bounded history of finished ones for the ``jobs`` op
and the ``/jobs`` HTTP endpoint.  It is single-loop asyncio code — no locks;
every mutation happens on the server's event loop.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.harness.parallel import SweepTask
from repro.serve.protocol import RemoteError

# Lifecycle states.
QUEUED = "queued"          # admitted, waiting for a worker slot
RUNNING = "running"        # executing on the worker pool
DONE = "done"              # result available (fresh, cached, or deduped)
FAILED = "failed"          # worker raised; RemoteError captured
TIMEOUT = "timeout"        # exceeded its deadline; abandoned
CANCELLED = "cancelled"    # server shut down before the job could run

ACTIVE_STATES = (QUEUED, RUNNING)
TERMINAL_STATES = (DONE, FAILED, TIMEOUT, CANCELLED)

#: Finished jobs kept for inspection (``jobs`` op, ``/jobs`` endpoint).
HISTORY_LIMIT = 256


@dataclass
class Job:
    """One in-flight or finished unit of work."""

    jid: int                       # monotonically increasing submission id
    key: str                       # SweepTask content hash (full 64 hex)
    task: SweepTask
    state: str = QUEUED
    attempts: int = 0
    subscribers: int = 1           # requests currently attached
    coalesced: int = 0             # duplicate submits absorbed (lifetime)
    cached: bool = False           # result came from a cache tier
    peer_fetched: bool = False     # ...specifically from a peer node
    created_s: float = 0.0         # event-loop clock timestamps
    started_s: float = 0.0
    finished_s: float = 0.0
    result: Any = None             # encoded result (DONE only)
    error: Optional[RemoteError] = None
    obs_snapshot: Optional[dict] = None
    _queues: list[asyncio.Queue] = field(default_factory=list, repr=False)

    @property
    def short_key(self) -> str:
        return self.key[:12]

    @property
    def elapsed_s(self) -> float:
        if self.finished_s and self.created_s:
            return self.finished_s - self.created_s
        return 0.0

    # ------------------------------------------------------------ events
    def subscribe(self) -> asyncio.Queue:
        """A private queue receiving this job's remaining events."""
        q: asyncio.Queue = asyncio.Queue()
        self._queues.append(q)
        return q

    def unsubscribe(self, q: asyncio.Queue) -> None:
        try:
            self._queues.remove(q)
        except ValueError:
            pass

    def publish(self, event: dict) -> None:
        """Fan an event out to every subscriber queue."""
        for q in self._queues:
            q.put_nowait(event)

    def summary(self) -> dict:
        """Wire/HTTP-friendly description (no result payload)."""
        out = {
            "id": self.jid,
            "job": self.short_key,
            "fn": self.task.fn,
            "state": self.state,
            "attempts": self.attempts,
            "subscribers": self.subscribers,
            "coalesced": self.coalesced,
            "cached": self.cached,
            "elapsed_s": round(self.elapsed_s, 6),
        }
        if self.error is not None:
            out["error"] = str(self.error)
        return out


@dataclass
class ServiceStats:
    """Monotonic service counters (the ``status`` op / ``/metrics``)."""

    submitted: int = 0             # submit requests admitted (incl. dedup)
    executed: int = 0              # jobs that actually ran on the pool
    cache_hits: int = 0            # jobs answered from the on-disk cache
    lru_hits: int = 0              # submits answered from the hot LRU tier
    dedup_hits: int = 0            # submits coalesced onto in-flight jobs
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    shed: int = 0                  # submits refused by admission control
    retries: int = 0               # worker-death retries
    cancelled: int = 0
    forwarded: int = 0             # submits routed to the key's owner node
    forward_failed: int = 0        # forwards that fell back to local run
    peer_fetch_hits: int = 0       # cache misses answered by a peer fetch
    peer_fetch_misses: int = 0     # peer fetches that found nothing

    def as_dict(self) -> dict:
        return dict(vars(self))


class JobTable:
    """All jobs the service knows about, keyed for single-flight dedup."""

    def __init__(self, history_limit: int = HISTORY_LIMIT) -> None:
        self.active: dict[str, Job] = {}
        self.history: deque[Job] = deque(maxlen=history_limit)
        self.stats = ServiceStats()
        self._ids = itertools.count(1)

    @property
    def depth(self) -> int:
        """Jobs currently queued or running (the admission-control load)."""
        return len(self.active)

    def get_or_create(self, task: SweepTask, key: str,
                      now_s: float) -> tuple[Job, bool]:
        """The in-flight job for ``key``, or a fresh QUEUED one.

        Returns ``(job, deduped)``; ``deduped`` is True when the request
        coalesced onto an existing in-flight job.
        """
        job = self.active.get(key)
        if job is not None:
            job.subscribers += 1
            job.coalesced += 1
            self.stats.dedup_hits += 1
            return job, True
        job = Job(jid=next(self._ids), key=key, task=task, created_s=now_s)
        self.active[key] = job
        self.stats.submitted += 1
        return job, False

    def finish(self, job: Job, state: str, now_s: float) -> None:
        """Move ``job`` to a terminal state and into the history ring."""
        assert state in TERMINAL_STATES, state
        job.state = state
        job.finished_s = now_s
        self.active.pop(job.key, None)
        self.history.append(job)
        if state == DONE:
            self.stats.completed += 1
        elif state == FAILED:
            self.stats.failed += 1
        elif state == TIMEOUT:
            self.stats.timeouts += 1
        else:
            self.stats.cancelled += 1

    def listing(self) -> list[dict]:
        """Active jobs first (oldest submission first), then recent history
        (newest first)."""
        active = sorted(self.active.values(), key=lambda j: j.jid)
        recent = list(self.history)[::-1]
        return [j.summary() for j in active + recent]
