"""Peer plumbing for the serve fabric: membership + node-to-node client.

Two pieces, both owned by :class:`repro.serve.server.SimulationServer`:

* :class:`Membership` — the node's view of the fabric (node id -> address)
  and the :class:`~repro.serve.ring.HashRing` derived from it.  Updated by
  gossip (``membership`` frames), by graceful ``leave`` announcements, and
  by failure detection (a dead forward target is removed locally).  Views
  converge epidemically: every exchange answers with the full post-merge
  view, and ``sync`` merges are unions — a node two peers disagree about
  is re-learned on the next exchange unless it announced ``leave``.
* :class:`PeerLink` — a lazy, self-healing NDJSON connection to one peer,
  built on :class:`repro.serve.client.AsyncServeClient`.  Used for the
  three fabric interactions: forwarding a submit to the key's owner
  (relaying the event stream back verbatim), fetching a cached result
  before recomputing, and membership announcements.  Every call is
  bounded by a timeout so a sick peer degrades the caller instead of
  wedging it.

All of this runs on the server's event loop — no locks, no threads.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from repro.serve import protocol as P
from repro.serve.client import AsyncServeClient, ServerClosed
from repro.serve.ring import DEFAULT_VNODES, HashRing

#: Deadline on peer control calls (fetch, announce).  Forwarded submits
#: are bounded by the job's own deadline, not this.
PEER_CALL_TIMEOUT_S = 5.0


def parse_addr(addr: str) -> tuple[str, int]:
    """Split ``"host:port"`` (the port is required)."""
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"bad peer address {addr!r}; expected host:port")
    return host, int(port)


class Membership:
    """This node's view of the fabric and the ring derived from it."""

    def __init__(self, node: str, addr: str,
                 vnodes: int = DEFAULT_VNODES) -> None:
        self.self_node = node
        self.self_addr = addr
        self.members: dict[str, str] = {node: addr}
        self.ring = HashRing([node], vnodes=vnodes)
        self.version = 0        # bumps on every change (convergence probe)

    # ------------------------------------------------------------ updates
    def add(self, node: str, addr: str) -> bool:
        """Learn a member; returns True if the view changed."""
        if not node or self.members.get(node) == addr:
            return False
        self.members[node] = addr
        self.ring.add(node)
        self.version += 1
        return True

    def remove(self, node: str) -> bool:
        """Forget a member (leave announcement or failure detection)."""
        if node == self.self_node or node not in self.members:
            return False
        del self.members[node]
        self.ring.remove(node)
        self.version += 1
        return True

    def merge(self, members: list) -> bool:
        """Union-merge a gossiped ``[[node, addr], ...]`` view."""
        changed = False
        for entry in members or []:
            try:
                node, addr = entry
            except (TypeError, ValueError):
                continue
            if isinstance(node, str) and isinstance(addr, str):
                changed = self.add(node, addr) or changed
        return changed

    # ------------------------------------------------------------- views
    def view(self) -> list[list[str]]:
        """The full member view, sorted for deterministic frames."""
        return [[n, a] for n, a in sorted(self.members.items())]

    def owner(self, key: str) -> str:
        """The member owning ``key`` (always defined: self is a member)."""
        return self.ring.owner(key) or self.self_node

    def others(self) -> list[str]:
        """Every member except this node, sorted."""
        return sorted(n for n in self.members if n != self.self_node)

    def addr_of(self, node: str) -> Optional[str]:
        return self.members.get(node)


class PeerLink:
    """A lazy, reconnecting client connection to one peer node."""

    def __init__(self, addr: str) -> None:
        self.addr = addr
        self.host, self.port = parse_addr(addr)
        self._client: Optional[AsyncServeClient] = None

    async def _ensure(self) -> AsyncServeClient:
        c = self._client
        if (c is None or c._writer is None or c._writer.is_closing()
                or c._reader_task is None or c._reader_task.done()):
            await self.aclose()
            self._client = await AsyncServeClient.connect(self.host,
                                                          self.port)
        return self._client

    async def aclose(self) -> None:
        if self._client is not None:
            client, self._client = self._client, None
            await client.close()

    # ------------------------------------------------------- interactions
    async def peer_fetch(self, key: str,
                         timeout_s: float = PEER_CALL_TIMEOUT_S) -> Any:
        """The peer's cached encoded payload for ``key``, or None.

        Misses, timeouts, and connection failures all read as None — the
        caller recomputes either way.
        """
        try:
            client = await self._ensure()
            event = await asyncio.wait_for(
                client._one_shot(P.peer_fetch_frame(0, key)), timeout_s)
        except (OSError, asyncio.TimeoutError, ServerClosed):
            await self.aclose()
            return None
        if event.get("event") != P.EV_PEER_RESULT or not event.get("hit"):
            return None
        return event.get("result")

    async def announce(self, action: str, node: str, addr: str,
                       members: list,
                       timeout_s: float = PEER_CALL_TIMEOUT_S
                       ) -> Optional[list]:
        """Send a membership frame; returns the peer's view or None."""
        try:
            client = await self._ensure()
            event = await asyncio.wait_for(
                client._one_shot(
                    P.membership_frame(0, action, node, addr, members)),
                timeout_s)
        except (OSError, asyncio.TimeoutError, ServerClosed):
            await self.aclose()
            return None
        if event.get("event") != P.EV_MEMBERSHIP:
            return None
        return event.get("members")

    async def forward_submit(
        self,
        frame: dict,
        relay: Callable,
        via: str,
        accept_timeout_s: float = PEER_CALL_TIMEOUT_S,
    ) -> bool:
        """Forward a submit to this peer, relaying its event stream.

        ``frame`` is the client's original submit frame; it is re-tagged
        with the ``fwd`` marker so the owner never re-forwards.  Every
        event the owner emits is passed to ``relay(event)`` with the
        peer-side ``req`` replaced by the original one and a ``via`` field
        recording the forwarding node.

        The *first* event must arrive within ``accept_timeout_s`` — a
        healthy owner acknowledges a submit immediately, so silence means
        the peer is gone in a way TCP never surfaced (e.g. a connection
        that landed in a dying node's accept backlog and was discarded
        without a reset).  Later events are unbounded: they track the
        job's own lifetime.

        Returns True once a terminal event has been relayed.  Returns
        False if the peer could not be reached, never acknowledged, or
        died mid-stream *before* a terminal event — the caller falls back
        to local execution (safe: jobs are content-keyed, deterministic,
        and idempotent).
        """
        orig_req = frame.get("req")
        fwd = dict(frame)
        fwd["fwd"] = True
        fwd.pop("req", None)
        try:
            client = await self._ensure()
            queue = await client._request(fwd)
        except (OSError, ServerClosed):
            await self.aclose()
            return False
        accepted = False
        try:
            while True:
                if accepted:
                    event = await queue.get()
                else:
                    try:
                        event = await asyncio.wait_for(queue.get(),
                                                       accept_timeout_s)
                    except asyncio.TimeoutError:
                        await self.aclose()
                        return False
                if event.get("event") == "__closed__":
                    await self.aclose()
                    return False
                accepted = True
                out = dict(event)
                out["req"] = orig_req
                out["via"] = via
                await relay(out)
                if event.get("event") in P.TERMINAL_EVENTS:
                    return True
        finally:
            client._pending.pop(fwd["req"], None)
