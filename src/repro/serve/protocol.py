"""Wire protocol of the simulation service: newline-delimited JSON.

One JSON object per line, UTF-8, ``\n``-terminated — trivially scriptable
(``nc localhost 7433``, ``jq``), framing-free, and language-neutral.  The
same socket also answers plain HTTP/1.1 ``GET`` requests (``/healthz``,
``/metrics``, ``/jobs``): the server sniffs the first line and switches,
so one port serves both protocols (see :mod:`repro.serve.server`).

Client -> server (every request carries a client-chosen ``req`` id; the
server tags every reply with it, so responses interleave freely on one
connection):

``{"op": "submit", "req": 1, "fn": "scenario", "args": [...], "kwargs":
{...}, "quiet": false}``
    Run a registered operation.  ``fn`` is an operation alias from the
    server's registry (or a full ``module:qualname`` the registry allows);
    ``args``/``kwargs`` are :func:`repro.harness.encode_value` payloads —
    the same codec the sweep cache uses, so requests canonicalize to the
    same content-addressed keys.  With ``quiet`` only the terminal event is
    sent (no state-change stream).

``{"op": "status", "req": 2}``      service counters (jobs, dedup, shed...).
``{"op": "jobs", "req": 3}``        recent + active jobs.
``{"op": "ping", "req": 4}``        liveness probe.
``{"op": "drain", "req": 5}``       begin graceful drain (what SIGTERM does).

Fabric ops (node <-> node; protocol v2, see :mod:`repro.serve.peer`):

``{"op": "submit", ..., "fwd": true}``
    A submit forwarded by a peer that is not the key's owner.  The
    receiving node executes locally and never re-forwards — the marker
    breaks routing loops while membership views disagree.
``{"op": "peer_fetch", "req": 6, "key": "<sha256 hex>"}``
    Ask a peer for its cached result under a content key (both tiers:
    in-memory LRU, then disk).  Answered with one ``peer_result`` event:
    ``{"event": "peer_result", "hit": bool, "result": <encoded>|null}``.
    A fetch never triggers computation on the answering node.
``{"op": "membership", "req": 7, "action": "join"|"leave"|"sync",
"node": "<id>", "addr": "host:port", "members": [[node, addr], ...]}``
    Gossip membership.  ``join`` adds the announcing node, ``leave``
    removes it (graceful drain announces this), ``sync`` merges the
    carried member view.  Answered with one ``membership`` event carrying
    the receiver's full post-merge view.

Server -> client events for a ``submit`` (all tagged with ``req``):

``{"event": "accepted", "job": "<key12>", "deduped": bool, ...}``
    Admission: the job entered the queue, or coalesced onto an identical
    in-flight job (single-flight dedup).
``{"event": "state", "state": "running", "attempt": 1}``
    Live progress (suppressed by ``quiet``); also ``"retrying"`` after a
    worker death, with the backoff delay.
``{"event": "done", "result": <encoded>, "cached": bool, ...}``
    Terminal success; ``result`` decodes via
    :func:`repro.harness.decode_value`.
``{"event": "failed", "error": {"type", "message", "traceback"}, ...}``
    Terminal failure.  ``traceback`` is the *original worker-side* traceback
    string, so remote failures debug like local ones.
``{"event": "shed", "reason": "...", ...}``
    Admission control refused the request (queue full, or draining).  The
    client is expected to back off and resubmit; the server never blocks an
    accepted connection on a full queue.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Optional

#: Default service port (unassigned range; "RS" on a phone keypad).
DEFAULT_PORT = 7433

#: Protocol revision, reported by ping/status and checked by clients.
#: v2 adds the fabric surface: the ``fwd`` submit marker, ``peer_fetch``,
#: and ``membership`` (all additive; v1 clients interoperate unchanged).
PROTOCOL_VERSION = 2

#: Cap on one NDJSON line (requests and events).  Large simulation results
#: stay well under this; the cap bounds memory per connection.
MAX_LINE_BYTES = 32 * 1024 * 1024

# Request ops.
OP_SUBMIT = "submit"
OP_STATUS = "status"
OP_JOBS = "jobs"
OP_PING = "ping"
OP_DRAIN = "drain"
OP_PEER_FETCH = "peer_fetch"
OP_MEMBERSHIP = "membership"
OPS = (OP_SUBMIT, OP_STATUS, OP_JOBS, OP_PING, OP_DRAIN,
       OP_PEER_FETCH, OP_MEMBERSHIP)

# Membership actions.
MEMBER_JOIN = "join"
MEMBER_LEAVE = "leave"
MEMBER_SYNC = "sync"
MEMBER_ACTIONS = (MEMBER_JOIN, MEMBER_LEAVE, MEMBER_SYNC)

# Event names.
EV_ACCEPTED = "accepted"
EV_STATE = "state"
EV_DONE = "done"
EV_FAILED = "failed"
EV_SHED = "shed"
EV_ERROR = "error"          # protocol-level error (bad request), not job failure
EV_PONG = "pong"
EV_STATUS = "status"
EV_JOBS = "jobs"
EV_DRAINING = "draining"
EV_PEER_RESULT = "peer_result"      # answer to peer_fetch
EV_MEMBERSHIP = "membership"        # answer to a membership exchange

#: Events that end a submit stream.
TERMINAL_EVENTS = (EV_DONE, EV_FAILED, EV_SHED, EV_ERROR)


class ProtocolError(ValueError):
    """Malformed frame: not JSON, not an object, or over the line cap."""


@dataclass(frozen=True)
class RemoteError:
    """A worker-side exception, carried verbatim across the wire.

    ``traceback`` is the full ``traceback.format_exc()`` string captured in
    the worker process at the point of failure — the original frames, not a
    re-raise site in the service (see ``repro.serve.pool``).
    """

    type: str
    message: str
    traceback: str

    def as_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "RemoteError":
        return RemoteError(
            type=str(d.get("type", "Exception")),
            message=str(d.get("message", "")),
            traceback=str(d.get("traceback", "")),
        )

    def __str__(self) -> str:
        return f"{self.type}: {self.message}"


def encode_frame(obj: dict) -> bytes:
    """One NDJSON frame: compact JSON + newline."""
    line = json.dumps(obj, separators=(",", ":"), sort_keys=True)
    return line.encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one NDJSON line into a dict, or raise :class:`ProtocolError`."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


def submit_frame(req: int, fn: str, enc_args: Any, enc_kwargs: Any,
                 quiet: bool = False,
                 timeout_s: Optional[float] = None,
                 fwd: bool = False) -> dict:
    """Build a submit request (args/kwargs already codec-encoded)."""
    frame: dict = {"op": OP_SUBMIT, "req": req, "fn": fn,
                   "args": enc_args, "kwargs": enc_kwargs}
    if quiet:
        frame["quiet"] = True
    if timeout_s is not None:
        frame["timeout_s"] = timeout_s
    if fwd:
        frame["fwd"] = True
    return frame


def peer_fetch_frame(req: int, key: str) -> dict:
    """Build a peer cache-fetch request for a content key."""
    return {"op": OP_PEER_FETCH, "req": req, "key": key}


def membership_frame(req: int, action: str, node: str, addr: str,
                     members: list) -> dict:
    """Build a membership gossip frame (``members`` is [[node, addr], ...])."""
    return {"op": OP_MEMBERSHIP, "req": req, "action": action,
            "node": node, "addr": addr, "members": members}


def event_frame(req: Any, event: str, **fields: Any) -> dict:
    """Build a server event tagged with the request id."""
    return {"req": req, "event": event, **fields}
