"""The resident simulation service.

``SimulationServer`` is a single-loop asyncio TCP server speaking the
NDJSON protocol of :mod:`repro.serve.protocol`, with a minimal HTTP/1.1
shim on the same port (``/healthz``, ``/metrics``, ``/jobs`` — the first
line of a connection decides which protocol it speaks).  Requests become
:class:`~repro.serve.jobs.Job` objects executed on a bounded
:class:`~repro.serve.pool.WorkerPool`; every layer below is shared with the
batch front ends rather than duplicated:

* Requests canonicalize to :class:`repro.harness.SweepTask` content keys —
  the *same* keys :class:`repro.harness.SweepRunner` uses — which gives
  **single-flight dedup** (identical in-flight requests coalesce onto one
  execution) and **cross-front-end caching** (a result computed by a batch
  sweep is a cache hit for the service, and vice versa) for free.
* Per-job :mod:`repro.obs` snapshots merge into the service's registry in
  job-completion order (registry merges are commutative, so totals are
  deterministic), surfacing on ``/metrics``.

Robustness under load:

* **Admission control.**  At most ``max_pending`` jobs may be queued or
  running; a submit beyond that receives an immediate ``shed`` event
  instead of queueing unboundedly (deduplicated submits piggyback on
  existing work and are always admitted).  Clients back off and resubmit.
* **Bounded retry** with exponential backoff when a worker process dies,
  and **per-job deadlines** — both from :class:`~repro.serve.pool.WorkerPool`.
* **Graceful drain.**  SIGTERM (or the ``drain`` op) stops admitting new
  work, lets in-flight jobs finish and their results reach every waiting
  subscriber, then closes the listener and exits.  A second SIGTERM hard
  stops.

The fabric (``peers=[...]`` / ``repro serve --peers``): N peer nodes form
a shared-nothing cluster routed by a consistent-hash ring over the same
content keys (:mod:`repro.serve.ring`).  A submit landing on a non-owner
is **forwarded** to the key's owner (its event stream relayed back
verbatim, tagged ``via``), so identical requests entering *any* node
coalesce on one execution — cross-node single-flight.  Reads go through
a **two-tier cache**: a hot in-memory LRU (:mod:`repro.serve.lru`) in
front of the on-disk :class:`ResultCache`, and on a double miss the owner
asks its peers for the key (**peer-fetch**) before paying for recompute.
Membership is gossiped (:mod:`repro.serve.peer`): joins announce
themselves and propagate, graceful drains announce ``leave`` before
finishing, and an unreachable forward target is removed locally — the
ring re-shards and the submit falls back to local execution, so a dead
node degrades throughput, never correctness.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any, Optional, Sequence

from repro import obs
from repro.harness.parallel import (
    ResultCache,
    SweepTask,
    decode_value,
    encode_value,
)
from repro.serve import protocol as P
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobTable,
    RUNNING,
    TIMEOUT,
)
from repro.serve.lru import DEFAULT_MAX_BYTES, DEFAULT_MAX_ENTRIES, LRUCache
from repro.serve.ops import DEFAULT_OPERATIONS
from repro.serve.peer import Membership, PeerLink
from repro.serve.pool import JobFailure, JobTimeout, WorkerDied, WorkerPool
from repro.serve.protocol import RemoteError
from repro.serve.ring import DEFAULT_VNODES


class SimulationServer:
    """One resident service instance; see module docstring.

    Parameters mirror the ``repro serve`` CLI flags.  ``port=0`` binds an
    ephemeral port (tests); the bound port is ``self.port`` after
    :meth:`start`.  ``operations`` extends/overrides the default alias
    registry; only registered operations can be invoked over the wire.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = P.DEFAULT_PORT,
        workers: int = 2,
        max_pending: int = 32,
        job_timeout_s: Optional[float] = None,
        cache_dir: Optional[str] = None,
        salt: str = "",
        operations: Optional[dict[str, str]] = None,
        max_retries: int = 3,
        backoff_base_s: float = 0.05,
        node_id: Optional[str] = None,
        peers: Optional[Sequence[str]] = None,
        vnodes: int = DEFAULT_VNODES,
        lru_entries: int = DEFAULT_MAX_ENTRIES,
        lru_bytes: int = DEFAULT_MAX_BYTES,
        peer_fetch: bool = True,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.host = host
        self.port = port
        self.workers = workers
        self.max_pending = max_pending
        self.job_timeout_s = job_timeout_s
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.salt = salt
        self.operations = dict(DEFAULT_OPERATIONS)
        if operations:
            self.operations.update(operations)
        self._max_retries = max_retries
        self._backoff_base_s = backoff_base_s

        # Fabric state.  node_id defaults to "host:port" once the socket
        # is bound; membership (self + gossip-learned peers) and the ring
        # are built in start().
        self.node_id = node_id
        self.seed_peers: list[str] = list(peers or [])
        self.vnodes = vnodes
        self.peer_fetch = peer_fetch
        self.membership: Optional[Membership] = None
        self.lru = LRUCache(max_entries=lru_entries, max_bytes=lru_bytes)
        self._links: dict[str, PeerLink] = {}

        self.table = JobTable()
        self.pool: Optional[WorkerPool] = None
        self.draining = False
        self._started_s = 0.0
        self._server: Optional[asyncio.base_events.Server] = None
        self._job_tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._stream_tasks: set[asyncio.Task] = set()
        self._gossip_tasks: set[asyncio.Task] = set()
        self._closed = asyncio.Event()
        self._with_obs = False
        self._counters = None

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> "SimulationServer":
        """Bind the listener and start accepting connections."""
        self.pool = WorkerPool(max_workers=self.workers,
                               max_retries=self._max_retries,
                               backoff_base_s=self._backoff_base_s)
        # Snapshot the instrumentation state once: jobs run with obs iff the
        # service started with it (matches SweepRunner's run()-time check).
        self._with_obs = obs.enabled()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port,
            limit=P.MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.node_id is None:
            self.node_id = f"{self.host}:{self.port}"
        self.membership = Membership(self.node_id,
                                     f"{self.host}:{self.port}",
                                     vnodes=self.vnodes)
        scope = obs.metrics(f"serve.{self.node_id}")
        self._counters = {
            name: scope.counter(name)
            for name in ("forwarded", "forward_failed", "peer_fetch_hits",
                         "peer_fetch_misses", "lru_hits", "shed")
        }
        await self._announce_join()
        self._started_s = time.monotonic()
        return self

    def install_signal_handlers(self) -> bool:
        """SIGTERM/SIGINT -> graceful drain; second signal -> hard stop.

        Returns False where loop signal handlers are unsupported (non-main
        thread, non-Unix); the ``drain`` op still works there.
        """
        loop = asyncio.get_running_loop()

        def _on_signal() -> None:
            if self.draining:
                asyncio.ensure_future(self.aclose())
            else:
                self.begin_drain()

        try:
            loop.add_signal_handler(signal.SIGTERM, _on_signal)
            loop.add_signal_handler(signal.SIGINT, _on_signal)
        except (NotImplementedError, RuntimeError, ValueError):
            return False
        return True

    def begin_drain(self) -> None:
        """Stop admitting work; exit once in-flight jobs have finished."""
        if self.draining:
            return
        self.draining = True
        asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        # Graceful re-shard: tell every peer we are leaving *before*
        # draining, so new keys stop routing here while in-flight jobs
        # finish.  Best effort — an unreachable peer will discover the
        # departure through forward-failure detection instead.
        await self._announce_leave()
        # In-flight jobs run to completion; their terminal events are
        # published to subscriber queues before the tasks finish.
        while self._job_tasks:
            await asyncio.gather(*list(self._job_tasks),
                                 return_exceptions=True)
        # Let submit streams flush those terminal events to their sockets
        # (idle connections are simply closed; no need to wait on them).
        if self._stream_tasks:
            await asyncio.wait(list(self._stream_tasks), timeout=2.0)
        await self.aclose()

    async def aclose(self) -> None:
        """Hard stop: close the listener and connections, kill the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for t in list(self._gossip_tasks):
            t.cancel()
        for link in list(self._links.values()):
            await link.aclose()
        self._links.clear()
        for t in list(self._conn_tasks):
            t.cancel()
        for t in list(self._job_tasks):
            t.cancel()
        if self.pool is not None:
            self.pool.shutdown()
        self._closed.set()

    async def wait_closed(self) -> None:
        """Block until the service has fully shut down."""
        await self._closed.wait()

    async def serve_forever(self) -> None:
        """start() + signal handlers + run until drained/closed."""
        if self._server is None:
            await self.start()
        self.install_signal_handlers()
        await self.wait_closed()

    # ------------------------------------------------------------- fabric
    def _count(self, name: str, n: int = 1) -> None:
        """Increment the node's obs counter ``serve.<node_id>.<name>``."""
        if self._counters is not None:
            self._counters[name].inc(n)

    def _link(self, addr: str) -> PeerLink:
        link = self._links.get(addr)
        if link is None:
            link = self._links[addr] = PeerLink(addr)
        return link

    async def _announce_join(self) -> None:
        """Introduce this node to its seed peers and whoever they know.

        Walks outward from the configured ``peers`` list: every answered
        announcement merges the peer's member view, and newly learned
        members get announced to as well, so a join converges in one pass
        even when the seeds only know a subset of the fabric.  Peers that
        are not up yet are skipped — they will learn about us when *they*
        join through any node that heard this announcement.
        """
        assert self.membership is not None
        announced = {self.membership.self_addr}
        pending = list(self.seed_peers)
        unreached: list[str] = []
        while pending:
            addr = pending.pop()
            if addr in announced:
                continue
            announced.add(addr)
            view = await self._link(addr).announce(
                P.MEMBER_JOIN, self.node_id, self.membership.self_addr,
                self.membership.view())
            if view is not None:
                self.membership.merge(view)
                pending.extend(a for _, a in self.membership.view()
                               if a not in announced)
            elif addr in self.seed_peers:
                unreached.append(addr)
        if unreached:
            t = asyncio.ensure_future(self._retry_join(unreached))
            self._gossip_tasks.add(t)
            t.add_done_callback(self._gossip_tasks.discard)

    async def _retry_join(self, addrs: list, base_s: float = 0.25,
                          attempts: int = 6) -> None:
        """Keep knocking on configured seeds that were not up yet.

        Two nodes started simultaneously race their listeners: the
        one-shot join announcement can hit a seed whose socket is not
        bound yet, and a *seed* never joins anyone itself, so without a
        retry the fabric stays silently partitioned.  Seeds are explicit
        operator configuration, so they get a bounded retry window
        (~16 s of exponential backoff); transitively learned members
        remain one-shot — they reach us through gossip.
        """
        for attempt in range(attempts):
            await asyncio.sleep(base_s * (2 ** attempt))
            if self.draining or self._closed.is_set():
                return
            assert self.membership is not None
            still: list[str] = []
            for addr in addrs:
                view = await self._link(addr).announce(
                    P.MEMBER_JOIN, self.node_id, self.membership.self_addr,
                    self.membership.view())
                if view is None:
                    still.append(addr)
                else:
                    self.membership.merge(view)
            if not still:
                return
            addrs = still

    async def _announce_leave(self) -> None:
        if self.membership is None:
            return
        for node in self.membership.others():
            addr = self.membership.addr_of(node)
            if addr:
                await self._link(addr).announce(
                    P.MEMBER_LEAVE, self.node_id, self.membership.self_addr,
                    [])

    def _spawn_gossip(self) -> None:
        """Push the current view to every known member (fire and forget)."""
        t = asyncio.ensure_future(self._gossip_sync())
        self._gossip_tasks.add(t)
        t.add_done_callback(self._gossip_tasks.discard)

    async def _gossip_sync(self) -> None:
        if self.membership is None:
            return
        view = self.membership.view()
        for node in self.membership.others():
            addr = self.membership.addr_of(node)
            if addr:
                reply = await self._link(addr).announce(
                    P.MEMBER_SYNC, self.node_id, self.membership.self_addr,
                    view)
                if reply is not None:
                    self.membership.merge(reply)

    # ------------------------------------------------------------- status
    def status(self) -> dict:
        pool = self.pool
        m = self.membership
        return {
            "version": P.PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started_s, 3)
            if self._started_s else 0.0,
            "draining": self.draining,
            "workers": self.workers,
            "max_pending": self.max_pending,
            "depth": self.table.depth,
            "cache": self.cache is not None,
            "node": self.node_id,
            "members": m.view() if m is not None else [],
            "membership_version": m.version if m is not None else 0,
            "lru": {"entries": len(self.lru), "bytes": self.lru.bytes,
                    **self.lru.stats.as_dict()},
            "pool": {
                "retries": pool.retries if pool else 0,
                "recycles": pool.recycles if pool else 0,
                "abandoned": pool.abandoned if pool else 0,
            },
            "stats": self.table.stats.as_dict(),
        }

    # -------------------------------------------------------- connections
    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if first.split(b" ", 1)[0] in (b"GET", b"HEAD"):
                await self._serve_http(first, reader, writer)
                return
            await self._serve_ndjson(first, reader, writer)
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------- NDJSON
    async def _serve_ndjson(self, first: bytes, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        wlock = asyncio.Lock()
        stream_tasks: set[asyncio.Task] = set()

        async def send(frame: dict) -> None:
            async with wlock:
                writer.write(P.encode_frame(frame))
                await writer.drain()

        line = first
        try:
            while line:
                line = line.strip()
                if line:
                    await self._dispatch(line, send, stream_tasks)
                line = await reader.readline()
        finally:
            for t in stream_tasks:
                t.cancel()

    async def _dispatch(self, line: bytes, send, stream_tasks: set) -> None:
        try:
            frame = P.decode_frame(line)
        except P.ProtocolError as exc:
            await send(P.event_frame(None, P.EV_ERROR, error=str(exc)))
            return
        req = frame.get("req")
        op = frame.get("op")
        if op == P.OP_SUBMIT:
            # Each submit gets its own streaming task so long jobs never
            # block other requests on the connection.
            t = asyncio.ensure_future(self._handle_submit(req, frame, send))
            stream_tasks.add(t)
            self._stream_tasks.add(t)
            t.add_done_callback(stream_tasks.discard)
            t.add_done_callback(self._stream_tasks.discard)
        elif op == P.OP_PING:
            await send(P.event_frame(req, P.EV_PONG,
                                     version=P.PROTOCOL_VERSION))
        elif op == P.OP_STATUS:
            await send(P.event_frame(req, P.EV_STATUS, **self.status()))
        elif op == P.OP_JOBS:
            await send(P.event_frame(req, P.EV_JOBS,
                                     jobs=self.table.listing()))
        elif op == P.OP_DRAIN:
            self.begin_drain()
            await send(P.event_frame(req, P.EV_DRAINING,
                                     depth=self.table.depth))
        elif op == P.OP_PEER_FETCH:
            await self._handle_peer_fetch(req, frame, send)
        elif op == P.OP_MEMBERSHIP:
            await self._handle_membership(req, frame, send)
        else:
            await send(P.event_frame(req, P.EV_ERROR,
                                     error=f"unknown op {op!r}"))

    # -------------------------------------------------------------- submit
    def _canonical_task(self, frame: dict) -> SweepTask:
        """Canonicalize a wire request into a SweepTask.

        The alias resolves through the registry; args/kwargs round-trip
        through the codec so equivalent requests (tagged tuple vs plain
        list, any key order) hash to the *same* content key SweepTask.make
        produces locally.
        """
        fn = frame.get("fn")
        ref = self.operations.get(fn)
        if ref is None:
            if fn in self.operations.values():
                ref = fn        # full dotted ref of a registered op
            else:
                raise KeyError(f"unknown operation {fn!r}")
        args = decode_value(frame.get("args") or [])
        kwargs = decode_value(frame.get("kwargs") or {})
        return SweepTask(fn=ref, args=encode_value(tuple(args)),
                         kwargs=encode_value(dict(kwargs)))

    async def _handle_submit(self, req, frame: dict, send) -> None:
        if self.draining:
            self.table.stats.shed += 1
            self._count("shed")
            await send(P.event_frame(req, P.EV_SHED, reason="draining",
                                     depth=self.table.depth))
            return
        try:
            task = self._canonical_task(frame)
        except Exception as exc:  # bad alias / non-codec args
            await send(P.event_frame(req, P.EV_ERROR, error=str(exc)))
            return
        key = task.cache_key(self.salt + obs.cache_token())

        # Hot tier: an LRU hit answers immediately on any node — owner or
        # not — without touching admission control, the ring, or a worker.
        encoded = self.lru.get(key)
        if encoded is not None:
            self.table.stats.lru_hits += 1
            self._count("lru_hits")
            await send(P.event_frame(req, P.EV_ACCEPTED, job=key[:12],
                                     deduped=False, depth=self.table.depth,
                                     tier="lru"))
            await send(P.event_frame(req, P.EV_DONE, job=key[:12],
                                     result=self._unwrap_obs(encoded),
                                     cached=True, attempts=0, elapsed_s=0.0))
            return

        # Routing: a submit for a key another node owns is forwarded there
        # (cross-node single-flight), unless it already *was* forwarded —
        # the fwd marker breaks loops while membership views disagree.
        if self.membership is not None and not frame.get("fwd"):
            owner = self.membership.owner(key)
            if owner != self.node_id:
                if await self._forward_submit(req, frame, send, key, owner):
                    return
                # Unreachable owner: drop it from the ring (re-shard) and
                # run the job here — degraded placement, same answer.

        in_flight = key in self.table.active
        if not in_flight and self.table.depth >= self.max_pending:
            self.table.stats.shed += 1
            self._count("shed")
            await send(P.event_frame(
                req, P.EV_SHED, depth=self.table.depth,
                reason=f"queue full ({self.table.depth}/{self.max_pending})"))
            return

        now = time.monotonic()
        job, deduped = self.table.get_or_create(task, key, now)
        queue = job.subscribe()
        if not deduped:
            timeout_s = frame.get("timeout_s", self.job_timeout_s)
            t = asyncio.ensure_future(self._run_job(job, timeout_s))
            self._job_tasks.add(t)
            t.add_done_callback(self._job_tasks.discard)
        await send(P.event_frame(req, P.EV_ACCEPTED, job=job.short_key,
                                 deduped=deduped, depth=self.table.depth))
        quiet = bool(frame.get("quiet"))
        try:
            while True:
                event = await queue.get()
                if event["event"] == P.EV_STATE and quiet:
                    continue
                await send(P.event_frame(req, **event))
                if event["event"] in P.TERMINAL_EVENTS:
                    return
        finally:
            job.unsubscribe(queue)
            job.subscribers -= 1

    async def _forward_submit(self, req, frame: dict, send, key: str,
                              owner: str) -> bool:
        """Relay a submit to the key's owner; True once terminal relayed.

        The owner's ``done`` result warms this node's LRU, so a hot key
        answers locally next time no matter which node it lands on.
        """
        addr = self.membership.addr_of(owner)
        if addr is None:
            return False
        self.table.stats.forwarded += 1
        self._count("forwarded")

        async def relay(event: dict) -> None:
            if event.get("event") == P.EV_DONE and "result" in event:
                self.lru.put(key, event["result"])
            await send(event)

        fwd = dict(frame)
        fwd["req"] = req
        ok = await self._link(addr).forward_submit(fwd, relay,
                                                   via=self.node_id)
        if not ok:
            self.table.stats.forward_failed += 1
            self._count("forward_failed")
            self.membership.remove(owner)
        return ok

    async def _handle_peer_fetch(self, req, frame: dict, send) -> None:
        """Answer a peer's cache probe from either tier; never computes."""
        key = frame.get("key")
        encoded = None
        if isinstance(key, str) and key:
            encoded = self.lru.get(key)
            if encoded is None and self.cache is not None:
                blob = self.cache.load(key)
                if blob is not None:
                    encoded = blob["result"]
        await send(P.event_frame(req, P.EV_PEER_RESULT, key=key,
                                 hit=encoded is not None, result=encoded,
                                 node=self.node_id))

    async def _handle_membership(self, req, frame: dict, send) -> None:
        action = frame.get("action")
        node = frame.get("node")
        addr = frame.get("addr")
        changed = False
        if self.membership is not None:
            if action == P.MEMBER_LEAVE:
                if isinstance(node, str):
                    changed = self.membership.remove(node)
            elif action in (P.MEMBER_JOIN, P.MEMBER_SYNC):
                if (action == P.MEMBER_JOIN and isinstance(node, str)
                        and isinstance(addr, str)):
                    changed = self.membership.add(node, addr)
                changed = self.membership.merge(
                    frame.get("members") or []) or changed
                # A join that taught us something propagates: push the
                # merged view to everyone so the fabric converges without
                # the joiner having to know every member up front.
                if changed and action == P.MEMBER_JOIN:
                    self._spawn_gossip()
            else:
                await send(P.event_frame(
                    req, P.EV_ERROR,
                    error=f"unknown membership action {action!r}"))
                return
        await send(P.event_frame(
            req, P.EV_MEMBERSHIP, node=self.node_id,
            members=self.membership.view() if self.membership else [],
            version=self.membership.version if self.membership else 0,
            changed=changed))

    # ---------------------------------------------------------------- jobs
    async def _run_job(self, job: Job, timeout_s: Optional[float]) -> None:
        """Execute one fresh job: caches, then peers, then the pool."""
        # On-disk cache first — a completed identical request (from this
        # service or any SweepRunner sweep) answers without a worker.
        if self.cache is not None:
            blob = self.cache.load(job.key)
            if blob is not None:
                job.cached = True
                self.table.stats.cache_hits += 1
                self.lru.put(job.key, blob["result"])
                self._complete(job, blob["result"])
                return
        # Peer-fetch before recompute: after a membership change this node
        # may own keys a peer already computed — ask the fabric before
        # paying for a worker.  Any failure just reads as a miss.
        if self.peer_fetch and self.membership is not None \
                and self.membership.others():
            fetched = await self._peer_fetch(job.key)
            if fetched is not None:
                job.cached = True
                job.peer_fetched = True
                self.table.stats.peer_fetch_hits += 1
                self._count("peer_fetch_hits")
                if self.cache is not None:
                    self.cache.store(job.key, job.task, fetched,
                                     salt=self.salt + obs.cache_token())
                self.lru.put(job.key, fetched)
                self._complete(job, fetched)
                return
            self.table.stats.peer_fetch_misses += 1
            self._count("peer_fetch_misses")
        try:
            # Jobs admitted before a drain began still run to completion;
            # drain only blocks new submissions.
            async with self.pool.slots:
                job.state = RUNNING
                job.started_s = time.monotonic()
                job.attempts = 1
                job.publish({"event": P.EV_STATE, "state": RUNNING,
                             "attempt": 1, "job": job.short_key})

                def on_retry(attempt: int, delay_s: float) -> None:
                    job.attempts = attempt + 1
                    self.table.stats.retries += 1
                    job.publish({"event": P.EV_STATE, "state": "retrying",
                                 "attempt": attempt + 1,
                                 "delay_s": round(delay_s, 4),
                                 "job": job.short_key})

                encoded = await self.pool.execute(
                    job.task, with_obs=self._with_obs,
                    timeout_s=timeout_s, on_retry=on_retry)
        except JobFailure as exc:
            self._fail(job, FAILED, exc.error)
            return
        except JobTimeout as exc:
            self._fail(job, TIMEOUT, RemoteError(
                type="JobTimeout", message=str(exc), traceback=""))
            return
        except WorkerDied as exc:
            self._fail(job, FAILED, RemoteError(
                type="WorkerDied", message=str(exc), traceback=""))
            return
        except asyncio.CancelledError:
            self.table.finish(job, CANCELLED, time.monotonic())
            job.publish({"event": P.EV_FAILED, "job": job.short_key,
                         "state": CANCELLED,
                         "error": RemoteError(
                             type="Cancelled",
                             message="service shut down before completion",
                             traceback="").as_dict()})
            raise
        self.table.stats.executed += 1
        if self.cache is not None:
            self.cache.store(job.key, job.task, encoded,
                             salt=self.salt + obs.cache_token())
        self.lru.put(job.key, encoded)
        self._complete(job, encoded)

    async def _peer_fetch(self, key: str) -> Any:
        """Ask each other member for ``key``; first hit wins, else None."""
        for node in self.membership.others():
            addr = self.membership.addr_of(node)
            if addr is None:
                continue
            encoded = await self._link(addr).peer_fetch(key)
            if encoded is not None:
                return encoded
        return None

    def _unwrap_obs(self, encoded: Any) -> Any:
        """Strip the ``{"result", "obs"}`` instrumentation wrapper.

        Under instrumentation the encoded payload (fresh, cached, or
        peer-fetched) carries the worker's registry snapshot: it merges
        into the service registry and the caller gets the bare result.
        """
        if self._with_obs and isinstance(encoded, dict) \
                and set(encoded) == {"result", "obs"}:
            obs.registry().merge_snapshot(encoded["obs"])
            return encoded["result"]
        return encoded

    def _complete(self, job: Job, encoded: Any) -> None:
        """Record success and publish the terminal ``done`` event."""
        if self._with_obs and isinstance(encoded, dict) \
                and set(encoded) == {"result", "obs"}:
            job.obs_snapshot = encoded["obs"]
            obs.registry().merge_snapshot(encoded["obs"])
            encoded = encoded["result"]
        job.result = encoded
        self.table.finish(job, DONE, time.monotonic())
        job.publish({"event": P.EV_DONE, "job": job.short_key,
                     "result": encoded, "cached": job.cached,
                     "attempts": job.attempts,
                     "elapsed_s": round(job.elapsed_s, 6)})

    def _fail(self, job: Job, state: str, error: RemoteError) -> None:
        job.error = error
        self.table.finish(job, state, time.monotonic())
        job.publish({"event": P.EV_FAILED, "job": job.short_key,
                     "state": state, "attempts": job.attempts,
                     "error": error.as_dict()})

    # ---------------------------------------------------------------- HTTP
    async def _serve_http(self, first: bytes, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """One-shot HTTP/1.1 shim: GET /healthz, /metrics, /jobs."""
        try:
            parts = first.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
        except (IndexError, UnicodeDecodeError):
            path = "/"
        while True:     # drain request headers
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
        status, body = self._http_body(path)
        payload = json.dumps(body, sort_keys=True).encode()
        writer.write(
            b"HTTP/1.1 " + status + b"\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(payload)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n" + payload)
        await writer.drain()

    def _http_body(self, path: str) -> tuple[bytes, Any]:
        if path == "/healthz":
            return b"200 OK", {"ok": True, "draining": self.draining,
                               "depth": self.table.depth}
        if path == "/metrics":
            return b"200 OK", {"status": self.status(),
                               "obs": obs.registry().snapshot()}
        if path == "/jobs":
            return b"200 OK", {"jobs": self.table.listing()}
        return b"404 Not Found", {"error": f"no such path {path!r}",
                                  "paths": ["/healthz", "/metrics", "/jobs"]}
