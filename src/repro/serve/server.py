"""The resident simulation service.

``SimulationServer`` is a single-loop asyncio TCP server speaking the
NDJSON protocol of :mod:`repro.serve.protocol`, with a minimal HTTP/1.1
shim on the same port (``/healthz``, ``/metrics``, ``/jobs`` — the first
line of a connection decides which protocol it speaks).  Requests become
:class:`~repro.serve.jobs.Job` objects executed on a bounded
:class:`~repro.serve.pool.WorkerPool`; every layer below is shared with the
batch front ends rather than duplicated:

* Requests canonicalize to :class:`repro.harness.SweepTask` content keys —
  the *same* keys :class:`repro.harness.SweepRunner` uses — which gives
  **single-flight dedup** (identical in-flight requests coalesce onto one
  execution) and **cross-front-end caching** (a result computed by a batch
  sweep is a cache hit for the service, and vice versa) for free.
* Per-job :mod:`repro.obs` snapshots merge into the service's registry in
  job-completion order (registry merges are commutative, so totals are
  deterministic), surfacing on ``/metrics``.

Robustness under load:

* **Admission control.**  At most ``max_pending`` jobs may be queued or
  running; a submit beyond that receives an immediate ``shed`` event
  instead of queueing unboundedly (deduplicated submits piggyback on
  existing work and are always admitted).  Clients back off and resubmit.
* **Bounded retry** with exponential backoff when a worker process dies,
  and **per-job deadlines** — both from :class:`~repro.serve.pool.WorkerPool`.
* **Graceful drain.**  SIGTERM (or the ``drain`` op) stops admitting new
  work, lets in-flight jobs finish and their results reach every waiting
  subscriber, then closes the listener and exits.  A second SIGTERM hard
  stops.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any, Optional

from repro import obs
from repro.harness.parallel import (
    ResultCache,
    SweepTask,
    decode_value,
    encode_value,
)
from repro.serve import protocol as P
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobTable,
    RUNNING,
    TIMEOUT,
)
from repro.serve.ops import DEFAULT_OPERATIONS
from repro.serve.pool import JobFailure, JobTimeout, WorkerDied, WorkerPool
from repro.serve.protocol import RemoteError


class SimulationServer:
    """One resident service instance; see module docstring.

    Parameters mirror the ``repro serve`` CLI flags.  ``port=0`` binds an
    ephemeral port (tests); the bound port is ``self.port`` after
    :meth:`start`.  ``operations`` extends/overrides the default alias
    registry; only registered operations can be invoked over the wire.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = P.DEFAULT_PORT,
        workers: int = 2,
        max_pending: int = 32,
        job_timeout_s: Optional[float] = None,
        cache_dir: Optional[str] = None,
        salt: str = "",
        operations: Optional[dict[str, str]] = None,
        max_retries: int = 3,
        backoff_base_s: float = 0.05,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.host = host
        self.port = port
        self.workers = workers
        self.max_pending = max_pending
        self.job_timeout_s = job_timeout_s
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.salt = salt
        self.operations = dict(DEFAULT_OPERATIONS)
        if operations:
            self.operations.update(operations)
        self._max_retries = max_retries
        self._backoff_base_s = backoff_base_s

        self.table = JobTable()
        self.pool: Optional[WorkerPool] = None
        self.draining = False
        self._started_s = 0.0
        self._server: Optional[asyncio.base_events.Server] = None
        self._job_tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._stream_tasks: set[asyncio.Task] = set()
        self._closed = asyncio.Event()
        self._with_obs = False

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> "SimulationServer":
        """Bind the listener and start accepting connections."""
        self.pool = WorkerPool(max_workers=self.workers,
                               max_retries=self._max_retries,
                               backoff_base_s=self._backoff_base_s)
        # Snapshot the instrumentation state once: jobs run with obs iff the
        # service started with it (matches SweepRunner's run()-time check).
        self._with_obs = obs.enabled()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port,
            limit=P.MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_s = time.monotonic()
        return self

    def install_signal_handlers(self) -> bool:
        """SIGTERM/SIGINT -> graceful drain; second signal -> hard stop.

        Returns False where loop signal handlers are unsupported (non-main
        thread, non-Unix); the ``drain`` op still works there.
        """
        loop = asyncio.get_running_loop()

        def _on_signal() -> None:
            if self.draining:
                asyncio.ensure_future(self.aclose())
            else:
                self.begin_drain()

        try:
            loop.add_signal_handler(signal.SIGTERM, _on_signal)
            loop.add_signal_handler(signal.SIGINT, _on_signal)
        except (NotImplementedError, RuntimeError, ValueError):
            return False
        return True

    def begin_drain(self) -> None:
        """Stop admitting work; exit once in-flight jobs have finished."""
        if self.draining:
            return
        self.draining = True
        asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        # In-flight jobs run to completion; their terminal events are
        # published to subscriber queues before the tasks finish.
        while self._job_tasks:
            await asyncio.gather(*list(self._job_tasks),
                                 return_exceptions=True)
        # Let submit streams flush those terminal events to their sockets
        # (idle connections are simply closed; no need to wait on them).
        if self._stream_tasks:
            await asyncio.wait(list(self._stream_tasks), timeout=2.0)
        await self.aclose()

    async def aclose(self) -> None:
        """Hard stop: close the listener and connections, kill the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for t in list(self._conn_tasks):
            t.cancel()
        for t in list(self._job_tasks):
            t.cancel()
        if self.pool is not None:
            self.pool.shutdown()
        self._closed.set()

    async def wait_closed(self) -> None:
        """Block until the service has fully shut down."""
        await self._closed.wait()

    async def serve_forever(self) -> None:
        """start() + signal handlers + run until drained/closed."""
        if self._server is None:
            await self.start()
        self.install_signal_handlers()
        await self.wait_closed()

    # ------------------------------------------------------------- status
    def status(self) -> dict:
        pool = self.pool
        return {
            "version": P.PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started_s, 3)
            if self._started_s else 0.0,
            "draining": self.draining,
            "workers": self.workers,
            "max_pending": self.max_pending,
            "depth": self.table.depth,
            "cache": self.cache is not None,
            "pool": {
                "retries": pool.retries if pool else 0,
                "recycles": pool.recycles if pool else 0,
                "abandoned": pool.abandoned if pool else 0,
            },
            "stats": self.table.stats.as_dict(),
        }

    # -------------------------------------------------------- connections
    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if first.split(b" ", 1)[0] in (b"GET", b"HEAD"):
                await self._serve_http(first, reader, writer)
                return
            await self._serve_ndjson(first, reader, writer)
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------- NDJSON
    async def _serve_ndjson(self, first: bytes, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        wlock = asyncio.Lock()
        stream_tasks: set[asyncio.Task] = set()

        async def send(frame: dict) -> None:
            async with wlock:
                writer.write(P.encode_frame(frame))
                await writer.drain()

        line = first
        try:
            while line:
                line = line.strip()
                if line:
                    await self._dispatch(line, send, stream_tasks)
                line = await reader.readline()
        finally:
            for t in stream_tasks:
                t.cancel()

    async def _dispatch(self, line: bytes, send, stream_tasks: set) -> None:
        try:
            frame = P.decode_frame(line)
        except P.ProtocolError as exc:
            await send(P.event_frame(None, P.EV_ERROR, error=str(exc)))
            return
        req = frame.get("req")
        op = frame.get("op")
        if op == P.OP_SUBMIT:
            # Each submit gets its own streaming task so long jobs never
            # block other requests on the connection.
            t = asyncio.ensure_future(self._handle_submit(req, frame, send))
            stream_tasks.add(t)
            self._stream_tasks.add(t)
            t.add_done_callback(stream_tasks.discard)
            t.add_done_callback(self._stream_tasks.discard)
        elif op == P.OP_PING:
            await send(P.event_frame(req, P.EV_PONG,
                                     version=P.PROTOCOL_VERSION))
        elif op == P.OP_STATUS:
            await send(P.event_frame(req, P.EV_STATUS, **self.status()))
        elif op == P.OP_JOBS:
            await send(P.event_frame(req, P.EV_JOBS,
                                     jobs=self.table.listing()))
        elif op == P.OP_DRAIN:
            self.begin_drain()
            await send(P.event_frame(req, P.EV_DRAINING,
                                     depth=self.table.depth))
        else:
            await send(P.event_frame(req, P.EV_ERROR,
                                     error=f"unknown op {op!r}"))

    # -------------------------------------------------------------- submit
    def _canonical_task(self, frame: dict) -> SweepTask:
        """Canonicalize a wire request into a SweepTask.

        The alias resolves through the registry; args/kwargs round-trip
        through the codec so equivalent requests (tagged tuple vs plain
        list, any key order) hash to the *same* content key SweepTask.make
        produces locally.
        """
        fn = frame.get("fn")
        ref = self.operations.get(fn)
        if ref is None:
            if fn in self.operations.values():
                ref = fn        # full dotted ref of a registered op
            else:
                raise KeyError(f"unknown operation {fn!r}")
        args = decode_value(frame.get("args") or [])
        kwargs = decode_value(frame.get("kwargs") or {})
        return SweepTask(fn=ref, args=encode_value(tuple(args)),
                         kwargs=encode_value(dict(kwargs)))

    async def _handle_submit(self, req, frame: dict, send) -> None:
        if self.draining:
            self.table.stats.shed += 1
            await send(P.event_frame(req, P.EV_SHED, reason="draining",
                                     depth=self.table.depth))
            return
        try:
            task = self._canonical_task(frame)
        except Exception as exc:  # bad alias / non-codec args
            await send(P.event_frame(req, P.EV_ERROR, error=str(exc)))
            return
        key = task.cache_key(self.salt + obs.cache_token())

        in_flight = key in self.table.active
        if not in_flight and self.table.depth >= self.max_pending:
            self.table.stats.shed += 1
            await send(P.event_frame(
                req, P.EV_SHED, depth=self.table.depth,
                reason=f"queue full ({self.table.depth}/{self.max_pending})"))
            return

        now = time.monotonic()
        job, deduped = self.table.get_or_create(task, key, now)
        queue = job.subscribe()
        if not deduped:
            timeout_s = frame.get("timeout_s", self.job_timeout_s)
            t = asyncio.ensure_future(self._run_job(job, timeout_s))
            self._job_tasks.add(t)
            t.add_done_callback(self._job_tasks.discard)
        await send(P.event_frame(req, P.EV_ACCEPTED, job=job.short_key,
                                 deduped=deduped, depth=self.table.depth))
        quiet = bool(frame.get("quiet"))
        try:
            while True:
                event = await queue.get()
                if event["event"] == P.EV_STATE and quiet:
                    continue
                await send(P.event_frame(req, **event))
                if event["event"] in P.TERMINAL_EVENTS:
                    return
        finally:
            job.unsubscribe(queue)
            job.subscribers -= 1

    # ---------------------------------------------------------------- jobs
    async def _run_job(self, job: Job, timeout_s: Optional[float]) -> None:
        """Execute one fresh job: cache, then pool; publish the terminal."""
        # On-disk cache first — a completed identical request (from this
        # service or any SweepRunner sweep) answers without a worker.
        if self.cache is not None:
            blob = self.cache.load(job.key)
            if blob is not None:
                job.cached = True
                self.table.stats.cache_hits += 1
                self._complete(job, blob["result"])
                return
        try:
            # Jobs admitted before a drain began still run to completion;
            # drain only blocks new submissions.
            async with self.pool.slots:
                job.state = RUNNING
                job.started_s = time.monotonic()
                job.attempts = 1
                job.publish({"event": P.EV_STATE, "state": RUNNING,
                             "attempt": 1, "job": job.short_key})

                def on_retry(attempt: int, delay_s: float) -> None:
                    job.attempts = attempt + 1
                    self.table.stats.retries += 1
                    job.publish({"event": P.EV_STATE, "state": "retrying",
                                 "attempt": attempt + 1,
                                 "delay_s": round(delay_s, 4),
                                 "job": job.short_key})

                encoded = await self.pool.execute(
                    job.task, with_obs=self._with_obs,
                    timeout_s=timeout_s, on_retry=on_retry)
        except JobFailure as exc:
            self._fail(job, FAILED, exc.error)
            return
        except JobTimeout as exc:
            self._fail(job, TIMEOUT, RemoteError(
                type="JobTimeout", message=str(exc), traceback=""))
            return
        except WorkerDied as exc:
            self._fail(job, FAILED, RemoteError(
                type="WorkerDied", message=str(exc), traceback=""))
            return
        except asyncio.CancelledError:
            self.table.finish(job, CANCELLED, time.monotonic())
            job.publish({"event": P.EV_FAILED, "job": job.short_key,
                         "state": CANCELLED,
                         "error": RemoteError(
                             type="Cancelled",
                             message="service shut down before completion",
                             traceback="").as_dict()})
            raise
        self.table.stats.executed += 1
        if self.cache is not None:
            self.cache.store(job.key, job.task, encoded,
                             salt=self.salt + obs.cache_token())
        self._complete(job, encoded)

    def _complete(self, job: Job, encoded: Any) -> None:
        """Record success and publish the terminal ``done`` event.

        Under instrumentation the encoded payload is the SweepRunner-style
        ``{"result", "obs"}`` wrapper (fresh or cached): the snapshot merges
        into the service registry and clients receive the bare result.
        """
        if self._with_obs and isinstance(encoded, dict) \
                and set(encoded) == {"result", "obs"}:
            job.obs_snapshot = encoded["obs"]
            obs.registry().merge_snapshot(encoded["obs"])
            encoded = encoded["result"]
        job.result = encoded
        self.table.finish(job, DONE, time.monotonic())
        job.publish({"event": P.EV_DONE, "job": job.short_key,
                     "result": encoded, "cached": job.cached,
                     "attempts": job.attempts,
                     "elapsed_s": round(job.elapsed_s, 6)})

    def _fail(self, job: Job, state: str, error: RemoteError) -> None:
        job.error = error
        self.table.finish(job, state, time.monotonic())
        job.publish({"event": P.EV_FAILED, "job": job.short_key,
                     "state": state, "attempts": job.attempts,
                     "error": error.as_dict()})

    # ---------------------------------------------------------------- HTTP
    async def _serve_http(self, first: bytes, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """One-shot HTTP/1.1 shim: GET /healthz, /metrics, /jobs."""
        try:
            parts = first.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
        except (IndexError, UnicodeDecodeError):
            path = "/"
        while True:     # drain request headers
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
        status, body = self._http_body(path)
        payload = json.dumps(body, sort_keys=True).encode()
        writer.write(
            b"HTTP/1.1 " + status + b"\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(payload)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n" + payload)
        await writer.drain()

    def _http_body(self, path: str) -> tuple[bytes, Any]:
        if path == "/healthz":
            return b"200 OK", {"ok": True, "draining": self.draining,
                               "depth": self.table.depth}
        if path == "/metrics":
            return b"200 OK", {"status": self.status(),
                               "obs": obs.registry().snapshot()}
        if path == "/jobs":
            return b"200 OK", {"jobs": self.table.listing()}
        return b"404 Not Found", {"error": f"no such path {path!r}",
                                  "paths": ["/healthz", "/metrics", "/jobs"]}
