"""Consistent-hash ring: deterministic key -> node placement.

The fabric's routing layer.  Every serve node carries the same
:class:`HashRing` over the fabric's membership, so any node can answer
"who owns this content key" locally, without coordination — placement is
a pure function of (member set, key).  The properties the fabric leans on
(pinned by ``tests/test_serve_ring.py``):

* **Determinism.**  The ring is derived only from the member-id set —
  never from insertion order, wall clock, or process state — so every
  node that agrees on membership agrees on placement.
* **Balance.**  Each member projects to ``vnodes`` pseudo-random points
  on a 64-bit circle (sha256 of ``"node#i"``), so key ownership splits
  roughly evenly; more vnodes = tighter balance.
* **Monotonicity.**  A join moves onto the new node only the keys it now
  owns; a leave redistributes only the departed node's keys.  No
  unrelated key changes owner — which is what makes re-sharding on
  join/leave cheap and makes warm caches stay warm.

Keys here are the content-addressed ``SweepTask.cache_key`` hex digests
(already uniformly distributed), but :meth:`HashRing.owner` hashes its
input again so arbitrary strings place just as well.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional

#: Virtual nodes per member.  128 keeps the max/mean ownership ratio
#: under ~1.45 for small clusters (measured in tests/test_serve_ring.py)
#: at negligible build cost (a 3-node ring is 384 points).
DEFAULT_VNODES = 128

_SPACE = 1 << 64


def _point(material: str) -> int:
    """A deterministic position on the 64-bit hash circle."""
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SPACE


class HashRing:
    """Consistent-hash ring over a set of member node ids.

    Mutations (:meth:`add` / :meth:`remove`) rebuild the sorted point
    array — membership churn is rare and rings are small, so simplicity
    wins over incremental maintenance.  Lookup is a binary search.
    """

    def __init__(self, nodes: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for n in nodes:
            self._nodes.add(self._check_id(n))
        self._rebuild()

    @staticmethod
    def _check_id(node: str) -> str:
        if not isinstance(node, str) or not node:
            raise ValueError(f"node id must be a non-empty string, "
                             f"got {node!r}")
        return node

    # ------------------------------------------------------------ members
    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> bool:
        """Add a member; returns True if it was new."""
        node = self._check_id(node)
        if node in self._nodes:
            return False
        self._nodes.add(node)
        self._rebuild()
        return True

    def remove(self, node: str) -> bool:
        """Remove a member; returns True if it was present."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        self._rebuild()
        return True

    def _rebuild(self) -> None:
        pairs: list[tuple[int, str]] = []
        for node in self._nodes:
            for i in range(self.vnodes):
                pairs.append((_point(f"{node}#{i}"), node))
        # Sorting on (point, node) resolves the astronomically unlikely
        # point collision deterministically.
        pairs.sort()
        self._points = [p for p, _ in pairs]
        self._owners = [n for _, n in pairs]

    # ------------------------------------------------------------- lookup
    def owner(self, key: str) -> Optional[str]:
        """The member owning ``key``, or None on an empty ring."""
        if not self._points:
            return None
        idx = bisect.bisect_right(self._points, _point(key))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """Ownership histogram over ``keys`` (diagnostics and tests)."""
        counts = {n: 0 for n in self._nodes}
        for k in keys:
            o = self.owner(k)
            if o is not None:
                counts[o] += 1
        return counts
