"""Operation catalogue: what the simulation service will run.

The service never executes arbitrary callables off the wire — a request
names an operation *alias* which the server resolves through its registry
to a module-level function (the same ``module:qualname`` form
:class:`repro.harness.SweepTask` uses, so the resolved reference is part of
the content-addressed cache key and serve shares cache entries with batch
sweeps).  Servers can extend the registry at construction time
(``SimulationServer(operations={...})``); the defaults below cover the
repository's experiment surface.

JSON-friendly wrappers: CLI clients (``repro submit``) send plain-JSON
parameter objects, so for config-heavy entry points this module provides
``*_json`` wrappers that build the dataclasses server-side.  Python clients
can instead encode dataclasses directly with
:func:`repro.harness.encode_value` and call the underlying functions.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import Any

from repro.harness.builders import experiment_from_params as _experiment_from_params

#: Default alias -> dotted-reference registry.
DEFAULT_OPERATIONS: dict[str, str] = {
    # Service plumbing / diagnostics.
    "echo": "repro.serve.ops:echo",
    "resolve_config": "repro.serve.ops:resolve_config",
    # Experiment surface (shared with SweepRunner-driven benchmarks, so
    # cache entries are interchangeable).
    "scenario": "repro.validate.scenario:run_scenario",
    "scenario_json": "repro.serve.ops:run_scenario_json",
    "accuracy": "repro.harness.experiments:accuracy_experiment",
    "accuracy_json": "repro.serve.ops:accuracy_json",
    "casestudy": "repro.harness.experiments:case_study",
    "load_latency_point": "repro.harness.experiments:load_latency_point",
    # The rest of the sweep-task surface compiled by repro.exp configs, so
    # an experiment config can submit its tasks to a serve node unchanged
    # (same dotted refs, same args, same content keys as a local run).
    "simtime": "repro.harness.experiments:simtime_experiment",
    "power": "repro.harness.experiments:power_experiment",
    "convergence": "repro.harness.experiments:convergence_experiment",
    "ablation_deps": "repro.harness.experiments:ablation_dep_fraction",
    "ablation_mismatch": "repro.harness.experiments:ablation_network_mismatch",
    "scalability_point": "repro.harness.experiments:scalability_point",
    "seed_accuracy_point": "repro.harness.experiments:seed_accuracy_point",
    "latency_fidelity": "repro.harness.experiments:latency_fidelity_rows",
    "area_rows": "repro.harness.experiments:area_rows",
    "resilience_point": "repro.harness.experiments:resilience_point",
    "synth_scalability_point": "repro.synth.experiment:synth_scalability_point",
}


def echo(value: Any = None, sleep_s: float = 0.0) -> Any:
    """Return ``value`` after an optional busy-less sleep.

    The service's loopback op: measures end-to-end request overhead
    (``benchmarks/bench_serve.py``) and gives tests a worker-occupying task
    with controllable duration.
    """
    if sleep_s:
        time.sleep(sleep_s)
    return value


def resolve_config(**params: Any) -> dict:
    """Validate a configuration and return it fully resolved, as plain JSON.

    Lets clients type-check an experiment before paying for simulation; an
    infeasible combination (e.g. an AWGR with fewer wavelengths than nodes)
    raises ``ConfigError`` in the worker, and the service relays the original
    traceback.
    """
    exp = _experiment_from_params(**params)
    return asdict(exp)


def run_scenario_json(params: dict, deep: bool = False) -> Any:
    """JSON-parameter front end for :func:`repro.validate.scenario.run_scenario`.

    ``params`` are :class:`repro.validate.Scenario` fields, e.g.
    ``{"workload": "fft", "cores": 16, "seed": 7, "scale": 0.25,
    "capture": "electrical", "target": "crossbar"}``.
    """
    from repro.validate.scenario import Scenario, run_scenario

    return run_scenario(Scenario(**params), deep=deep)


def accuracy_json(workload: str, scale: float = 1.0, **params: Any) -> Any:
    """JSON-parameter front end for the accuracy experiment."""
    from repro.harness.experiments import accuracy_experiment

    exp = _experiment_from_params(**params)
    return accuracy_experiment(exp, workload, scale=scale)
