"""``repro.serve`` — the resident simulation service.

Turns the one-shot simulator into a long-running, concurrent job service:
clients submit simulation/replay/validation requests over a
newline-delimited-JSON TCP protocol (with an HTTP shim for ``/healthz``,
``/metrics``, ``/jobs``), the server executes them on a bounded process
pool, and identical requests coalesce (single-flight) and hit the same
on-disk content-addressed cache as batch sweeps.  See ``docs/SERVING.md``.

Quickstart::

    # terminal 1
    python -m repro serve --workers 4 --cache

    # terminal 2
    python -m repro submit scenario_json --params \\
        '{"params": {"workload": "fft", "cores": 16, "seed": 7, \\
          "scale": 0.25, "capture": "electrical", "target": "crossbar"}}'

or programmatically::

    from repro.serve import ServeClient
    with ServeClient(port=7433) as c:
        outcome = c.submit("scenario", scenario)   # dataclasses encode fine
"""

from repro.serve.client import (
    AsyncServeClient,
    JobFailed,
    ServeClient,
    ServeError,
    ServerClosed,
    Shed,
)
from repro.serve.jobs import Job, JobTable, ServiceStats
from repro.serve.lru import LRUCache, LRUStats
from repro.serve.ops import DEFAULT_OPERATIONS
from repro.serve.peer import Membership, PeerLink, parse_addr
from repro.serve.pool import JobFailure, JobTimeout, WorkerDied, WorkerPool
from repro.serve.ring import DEFAULT_VNODES, HashRing
from repro.serve.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
)
from repro.serve.server import SimulationServer

__all__ = [
    "AsyncServeClient",
    "DEFAULT_OPERATIONS",
    "DEFAULT_PORT",
    "DEFAULT_VNODES",
    "HashRing",
    "Job",
    "JobFailed",
    "JobFailure",
    "JobTable",
    "JobTimeout",
    "LRUCache",
    "LRUStats",
    "Membership",
    "PROTOCOL_VERSION",
    "PeerLink",
    "ProtocolError",
    "RemoteError",
    "ServeClient",
    "ServeError",
    "ServerClosed",
    "ServiceStats",
    "Shed",
    "SimulationServer",
    "WorkerDied",
    "WorkerPool",
    "parse_addr",
]
