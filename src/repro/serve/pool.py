"""Bounded process-pool execution with worker-side traceback capture.

The service's execution layer: a :class:`~concurrent.futures.ProcessPoolExecutor`
wrapped for asyncio, with the three robustness behaviours the resident
service needs and batch sweeps don't:

* **Faithful failures.**  The worker entry point runs the task under a
  ``try/except`` and ships ``traceback.format_exc()`` back as data, so a
  failed job surfaces the *original worker-side traceback* — not a
  re-raise inside the service, and not ``concurrent.futures``' lossy
  exception pickling.  (A raised exception that cannot pickle would also
  kill the pool; returning a dict sidesteps the whole class of problems.)
* **Bounded retry on worker death.**  A worker segfaulting or calling
  ``os._exit`` breaks the whole executor (``BrokenProcessPool``).  The pool
  replaces the executor and retries the task with exponential backoff, up
  to ``max_retries`` attempts; tasks are deterministic and idempotent, so
  retry is always safe.
* **Deadline enforcement.**  A task over its ``timeout_s`` is *abandoned*:
  the job fails fast, but the worker keeps crunching (POSIX has no safe way
  to preempt a CPU-bound child mid-task).  Abandoned workers are counted,
  and once every worker slot is clogged the executor is recycled wholesale
  — fresh processes, stragglers reaped.

Execution results use the sweep codec end to end, so whatever the pool
returns can be stored directly in the shared :class:`repro.harness.ResultCache`.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Optional

from repro.harness.parallel import SweepTask, _execute_encoded
from repro.serve.protocol import RemoteError


class JobFailure(Exception):
    """A job failed in the worker; carries the original remote traceback."""

    def __init__(self, error: RemoteError) -> None:
        super().__init__(str(error))
        self.error = error


class JobTimeout(Exception):
    """A job exceeded its deadline and was abandoned."""

    def __init__(self, timeout_s: float) -> None:
        super().__init__(f"job exceeded its {timeout_s:g}s deadline")
        self.timeout_s = timeout_s


class WorkerDied(Exception):
    """Worker processes died repeatedly; all retry attempts exhausted."""

    def __init__(self, attempts: int) -> None:
        super().__init__(
            f"worker process died on all {attempts} attempts")
        self.attempts = attempts


def _run_guarded(fn_ref: str, enc_args: Any, enc_kwargs: Any,
                 with_obs: bool) -> dict:
    """Worker entry point: never raises; failures become data.

    Success: ``{"ok": True, "result": <encoded>}`` where ``<encoded>`` is
    exactly what :func:`repro.harness.parallel._execute_encoded` produces
    (including the ``{"result", "obs"}`` wrapper under instrumentation), so
    the caller can cache it under the same key layout SweepRunner uses.
    Failure: ``{"ok": False, "error": {type, message, traceback}}``.
    """
    try:
        return {"ok": True,
                "result": _execute_encoded(fn_ref, enc_args, enc_kwargs,
                                           with_obs)}
    except BaseException as exc:  # noqa: BLE001 - the whole point
        return {"ok": False, "error": {
            "type": type(exc).__qualname__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }}


def _mp_context():
    """A start method whose workers do not inherit the server's sockets.

    The default ``fork`` method duplicates every open file descriptor
    into the worker, connection sockets included.  A worker forked while
    connections are open then *pins* them: when the server closes its
    side no FIN is ever sent (the worker's duplicate keeps the TCP
    connection ESTABLISHED), so peers and clients blocked on the socket
    never learn the node is gone — fatal for a fabric whose failure
    detection is "the connection died".  ``forkserver`` (and ``spawn``)
    start workers from a clean exec'd process, so the only descriptors
    they hold are their own work pipes.
    """
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class WorkerPool:
    """Async facade over a replaceable ProcessPoolExecutor.

    ``slots`` is an :class:`asyncio.Semaphore` sized to the worker count:
    the server acquires a slot before calling :meth:`execute`, so queued
    jobs wait in the server (where they can be listed and shed) rather
    than invisibly inside the executor.
    """

    def __init__(
        self,
        max_workers: int = 2,
        max_retries: int = 3,
        backoff_base_s: float = 0.05,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        self.max_workers = max_workers
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.slots = asyncio.Semaphore(max_workers)
        self.abandoned = 0          # timed-out tasks still on old executors
        self.recycles = 0           # executors replaced (death or clog)
        self.retries = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    # ----------------------------------------------------------- executor
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=_mp_context())
        return self._executor

    def _recycle(self) -> None:
        """Replace the executor; old workers are released, not joined."""
        old, self._executor = self._executor, None
        self.recycles += 1
        self.abandoned = 0
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ---------------------------------------------------------- execution
    async def execute(
        self,
        task: SweepTask,
        with_obs: bool = False,
        timeout_s: Optional[float] = None,
        on_retry=None,
    ) -> Any:
        """Run ``task`` to completion; returns the encoded result.

        Raises :class:`JobFailure` (worker exception, original traceback
        attached), :class:`JobTimeout` (deadline exceeded), or
        :class:`WorkerDied` (pool broke on every attempt).  ``on_retry`` is
        called as ``on_retry(attempt, delay_s)`` before each backoff sleep.
        """
        loop = asyncio.get_running_loop()
        for attempt in range(1, self.max_retries + 1):
            executor = self._ensure_executor()
            try:
                fut = executor.submit(_run_guarded, task.fn, task.args,
                                      task.kwargs, with_obs)
            except RuntimeError as exc:
                # Executor raced shutdown; treat like a broken pool.
                if attempt == self.max_retries:
                    raise WorkerDied(attempt) from exc
                await self._backoff(attempt, on_retry)
                continue
            try:
                outcome = await asyncio.wait_for(
                    asyncio.wrap_future(fut, loop=loop), timeout_s)
            except asyncio.TimeoutError:
                if not fut.cancel():
                    # Already running: the worker slot stays clogged until
                    # the task finishes on its own.  Recycle the executor
                    # once every slot is lost to stragglers.
                    self.abandoned += 1
                    if self.abandoned >= self.max_workers:
                        self._recycle()
                raise JobTimeout(timeout_s or 0.0) from None
            except BrokenProcessPool:
                self._recycle()
                if attempt == self.max_retries:
                    raise WorkerDied(attempt) from None
                self.retries += 1
                await self._backoff(attempt, on_retry)
                continue
            if outcome["ok"]:
                return outcome["result"]
            raise JobFailure(RemoteError.from_dict(outcome["error"]))
        raise WorkerDied(self.max_retries)  # pragma: no cover - loop covers

    async def _backoff(self, attempt: int, on_retry) -> None:
        delay = self.backoff_base_s * (2 ** (attempt - 1))
        if on_retry is not None:
            on_retry(attempt, delay)
        await asyncio.sleep(delay)
