"""Hot in-memory LRU result cache — the fabric's first cache tier.

Sits in front of the on-disk :class:`repro.harness.ResultCache` inside
each serve node.  Entries are the *encoded* result payloads (the same
JSON-ready structures the disk tier stores), keyed by the content hash,
so promotion between tiers is a plain dict move — no re-encoding.

Bounded two ways: entry count and approximate payload bytes (measured at
insertion as the compact-JSON length of the encoded value).  Eviction is
least-recently-*used*: both hits and stores refresh recency.

Single-threaded by design — it lives on the server's asyncio loop, like
the :class:`repro.serve.jobs.JobTable` — so there are no locks.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

#: Default bounds: plenty for the dedup-heavy request mixes the fabric
#: sees, small enough to never matter next to worker-process memory.
DEFAULT_MAX_ENTRIES = 1024
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


@dataclass
class LRUStats:
    """Monotonic counters, surfaced on the ``status`` op and ``/metrics``."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


class LRUCache:
    """Size- and byte-bounded LRU over encoded result payloads."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = LRUStats()
        self._entries: OrderedDict[str, tuple[Any, int]] = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def bytes(self) -> int:
        return self._bytes

    # ------------------------------------------------------------- access
    def get(self, key: str) -> Optional[Any]:
        """The encoded payload under ``key`` (refreshing recency), or None.

        Payloads are never None (a job's encoded result is always a JSON
        structure), so None unambiguously means miss.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry[0]

    def put(self, key: str, encoded: Any) -> None:
        """Insert/refresh ``key``; evicts LRU entries to stay in bounds.

        A payload larger than ``max_bytes`` on its own is simply not
        cached (the disk tier still has it).
        """
        size = len(json.dumps(encoded, separators=(",", ":"),
                              sort_keys=True, default=str))
        if size > self.max_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._entries[key] = (encoded, size)
        self._bytes += size
        while (len(self._entries) > self.max_entries
               or self._bytes > self.max_bytes):
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self._bytes -= evicted_size
            self.stats.evictions += 1

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        n = len(self._entries)
        self._entries.clear()
        self._bytes = 0
        return n
