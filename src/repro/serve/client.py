"""Clients for the simulation service: asyncio and blocking.

Both speak the NDJSON protocol of :mod:`repro.serve.protocol` and encode
arguments with the sweep codec, so a submitted request canonicalizes to the
same content key as the equivalent local :class:`repro.harness.SweepTask` —
results are byte-identical to one-shot runs, and the service can dedup and
cache across clients.

:class:`AsyncServeClient` multiplexes any number of concurrent ``submit``
calls over one connection (requests are tagged, the response stream
interleaves).  :class:`ServeClient` is the simple blocking flavour used by
``repro submit`` and short scripts: one request at a time.

Failure surfacing: a failed job raises :class:`JobFailed` whose message
*includes the original worker-side traceback*, so remote failures read like
local ones.  Admission-control refusals raise :class:`Shed` — catch it and
back off.

Connection-failure semantics (``retries`` on :meth:`AsyncServeClient.open`
and :meth:`AsyncServeClient.submit`) distinguish two cases that earlier
drafts lumped together under ``OSError``:

* **Refused / dropped before any response** — the server never observed
  the request (connect refused, or the connection died before a single
  event arrived for it).  Retrying with backoff is safe and transparent.
* **Reset mid-response** — the server *accepted* the submit: a stream
  subscription exists server-side and the job may be running.  Blindly
  resubmitting would open a second subscription (and re-enter admission
  control) for work already in flight, so the client raises
  :class:`ServerClosed` instead and lets the caller decide — a resubmit
  is cheap (content-keyed dedup/cache absorb it) but must be deliberate.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
from typing import Any, Callable, Optional

from repro.harness.parallel import decode_value, encode_value
from repro.serve import protocol as P
from repro.serve.protocol import RemoteError


class ServeError(Exception):
    """Base class for client-visible service errors."""


class JobFailed(ServeError):
    """The job raised in the worker; the original traceback is attached."""

    def __init__(self, error: RemoteError, state: str = "failed") -> None:
        msg = f"{error.type}: {error.message}"
        if error.traceback:
            msg += "\n--- worker traceback ---\n" + error.traceback.rstrip()
        super().__init__(msg)
        self.error = error
        self.state = state


class Shed(ServeError):
    """Admission control refused the request; back off and resubmit."""

    def __init__(self, reason: str, depth: int = -1) -> None:
        super().__init__(f"request shed: {reason}")
        self.reason = reason
        self.depth = depth


class ServerClosed(ServeError):
    """The connection dropped before the request finished."""


def _encode_call(args: tuple, kwargs: dict) -> tuple[Any, Any]:
    return encode_value(tuple(args)), encode_value(dict(kwargs))


def _terminal_to_result(event: dict) -> Any:
    """Map a terminal event to a decoded result or a raised error."""
    kind = event.get("event")
    if kind == P.EV_DONE:
        return decode_value(event.get("result"))
    if kind == P.EV_FAILED:
        raise JobFailed(RemoteError.from_dict(event.get("error") or {}),
                        state=event.get("state", "failed"))
    if kind == P.EV_SHED:
        raise Shed(event.get("reason", "unknown"),
                   depth=event.get("depth", -1))
    if kind == P.EV_ERROR:
        raise P.ProtocolError(event.get("error", "unknown protocol error"))
    raise P.ProtocolError(f"unexpected terminal event {kind!r}")


class AsyncServeClient:
    """Multiplexing asyncio client; use :meth:`connect` or ``async with``."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = P.DEFAULT_PORT) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: dict[int, asyncio.Queue] = {}
        self._ids = itertools.count(1)
        self._reader_task: Optional[asyncio.Task] = None
        self._wlock = asyncio.Lock()
        self._conn_lock = asyncio.Lock()    # serializes reconnects

    @classmethod
    async def connect(cls, host: str = "127.0.0.1",
                      port: int = P.DEFAULT_PORT,
                      retries: int = 0,
                      backoff_base_s: float = 0.05) -> "AsyncServeClient":
        c = cls(host, port)
        await c.open(retries=retries, backoff_base_s=backoff_base_s)
        return c

    async def open(self, retries: int = 0,
                   backoff_base_s: float = 0.05) -> None:
        """Connect; optionally retry *refused* connections with backoff.

        Only ``ConnectionRefusedError`` is retried — nothing was sent, so
        retrying is always safe (a server still binding its socket).  Any
        other ``OSError`` (unreachable host, reset during the handshake)
        propagates on the first occurrence.
        """
        for attempt in range(1, retries + 2):
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port, limit=P.MAX_LINE_BYTES)
                break
            except ConnectionRefusedError:
                if attempt > retries:
                    raise
                await asyncio.sleep(backoff_base_s * (2 ** (attempt - 1)))
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def __aenter__(self) -> "AsyncServeClient":
        if self._writer is None:
            await self.open()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def close(self) -> None:
        task, self._reader_task = self._reader_task, None
        if task is not None:
            task.cancel()
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
        self._reader = None
        # Wake every waiter so nothing hangs on a dead connection (the
        # demoted reader task no longer broadcasts).
        for q in self._pending.values():
            q.put_nowait({"event": "__closed__"})

    async def _read_loop(self) -> None:
        # Bind the reader at spawn: after a reconnect this task must keep
        # draining *its* connection (or exit), never the successor's.
        reader = self._reader
        me = asyncio.current_task()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                event = P.decode_frame(line)
                q = self._pending.get(event.get("req"))
                if q is not None:
                    q.put_nowait(event)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            # Wake every waiter so nothing hangs on a dead connection —
            # but only while this task is still the active reader.  A
            # demoted task broadcasting would falsely close requests
            # already riding the replacement connection.
            if self._reader_task is me:
                for q in self._pending.values():
                    q.put_nowait({"event": "__closed__"})

    async def _request(self, frame: dict) -> asyncio.Queue:
        # Fail fast on a connection already known dead: the read loop's
        # __closed__ broadcast has already happened, so a queue registered
        # now would never be woken.
        if (self._writer is None or self._writer.is_closing()
                or self._reader_task is None or self._reader_task.done()):
            raise ConnectionResetError("connection is closed")
        req = next(self._ids)
        frame["req"] = req
        q: asyncio.Queue = asyncio.Queue()
        self._pending[req] = q
        async with self._wlock:
            self._writer.write(P.encode_frame(frame))
            await self._writer.drain()
        return q

    async def _one_shot(self, frame: dict) -> dict:
        q = await self._request(frame)
        try:
            event = await q.get()
            if event.get("event") == "__closed__":
                raise ServerClosed("connection closed mid-request")
            return event
        finally:
            self._pending.pop(frame["req"], None)

    # --------------------------------------------------------------- API
    async def submit(
        self,
        fn: str,
        *args: Any,
        quiet: bool = True,
        timeout_s: Optional[float] = None,
        on_event: Optional[Callable[[dict], None]] = None,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        **kwargs: Any,
    ) -> Any:
        """Run operation ``fn`` remotely; returns the decoded result.

        Raises :class:`JobFailed` (original worker traceback attached),
        :class:`Shed` (admission control), or :class:`ServerClosed`.
        ``on_event`` observes every event (accepted/state/terminal).

        With ``retries > 0`` connection failures are retried with
        exponential backoff — but only while the failure is provably
        *pre-acceptance* (connect refused, or the connection dropped
        before any event arrived for this request): the server never saw
        the submit, so resubmitting is safe.  Once any event has been
        received, a dropped connection raises :class:`ServerClosed` —
        the submit stream is a live server-side subscription, and
        resubmitting it blindly is not idempotent (see module docstring).
        """
        enc_args, enc_kwargs = _encode_call(args, kwargs)
        for attempt in range(1, retries + 2):
            frame = P.submit_frame(0, fn, enc_args, enc_kwargs, quiet=quiet,
                                   timeout_s=timeout_s)
            try:
                q = await self._request_reconnecting(frame)
            except ConnectionRefusedError:
                if attempt > retries:
                    raise
                await asyncio.sleep(backoff_base_s * (2 ** (attempt - 1)))
                continue
            received = False
            try:
                while True:
                    event = await q.get()
                    if event.get("event") == "__closed__":
                        if received or attempt > retries:
                            raise ServerClosed(
                                "connection closed mid-job"
                                if received else
                                "connection closed before the submit "
                                "was acknowledged; retries exhausted")
                        break   # pre-acceptance drop: safe to resubmit
                    received = True
                    if on_event is not None:
                        on_event(event)
                    if event.get("event") in P.TERMINAL_EVENTS:
                        return _terminal_to_result(event)
            finally:
                self._pending.pop(frame["req"], None)
            await asyncio.sleep(backoff_base_s * (2 ** (attempt - 1)))
        raise ServerClosed("submit retries exhausted")  # pragma: no cover

    async def _request_reconnecting(self, frame: dict) -> asyncio.Queue:
        """:meth:`_request`, reopening a dead connection first.

        A send that fails with a reset/broken pipe is mapped to
        ``ConnectionRefusedError`` — the request produced no response, so
        callers treat it exactly like a refused connect (retryable).
        """
        # Concurrent submits multiplex one client; the lock makes the
        # dead-check + reopen atomic so racing requests share a single
        # replacement connection instead of opening one each.
        async with self._conn_lock:
            if (self._writer is None or self._writer.is_closing()
                    or self._reader_task is None
                    or self._reader_task.done()):
                await self.close()
                await self.open()
        try:
            return await self._request(frame)
        except (ConnectionResetError, BrokenPipeError) as exc:
            self._pending.pop(frame.get("req"), None)
            await self.close()
            raise ConnectionRefusedError(str(exc)) from exc

    async def ping(self) -> dict:
        return await self._one_shot({"op": P.OP_PING})

    async def status(self) -> dict:
        return await self._one_shot({"op": P.OP_STATUS})

    async def jobs(self) -> list[dict]:
        return (await self._one_shot({"op": P.OP_JOBS}))["jobs"]

    async def drain(self) -> dict:
        return await self._one_shot({"op": P.OP_DRAIN})


class ServeClient:
    """Blocking client: one request at a time over one connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = P.DEFAULT_PORT,
                 connect_timeout_s: float = 10.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout_s)
        self._sock.settimeout(None)
        self._rfile = self._sock.makefile("rb")
        self._ids = itertools.count(1)

    def close(self) -> None:
        try:
            self._rfile.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _send(self, frame: dict) -> int:
        req = next(self._ids)
        frame["req"] = req
        self._sock.sendall(P.encode_frame(frame))
        return req

    def _events(self, req: int):
        while True:
            line = self._rfile.readline()
            if not line:
                raise ServerClosed("connection closed mid-request")
            event = P.decode_frame(line)
            if event.get("req") == req:
                yield event

    def submit(
        self,
        fn: str,
        *args: Any,
        quiet: bool = True,
        timeout_s: Optional[float] = None,
        on_event: Optional[Callable[[dict], None]] = None,
        **kwargs: Any,
    ) -> Any:
        """Blocking :meth:`AsyncServeClient.submit` (same semantics)."""
        enc_args, enc_kwargs = _encode_call(args, kwargs)
        req = self._send(P.submit_frame(0, fn, enc_args, enc_kwargs,
                                        quiet=quiet, timeout_s=timeout_s))
        for event in self._events(req):
            if on_event is not None:
                on_event(event)
            if event.get("event") in P.TERMINAL_EVENTS:
                return _terminal_to_result(event)
        raise ServerClosed("event stream ended early")  # pragma: no cover

    def submit_json(self, fn: str, params_json: str, **kw: Any) -> Any:
        """Submit with a JSON string of keyword parameters (CLI path)."""
        params = json.loads(params_json) if params_json else {}
        if not isinstance(params, dict):
            raise ValueError("--params must be a JSON object")
        return self.submit(fn, **params, **kw)

    def _one_shot(self, op: str) -> dict:
        req = self._send({"op": op})
        return next(self._events(req))

    def ping(self) -> dict:
        return self._one_shot(P.OP_PING)

    def status(self) -> dict:
        return self._one_shot(P.OP_STATUS)

    def jobs(self) -> list[dict]:
        return self._one_shot(P.OP_JOBS)["jobs"]

    def drain(self) -> dict:
        return self._one_shot(P.OP_DRAIN)
