"""Photonic device census and physical floorplan helpers.

Timing only needs distances (propagation) and bandwidth (serialization); the
device *counts* feed the static-power model, and the per-device *losses*
(:class:`repro.config.PhotonicDeviceConfig`) feed the laser-power budget in
:mod:`repro.onoc.loss`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import OnocConfig


@dataclass(frozen=True)
class RingCensus:
    """Microring counts for one network instance (static-power input)."""

    modulator_rings: int
    detector_rings: int
    switch_rings: int

    @property
    def total(self) -> int:
        return self.modulator_rings + self.detector_rings + self.switch_rings


def crossbar_ring_census(num_nodes: int, num_wavelengths: int) -> RingCensus:
    """MWSR crossbar: every node can write every other node's home channel
    (a modulator bank per (writer, channel) pair) and reads its own channel
    (one detector bank)."""
    if num_nodes < 2 or num_wavelengths < 1:
        raise ValueError("need >= 2 nodes and >= 1 wavelength")
    return RingCensus(
        modulator_rings=num_nodes * (num_nodes - 1) * num_wavelengths,
        detector_rings=num_nodes * num_wavelengths,
        switch_rings=0,
    )


def mesh_ring_census(
    num_nodes: int, num_wavelengths: int, rings_per_switch_point: int = 2
) -> RingCensus:
    """Circuit-switched mesh: each router has a photonic switch (ring pairs
    per wavelength at each of the 4 crossing points) plus one modulator and
    one detector bank per node for injection/ejection."""
    if num_nodes < 2 or num_wavelengths < 1:
        raise ValueError("need >= 2 nodes and >= 1 wavelength")
    if rings_per_switch_point < 1:
        raise ValueError("rings_per_switch_point must be >= 1")
    return RingCensus(
        modulator_rings=num_nodes * num_wavelengths,
        detector_rings=num_nodes * num_wavelengths,
        switch_rings=num_nodes * 4 * rings_per_switch_point * num_wavelengths,
    )


class SerpentineLayout:
    """Physical positions of nodes along a closed serpentine waveguide.

    The data waveguide bundle snakes across the die visiting every node once
    and closes back on itself (Corona's layout).  Nodes are evenly spaced;
    the total length is the serpentine path across a ``side x side`` tile
    grid on a ``chip_width_cm x chip_height_cm`` die, plus the return run.
    """

    def __init__(self, cfg: OnocConfig) -> None:
        self.num_nodes = cfg.num_nodes
        # Tile the die into a near-square grid for spacing purposes.
        side = max(1, int(round(cfg.num_nodes ** 0.5)))
        rows = (cfg.num_nodes + side - 1) // side
        # Serpentine: one full chip width per row, one chip height of column
        # runs, plus the return segment closing the loop.
        self.total_length_cm = (
            rows * cfg.chip_width_cm + cfg.chip_height_cm + cfg.chip_width_cm
        )
        self.spacing_cm = self.total_length_cm / cfg.num_nodes

    def position_cm(self, node: int) -> float:
        """Arc-length position of ``node`` along the waveguide."""
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
        return node * self.spacing_cm

    def distance_cm(self, src: int, dst: int) -> float:
        """Propagation distance from src to dst in the fixed light direction."""
        d = self.position_cm(dst) - self.position_cm(src)
        if d <= 0:
            d += self.total_length_cm
        return d

    def ring_hops(self, src: int, dst: int) -> int:
        """Node count passed travelling src -> dst in the token direction."""
        return (dst - src) % self.num_nodes or self.num_nodes


def mesh_link_length_cm(cfg: OnocConfig) -> float:
    """Waveguide length of one hop in the circuit-switched mesh floorplan."""
    side = cfg.mesh_side
    if side <= 1:
        return max(cfg.chip_width_cm, cfg.chip_height_cm)
    return max(cfg.chip_width_cm, cfg.chip_height_cm) / (side - 1)
