"""Factory for optical networks."""

from __future__ import annotations

from typing import Union

from repro.config import (
    ONOC_AWGR,
    ONOC_CIRCUIT_MESH,
    ONOC_CROSSBAR,
    ONOC_SWMR,
    OnocConfig,
)
from repro.engine import Simulator
from repro.onoc.awgr import OpticalAwgr
from repro.onoc.circuit import CircuitSwitchedMesh
from repro.onoc.crossbar import OpticalCrossbar
from repro.onoc.swmr import OpticalSwmrCrossbar

OpticalNetwork = Union[OpticalCrossbar, CircuitSwitchedMesh,
                       OpticalSwmrCrossbar, OpticalAwgr]


def build_optical_network(
    sim: Simulator,
    cfg: OnocConfig,
    keep_per_message_latency: bool = False,
) -> OpticalNetwork:
    """Instantiate the optical network selected by ``cfg.topology``."""
    if cfg.topology == ONOC_CROSSBAR:
        return OpticalCrossbar(sim, cfg, keep_per_message_latency)
    if cfg.topology == ONOC_CIRCUIT_MESH:
        return CircuitSwitchedMesh(sim, cfg, keep_per_message_latency)
    if cfg.topology == ONOC_SWMR:
        return OpticalSwmrCrossbar(sim, cfg, keep_per_message_latency)
    if cfg.topology == ONOC_AWGR:
        return OpticalAwgr(sim, cfg, keep_per_message_latency)
    raise ValueError(f"unknown optical topology {cfg.topology!r}")
