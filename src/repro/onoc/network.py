"""Factory for optical networks."""

from __future__ import annotations

from typing import Union

from repro.config import (
    ONOC_AWGR,
    ONOC_CIRCUIT_MESH,
    ONOC_CROSSBAR,
    ONOC_SWMR,
    OnocConfig,
)
from repro.engine import Simulator
from repro.onoc.awgr import OpticalAwgr
from repro.onoc.circuit import CircuitSwitchedMesh
from repro.onoc.crossbar import OpticalCrossbar
from repro.onoc.swmr import OpticalSwmrCrossbar

OpticalNetwork = Union[OpticalCrossbar, CircuitSwitchedMesh,
                       OpticalSwmrCrossbar, OpticalAwgr]

_TOPOLOGY_CLASSES = {
    ONOC_CROSSBAR: OpticalCrossbar,
    ONOC_CIRCUIT_MESH: CircuitSwitchedMesh,
    ONOC_SWMR: OpticalSwmrCrossbar,
    ONOC_AWGR: OpticalAwgr,
}


def build_optical_network(
    sim: Simulator,
    cfg: OnocConfig,
    keep_per_message_latency: bool = False,
) -> OpticalNetwork:
    """Instantiate the optical network selected by ``cfg.topology``."""
    cls = _TOPOLOGY_CLASSES.get(cfg.topology)
    if cls is None:
        raise ValueError(f"unknown optical topology {cfg.topology!r}")
    return cls(sim, cfg, keep_per_message_latency)


def topology_in_order_channels(topology: str) -> bool:
    """Whether the named optical topology guarantees per-(src, dst) FIFO
    delivery (its class-level ``in_order_channels`` capability flag)."""
    cls = _TOPOLOGY_CLASSES.get(topology)
    if cls is None:
        raise ValueError(f"unknown optical topology {topology!r}")
    return cls.in_order_channels
