"""Path-adaptive opto-electronic hybrid NoC (extension).

Implements the research direction the same authors published the year after
this paper ("A Path-Adaptive Opto-electronic Hybrid NoC for Chip
Multi-processor", ISPA 2013): both an electrical mesh layer and an optical
layer span the whole chip, and each message picks a layer by the distance to
its destination — short-haul traffic stays on the cheap electrical mesh,
long-haul traffic takes the distance-insensitive optical medium.

The hybrid is itself a :class:`repro.net.NetworkAdapter`, so workloads and
traces run on it unchanged; its statistics are the union of the two layers
plus the routing-decision counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.config import NocConfig, OnocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.noc import ElectricalNetwork
from repro.noc.topology import Topology
from repro.onoc.network import build_optical_network
from repro.stats import LatencyRecorder, NetworkStats


@dataclass(frozen=True)
class HybridConfig:
    """Layer configs plus the path-adaptive threshold.

    Messages whose minimal electrical hop count is >= ``optical_threshold``
    ride the optical layer.  Threshold 0 sends everything optical; a
    threshold above the network diameter sends everything electrical.
    """

    noc: NocConfig
    onoc: OnocConfig
    optical_threshold: int = 3

    def __post_init__(self) -> None:
        if self.noc.num_nodes != self.onoc.num_nodes:
            raise ValueError(
                f"layer size mismatch: electrical {self.noc.num_nodes} vs "
                f"optical {self.onoc.num_nodes}"
            )
        if self.optical_threshold < 0:
            raise ValueError(
                f"optical_threshold must be >= 0, got {self.optical_threshold}"
            )


class HybridNetwork:
    """Distance-adaptive two-layer interconnect."""

    #: Messages on one (src, dst) pair always take the same layer (routing
    #: is by hop distance), but the electrical layer itself reorders, so
    #: the hybrid cannot promise in-order channels.
    in_order_channels = False

    def __init__(
        self,
        sim: Simulator,
        cfg: HybridConfig,
        keep_per_message_latency: bool = False,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.electrical = ElectricalNetwork(sim, cfg.noc)
        self.optical = build_optical_network(sim, cfg.onoc)
        self.topo = Topology(cfg.noc)
        self.stats = NetworkStats(
            latency=LatencyRecorder(keep_per_message=keep_per_message_latency)
        )
        self._delivery_handler: Optional[Callable[[Message], None]] = None
        self.sent_electrical = 0
        self.sent_optical = 0
        # Layer delivery funnels into the hybrid's own accounting.
        self.electrical.set_delivery_handler(self._on_layer_delivery)
        self.optical.set_delivery_handler(self._on_layer_delivery)

    # ------------------------------------------------------ adapter API
    @property
    def num_nodes(self) -> int:
        return self.cfg.noc.num_nodes

    def send(self, msg: Message) -> None:
        n = self.num_nodes
        if not (0 <= msg.src < n and 0 <= msg.dst < n):
            raise ValueError(f"message endpoints out of range: {msg}")
        if msg.src == msg.dst:
            raise ValueError(f"self-send not routed through the network: {msg}")
        self.stats.messages_sent += 1
        if self.route_optical(msg.src, msg.dst):
            self.sent_optical += 1
            self.optical.send(msg)
        else:
            self.sent_electrical += 1
            self.electrical.send(msg)

    def set_delivery_handler(self, fn: Callable[[Message], None]) -> None:
        self._delivery_handler = fn

    # ----------------------------------------------------------- routing
    def route_optical(self, src: int, dst: int) -> bool:
        """The path-adaptive decision: optical iff the electrical route is
        at least ``optical_threshold`` hops."""
        return self.topo.min_hops(src, dst) >= self.cfg.optical_threshold

    # ---------------------------------------------------------- delivery
    def _on_layer_delivery(self, msg: Message) -> None:
        st = self.stats
        st.messages_delivered += 1
        st.bytes_delivered += msg.size_bytes
        st.flits_delivered += self.cfg.noc.flits_for_bytes(msg.size_bytes)
        st.latency.record(msg.id, msg.latency)
        st.hop_count.add(self.topo.min_hops(msg.src, msg.dst))
        # Per-message callbacks already fired inside the layer; only the
        # hybrid-level global handler remains.
        if self._delivery_handler is not None:
            self._delivery_handler(msg)

    # ------------------------------------------------------------ queries
    def quiescent(self) -> bool:
        return self.electrical.quiescent() and self.optical.quiescent()

    @property
    def optical_fraction(self) -> float:
        """Fraction of sent messages that took the optical layer."""
        total = self.sent_electrical + self.sent_optical
        return self.sent_optical / total if total else 0.0
