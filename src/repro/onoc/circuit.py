"""Circuit-switched optical mesh with an electrical control plane.

A message triggers a *path setup*: a control packet walks the XY route on a
narrow electrical network, reserving the directed optical link segment of
each hop (hold-and-wait, FIFO per segment).  XY-ordered acquisition of
directed links is deadlock-free by the same channel-dependency argument as
dimension-ordered wormhole routing.  When the walker reaches the destination
an ack returns over the control plane, the payload is streamed end-to-end
optically (E/O, serialization, propagation over the whole path, O/E), and the
segments are torn down after the tail passes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.config import MESH, NocConfig, OnocConfig, ROUTING_XY
from repro.engine import Simulator
from repro.net import Message
from repro.obs.probes import net_probe
from repro.noc.routing import route_port
from repro.noc.topology import Topology
from repro.onoc.devices import mesh_link_length_cm
from repro.stats import LatencyRecorder, NetworkStats

FLIT_BYTES_EQUIV = 16


class _Segment:
    """One directed optical link segment with a FIFO wait queue."""

    __slots__ = ("holder", "waiters")

    def __init__(self) -> None:
        self.holder: Optional[int] = None           # circuit (walker) id
        self.waiters: deque["_SetupWalker"] = deque()


class _SetupWalker:
    """State of one in-flight path setup."""

    __slots__ = ("cid", "msg", "path", "idx", "held")

    def __init__(self, cid: int, msg: Message, path: list[tuple[int, int]]) -> None:
        self.cid = cid
        self.msg = msg
        self.path = path          # [(node, out_port), ...] along the XY route
        self.idx = 0              # next hop to reserve
        self.held: list[tuple[int, int]] = []


class CircuitSwitchedMesh:
    """Photonic circuit-switched mesh implementing the NetworkAdapter API."""

    #: Same-pair circuits can reorder: a teardown wakes one segment waiter,
    #: and if that waiter loses the same-cycle re-acquisition race to a
    #: third circuit it re-queues at the *back* of the segment FIFO — behind
    #: a same-pair circuit that arrived after it.
    in_order_channels = False

    def __init__(
        self,
        sim: Simulator,
        cfg: OnocConfig,
        keep_per_message_latency: bool = False,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        side = cfg.mesh_side
        # Reuse the electrical topology/routing machinery for the control
        # plane's XY walk; only wiring and port math are borrowed.
        self._ctl_cfg = NocConfig(topology=MESH, width=side, height=side,
                                  routing=ROUTING_XY)
        self.topo = Topology(self._ctl_cfg)
        self.segments: dict[tuple[int, int], _Segment] = {}
        self.link_length_cm = mesh_link_length_cm(cfg)
        self.stats = NetworkStats(
            latency=LatencyRecorder(keep_per_message=keep_per_message_latency)
        )
        self._delivery_handler: Optional[Callable[[Message], None]] = None
        # None unless repro.obs instrumentation was enabled at build time.
        self._probe = net_probe("circuit_mesh")
        # Degradation overlay (repro.resilience); attached by replay_trace
        # when a fault timeseries is configured, None = pristine fabric.
        self.degrade = None
        self._next_cid = 0
        # Power-model counters.
        self.bits_transmitted = 0
        self.setup_hops_total = 0
        self.circuits_completed = 0

    # ------------------------------------------------------ adapter API
    @property
    def num_nodes(self) -> int:
        return self.cfg.num_nodes

    def send(self, msg: Message) -> None:
        n = self.cfg.num_nodes
        if not (0 <= msg.src < n and 0 <= msg.dst < n):
            raise ValueError(f"message endpoints out of range: {msg}")
        if msg.src == msg.dst:
            raise ValueError(f"self-send not routed through the network: {msg}")
        msg.inject_time = self.sim.now
        self.stats.messages_sent += 1
        if self._probe is not None:
            self._probe.on_inject(self.sim.now, msg)
        walker = _SetupWalker(self._next_cid, msg, self._xy_path(msg.src, msg.dst))
        self._next_cid += 1
        # First control-plane hop: the setup flit leaves the source NI.
        self.sim.schedule(
            self.sim.now + self.cfg.setup_router_latency,
            self._advance,
            (walker,),
        )

    def set_delivery_handler(self, fn: Callable[[Message], None]) -> None:
        self._delivery_handler = fn

    # ----------------------------------------------------------- routing
    def _xy_path(self, src: int, dst: int) -> list[tuple[int, int]]:
        """XY route as a list of (node, out_port) hops."""
        path: list[tuple[int, int]] = []
        cur = src
        while cur != dst:
            port = route_port(self.topo, ROUTING_XY, cur, dst)
            path.append((cur, port))
            nb = self.topo.neighbor(cur, port)
            assert nb is not None, "XY routed off the mesh"
            cur = nb[0]
        return path

    def _segment(self, key: tuple[int, int]) -> _Segment:
        seg = self.segments.get(key)
        if seg is None:
            seg = _Segment()
            self.segments[key] = seg
        return seg

    # -------------------------------------------------------- setup walk
    def _advance(self, walker: _SetupWalker) -> None:
        """Try to reserve the next segment; block in its FIFO if held."""
        if walker.idx == len(walker.path):
            self._path_complete(walker)
            return
        key = walker.path[walker.idx]
        seg = self._segment(key)
        if seg.holder is None:
            seg.holder = walker.cid
            walker.held.append(key)
            walker.idx += 1
            self.setup_hops_total += 1
            self.sim.schedule(
                self.sim.now
                + self.cfg.setup_link_latency
                + self.cfg.setup_router_latency,
                self._advance,
                (walker,),
            )
        else:
            seg.waiters.append(walker)

    def _path_complete(self, walker: _SetupWalker) -> None:
        """Destination reached: ack back, stream payload, schedule teardown."""
        msg = walker.msg
        hops = len(walker.path)
        now = self.sim.now
        self.stats.queueing_delay.add(now - msg.inject_time)  # setup latency
        ack = hops * self.cfg.setup_link_latency + 1
        ser = self.cfg.serialization_cycles(msg.size_bytes)
        degrade_extra = 0
        if self.degrade is not None:
            occ_extra, lat_extra = self.degrade.adjust(
                msg.inject_time, msg.src, msg.dst, ser)
            # Both terms delay only the payload *delivery*; the circuit is
            # torn down on the stock schedule.  Extending the segment hold
            # window would amplify precisely the contention the generational
            # circuit model documents as unmodelled, breaking the engine
            # equivalence bound — this backend's degradation is therefore
            # latency-only by contract (see docs/RESILIENCE.md).
            degrade_extra = occ_extra + lat_extra
        prop = self.cfg.propagation_cycles(hops * self.link_length_cm)
        data_end = now + ack + 2 * self.cfg.conversion_cycles + ser + prop
        self.sim.schedule(data_end + degrade_extra, self._deliver, (msg, hops))
        self.sim.schedule(
            data_end + self.cfg.teardown_latency, self._teardown, (walker,)
        )

    def _teardown(self, walker: _SetupWalker) -> None:
        """Release all held segments; wake the head waiter of each FIFO."""
        self.circuits_completed += 1
        for key in walker.held:
            seg = self.segments[key]
            assert seg.holder == walker.cid, "teardown of a stolen segment"
            seg.holder = None
            if seg.waiters:
                nxt = seg.waiters.popleft()
                # The waiter re-attempts this same segment now that it's free.
                self.sim.schedule(self.sim.now, self._advance, (nxt,))
        walker.held.clear()

    # ---------------------------------------------------------- delivery
    def _deliver(self, msg: Message, hops: int) -> None:
        msg.deliver_time = self.sim.now
        st = self.stats
        st.messages_delivered += 1
        st.bytes_delivered += msg.size_bytes
        st.flits_delivered += max(1, -(-msg.size_bytes // FLIT_BYTES_EQUIV))
        st.latency.record(msg.id, msg.latency)
        st.hop_count.add(hops)
        self.bits_transmitted += msg.size_bytes * 8
        if self._probe is not None:
            self._probe.on_deliver(self.sim.now, msg)
        if msg.on_delivery is not None:
            msg.on_delivery(msg)
        if self._delivery_handler is not None:
            self._delivery_handler(msg)

    # ------------------------------------------------------------ queries
    def quiescent(self) -> bool:
        """True when no circuit is held or pending."""
        return self.stats.in_flight() == 0 and all(
            seg.holder is None and not seg.waiters
            for seg in self.segments.values()
        )
