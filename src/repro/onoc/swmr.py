"""Firefly-style SWMR (single-writer multiple-reader) optical crossbar.

The dual of the Corona MWSR design: every *source* owns a home WDM channel
that it alone modulates — so there is **no write arbitration at all** — and
every other node holds detector banks on that channel.  The costs move
elsewhere:

* a writer can address only one destination at a time (its channel is a
  single resource), so *fan-out bursts from one source* serialize, the
  mirror image of MWSR's hotspot-destination serialization;
* all N-1 potential readers must either burn N-1 full detector banks per
  channel (Firefly's "reservation-assisted" variants exist precisely to cut
  this) — reflected here in the ring census and hence tuning power.

Event-driven at message granularity like the MWSR model: a granted
transmission is a contention-free circuit.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.config import OnocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.obs.probes import net_probe
from repro.onoc.devices import RingCensus, SerpentineLayout
from repro.stats import LatencyRecorder, NetworkStats

FLIT_BYTES_EQUIV = 16


def swmr_ring_census(num_nodes: int, num_wavelengths: int) -> RingCensus:
    """SWMR: one modulator bank per source channel, a detector bank per
    (channel, reader) pair."""
    if num_nodes < 2 or num_wavelengths < 1:
        raise ValueError("need >= 2 nodes and >= 1 wavelength")
    return RingCensus(
        modulator_rings=num_nodes * num_wavelengths,
        detector_rings=num_nodes * (num_nodes - 1) * num_wavelengths,
        switch_rings=0,
    )


class _SourceChannel:
    """Transmission state of one source's home channel."""

    __slots__ = ("src", "queue", "busy")

    def __init__(self, src: int) -> None:
        self.src = src
        self.queue: deque[Message] = deque()
        self.busy = False


class OpticalSwmrCrossbar:
    """SWMR WDM crossbar implementing :class:`repro.net.NetworkAdapter`."""

    #: Each source's home channel is a single FIFO transmitter, and
    #: propagation per (src, dst) pair is fixed, so same-pair messages
    #: deliver in injection order.
    in_order_channels = True

    def __init__(
        self,
        sim: Simulator,
        cfg: OnocConfig,
        keep_per_message_latency: bool = False,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.layout = SerpentineLayout(cfg)
        self.channels = [_SourceChannel(s) for s in range(cfg.num_nodes)]
        self.stats = NetworkStats(
            latency=LatencyRecorder(keep_per_message=keep_per_message_latency)
        )
        self._delivery_handler: Optional[Callable[[Message], None]] = None
        # None unless repro.obs instrumentation was enabled at build time.
        self._probe = net_probe("swmr_crossbar")
        # Degradation overlay (repro.resilience); attached by replay_trace
        # when a fault timeseries is configured, None = pristine fabric.
        self.degrade = None
        self.bits_transmitted = 0

    # ------------------------------------------------------ adapter API
    @property
    def num_nodes(self) -> int:
        return self.cfg.num_nodes

    def send(self, msg: Message) -> None:
        n = self.cfg.num_nodes
        if not (0 <= msg.src < n and 0 <= msg.dst < n):
            raise ValueError(f"message endpoints out of range: {msg}")
        if msg.src == msg.dst:
            raise ValueError(f"self-send not routed through the network: {msg}")
        msg.inject_time = self.sim.now
        self.stats.messages_sent += 1
        if self._probe is not None:
            self._probe.on_inject(self.sim.now, msg)
        ch = self.channels[msg.src]
        ch.queue.append(msg)
        if not ch.busy:
            self._transmit_next(ch)

    def set_delivery_handler(self, fn: Callable[[Message], None]) -> None:
        self._delivery_handler = fn

    # ------------------------------------------------------ transmission
    def _transmit_next(self, ch: _SourceChannel) -> None:
        """Start the next queued transmission on this source channel.

        No arbitration: the writer owns the channel; consecutive messages
        from one source serialize back to back.
        """
        if not ch.queue:
            ch.busy = False
            return
        ch.busy = True
        msg = ch.queue.popleft()
        now = self.sim.now
        ser = self.cfg.serialization_cycles(msg.size_bytes)
        lat_extra = 0
        if self.degrade is not None:
            occ_extra, lat_extra = self.degrade.adjust(
                msg.inject_time, msg.src, msg.dst, ser)
            ser += occ_extra            # degraded channel held longer
        prop = self.cfg.propagation_cycles(
            self.layout.distance_cm(msg.src, msg.dst))
        release = now + ser
        deliver = now + ser + prop + 2 * self.cfg.conversion_cycles + lat_extra
        self.stats.queueing_delay.add(now - msg.inject_time)
        self.sim.schedule(deliver, self._deliver, (msg,))
        self.sim.schedule(release, self._transmit_next, (ch,))

    def _deliver(self, msg: Message) -> None:
        msg.deliver_time = self.sim.now
        st = self.stats
        st.messages_delivered += 1
        st.bytes_delivered += msg.size_bytes
        st.flits_delivered += max(1, -(-msg.size_bytes // FLIT_BYTES_EQUIV))
        st.latency.record(msg.id, msg.latency)
        st.hop_count.add(1)
        self.bits_transmitted += msg.size_bytes * 8
        if self._probe is not None:
            self._probe.on_deliver(self.sim.now, msg)
        if msg.on_delivery is not None:
            msg.on_delivery(msg)
        if self._delivery_handler is not None:
            self._delivery_handler(msg)

    # ------------------------------------------------------------ queries
    def quiescent(self) -> bool:
        return self.stats.in_flight() == 0 and all(
            not ch.busy and not ch.queue for ch in self.channels
        )
