"""Corona-style MWSR optical crossbar with token arbitration.

Every node *reads* one dedicated home WDM channel and may *write* any other
node's channel after acquiring that channel's optical token, which circulates
the serpentine waveguide.  The model is event-driven at message granularity —
no per-cycle simulation is needed because a granted transmission is a
contention-free circuit:

    wait for token (arbitration)  ->  E/O  ->  serialize  ->  propagate  ->  O/E

Per-channel arbitration is a FIFO queue with token-travel gaps: when writer
B is granted after writer A, the token first travels A -> B along the ring
(``ring_hops * token_hop_cycles``).  This captures the first-order behaviour
of token-channel arbitration (single writer at a time per channel, positional
grant latency) without simulating individual wavelengths.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.config import OnocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.obs.probes import net_probe
from repro.onoc.devices import SerpentineLayout
from repro.stats import LatencyRecorder, NetworkStats

# Stats-only flit equivalence so electrical/optical throughputs are
# comparable in the same units.
FLIT_BYTES_EQUIV = 16


class _TokenChannel:
    """Arbitration state of one destination's home channel."""

    __slots__ = ("dst", "queue", "busy", "token_at", "token_free_time")

    def __init__(self, dst: int) -> None:
        self.dst = dst
        self.queue: deque[Message] = deque()
        self.busy = False
        # The token parks at the last writer; it starts at the reader node.
        self.token_at = dst
        self.token_free_time = 0


class OpticalCrossbar:
    """MWSR WDM crossbar implementing :class:`repro.net.NetworkAdapter`."""

    #: Token arbitration grants each destination channel FIFO, and
    #: propagation per (src, dst) pair is fixed, so same-pair messages
    #: deliver in injection order.
    in_order_channels = True

    def __init__(
        self,
        sim: Simulator,
        cfg: OnocConfig,
        keep_per_message_latency: bool = False,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.layout = SerpentineLayout(cfg)
        self.channels = [_TokenChannel(d) for d in range(cfg.num_nodes)]
        self.stats = NetworkStats(
            latency=LatencyRecorder(keep_per_message=keep_per_message_latency)
        )
        self._delivery_handler: Optional[Callable[[Message], None]] = None
        # None unless repro.obs instrumentation was enabled at build time.
        self._probe = net_probe("crossbar")
        # Degradation overlay (repro.resilience); attached by replay_trace
        # when a fault timeseries is configured, None = pristine fabric.
        self.degrade = None
        # Power-model counters.
        self.bits_transmitted = 0
        self.token_travel_cycles = 0

    # ------------------------------------------------------ adapter API
    @property
    def num_nodes(self) -> int:
        return self.cfg.num_nodes

    def send(self, msg: Message) -> None:
        n = self.cfg.num_nodes
        if not (0 <= msg.src < n and 0 <= msg.dst < n):
            raise ValueError(f"message endpoints out of range: {msg}")
        if msg.src == msg.dst:
            raise ValueError(f"self-send not routed through the network: {msg}")
        msg.inject_time = self.sim.now
        self.stats.messages_sent += 1
        if self._probe is not None:
            self._probe.on_inject(self.sim.now, msg)
        ch = self.channels[msg.dst]
        ch.queue.append(msg)
        if not ch.busy:
            self._grant_next(ch)

    def set_delivery_handler(self, fn: Callable[[Message], None]) -> None:
        self._delivery_handler = fn

    # ------------------------------------------------------- arbitration
    def _token_travel(self, ch: _TokenChannel, writer: int) -> int:
        """Token travel time from its parking node to ``writer``.

        The token circulates optically, so travel is waveguide propagation
        over the ring distance plus any configured per-node electrical
        overhead.  Zero when the writer already holds the token.
        """
        hops = (writer - ch.token_at) % self.cfg.num_nodes
        if hops == 0:
            return 0
        distance = hops * self.layout.spacing_cm
        return (self.cfg.propagation_cycles(distance)
                + hops * self.cfg.token_hop_cycles)

    def _grant_next(self, ch: _TokenChannel) -> None:
        """Grant the channel to the next queued writer (FIFO)."""
        if not ch.queue:
            ch.busy = False
            return
        ch.busy = True
        msg = ch.queue.popleft()
        now = self.sim.now
        travel = self._token_travel(ch, msg.src)
        grant = max(now, ch.token_free_time) + travel
        ser = self.cfg.serialization_cycles(msg.size_bytes)
        lat_extra = 0
        if self.degrade is not None:
            occ_extra, lat_extra = self.degrade.adjust(
                msg.inject_time, msg.src, msg.dst, ser)
            ser += occ_extra            # degraded channel held longer
        release = grant + ser
        prop = self.cfg.propagation_cycles(self.layout.distance_cm(msg.src, msg.dst))
        deliver = grant + ser + prop + 2 * self.cfg.conversion_cycles + lat_extra

        ch.token_at = msg.src
        ch.token_free_time = release
        self.token_travel_cycles += travel
        self.stats.queueing_delay.add(grant - msg.inject_time)

        self.sim.schedule(deliver, self._deliver, (msg,))
        self.sim.schedule(release, self._grant_next, (ch,))

    # ---------------------------------------------------------- delivery
    def _deliver(self, msg: Message) -> None:
        msg.deliver_time = self.sim.now
        st = self.stats
        st.messages_delivered += 1
        st.bytes_delivered += msg.size_bytes
        st.flits_delivered += max(1, -(-msg.size_bytes // FLIT_BYTES_EQUIV))
        st.latency.record(msg.id, msg.latency)
        st.hop_count.add(1)  # single optical hop by construction
        self.bits_transmitted += msg.size_bytes * 8
        if self._probe is not None:
            self._probe.on_deliver(self.sim.now, msg)
        if msg.on_delivery is not None:
            msg.on_delivery(msg)
        if self._delivery_handler is not None:
            self._delivery_handler(msg)

    # ------------------------------------------------------------ queries
    def quiescent(self) -> bool:
        """True when no channel is busy or backlogged."""
        return self.stats.in_flight() == 0 and all(
            not ch.busy and not ch.queue for ch in self.channels
        )
