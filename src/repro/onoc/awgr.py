"""Passive wavelength-routed all-to-all (AWGR / λ-router).

A fully passive optical interconnect (Koka et al. style): an arrayed
waveguide grating router gives every (source, destination) pair a dedicated
wavelength subset, so there is **no arbitration anywhere** — the trade is
bandwidth: each of the N-1 point-to-point lanes from a source gets only
``num_wavelengths / (N-1)`` wavelengths, so serialization takes (N-1)× as
long as on a full crossbar channel.  Contention exists only *within* one
(src, dst) lane, where messages serialize FIFO.

Ideal for coherence-style many-small-message traffic; poor for bulk
transfers — the opposite corner of the design space from the MWSR crossbar,
which is what makes it a useful third point for the trace model's
design-space-exploration story.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.config import OnocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.obs.probes import net_probe
from repro.onoc.devices import RingCensus, SerpentineLayout
from repro.stats import LatencyRecorder, NetworkStats

FLIT_BYTES_EQUIV = 16


def awgr_ring_census(num_nodes: int, num_wavelengths: int) -> RingCensus:
    """AWGR: modulator + detector banks per node; the routing fabric itself
    is passive (no switched or arbitration rings)."""
    if num_nodes < 2 or num_wavelengths < 1:
        raise ValueError("need >= 2 nodes and >= 1 wavelength")
    return RingCensus(
        modulator_rings=num_nodes * num_wavelengths,
        detector_rings=num_nodes * num_wavelengths,
        switch_rings=0,
    )


class _Lane:
    """FIFO transmission state of one (src, dst) wavelength lane."""

    __slots__ = ("queue", "busy")

    def __init__(self) -> None:
        self.queue: deque[Message] = deque()
        self.busy = False


class OpticalAwgr:
    """Passive λ-router implementing :class:`repro.net.NetworkAdapter`."""

    #: Each (src, dst) pair owns one FIFO lane and its full λ subset serves
    #: a single message at a time, so same-pair messages deliver in
    #: injection order.
    in_order_channels = True

    def __init__(
        self,
        sim: Simulator,
        cfg: OnocConfig,
        keep_per_message_latency: bool = False,
    ) -> None:
        if cfg.num_wavelengths < cfg.num_nodes - 1:
            raise ValueError(
                f"AWGR needs >= num_nodes-1 wavelengths to give every lane "
                f"at least one λ; got {cfg.num_wavelengths} for "
                f"{cfg.num_nodes} nodes"
            )
        self.sim = sim
        self.cfg = cfg
        self.layout = SerpentineLayout(cfg)
        self.lanes_per_pair = cfg.num_wavelengths // (cfg.num_nodes - 1)
        self._lanes: dict[tuple[int, int], _Lane] = {}
        self.stats = NetworkStats(
            latency=LatencyRecorder(keep_per_message=keep_per_message_latency)
        )
        self._delivery_handler: Optional[Callable[[Message], None]] = None
        # None unless repro.obs instrumentation was enabled at build time.
        self._probe = net_probe("awgr")
        # Degradation overlay (repro.resilience); attached by replay_trace
        # when a fault timeseries is configured, None = pristine fabric.
        self.degrade = None
        self.bits_transmitted = 0

    # ------------------------------------------------------ adapter API
    @property
    def num_nodes(self) -> int:
        return self.cfg.num_nodes

    def lane_serialization_cycles(self, size_bytes: int) -> int:
        """Serialization on one (src, dst) lane: only its λ subset is
        available, so bits / (lanes_per_pair * bitrate)."""
        import math

        bits = size_bytes * 8
        gbps = self.lanes_per_pair * self.cfg.bitrate_gbps
        ns = bits / gbps
        return max(1, math.ceil(ns * self.cfg.clock_ghz))

    def send(self, msg: Message) -> None:
        n = self.cfg.num_nodes
        if not (0 <= msg.src < n and 0 <= msg.dst < n):
            raise ValueError(f"message endpoints out of range: {msg}")
        if msg.src == msg.dst:
            raise ValueError(f"self-send not routed through the network: {msg}")
        msg.inject_time = self.sim.now
        self.stats.messages_sent += 1
        if self._probe is not None:
            self._probe.on_inject(self.sim.now, msg)
        lane = self._lanes.setdefault((msg.src, msg.dst), _Lane())
        lane.queue.append(msg)
        if not lane.busy:
            self._transmit_next(msg.src, msg.dst, lane)

    def set_delivery_handler(self, fn: Callable[[Message], None]) -> None:
        self._delivery_handler = fn

    # ------------------------------------------------------ transmission
    def _transmit_next(self, src: int, dst: int, lane: _Lane) -> None:
        if not lane.queue:
            lane.busy = False
            return
        lane.busy = True
        msg = lane.queue.popleft()
        now = self.sim.now
        ser = self.lane_serialization_cycles(msg.size_bytes)
        lat_extra = 0
        if self.degrade is not None:
            occ_extra, lat_extra = self.degrade.adjust(
                msg.inject_time, src, dst, ser)
            ser += occ_extra            # degraded lane held longer
        prop = self.cfg.propagation_cycles(self.layout.distance_cm(src, dst))
        self.stats.queueing_delay.add(now - msg.inject_time)
        self.sim.schedule(now + ser + prop + 2 * self.cfg.conversion_cycles
                          + lat_extra, self._deliver, (msg,))
        self.sim.schedule(now + ser, self._transmit_next, (src, dst, lane))

    def _deliver(self, msg: Message) -> None:
        msg.deliver_time = self.sim.now
        st = self.stats
        st.messages_delivered += 1
        st.bytes_delivered += msg.size_bytes
        st.flits_delivered += max(1, -(-msg.size_bytes // FLIT_BYTES_EQUIV))
        st.latency.record(msg.id, msg.latency)
        st.hop_count.add(1)
        self.bits_transmitted += msg.size_bytes * 8
        if self._probe is not None:
            self._probe.on_deliver(self.sim.now, msg)
        if msg.on_delivery is not None:
            msg.on_delivery(msg)
        if self._delivery_handler is not None:
            self._delivery_handler(msg)

    # ------------------------------------------------------------ queries
    def quiescent(self) -> bool:
        return self.stats.in_flight() == 0 and all(
            not lane.busy and not lane.queue for lane in self._lanes.values()
        )
