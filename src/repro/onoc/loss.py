"""Insertion-loss budget and laser-power sizing.

The chain for one wavelength from laser to detector:

    coupler -> (waveguide propagation + ring through-passes + bends +
    splitters along the path) -> ring drop at the receiver -> photodetector

The laser must deliver ``sensitivity + worst_case_loss + margin`` dBm per
wavelength at the detector; wall-plug power divides by laser efficiency.
All dB arithmetic is exact; conversions to mW happen only at the edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import OnocConfig, PhotonicDeviceConfig


def db_to_mw(dbm: float) -> float:
    """dBm -> mW."""
    return 10.0 ** (dbm / 10.0)


def mw_to_db(mw: float) -> float:
    """mW -> dBm."""
    if mw <= 0:
        raise ValueError(f"power must be > 0 mW, got {mw}")
    import math

    return 10.0 * math.log10(mw)


@dataclass(frozen=True)
class PathLoss:
    """Loss decomposition for one optical path (all in dB)."""

    waveguide_db: float
    ring_through_db: float
    drop_db: float
    couplers_db: float
    splitters_db: float
    bends_db: float
    detector_db: float

    @property
    def total_db(self) -> float:
        return (
            self.waveguide_db
            + self.ring_through_db
            + self.drop_db
            + self.couplers_db
            + self.splitters_db
            + self.bends_db
            + self.detector_db
        )


class LossBudget:
    """Computes per-path losses and the resulting laser power requirement."""

    def __init__(self, cfg: OnocConfig) -> None:
        self.cfg = cfg
        self.dev: PhotonicDeviceConfig = cfg.devices

    def path_loss(
        self,
        distance_cm: float,
        rings_passed: int,
        splitters: int = 0,
        bends: int = 4,
        couplers: int = 2,
    ) -> PathLoss:
        """Loss of one path given geometry and pass-by device counts."""
        if distance_cm < 0:
            raise ValueError(f"distance must be >= 0, got {distance_cm}")
        if rings_passed < 0 or splitters < 0 or bends < 0 or couplers < 0:
            raise ValueError("device counts must be >= 0")
        d = self.dev
        return PathLoss(
            waveguide_db=distance_cm * d.waveguide_loss_db_cm,
            ring_through_db=rings_passed * d.ring_through_loss_db,
            drop_db=d.ring_drop_loss_db,
            couplers_db=couplers * d.coupler_loss_db,
            splitters_db=splitters * d.splitter_loss_db,
            bends_db=bends * d.bend_loss_db,
            detector_db=d.photodetector_loss_db,
        )

    def required_laser_dbm_per_wavelength(self, worst_loss_db: float) -> float:
        """Per-λ laser output so the worst path still meets sensitivity."""
        if worst_loss_db < 0:
            raise ValueError(f"loss must be >= 0 dB, got {worst_loss_db}")
        return self.dev.detector_sensitivity_dbm + worst_loss_db + self.dev.power_margin_db

    def laser_wallplug_mw(self, worst_loss_db: float, num_wavelengths: int,
                          num_channels: int = 1) -> float:
        """Total electrical laser power for the whole network."""
        if num_wavelengths < 1 or num_channels < 1:
            raise ValueError("need >= 1 wavelength and >= 1 channel")
        per_wl_mw = db_to_mw(self.required_laser_dbm_per_wavelength(worst_loss_db))
        optical_mw = per_wl_mw * num_wavelengths * num_channels
        return optical_mw / self.dev.laser_efficiency

    # ------------------------------------------------- architecture presets
    def crossbar_worst_loss_db(self) -> float:
        """Worst-case MWSR crossbar path: a full loop of the serpentine,
        passing every other node's modulator bank (off-resonance)."""
        from repro.onoc.devices import SerpentineLayout

        layout = SerpentineLayout(self.cfg)
        # Worst writer is one hop downstream of the reader: light traverses
        # nearly the whole loop and passes (num_nodes - 1) ring banks.
        return self.path_loss(
            distance_cm=layout.total_length_cm * (self.cfg.num_nodes - 1) / self.cfg.num_nodes,
            rings_passed=self.cfg.num_nodes - 1,
        ).total_db

    def swmr_worst_loss_db(self) -> float:
        """Worst-case SWMR path: like MWSR, nearly a full serpentine loop,
        but the pass-by rings are *detector* banks of the other readers
        (same through-loss per ring in this model)."""
        from repro.onoc.devices import SerpentineLayout

        layout = SerpentineLayout(self.cfg)
        return self.path_loss(
            distance_cm=layout.total_length_cm * (self.cfg.num_nodes - 1) / self.cfg.num_nodes,
            rings_passed=self.cfg.num_nodes - 1,
        ).total_db

    def awgr_worst_loss_db(self, awgr_insertion_db: float = 3.0) -> float:
        """Worst-case λ-router path: die-diagonal feeder waveguides plus the
        AWGR's insertion loss (~2-4 dB for 2012-era devices)."""
        if awgr_insertion_db < 0:
            raise ValueError(f"awgr_insertion_db must be >= 0, got {awgr_insertion_db}")
        diagonal = (self.cfg.chip_width_cm ** 2 + self.cfg.chip_height_cm ** 2) ** 0.5
        return self.path_loss(
            distance_cm=diagonal,
            rings_passed=0,
        ).total_db + awgr_insertion_db

    def mesh_worst_loss_db(self) -> float:
        """Worst-case circuit-mesh path: full diameter, a switch crossing
        (4 pass-by rings) per intermediate router."""
        from repro.onoc.devices import mesh_link_length_cm

        side = self.cfg.mesh_side
        hops = 2 * (side - 1) if side > 1 else 1
        return self.path_loss(
            distance_cm=hops * mesh_link_length_cm(self.cfg),
            rings_passed=max(0, hops - 1) * 4,
            bends=2 * hops,
        ).total_db
