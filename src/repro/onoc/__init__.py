"""Optical Network-on-Chip data plane.

Two 2012-era ONOC architectures are provided behind the same
:class:`repro.net.NetworkAdapter` interface as the electrical baseline:

* :class:`~repro.onoc.crossbar.OpticalCrossbar` — a Corona-style MWSR
  (multiple-writer single-reader) WDM crossbar on a serpentine waveguide with
  optical token-channel arbitration.
* :class:`~repro.onoc.circuit.CircuitSwitchedMesh` — a circuit-switched
  photonic mesh with an electrical control plane that reserves microring
  switch points hop-by-hop (Phastlane/path-setup style).

The physical layer (insertion-loss budget, laser power, ring census) lives in
:mod:`repro.onoc.devices` and :mod:`repro.onoc.loss`.
"""

from repro.onoc.awgr import OpticalAwgr, awgr_ring_census
from repro.onoc.circuit import CircuitSwitchedMesh
from repro.onoc.crossbar import OpticalCrossbar
from repro.onoc.devices import RingCensus, SerpentineLayout, crossbar_ring_census, mesh_ring_census
from repro.onoc.hybrid import HybridConfig, HybridNetwork
from repro.onoc.loss import LossBudget
from repro.onoc.network import (
    build_optical_network,
    topology_in_order_channels,
)
from repro.onoc.swmr import OpticalSwmrCrossbar, swmr_ring_census

__all__ = [
    "CircuitSwitchedMesh",
    "HybridConfig",
    "HybridNetwork",
    "LossBudget",
    "OpticalAwgr",
    "OpticalCrossbar",
    "OpticalSwmrCrossbar",
    "RingCensus",
    "SerpentineLayout",
    "awgr_ring_census",
    "build_optical_network",
    "crossbar_ring_census",
    "mesh_ring_census",
    "swmr_ring_census",
    "topology_in_order_channels",
]
