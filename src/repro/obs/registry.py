"""Named metric registry: counters, gauges, and distributions.

The registry is the storage layer of :mod:`repro.obs`.  Three metric kinds
cover every probe in the simulator:

* :class:`Counter` — monotonically increasing integer (events fired, flits
  ejected, corrections applied).
* :class:`Gauge` — level with *high-water* semantics: ``set`` records the
  latest value locally, and merging two gauges keeps the maximum, so a
  merged sweep reports the worst case seen by any shard (heap depth,
  backlog, ...).
* :class:`Distribution` — streaming moments over samples, backed by the
  existing :class:`~repro.stats.online.OnlineStats` (latency, per-run wall
  time, correction magnitudes).

Merging is the design center: parallel sweep shards each fill a private
registry, and the parent folds the per-shard *snapshots* back together in
deterministic submission order (see :class:`repro.harness.parallel.SweepRunner`),
so serial and parallel runs of the same sweep produce identical merged
metrics.  Counter/gauge merges and the integer fields of distribution
merges are exact and associative; distribution means use the parallel
Welford formula, which is associative up to floating-point rounding.

Snapshots are plain ``dict``s of JSON primitives — safe to embed in cache
blobs, ship across process boundaries, and diff in tests.
"""

from __future__ import annotations

import math
from typing import Union

from repro.stats.online import OnlineStats

#: Metric-kind tags used in snapshots.
COUNTER = "counter"
GAUGE = "gauge"
DIST = "dist"


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("value",)

    kind = COUNTER

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def snapshot(self) -> dict:
        return {"kind": COUNTER, "value": self.value}

    def merge_snapshot(self, snap: dict) -> None:
        self.value += snap["value"]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.value})"


class Gauge:
    """Level metric; merging keeps the maximum (high-water) value."""

    __slots__ = ("value", "_set")

    kind = GAUGE

    def __init__(self) -> None:
        self.value = 0.0
        self._set = False

    def set(self, v: float) -> None:
        """Record the current level (overwrites the previous local value)."""
        self.value = v
        self._set = True

    def set_max(self, v: float) -> None:
        """Record ``v`` only if it exceeds the current level."""
        if not self._set or v > self.value:
            self.set(v)

    def snapshot(self) -> dict:
        return {"kind": GAUGE, "value": self.value, "set": self._set}

    def merge_snapshot(self, snap: dict) -> None:
        if snap.get("set"):
            self.set_max(snap["value"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.value})"


class Distribution:
    """Streaming sample distribution (count/mean/std/min/max/total)."""

    __slots__ = ("stats",)

    kind = DIST

    def __init__(self) -> None:
        self.stats = OnlineStats()

    def observe(self, x: float) -> None:
        """Accumulate one sample."""
        self.stats.add(x)

    def snapshot(self) -> dict:
        s = self.stats
        return {
            "kind": DIST,
            "count": s.count,
            "mean": s.mean,
            "m2": s._m2,
            "min": s.min if s.count else 0.0,
            "max": s.max if s.count else 0.0,
            "total": s.total,
        }

    def merge_snapshot(self, snap: dict) -> None:
        if not snap["count"]:
            return
        other = OnlineStats()
        other.count = snap["count"]
        other._mean = snap["mean"]
        other._m2 = snap["m2"]
        other.min = snap["min"]
        other.max = snap["max"]
        other.total = snap["total"]
        self.stats.merge(other)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Distribution(n={self.stats.count}, mean={self.stats.mean:.3f})"


Metric = Union[Counter, Gauge, Distribution]

_KINDS = {COUNTER: Counter, GAUGE: Gauge, DIST: Distribution}


class Registry:
    """A flat namespace of named metrics with get-or-create accessors.

    Names are dotted paths (``"net.mesh.injected"``); the :class:`Scope`
    helper prepends a component prefix so call sites stay short.  Asking
    for an existing name with a different kind is a :class:`TypeError` —
    silent kind changes would corrupt merges.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, name: str, cls: type) -> Metric:
        m = self._metrics.get(name)
        if m is None:
            m = cls()
            self._metrics[name] = m
            return m
        if not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as {m.kind}, "
                f"requested {cls.kind}"
            )
        return m

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def distribution(self, name: str) -> Distribution:
        """Get or create the distribution ``name``."""
        return self._get_or_create(name, Distribution)

    def get(self, name: str) -> Metric | None:
        """Look up a metric without creating it."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def clear(self) -> None:
        """Drop every metric."""
        self._metrics.clear()

    # ------------------------------------------------------------- merging
    def snapshot(self) -> dict:
        """Plain-dict snapshot of every metric, keyed by sorted name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a snapshot into this registry (creating metrics as needed)."""
        for name in sorted(snap):
            entry = snap[name]
            cls = _KINDS.get(entry.get("kind"))
            if cls is None:
                raise ValueError(f"unknown metric kind in snapshot: {entry!r}")
            self._get_or_create(name, cls).merge_snapshot(entry)

    def merge(self, other: "Registry") -> None:
        """Fold another registry into this one."""
        self.merge_snapshot(other.snapshot())

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Registry":
        """Reconstruct a registry from a snapshot."""
        reg = cls()
        reg.merge_snapshot(snap)
        return reg

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Registry({len(self._metrics)} metrics)"


class Scope:
    """A registry view that prefixes every metric name with a component id."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: Registry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self._prefix}.{name}")

    def distribution(self, name: str) -> Distribution:
        return self._registry.distribution(f"{self._prefix}.{name}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Scope({self._prefix!r})"


class _NullMetric:
    """No-op stand-in returned by the disabled-path accessors."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def set_max(self, v: float) -> None:
        pass

    def observe(self, x: float) -> None:
        pass


class NullScope:
    """Scope returned while instrumentation is disabled: all no-ops."""

    __slots__ = ()

    def counter(self, name: str) -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return NULL_METRIC

    def distribution(self, name: str) -> _NullMetric:
        return NULL_METRIC


#: Shared singletons for the disabled path.
NULL_METRIC = _NullMetric()
NULL_SCOPE = NullScope()


def format_value(entry: dict) -> str:
    """One-line human rendering of a snapshot entry (used by reports)."""
    kind = entry["kind"]
    if kind == COUNTER:
        return str(entry["value"])
    if kind == GAUGE:
        v = entry["value"]
        return f"{v:g}"
    if kind == DIST:
        n = entry["count"]
        if not n:
            return "n=0"
        var = entry["m2"] / (n - 1) if n > 1 else 0.0
        return (
            f"n={n} mean={entry['mean']:.3f} std={math.sqrt(var):.3f} "
            f"min={entry['min']:g} max={entry['max']:g}"
        )
    return repr(entry)
