"""Metrics rendering and (de)serialisation for the CLI and reports."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.obs.registry import format_value

#: Format tag embedded in metric dump files.
DUMP_FORMAT = "repro-metrics-v1"


def format_metrics(snapshot: dict, title: str = "metrics") -> str:
    """Render a registry snapshot as an aligned two-column text table.

    Metric names are dotted paths; rows are grouped by sorted name so the
    output is deterministic and diff-friendly.
    """
    names = sorted(snapshot)
    if not names:
        return f"== {title} ==\n(no metrics recorded)"
    width = max(len(n) for n in names)
    lines = [f"== {title} =="]
    lines.extend(
        f"{name:<{width}}  {format_value(snapshot[name])}" for name in names
    )
    return "\n".join(lines)


def dump_metrics(path: Union[str, Path], snapshot: dict) -> Path:
    """Write a snapshot as JSON; readable back via :func:`load_metrics`."""
    out = Path(path)
    out.write_text(
        json.dumps(
            {"format": DUMP_FORMAT, "metrics": snapshot},
            sort_keys=True,
            indent=2,
        )
    )
    return out


def load_metrics(path: Union[str, Path]) -> dict:
    """Read a snapshot written by :func:`dump_metrics`."""
    blob = json.loads(Path(path).read_text())
    if blob.get("format") != DUMP_FORMAT:
        raise ValueError(
            f"{path}: not a repro metrics dump (format={blob.get('format')!r})"
        )
    return blob["metrics"]
