"""Opt-in event timeline: a bounded ring buffer with Chrome-trace export.

A :class:`Timeline` records ``(time, entity, kind)`` tuples — simulated
cycle, component name, event type — into a preallocated ring buffer, so a
long run keeps only the most recent ``capacity`` events and tracing never
grows without bound.  :meth:`Timeline.to_chrome_trace` converts the buffer
into the Chrome Trace Event JSON format, loadable in ``chrome://tracing``
or https://ui.perfetto.dev for visual debugging of message flow (see
``docs/OBSERVABILITY.md``).

Timestamps are emitted in simulated *cycles* (the trace viewer labels them
as microseconds; read "1 us" as "1 cycle").  Each distinct entity becomes
one named track via ``thread_name`` metadata records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

#: Default ring capacity: enough for every message event of the 16-core
#: kernels while bounding memory at a few MiB.
DEFAULT_CAPACITY = 65536


class Timeline:
    """Bounded ring buffer of ``(time, entity, kind)`` trace records."""

    __slots__ = ("capacity", "_buf", "_next", "recorded")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._buf: list[tuple[int, str, str]] = []
        self._next = 0
        self.recorded = 0

    def record(self, time: int, entity: str, kind: str) -> None:
        """Append one record, evicting the oldest when the ring is full."""
        if len(self._buf) < self.capacity:
            self._buf.append((time, entity, kind))
        else:
            self._buf[self._next] = (time, entity, kind)
        self._next = (self._next + 1) % self.capacity
        self.recorded += 1

    @property
    def dropped(self) -> int:
        """Records evicted by wraparound."""
        return max(0, self.recorded - self.capacity)

    def __len__(self) -> int:
        return len(self._buf)

    def events(self) -> list[tuple[int, str, str]]:
        """Records in insertion order, oldest first."""
        if self.recorded <= self.capacity:
            return list(self._buf)
        return self._buf[self._next :] + self._buf[: self._next]

    def clear(self) -> None:
        """Drop every record."""
        self._buf.clear()
        self._next = 0
        self.recorded = 0

    # ------------------------------------------------------------- export
    def to_chrome_trace(self) -> dict:
        """Chrome Trace Event JSON structure (instant events, one track
        per entity)."""
        entities = sorted({e for _, e, _ in self._buf})
        tids = {e: i for i, e in enumerate(entities)}
        trace_events: list[dict] = [
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": entity},
            }
            for entity, tid in tids.items()
        ]
        for time, entity, kind in self.events():
            trace_events.append(
                {
                    "ph": "i",
                    "name": kind,
                    "cat": "sim",
                    "ts": time,
                    "pid": 0,
                    "tid": tids[entity],
                    "s": "t",
                }
            )
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped": self.dropped, "recorded": self.recorded},
        }

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        """Serialise :meth:`to_chrome_trace` to ``path``; returns the path."""
        out = Path(path)
        out.write_text(json.dumps(self.to_chrome_trace()))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Timeline(capacity={self.capacity}, recorded={self.recorded}, "
            f"dropped={self.dropped})"
        )
