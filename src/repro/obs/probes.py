"""Simulator-integrated probes: the glue between components and the registry.

Components never touch the registry directly on their hot paths.  Instead,
at construction time they ask for a probe object; when instrumentation is
disabled (the default) the factory returns ``None`` and the component's
fast path pays exactly one ``is not None`` check per call site — the
kernel's run loop pays a single check per ``run()`` invocation, not per
event.

Probe catalogue (metric names as they appear in ``repro metrics`` output):

``kernel.*``
    ``events_fired``/``events_cancelled``/``cycles`` counters,
    ``heap_high_water`` gauge, ``run_wall_s`` and ``events_per_wall_s``
    distributions — published by :class:`KernelProbe` after every
    :meth:`repro.engine.Simulator.run`.
``net.<kind>.*``
    ``injected``/``delivered``/``bytes_delivered`` counters and a
    ``latency`` distribution — published by :class:`NetProbe` from every
    network adapter (``net.electrical``, ``net.crossbar``, ...).
``replay.<mode>.*``
    correction/stall counters promoted out of ``ReplayResult.extra`` —
    published by the replayers via :func:`replay_scope`.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs.registry import Scope
from repro.obs.timeline import Timeline


class KernelProbe:
    """Accumulates event-kernel statistics across one simulator's runs.

    The instrumented run loop (see :meth:`repro.engine.Simulator.run`)
    tracks events fired, the heap high-water mark, and wall time for each
    ``run()`` call, then reports them here; the probe folds them into its
    own totals and, when built against a scope, the metrics registry.
    """

    __slots__ = (
        "scope",
        "events_fired",
        "events_cancelled",
        "heap_high_water",
        "wall_s",
        "cycles",
        "runs",
    )

    def __init__(self, scope: Optional[Scope] = None) -> None:
        self.scope = scope
        self.events_fired = 0
        self.events_cancelled = 0
        self.heap_high_water = 0
        self.wall_s = 0.0
        self.cycles = 0
        self.runs = 0

    def record_run(
        self,
        events: int,
        cancelled: int,
        heap_high_water: int,
        wall_s: float,
        cycles: int,
    ) -> None:
        """Fold one completed ``run()`` into the totals (and the registry)."""
        self.events_fired += events
        self.events_cancelled += cancelled
        self.heap_high_water = max(self.heap_high_water, heap_high_water)
        self.wall_s += wall_s
        self.cycles += cycles
        self.runs += 1
        scope = self.scope
        if scope is not None:
            scope.counter("events_fired").inc(events)
            scope.counter("events_cancelled").inc(cancelled)
            scope.counter("cycles").inc(cycles)
            scope.gauge("heap_high_water").set_max(heap_high_water)
            scope.distribution("run_wall_s").observe(wall_s)
            if wall_s > 0:
                scope.distribution("events_per_wall_s").observe(events / wall_s)

    @property
    def events_per_wall_s(self) -> float:
        """Aggregate event throughput over every recorded run."""
        return self.events_fired / self.wall_s if self.wall_s > 0 else 0.0


def attach_kernel_probe(sim, name: str = "kernel") -> Optional[KernelProbe]:
    """Attach a registry-backed :class:`KernelProbe` to ``sim``.

    Returns ``None`` (and leaves the simulator on its zero-overhead run
    loop) when instrumentation is disabled.
    """
    from repro import obs

    if not obs.enabled():
        return None
    probe = KernelProbe(obs.metrics(name))
    sim.attach_probe(probe)
    return probe


class NetProbe:
    """Injection/ejection/latency instrumentation for one network adapter.

    Metric objects are bound once at construction, so the enabled per-
    message cost is two attribute increments and one distribution sample.
    """

    __slots__ = (
        "kind",
        "injected",
        "delivered",
        "bytes_delivered",
        "latency",
        "timeline",
    )

    def __init__(self, kind: str, scope: Scope, timeline: Optional[Timeline]) -> None:
        self.kind = kind
        self.injected = scope.counter("injected")
        self.delivered = scope.counter("delivered")
        self.bytes_delivered = scope.counter("bytes_delivered")
        self.latency = scope.distribution("latency")
        self.timeline = timeline

    def on_inject(self, time: int, msg) -> None:
        """Record one message entering the network."""
        self.injected.inc()
        tl = self.timeline
        if tl is not None:
            tl.record(time, f"node{msg.src}", f"{self.kind}.inject")

    def on_deliver(self, time: int, msg) -> None:
        """Record one message leaving the network."""
        self.delivered.inc()
        self.bytes_delivered.inc(msg.size_bytes)
        self.latency.observe(time - msg.inject_time)
        tl = self.timeline
        if tl is not None:
            tl.record(time, f"node{msg.dst}", f"{self.kind}.deliver")


def net_probe(kind: str) -> Optional[NetProbe]:
    """A :class:`NetProbe` under ``net.<kind>``, or ``None`` when disabled."""
    from repro import obs

    if not obs.enabled():
        return None
    return NetProbe(kind, obs.metrics(f"net.{kind}"), obs.timeline())


def replay_scope(mode: str) -> Optional[Scope]:
    """The ``replay.<mode>`` scope, or ``None`` when disabled."""
    from repro import obs

    if not obs.enabled():
        return None
    return obs.metrics(f"replay.{mode}")


def timeline_or_none() -> Optional[Timeline]:
    """The active timeline, or ``None`` when tracing is off."""
    from repro import obs

    return obs.timeline() if obs.enabled() else None


Probe = Union[KernelProbe, NetProbe]
