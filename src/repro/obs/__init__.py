"""``repro.obs`` — unified instrumentation: counters, timelines, probes.

One observability substrate for the whole simulator, replacing the ad-hoc
spots measurements used to live in (per-link dicts on the network, replay
diagnostics in ``ReplayResult.extra``, throughput only in the benchmark
harness).  Three layers:

* a process-global :class:`~repro.obs.registry.Registry` of named
  counters/gauges/distributions, obtained via :func:`metrics`;
* probe factories (:mod:`repro.obs.probes`) that components call at
  construction time — they return ``None`` while instrumentation is
  disabled, so hot paths pay one ``is not None`` branch and nothing else;
* an opt-in :class:`~repro.obs.timeline.Timeline` ring buffer with
  Chrome-trace export for visual debugging.

**Disabled by default.**  :func:`enable` must be called *before* building
simulators/networks (components bind their probes in ``__init__``); the
CLI's ``--metrics``/``--trace-out`` flags and the sweep runner do this for
you.  See ``docs/OBSERVABILITY.md`` for the probe catalogue and workflow.

Parallel sweeps: worker processes fill private registries whose snapshots
are merged deterministically (submission order) by
:class:`repro.harness.parallel.SweepRunner`, so ``--jobs 1`` and
``--jobs N`` produce identical merged metrics.  :func:`cache_token` folds
the instrumentation state into sweep cache keys so enabling metrics never
serves a stale, metrics-less cached result.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.obs.registry import (
    NULL_SCOPE,
    Counter,
    Distribution,
    Gauge,
    NullScope,
    Registry,
    Scope,
)
from repro.obs.timeline import DEFAULT_CAPACITY, Timeline
from repro.obs.probes import (
    KernelProbe,
    NetProbe,
    attach_kernel_probe,
    net_probe,
    replay_scope,
)
from repro.obs.report import dump_metrics, format_metrics, load_metrics

__all__ = [
    "Counter",
    "Distribution",
    "Gauge",
    "KernelProbe",
    "NetProbe",
    "NullScope",
    "Registry",
    "Scope",
    "Timeline",
    "attach_kernel_probe",
    "cache_token",
    "collecting",
    "disable",
    "disable_timeline",
    "dump_metrics",
    "enable",
    "enable_timeline",
    "enabled",
    "format_metrics",
    "load_metrics",
    "metrics",
    "net_probe",
    "registry",
    "replay_scope",
    "reset",
    "timeline",
    "use_registry",
]

# --------------------------------------------------------------------------
# Process-global state.  The simulator is single-threaded by design; worker
# processes get a fresh copy of this module and manage their own state.
# --------------------------------------------------------------------------

_enabled: bool = False
_registry: Registry = Registry()
_timeline: Optional[Timeline] = None


def enable(on: bool = True) -> None:
    """Turn instrumentation on (or off with ``on=False``).

    Must run before simulators/networks are built: components bind their
    probes at construction time and keep the disabled fast path otherwise.
    """
    global _enabled
    _enabled = on


def disable() -> None:
    """Turn instrumentation off (new components bind the no-op path)."""
    enable(False)


def enabled() -> bool:
    """Whether instrumentation is currently on."""
    return _enabled


def registry() -> Registry:
    """The active (process-global) metrics registry."""
    return _registry


def metrics(name: str) -> Union[Scope, NullScope]:
    """A named scope on the active registry (``metrics("net.mesh")``).

    While instrumentation is disabled this returns a shared no-op scope,
    so call sites never need their own enabled/disabled branches.
    """
    if not _enabled:
        return NULL_SCOPE
    return Scope(_registry, name)


def timeline() -> Optional[Timeline]:
    """The active timeline, or ``None`` when tracing is off."""
    return _timeline


def enable_timeline(capacity: int = DEFAULT_CAPACITY) -> Timeline:
    """Start (or restart) timeline tracing; implies :func:`enable`."""
    global _timeline
    enable(True)
    _timeline = Timeline(capacity)
    return _timeline


def disable_timeline() -> None:
    """Stop timeline tracing (counters keep their enabled/disabled state)."""
    global _timeline
    _timeline = None


def reset() -> None:
    """Clear all recorded data (registry and timeline); keeps the enabled
    flag, so a fresh CLI command starts from empty metrics."""
    global _timeline
    _registry.clear()
    if _timeline is not None:
        _timeline = Timeline(_timeline.capacity)


@contextmanager
def use_registry(reg: Registry) -> Iterator[Registry]:
    """Temporarily swap the global registry (sweep-worker isolation).

    The sweep runner executes each task under a private registry so the
    task's metrics can be snapshotted, cached, and merged deterministically
    without contaminating (or being contaminated by) ambient state.
    """
    global _registry
    prev = _registry
    _registry = reg
    try:
        yield reg
    finally:
        _registry = prev


@contextmanager
def collecting(capacity: Optional[int] = None) -> Iterator[Registry]:
    """Enable instrumentation for a ``with`` block on a fresh registry.

    Yields the registry; restores the previous enabled flag, registry, and
    timeline on exit.  Convenience for tests and notebook use.
    """
    global _enabled, _timeline
    prev_enabled, prev_timeline = _enabled, _timeline
    reg = Registry()
    _enabled = True
    if capacity is not None:
        _timeline = Timeline(capacity)
    try:
        with use_registry(reg):
            yield reg
    finally:
        _enabled = prev_enabled
        _timeline = prev_timeline


#: Cache-key component versioning the instrumentation wiring itself; bump
#: when probe semantics change so merged-metrics cache blobs are refreshed.
_OBS_CACHE_VERSION = "obs-v1"


def cache_token() -> str:
    """Sweep-cache key component for the current instrumentation state.

    Empty while disabled — disabled-path cache keys are identical to the
    pre-instrumentation layout, so existing caches stay valid.  Non-empty
    while enabled, so enabling metrics can never serve a cached result
    that carries no metrics snapshot.
    """
    return f"+{_OBS_CACHE_VERSION}" if _enabled else ""
