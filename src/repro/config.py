"""Validated configuration dataclasses for every subsystem.

All experiment knobs live here so that a run is fully described by
``(config, seed)``.  Each config validates itself in ``__post_init__`` and
raises ``ConfigError`` with a precise message on bad input — simulator
components can then assume their config is consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any


class ConfigError(ValueError):
    """Raised when a configuration is inconsistent or out of range."""


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigError(msg)


# --------------------------------------------------------------------------
# Electrical NoC (the baseline simulator)
# --------------------------------------------------------------------------

MESH = "mesh"
TORUS = "torus"
RING = "ring"
ELECTRICAL_TOPOLOGIES = (MESH, TORUS, RING)

ROUTING_XY = "xy"
ROUTING_YX = "yx"
ROUTING_ADAPTIVE = "adaptive"
ROUTING_ALGORITHMS = (ROUTING_XY, ROUTING_YX, ROUTING_ADAPTIVE)


@dataclass(frozen=True)
class NocConfig:
    """Cycle-level electrical wormhole NoC configuration.

    Defaults model the 2012-era baseline: a 4x4 mesh of 5-port
    input-queued wormhole routers, 2 VCs x 4-flit buffers, 16-byte flits,
    3-cycle router pipeline, 1-cycle links.
    """

    topology: str = MESH
    width: int = 4
    height: int = 4
    num_vcs: int = 2
    vc_depth: int = 4
    flit_bytes: int = 16
    router_latency: int = 3
    link_latency: int = 1
    credit_latency: int = 1
    routing: str = ROUTING_XY
    clock_ghz: float = 2.0
    max_packet_flits: int = 32

    def __post_init__(self) -> None:
        _require(self.topology in ELECTRICAL_TOPOLOGIES,
                 f"unknown topology {self.topology!r}; expected one of {ELECTRICAL_TOPOLOGIES}")
        _require(self.width >= 1 and self.height >= 1,
                 f"width/height must be >= 1, got {self.width}x{self.height}")
        if self.topology == RING:
            _require(self.height == 1, f"ring topology requires height == 1, got {self.height}")
        _require(self.num_vcs >= 1, f"num_vcs must be >= 1, got {self.num_vcs}")
        _require(self.vc_depth >= 1, f"vc_depth must be >= 1, got {self.vc_depth}")
        _require(self.flit_bytes >= 1, f"flit_bytes must be >= 1, got {self.flit_bytes}")
        _require(self.router_latency >= 1, f"router_latency must be >= 1, got {self.router_latency}")
        _require(self.link_latency >= 1, f"link_latency must be >= 1, got {self.link_latency}")
        _require(self.credit_latency >= 1, f"credit_latency must be >= 1, got {self.credit_latency}")
        _require(self.routing in ROUTING_ALGORITHMS,
                 f"unknown routing {self.routing!r}; expected one of {ROUTING_ALGORITHMS}")
        _require(self.clock_ghz > 0, f"clock_ghz must be > 0, got {self.clock_ghz}")
        _require(self.max_packet_flits >= 1,
                 f"max_packet_flits must be >= 1, got {self.max_packet_flits}")
        if self.topology in (MESH, TORUS) and self.routing == ROUTING_ADAPTIVE:
            _require(self.num_vcs >= 2,
                     "adaptive routing needs >= 2 VCs (one escape VC for deadlock freedom)")
        if self.topology in (TORUS, RING):
            _require(self.num_vcs >= 2,
                     "torus/ring wrap links need >= 2 VCs (dateline deadlock avoidance)")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def flits_for_bytes(self, size_bytes: int) -> int:
        """Number of flits a payload of ``size_bytes`` occupies (>= 1)."""
        return max(1, math.ceil(size_bytes / self.flit_bytes))


# --------------------------------------------------------------------------
# Optical NoC
# --------------------------------------------------------------------------

ONOC_CROSSBAR = "crossbar"          # Corona-style MWSR, token arbitration
ONOC_CIRCUIT_MESH = "circuit_mesh"  # circuit-switched, electrical control plane
ONOC_SWMR = "swmr_crossbar"         # Firefly-style SWMR, no write arbitration
ONOC_AWGR = "awgr"                  # passive wavelength-routed all-to-all
ONOC_TOPOLOGIES = (ONOC_CROSSBAR, ONOC_CIRCUIT_MESH, ONOC_SWMR, ONOC_AWGR)


@dataclass(frozen=True)
class PhotonicDeviceConfig:
    """Physical-layer constants (2012-era published defaults).

    Losses in dB, power in mW, distances in cm. Used by the loss-budget and
    laser-power models; changing them changes power numbers, not timing.
    """

    waveguide_loss_db_cm: float = 1.0
    coupler_loss_db: float = 1.0
    splitter_loss_db: float = 0.2
    ring_through_loss_db: float = 0.01
    ring_drop_loss_db: float = 0.5
    bend_loss_db: float = 0.005
    photodetector_loss_db: float = 0.1
    detector_sensitivity_dbm: float = -20.0
    power_margin_db: float = 3.0
    laser_efficiency: float = 0.3          # wall-plug
    ring_tuning_uw: float = 20.0           # static heater power per ring
    modulation_pj_bit: float = 0.05
    detection_pj_bit: float = 0.05
    group_velocity_cm_ns: float = 15.0     # ~c / n_g with n_g ~ 2

    def __post_init__(self) -> None:
        for name in ("waveguide_loss_db_cm", "coupler_loss_db", "splitter_loss_db",
                     "ring_through_loss_db", "ring_drop_loss_db", "bend_loss_db",
                     "photodetector_loss_db", "power_margin_db", "ring_tuning_uw",
                     "modulation_pj_bit", "detection_pj_bit"):
            _require(getattr(self, name) >= 0, f"{name} must be >= 0")
        _require(0 < self.laser_efficiency <= 1,
                 f"laser_efficiency must be in (0, 1], got {self.laser_efficiency}")
        _require(self.group_velocity_cm_ns > 0, "group_velocity_cm_ns must be > 0")


@dataclass(frozen=True)
class OnocConfig:
    """Optical NoC configuration.

    ``num_nodes`` optical endpoints; each data channel carries
    ``num_wavelengths`` WDM wavelengths at ``bitrate_gbps`` each.  The network
    clock is shared with the electrical simulator (``clock_ghz``) so latencies
    are comparable cycle-for-cycle.
    """

    topology: str = ONOC_CROSSBAR
    num_nodes: int = 16
    num_wavelengths: int = 64
    bitrate_gbps: float = 10.0
    clock_ghz: float = 2.0
    # Crossbar (MWSR + token) parameters.  The token is optical: its travel
    # time is dominated by waveguide propagation (computed from the layout);
    # this knob adds optional *electrical* per-node overhead (e.g. token
    # regeneration logic) on top.  0 = pure optical circulation (Corona).
    token_hop_cycles: int = 0
    # Circuit-switched mesh parameters
    setup_router_latency: int = 2      # control-plane per-hop setup latency (cycles)
    setup_link_latency: int = 1
    teardown_latency: int = 1
    # Physical floorplan
    chip_width_cm: float = 2.0
    chip_height_cm: float = 2.0
    devices: PhotonicDeviceConfig = field(default_factory=PhotonicDeviceConfig)
    # O/E + E/O conversion latency at the endpoints (cycles)
    conversion_cycles: int = 1

    def __post_init__(self) -> None:
        _require(self.topology in ONOC_TOPOLOGIES,
                 f"unknown optical topology {self.topology!r}; expected one of {ONOC_TOPOLOGIES}")
        _require(self.num_nodes >= 2, f"num_nodes must be >= 2, got {self.num_nodes}")
        _require(self.num_wavelengths >= 1,
                 f"num_wavelengths must be >= 1, got {self.num_wavelengths}")
        _require(self.bitrate_gbps > 0, f"bitrate_gbps must be > 0, got {self.bitrate_gbps}")
        _require(self.clock_ghz > 0, f"clock_ghz must be > 0, got {self.clock_ghz}")
        _require(self.token_hop_cycles >= 0, "token_hop_cycles must be >= 0")
        _require(self.setup_router_latency >= 1, "setup_router_latency must be >= 1")
        _require(self.setup_link_latency >= 1, "setup_link_latency must be >= 1")
        _require(self.teardown_latency >= 0, "teardown_latency must be >= 0")
        _require(self.chip_width_cm > 0 and self.chip_height_cm > 0,
                 "chip dimensions must be > 0")
        _require(self.conversion_cycles >= 0, "conversion_cycles must be >= 0")
        if self.topology == ONOC_CIRCUIT_MESH:
            side = int(round(math.sqrt(self.num_nodes)))
            _require(side * side == self.num_nodes,
                     f"circuit_mesh requires a square node count, got {self.num_nodes}")
        if self.topology == ONOC_AWGR:
            _require(self.num_wavelengths >= self.num_nodes - 1,
                     f"awgr needs >= num_nodes-1 wavelengths "
                     f"({self.num_nodes - 1}), got {self.num_wavelengths}")

    @property
    def mesh_side(self) -> int:
        """Side length for circuit_mesh layouts."""
        return int(round(math.sqrt(self.num_nodes)))

    @property
    def channel_gbps(self) -> float:
        """Aggregate per-channel bandwidth across all wavelengths."""
        return self.num_wavelengths * self.bitrate_gbps

    def serialization_cycles(self, size_bytes: int) -> int:
        """Cycles to serialize ``size_bytes`` onto one WDM channel (>= 1)."""
        bits = size_bytes * 8
        ns = bits / self.channel_gbps          # Gbps == bits/ns
        return max(1, math.ceil(ns * self.clock_ghz))

    def propagation_cycles(self, distance_cm: float) -> int:
        """Cycles for light to traverse ``distance_cm`` of waveguide."""
        ns = distance_cm / self.devices.group_velocity_cm_ns
        return max(1, math.ceil(ns * self.clock_ghz))


# --------------------------------------------------------------------------
# Full-system CMP substrate
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CacheConfig:
    """One cache level (sizes in bytes)."""

    size_bytes: int = 32 * 1024
    assoc: int = 4
    line_bytes: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "size_bytes must be > 0")
        _require(self.assoc >= 1, "assoc must be >= 1")
        _require(self.line_bytes >= 1 and (self.line_bytes & (self.line_bytes - 1)) == 0,
                 f"line_bytes must be a power of two, got {self.line_bytes}")
        _require(self.size_bytes % (self.assoc * self.line_bytes) == 0,
                 "size must be divisible by assoc * line_bytes")
        _require(self.hit_latency >= 0, "hit_latency must be >= 0")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class SystemConfig:
    """Chip multiprocessor model: cores + caches + directory + memory."""

    num_cores: int = 16
    l1: CacheConfig = field(default_factory=CacheConfig)
    l2_slice: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=256 * 1024, assoc=8, hit_latency=8)
    )
    mem_latency: int = 100
    num_mem_ctrls: int = 4
    core_clock_ghz: float = 2.0
    # Message sizes (bytes): control and data (control + one cache line)
    ctrl_msg_bytes: int = 8
    data_msg_bytes: int = 72

    def __post_init__(self) -> None:
        _require(self.num_cores >= 1, f"num_cores must be >= 1, got {self.num_cores}")
        _require(self.mem_latency >= 1, "mem_latency must be >= 1")
        _require(self.num_mem_ctrls >= 1, "num_mem_ctrls must be >= 1")
        _require(self.num_mem_ctrls <= self.num_cores,
                 "num_mem_ctrls cannot exceed num_cores (controllers live at nodes)")
        _require(self.core_clock_ghz > 0, "core_clock_ghz must be > 0")
        _require(self.l1.line_bytes == self.l2_slice.line_bytes,
                 "L1 and L2 line sizes must match")
        _require(self.ctrl_msg_bytes >= 1, "ctrl_msg_bytes must be >= 1")
        _require(self.data_msg_bytes > self.ctrl_msg_bytes,
                 "data messages must be larger than control messages")


# --------------------------------------------------------------------------
# Trace model (the paper's contribution)
# --------------------------------------------------------------------------

TRACE_NAIVE = "naive"
TRACE_SELF_CORRECTING = "self_correcting"
TRACE_MODES = (TRACE_NAIVE, TRACE_SELF_CORRECTING)

# How the self-correcting replayer schedules *degraded* records — records
# whose dependency information is unusable (ablated by ``keep_dep_fraction``,
# stripped by a trace fault, or referencing msg_ids missing from the trace):
#
# * ``captured``      — fall back to the captured absolute timestamp (and
#   stall on missing triggers).  This re-anchors the schedule to the capture
#   network's timing and collapses accuracy toward naive replay at the first
#   dropped edge — kept as the historical baseline.
# * ``neighbor_gap``  — re-derive the dispatch gap from the nearest earlier
#   record on the same source node: the record injects at that neighbor's
#   *replayed* injection time plus the captured inter-send delta, keeping it
#   anchored to the node's corrected local timeline.
# * ``interp``        — ``neighbor_gap`` with the delta rescaled by the
#   node-local time-warp observed between the two most recent surviving
#   (dependency-intact) injections on that node.
GAP_POLICY_CAPTURED = "captured"
GAP_POLICY_NEIGHBOR = "neighbor_gap"
GAP_POLICY_INTERP = "interp"
GAP_POLICIES = (GAP_POLICY_CAPTURED, GAP_POLICY_NEIGHBOR, GAP_POLICY_INTERP)

# Which replay implementation executes the trace:
#
# * ``event``        — the reference discrete-event replayers
#   (:mod:`repro.core.replay`): one simulator event per message hop, works
#   against any backend including the electrical mesh, and is the only
#   engine for network-in-the-loop experiments.
# * ``generational`` — the vectorized engine (:mod:`repro.core.generational`):
#   layers the dependency DAG once (Kahn generations), then resolves whole
#   generations with NumPy array sweeps and a closed-form FIFO model of the
#   optical backends.  Orders of magnitude fewer Python dispatches; optical
#   targets only.  Its equivalence contract with the event engine is
#   specified in ``docs/TRACE_FORMAT.md`` and enforced by
#   :mod:`repro.validate.engines`.
ENGINE_EVENT = "event"
ENGINE_GENERATIONAL = "generational"
REPLAY_ENGINES = (ENGINE_EVENT, ENGINE_GENERATIONAL)

# Mitigation policies for time-varying network degradation
# (:mod:`repro.resilience`).  Defined here — the bottom of the import
# graph — so ``TraceConfig`` can validate without importing the resilience
# package; :mod:`repro.resilience.policies` re-exports them with the
# policy semantics documented alongside the implementations.
MITIGATION_NONE = "none"
MITIGATION_DISABLE = "disable"
MITIGATION_REALLOCATE = "reallocate"
MITIGATIONS = (MITIGATION_NONE, MITIGATION_DISABLE, MITIGATION_REALLOCATE)


@dataclass(frozen=True)
class TraceConfig:
    """Replay behaviour of the trace model."""

    mode: str = TRACE_SELF_CORRECTING
    max_iterations: int = 5
    convergence_tol: float = 1e-3      # relative exec-time change between passes
    keep_dep_fraction: float = 1.0     # ablation: fraction of dependency edges kept
    dep_drop_seed: int = 12345
    degraded_gap_policy: str = GAP_POLICY_NEIGHBOR
    engine: str = ENGINE_EVENT
    # Time-varying degradation (repro.resilience): the fault timeseries as
    # plain (time, target, severity) tuples — empty means the stock,
    # byte-identical replay path — and the mitigation policy applied to it.
    fault_events: tuple = ()
    mitigation: str = MITIGATION_NONE
    # Online AWGR wavelength-occupancy hint (event engine only): reserve the
    # (src, dst) λ-lane at dependency-release time instead of injection time.
    # Closes the single-pass radix→awgr capture-ordering gap without the
    # iterate cost, but is workload-specific — see the awgr-occupancy-hint
    # note in tests/golden/envelopes.json — hence default-off.
    awgr_occupancy_hint: bool = False

    def __post_init__(self) -> None:
        _require(self.mode in TRACE_MODES,
                 f"unknown trace mode {self.mode!r}; expected one of {TRACE_MODES}")
        _require(self.engine in REPLAY_ENGINES,
                 f"unknown replay engine {self.engine!r}; "
                 f"expected one of {REPLAY_ENGINES}")
        _require(self.max_iterations >= 1, "max_iterations must be >= 1")
        _require(self.convergence_tol > 0, "convergence_tol must be > 0")
        _require(0.0 <= self.keep_dep_fraction <= 1.0,
                 f"keep_dep_fraction must be in [0, 1], got {self.keep_dep_fraction}")
        _require(self.degraded_gap_policy in GAP_POLICIES,
                 f"unknown degraded_gap_policy {self.degraded_gap_policy!r}; "
                 f"expected one of {GAP_POLICIES}")
        # Normalize fault events to hashable plain tuples; full schema
        # validation happens when the resilience overlay parses them.
        events = tuple(
            (int(t), str(target), float(sev))
            for t, target, sev in self.fault_events)
        for t, _, sev in events:
            _require(t >= 0, f"fault event time must be >= 0, got {t}")
            _require(0.0 <= sev <= 1.0,
                     f"fault severity must be in [0, 1], got {sev}")
        object.__setattr__(self, "fault_events", events)
        _require(self.mitigation in MITIGATIONS,
                 f"unknown mitigation {self.mitigation!r}; "
                 f"expected one of {MITIGATIONS}")


# --------------------------------------------------------------------------
# Top-level experiment bundle
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one experiment: system + both networks + trace."""

    system: SystemConfig = field(default_factory=SystemConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    onoc: OnocConfig = field(default_factory=OnocConfig)
    trace: TraceConfig = field(default_factory=TraceConfig)
    seed: int = 42

    def __post_init__(self) -> None:
        _require(self.seed >= 0, "seed must be >= 0")
        _require(self.system.num_cores == self.noc.num_nodes,
                 f"system has {self.system.num_cores} cores but electrical NoC has "
                 f"{self.noc.num_nodes} nodes")
        _require(self.system.num_cores == self.onoc.num_nodes,
                 f"system has {self.system.num_cores} cores but optical NoC has "
                 f"{self.onoc.num_nodes} nodes")

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)


def default_16core_config(**overrides: Any) -> ExperimentConfig:
    """The paper-style default: 16-core CMP, 4x4 electrical mesh baseline,
    16-node optical crossbar target."""
    base = ExperimentConfig()
    return replace(base, **overrides) if overrides else base
