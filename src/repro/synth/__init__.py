"""Synthetic full-system workload generator (ROADMAP item 5).

The captured kernel catalogue tops out at 64 cores and ~120k messages;
this package generates *statistically faithful* dependency-annotated
traces at any scale — splitmix64-seeded dependency-graph families with
tunable fan-out, compute-gap distributions, and sharing patterns (reusing
:data:`repro.traffic.PATTERNS`), fitted to a captured corpus trace via
:func:`fit_profile` and emitted either in memory (:func:`generate`) or
straight into the chunked binary container (:func:`generate_to_file`) so
million-message traces never fully materialize.

Quality gates: ``tests/test_synth_properties.py`` (byte-determinism, the
full invariant catalogue, profile fidelity under
:data:`FIDELITY_TOLERANCES`), ``tests/test_synth_engines.py`` (event vs
generational agreement at 64 and 1024 nodes), and
``benchmarks/bench_scale.py`` (replay throughput + peak RSS vs trace
size).  See the "Synthetic traces" section of ``docs/TRACE_FORMAT.md``.
"""

from repro.synth.generator import generate, generate_to_file, iter_records
from repro.synth.profile import (
    FIDELITY_TOLERANCES,
    SynthProfile,
    default_profile,
    fit_profile,
    trace_stats,
)
from repro.synth.topologies import SCALE_NODE_COUNTS, scale_configs, synth_onoc

__all__ = [
    "FIDELITY_TOLERANCES",
    "SCALE_NODE_COUNTS",
    "SynthProfile",
    "default_profile",
    "fit_profile",
    "generate",
    "generate_to_file",
    "iter_records",
    "scale_configs",
    "synth_onoc",
    "trace_stats",
]
