"""Streaming synthetic trace generator (splitmix64-seeded, heap-merged).

The generator turns a :class:`~repro.synth.profile.SynthProfile` into a
valid dependency-annotated trace of any size without ever holding the
trace in memory: each chain is an independent sequential process whose
next injection time is always known (last delivery + a drawn gap), so a
heap merge across chains emits records *already in canonical
``(t_inject, msg_id)`` order* — exactly what the streaming readers and
``_StreamScanner`` assume — while keeping only O(chains + pending
fan-out children + nodes) state resident.  :func:`generate_to_file`
feeds the records straight into the chunked
:class:`~repro.core.tracebin.BinaryTraceWriter`, so a million-message
trace costs one chunk of buffering, not a million records.

Determinism: every random decision is a pure splitmix64 hash of
``(seed, chain, step, tag)`` — the per-decision discipline shared with
``repro.validate.faults`` and ``repro.resilience.generators`` — plus one
PCG64 stream per chain for the destination patterns that need an rng
(consumed in fixed per-chain order).  Same profile + same seed therefore
means byte-identical binary output, which the property suite pins.

Capture invariants hold by construction: roots carry ``gap ==
t_inject``, every dependent injects at exactly ``cause.t_deliver + gap``
with ``gap >= 1``, causes always precede dependents (acyclicity), and
the end markers chain to the last delivery per node.
"""

from __future__ import annotations

import heapq
import math
import time
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.core.trace import EndMarker, Trace, TraceRecord
from repro.core.tracebin import BinaryTraceWriter, CHUNK_RECORDS
from repro.synth.profile import SynthProfile
from repro.traffic.patterns import PATTERNS

_MASK64 = (1 << 64) - 1


def _mix64(*parts) -> int:
    """Deterministic 64-bit hash (splitmix64 finalizer chain) — the same
    discipline as ``repro.validate.faults._mix64``, duplicated so the
    generator never imports the validation stack."""
    x = 0x9E3779B97F4A7C15
    for p in parts:
        if isinstance(p, str):
            p = int.from_bytes(p.encode("utf-8"), "little")
        x = (x ^ (p & _MASK64)) & _MASK64
        x = (x * 0xBF58476D1CE4E5B9) & _MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
        x ^= x >> 31
    return x & _MASK64


def _unit(*parts) -> float:
    """Uniform [0, 1) draw from the hash of ``parts``."""
    return _mix64(*parts) / float(1 << 64)


def _draw_gap(profile: SynthProfile, u: float) -> int:
    """Truncated-exponential compute gap: mean ~``gap_mean``, >= 1,
    clipped at ``gap_max``."""
    scale = max(0.0, profile.gap_mean - 1.0)
    gap = 1 + int(-math.log(1.0 - u) * scale)
    return min(profile.gap_max, gap)


def _draw_size(profile: SynthProfile, u: float) -> int:
    total = sum(w for _, w in profile.size_mix)
    acc = 0.0
    for size, weight in profile.size_mix:
        acc += weight / total
        if u < acc:
            return size
    return profile.size_mix[-1][0]


def _latency(profile: SynthProfile, size: int) -> int:
    return profile.base_latency + size // 16


class _Markers:
    """O(nodes) end-marker tracker: last delivery per destination."""

    def __init__(self, num_nodes: int) -> None:
        self.last_deliver = np.full(num_nodes, -1, dtype=np.int64)
        self.last_msg = np.full(num_nodes, -1, dtype=np.int64)

    def see(self, dst: int, t_deliver: int, msg_id: int) -> None:
        if t_deliver > self.last_deliver[dst]:
            self.last_deliver[dst] = t_deliver
            self.last_msg[dst] = msg_id

    def finish(self) -> list[EndMarker]:
        out = []
        for node in range(len(self.last_deliver)):
            if self.last_msg[node] == -1:
                out.append(EndMarker(node, 0, -1, 0))
            else:
                out.append(EndMarker(node, int(self.last_deliver[node]) + 10,
                                     int(self.last_msg[node]), 10))
        return out


def _dest(profile: SynthProfile, src: int, rng: np.random.Generator) -> int:
    d = int(PATTERNS[profile.pattern](src, profile.num_nodes, rng))
    if d == src:  # patterns may map to self (e.g. the transpose diagonal)
        d = (d + 1) % profile.num_nodes
    return d


def iter_records(profile: SynthProfile, scale: float = 1.0,
                 seed: int = 0) -> Iterator[TraceRecord]:
    """Yield the trace's records in canonical ``(t_inject, msg_id)`` order.

    ``msg_id`` is the emission index, so causes always precede dependents
    and the stream is sorted by construction.  Memory is O(chains +
    pending fan-out children); see the module docstring.
    """
    n_messages = profile.scaled_messages(scale)
    n = profile.num_nodes
    chains = min(profile.chains, n_messages)
    rngs = [np.random.Generator(np.random.PCG64(_mix64(seed, "chain", c)))
            for c in range(chains)]

    # Heap entries: (t_inject, flag, uid, item).  flag orders chain steps
    # before children on injection-time ties; uid makes ordering total and
    # deterministic.  Chain item: (c, step, cur_node, cause_id, gap).
    # Child item: (src, dst, size, cause_id, gap).
    heap: list[tuple] = []
    uid = 0
    for c in range(chains):
        t0 = _mix64(seed, "root", c) % profile.root_spread
        src = _mix64(seed, "src", c) % n
        heapq.heappush(heap, (t0, 0, uid, (c, 0, src, -1, t0)))
        uid += 1

    emitted = 0
    while emitted < n_messages:
        t, flag, _, item = heapq.heappop(heap)
        if flag == 0:
            c, step, cur, cause_id, gap = item
            dst = _dest(profile, cur, rngs[c])
            size = _draw_size(profile, _unit(seed, "size", c, step))
            t_del = t + _latency(profile, size)
            msg_id = emitted
            yield TraceRecord(
                msg_id=msg_id, key=(cur, dst, "data", msg_id, 0),
                src=cur, dst=dst, size_bytes=size, kind="data",
                t_inject=t, t_deliver=t_del, cause_id=cause_id, gap=gap)
            emitted += 1
            if _unit(seed, "fan", c, step) < profile.fanout_prob:
                third = _dest(profile, dst, rngs[c])
                g2 = _draw_gap(profile, _unit(seed, "fgap", c, step))
                heapq.heappush(heap, (t_del + g2, 1, uid,
                                      (dst, third, 64, msg_id, g2)))
                uid += 1
            g = _draw_gap(profile, _unit(seed, "gap", c, step))
            heapq.heappush(heap, (t_del + g, 0, uid,
                                  (c, step + 1, dst, msg_id, g)))
            uid += 1
        else:
            src, dst, size, cause_id, gap = item
            t_del = t + _latency(profile, size)
            msg_id = emitted
            yield TraceRecord(
                msg_id=msg_id, key=(src, dst, "ctrl", msg_id, 0),
                src=src, dst=dst, size_bytes=size, kind="ctrl",
                t_inject=t, t_deliver=t_del, cause_id=cause_id, gap=gap)
            emitted += 1


def _meta(profile: SynthProfile, scale: float, seed: int) -> dict:
    return {
        "synthetic": "repro.synth",
        "num_cores": profile.num_nodes,
        "seed": seed,
        "scale": scale,
        "profile": profile.as_dict(),
    }


def generate(profile: SynthProfile, scale: float = 1.0,
             seed: int = 0) -> Trace:
    """Materialize the synthetic trace as a validated :class:`Trace`.

    For traces that fit in memory (tests, experiment points).  At the
    million-message scale use :func:`generate_to_file`, which streams the
    identical records into the binary container instead.
    """
    markers = _Markers(profile.num_nodes)
    records = []
    for r in iter_records(profile, scale=scale, seed=seed):
        markers.see(r.dst, r.t_deliver, r.msg_id)
        records.append(r)
    ends = markers.finish()
    trace = Trace(records=records, end_markers=ends,
                  exec_time=max((m.t_finish for m in ends), default=0),
                  meta=_meta(profile, scale, seed))
    trace.validate()
    return trace


def generate_to_file(profile: SynthProfile, path: Union[str, Path],
                     scale: float = 1.0, seed: int = 0,
                     chunk_records: int = CHUNK_RECORDS,
                     batch: int = 8192) -> dict:
    """Stream the synthetic trace straight into the binary container.

    Emits the exact record stream :func:`generate` would produce (same
    profile, scale, seed => byte-identical file, and identical to
    ``tracebin.dumps(generate(...))`` at equal ``chunk_records``), but
    never holds more than ``chunk_records`` records — the path that makes
    >=10^6-message traces cheap.  Returns a summary dict.
    """
    path = Path(path)
    t0 = time.perf_counter()
    markers = _Markers(profile.num_nodes)
    n = 0
    with open(path, "wb") as fp:
        writer = BinaryTraceWriter(fp, meta=_meta(profile, scale, seed),
                                   chunk_records=chunk_records)
        pending: list[TraceRecord] = []
        for r in iter_records(profile, scale=scale, seed=seed):
            markers.see(r.dst, r.t_deliver, r.msg_id)
            pending.append(r)
            n += 1
            if len(pending) >= batch:
                writer.add_records(pending)
                pending.clear()
        writer.add_records(pending)
        ends = markers.finish()
        writer.add_markers(ends)
        exec_time = max((m.t_finish for m in ends), default=0)
        writer.close(exec_time)
    return {
        "path": str(path),
        "messages": n,
        "end_markers": profile.num_nodes,
        "exec_time": exec_time,
        "file_bytes": path.stat().st_size,
        "wall_clock_s": time.perf_counter() - t0,
    }
