"""Synthetic workload profiles: the parameter space of the trace generator.

A :class:`SynthProfile` names one dependency-graph family — how many chains
run in parallel, how they fan out, how compute gaps are distributed, which
communication pattern picks destinations, and what the message-size mix
looks like.  :func:`fit_profile` inverts a captured trace into that space
so the generator can emit *statistically faithful* traces at any scale
(the fidelity contract is pinned by ``tests/test_synth_properties.py``
against the tolerances in :data:`FIDELITY_TOLERANCES`).

Profiles are plain JSON: ``repro synth fit`` writes one, ``repro synth
generate --profile`` reads it back, and the generator embeds it in the
trace ``meta`` so every synthetic trace names its own recipe.
"""

from __future__ import annotations

import json
import statistics
from collections import Counter
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Optional, Union

from repro.core.analysis import destination_entropy
from repro.core.trace import Trace
from repro.traffic.patterns import PATTERNS

#: Fidelity contract for fitted-then-generated traces: each statistic of
#: the regenerated trace must land this close to the source trace's value
#: (relative percent for means, absolute for fractions/ratios).  The
#: property suite holds the generator to these numbers — widen them only
#: with a corresponding note in docs/TRACE_FORMAT.md.
FIDELITY_TOLERANCES = {
    "gap_mean_rel_pct": 25.0,      # mean compute gap, relative error
    "multi_child_frac_abs": 0.08,  # fan-out: fraction of msgs with >=2 children
    "dest_entropy_ratio_abs": 0.20,  # sharing: destination entropy / max
    "mean_size_rel_pct": 25.0,     # message-size mix
}

#: Hotspot detection: the catalogue's ``hotspot`` pattern routes 10% of
#: traffic to node 0, so its busiest destination receives ``0.1 + 0.9/n``
#: of the messages while uniform traffic tops out near ``1/n``.  A fitted
#: profile assumes hotspot sharing when the busiest destination's share
#: clears ``max(0.08, 2.5/n)`` — comfortably between the two for every
#: node count the generator targets.
_HOTSPOT_SHARE_BASE = 0.08


@dataclass(frozen=True)
class SynthProfile:
    """Parameters of one synthetic dependency-graph family."""

    num_nodes: int = 64
    #: Base message count; ``generate(profile, scale=N)`` emits
    #: ``round(messages * N)`` records.
    messages: int = 10_000
    #: Concurrent request/response chains (the trace's message-level
    #: parallelism — what the generational engine vectorizes over).
    chains: int = 256
    #: Destination-selection pattern, a :data:`repro.traffic.PATTERNS` name
    #: (the sharing/communication structure).
    pattern: str = "uniform"
    #: Probability a chain message also spawns a one-shot control child
    #: (fan-out beyond the chain itself).
    fanout_prob: float = 0.15
    #: Compute-gap distribution: truncated-exponential with this mean ...
    gap_mean: float = 18.0
    #: ... clipped to this maximum.
    gap_max: int = 96
    #: Message-size mix as ``((size_bytes, weight), ...)``; weights are
    #: normalized at draw time.
    size_mix: tuple[tuple[int, float], ...] = ((64, 0.7), (512, 0.3))
    #: Capture-network latency model: ``t_deliver - t_inject =
    #: base_latency + size_bytes // 16`` (the electrical-capture shape
    #: ``benchmarks/bench_replay_vector.py`` established).
    base_latency: int = 24
    #: Chain roots inject uniformly in ``[0, root_spread)`` cycles.
    root_spread: int = 200
    #: Provenance note (e.g. the fitted trace's identity); free-form.
    source: str = ""

    def __post_init__(self) -> None:
        def _req(ok: bool, msg: str) -> None:
            if not ok:
                raise ValueError(f"SynthProfile: {msg}")

        _req(self.num_nodes >= 2, f"num_nodes must be >= 2, got {self.num_nodes}")
        _req(self.messages >= 1, f"messages must be >= 1, got {self.messages}")
        _req(self.chains >= 1, f"chains must be >= 1, got {self.chains}")
        _req(self.pattern in PATTERNS,
             f"unknown pattern {self.pattern!r}; known: {sorted(PATTERNS)}")
        _req(0.0 <= self.fanout_prob <= 0.9,
             f"fanout_prob must be in [0, 0.9], got {self.fanout_prob}")
        _req(self.gap_mean >= 1.0, f"gap_mean must be >= 1, got {self.gap_mean}")
        _req(self.gap_max >= 1, f"gap_max must be >= 1, got {self.gap_max}")
        _req(len(self.size_mix) >= 1, "size_mix must not be empty")
        for size, weight in self.size_mix:
            _req(size >= 1, f"size_mix sizes must be >= 1, got {size}")
            _req(weight > 0, f"size_mix weights must be > 0, got {weight}")
        _req(self.base_latency >= 1,
             f"base_latency must be >= 1, got {self.base_latency}")
        _req(self.root_spread >= 1,
             f"root_spread must be >= 1, got {self.root_spread}")

    def scaled_messages(self, scale: float) -> int:
        return max(1, int(round(self.messages * scale)))

    # ------------------------------------------------------------- (de)JSON
    def as_dict(self) -> dict:
        d = asdict(self)
        d["size_mix"] = [[int(s), float(w)] for s, w in self.size_mix]
        return d

    @staticmethod
    def from_dict(raw: dict) -> "SynthProfile":
        data = dict(raw)
        mix = data.get("size_mix")
        if mix is not None:
            data["size_mix"] = tuple((int(s), float(w)) for s, w in mix)
        unknown = set(data) - set(SynthProfile.__dataclass_fields__)
        if unknown:
            raise ValueError(f"SynthProfile: unknown field(s) {sorted(unknown)}")
        return SynthProfile(**data)

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_json(text: str) -> "SynthProfile":
        return SynthProfile.from_dict(json.loads(text))

    @staticmethod
    def load(path: Union[str, Path]) -> "SynthProfile":
        return SynthProfile.from_json(Path(path).read_text())


def default_profile(num_nodes: int, messages: int,
                    pattern: str = "uniform", **overrides) -> SynthProfile:
    """A reasonable profile for ``num_nodes`` without a corpus to fit:
    enough chains to keep every node busy, the bench-established gap and
    size mixes."""
    chains = max(32, min(num_nodes * 2, messages))
    return replace(
        SynthProfile(num_nodes=num_nodes, messages=messages,
                     chains=chains, pattern=pattern),
        **overrides)


# --------------------------------------------------------------- statistics
def trace_stats(trace: Trace) -> dict:
    """The fidelity statistics of a trace — the quantities the generator
    promises to reproduce (see :data:`FIDELITY_TOLERANCES`)."""
    records = trace.records
    if not records:
        return {"messages": 0, "gap_mean": 0.0, "multi_child_frac": 0.0,
                "dest_entropy_ratio": 0.0, "mean_size": 0.0, "roots": 0}
    gaps = [r.gap for r in records if r.cause_id != -1]
    children = Counter(r.cause_id for r in records if r.cause_id != -1)
    multi = sum(1 for c in children.values() if c >= 2)
    ent, ent_max = destination_entropy(trace)
    dst_counts = Counter(r.dst for r in records)
    return {
        "messages": len(records),
        "roots": sum(1 for r in records if r.cause_id == -1),
        "gap_mean": statistics.fmean(gaps) if gaps else 0.0,
        "multi_child_frac": multi / len(records),
        "dest_entropy_ratio": (ent / ent_max) if ent_max > 0 else 1.0,
        "max_dest_share": max(dst_counts.values()) / len(records),
        "mean_size": statistics.fmean(r.size_bytes for r in records),
    }


def fit_profile(trace: Trace, pattern: Optional[str] = None) -> SynthProfile:
    """Invert a captured trace into a :class:`SynthProfile`.

    Every parameter is a direct moment estimate from the records: chain
    count from the root population, fan-out probability from the fraction
    of records with two or more dependents (a fan-out event gives its
    parent a second child, so ``frac = p / (1 + p)``), the gap
    distribution from the non-root gap sample, the size mix from the size
    histogram (top four sizes), and the base latency from the median of
    ``latency - size // 16``.  The destination pattern is not identifiable
    from moments alone, so unless ``pattern`` is given the fit falls back
    to a concentration heuristic: hotspot when the busiest destination's
    traffic share clears ``max(0.08, 2.5/n)`` (see
    :data:`_HOTSPOT_SHARE_BASE`), uniform otherwise.
    """
    records = trace.records
    if not records:
        raise ValueError("cannot fit a profile to an empty trace")
    nodes = max(max(r.src, r.dst) for r in records) + 1
    meta_nodes = trace.meta.get("num_cores")
    if isinstance(meta_nodes, int) and meta_nodes >= nodes:
        nodes = meta_nodes
    nodes = max(2, nodes)

    stats = trace_stats(trace)
    roots = [r for r in records if r.cause_id == -1]
    gaps = [r.gap for r in records if r.cause_id != -1]
    gap_mean = max(1.0, statistics.fmean(gaps)) if gaps else 1.0
    gap_max = max(1, max(gaps)) if gaps else 1

    frac = stats["multi_child_frac"]
    fanout_prob = min(0.9, frac / (1.0 - frac)) if frac < 1.0 else 0.9

    size_counts = Counter(r.size_bytes for r in records)
    top = size_counts.most_common(4)
    total = sum(c for _, c in top)
    size_mix = tuple((int(size), count / total) for size, count in top)

    base_latency = max(1, int(statistics.median(
        (r.t_deliver - r.t_inject) - r.size_bytes // 16 for r in records)))

    if pattern is None:
        threshold = max(_HOTSPOT_SHARE_BASE, 2.5 / nodes)
        pattern = ("hotspot" if stats["max_dest_share"] >= threshold
                   else "uniform")

    workload = trace.meta.get("workload", "")
    return SynthProfile(
        num_nodes=nodes,
        messages=len(records),
        chains=max(1, len(roots)),
        pattern=pattern,
        fanout_prob=fanout_prob,
        gap_mean=gap_mean,
        gap_max=gap_max,
        size_mix=size_mix,
        base_latency=base_latency,
        root_spread=max(1, max((r.t_inject for r in roots), default=0) + 1),
        source=f"fit:{workload or 'trace'}:{len(records)}msgs",
    )
