"""Production-scale topology configs for the synthetic workloads.

The captured workload catalogue tops out at 64 cores; the synthetic
generator is what exercises the 1k-16k-node configurations ROADMAP item 5
calls for.  These helpers build :class:`~repro.config.OnocConfig` presets
that satisfy every backend's structural constraints at those sizes —
``circuit_mesh`` needs a square node count (1024 = 32^2, 4096 = 64^2,
16384 = 128^2, all powers of two so ``bit_reverse`` traffic works too)
and ``awgr`` needs at least ``num_nodes - 1`` wavelengths.
"""

from __future__ import annotations

import math

from repro.config import ONOC_AWGR, ONOC_TOPOLOGIES, OnocConfig

#: The production-scale node-count ladder (squares and powers of two).
SCALE_NODE_COUNTS = (1024, 4096, 16384)


def synth_onoc(topology: str = "crossbar", num_nodes: int = 1024,
               num_wavelengths: int | None = None) -> OnocConfig:
    """An :class:`OnocConfig` for ``num_nodes`` endpoints on ``topology``,
    with the wavelength count raised to whatever the backend demands."""
    if topology not in ONOC_TOPOLOGIES:
        raise ValueError(f"unknown topology {topology!r}; "
                         f"known: {ONOC_TOPOLOGIES}")
    if num_wavelengths is None:
        num_wavelengths = 64
        if topology == ONOC_AWGR:
            num_wavelengths = max(num_wavelengths, num_nodes - 1)
    return OnocConfig(num_nodes=num_nodes, topology=topology,
                      num_wavelengths=num_wavelengths)


def scale_configs(topologies=ONOC_TOPOLOGIES,
                  node_counts=SCALE_NODE_COUNTS) -> dict[str, OnocConfig]:
    """The full production-scale config matrix, keyed ``topology/nodes``.

    Non-square node counts are skipped for ``circuit_mesh`` (the default
    ladder is all-square, so nothing is dropped there).
    """
    out: dict[str, OnocConfig] = {}
    for topology in topologies:
        for nodes in node_counts:
            side = math.isqrt(nodes)
            if topology == "circuit_mesh" and side * side != nodes:
                continue
            out[f"{topology}/{nodes}"] = synth_onoc(topology, nodes)
    return out
