"""Sweep-task surface of the synthetic generator.

:func:`synth_scalability_point` is the module-level, fully-picklable
point function behind the ``scalability_synth`` experiment family
(``repro.exp``) and the serve-whitelisted ``synth_scalability_point``
operation: generate one synthetic trace for a (nodes, topology) cell and
replay it both naive and self-correcting, reporting exec-time estimates
(deterministic, gateable) and replay throughput (wall-clock, volatile).
"""

from __future__ import annotations

import time

from repro.config import (
    ENGINE_GENERATIONAL,
    TRACE_NAIVE,
    TRACE_SELF_CORRECTING,
    TraceConfig,
)
from repro.core import replay_trace
from repro.harness.builders import optical_factory
from repro.synth.generator import generate
from repro.synth.profile import default_profile
from repro.synth.topologies import synth_onoc


def synth_scalability_point(
    nodes: int,
    messages: int,
    topology: str,
    seed: int,
    pattern: str = "uniform",
    engine: str = ENGINE_GENERATIONAL,
) -> dict:
    """One (nodes, topology) cell of the synthetic scalability matrix."""
    profile = default_profile(nodes, messages, pattern=pattern)
    trace = generate(profile, seed=seed)
    onoc = synth_onoc(topology, nodes)
    factory = optical_factory(onoc, seed)
    t0 = time.perf_counter()
    naive = replay_trace(trace, factory,
                         TraceConfig(mode=TRACE_NAIVE, engine=engine))
    sc = replay_trace(trace, factory,
                      TraceConfig(mode=TRACE_SELF_CORRECTING, engine=engine))
    replay_wall = time.perf_counter() - t0
    return {
        "topology": topology,
        "nodes": nodes,
        "messages": len(trace),
        "pattern": pattern,
        "naive_exec": naive.exec_time_estimate,
        "selfcorr_exec": sc.exec_time_estimate,
        "captured_exec": trace.exec_time,
        "replay_wall_s": round(replay_wall, 4),
        "msgs_per_s": round(2 * len(trace) / replay_wall)
        if replay_wall > 0 else 0,
    }
