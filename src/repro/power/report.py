"""Common energy accounting container."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EnergyReport:
    """Static + dynamic energy of one network over one simulated run.

    ``static_mw`` maps component -> continuous power draw (mW);
    ``dynamic_pj`` maps event class -> total switching energy (pJ).
    """

    name: str
    duration_cycles: int
    clock_ghz: float
    static_mw: dict[str, float] = field(default_factory=dict)
    dynamic_pj: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_cycles < 0:
            raise ValueError(f"negative duration {self.duration_cycles}")
        if self.clock_ghz <= 0:
            raise ValueError(f"clock_ghz must be > 0, got {self.clock_ghz}")

    @property
    def duration_ns(self) -> float:
        return self.duration_cycles / self.clock_ghz

    @property
    def total_static_mw(self) -> float:
        return sum(self.static_mw.values())

    @property
    def total_dynamic_pj(self) -> float:
        return sum(self.dynamic_pj.values())

    @property
    def static_energy_pj(self) -> float:
        # mW * ns == pJ
        return self.total_static_mw * self.duration_ns

    @property
    def total_energy_uj(self) -> float:
        return (self.static_energy_pj + self.total_dynamic_pj) * 1e-6

    @property
    def avg_power_mw(self) -> float:
        """Average power over the run (0 for a zero-length run)."""
        if self.duration_ns == 0:
            return 0.0
        return (self.static_energy_pj + self.total_dynamic_pj) / self.duration_ns

    def as_row(self) -> dict:
        return {
            "network": self.name,
            "static_mw": round(self.total_static_mw, 3),
            "dynamic_pj": round(self.total_dynamic_pj, 1),
            "total_uj": round(self.total_energy_uj, 4),
            "avg_mw": round(self.avg_power_mw, 3),
        }
