"""Energy models: electrical (ORION-style coarse) and optical (loss-budget).

Both produce an :class:`~repro.power.report.EnergyReport` so Table 4 can
compare like for like: static power integrated over the run plus per-event
dynamic energy.
"""

from repro.power.area import AreaConfig, AreaReport, electrical_area, optical_area
from repro.power.electrical import ElectricalEnergyConfig, electrical_energy_report
from repro.power.optical import optical_energy_report
from repro.power.report import EnergyReport

__all__ = [
    "AreaConfig",
    "AreaReport",
    "ElectricalEnergyConfig",
    "EnergyReport",
    "electrical_area",
    "electrical_energy_report",
    "optical_area",
    "optical_energy_report",
]
