"""Coarse electrical NoC energy model (ORION-2 class).

Per-flit event energies for a 16-byte flit in a ~45 nm process, the node the
2012 baseline simulators modelled.  Values are deliberately round published
ballparks — the reproduction compares *relative* energy between networks, so
only the orders of magnitude matter (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.network import ElectricalNetwork
from repro.power.report import EnergyReport


@dataclass(frozen=True)
class ElectricalEnergyConfig:
    """Per-event energies (pJ per flit) and leakage (mW per unit)."""

    buffer_write_pj: float = 0.3
    buffer_read_pj: float = 0.3
    crossbar_pj: float = 0.5
    arbitration_pj: float = 0.05
    link_pj: float = 1.0               # per flit per hop (~2 mm links)
    router_leakage_mw: float = 0.5     # per router
    link_leakage_mw: float = 0.1       # per directed link

    def __post_init__(self) -> None:
        for name in ("buffer_write_pj", "buffer_read_pj", "crossbar_pj",
                     "arbitration_pj", "link_pj", "router_leakage_mw",
                     "link_leakage_mw"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


def electrical_energy_report(
    net: ElectricalNetwork,
    duration_cycles: int,
    energy_cfg: ElectricalEnergyConfig | None = None,
) -> EnergyReport:
    """Energy of one electrical-NoC run from its event counters.

    Every switch traversal implies one buffer write + read + arbitration +
    crossbar pass; link energy counts inter-router hops plus NI
    injection/ejection crossings.
    """
    ecfg = energy_cfg or ElectricalEnergyConfig()
    cfg = net.cfg
    flits_routed = sum(r.flits_routed for r in net.routers)
    link_hops = sum(net.link_flits.values())
    ni_crossings = 2 * net.stats.flits_delivered   # inject + eject
    num_links = sum(
        1 for node in range(cfg.num_nodes)
        for p in net.topo.output_ports(node)
    )
    return EnergyReport(
        name=f"electrical_{cfg.topology}_{cfg.width}x{cfg.height}",
        duration_cycles=duration_cycles,
        clock_ghz=cfg.clock_ghz,
        static_mw={
            "router_leakage": ecfg.router_leakage_mw * cfg.num_nodes,
            "link_leakage": ecfg.link_leakage_mw * num_links,
        },
        dynamic_pj={
            "buffers": flits_routed * (ecfg.buffer_write_pj + ecfg.buffer_read_pj),
            "crossbar": flits_routed * ecfg.crossbar_pj,
            "arbitration": flits_routed * ecfg.arbitration_pj,
            "links": (link_hops + ni_crossings) * ecfg.link_pj,
        },
    )
