"""Optical NoC energy model: laser + ring tuning + E/O-O/E conversion.

Static power dominates ONOC budgets: the laser must light the worst-case
loss path continuously, and every microring needs thermal tuning.  Dynamic
energy is modulation/detection per transmitted bit, plus — for the
circuit-switched mesh — the electrical control plane's setup flits.
"""

from __future__ import annotations

from typing import Union

from repro.config import OnocConfig
from repro.onoc.awgr import OpticalAwgr, awgr_ring_census
from repro.onoc.circuit import CircuitSwitchedMesh
from repro.onoc.crossbar import OpticalCrossbar
from repro.onoc.devices import crossbar_ring_census, mesh_ring_census
from repro.onoc.loss import LossBudget
from repro.onoc.swmr import OpticalSwmrCrossbar, swmr_ring_census
from repro.power.electrical import ElectricalEnergyConfig
from repro.power.report import EnergyReport

OpticalNet = Union[OpticalCrossbar, CircuitSwitchedMesh,
                   OpticalSwmrCrossbar, OpticalAwgr]


def optical_energy_report(
    net: OpticalNet,
    duration_cycles: int,
    ctrl_energy_cfg: ElectricalEnergyConfig | None = None,
) -> EnergyReport:
    """Energy of one optical-network run from its counters and loss budget."""
    cfg: OnocConfig = net.cfg
    budget = LossBudget(cfg)
    dev = cfg.devices

    if isinstance(net, OpticalCrossbar):
        census = crossbar_ring_census(cfg.num_nodes, cfg.num_wavelengths)
        worst_db = budget.crossbar_worst_loss_db()
        # One WDM home channel per reader node, all lit continuously.
        laser_mw = budget.laser_wallplug_mw(
            worst_db, cfg.num_wavelengths, num_channels=cfg.num_nodes
        )
        name = f"optical_crossbar_{cfg.num_nodes}n"
        ctrl_pj = 0.0
    elif isinstance(net, OpticalSwmrCrossbar):
        census = swmr_ring_census(cfg.num_nodes, cfg.num_wavelengths)
        worst_db = budget.swmr_worst_loss_db()
        laser_mw = budget.laser_wallplug_mw(
            worst_db, cfg.num_wavelengths, num_channels=cfg.num_nodes
        )
        name = f"optical_swmr_{cfg.num_nodes}n"
        ctrl_pj = 0.0
    elif isinstance(net, OpticalAwgr):
        census = awgr_ring_census(cfg.num_nodes, cfg.num_wavelengths)
        worst_db = budget.awgr_worst_loss_db()
        laser_mw = budget.laser_wallplug_mw(
            worst_db, cfg.num_wavelengths, num_channels=cfg.num_nodes
        )
        name = f"optical_awgr_{cfg.num_nodes}n"
        ctrl_pj = 0.0
    elif isinstance(net, CircuitSwitchedMesh):
        census = mesh_ring_census(cfg.num_nodes, cfg.num_wavelengths)
        worst_db = budget.mesh_worst_loss_db()
        # A single shared WDM source feeding the switched fabric.
        laser_mw = budget.laser_wallplug_mw(
            worst_db, cfg.num_wavelengths, num_channels=1
        )
        name = f"optical_circuit_mesh_{cfg.num_nodes}n"
        ecfg = ctrl_energy_cfg or ElectricalEnergyConfig()
        per_setup_hop_pj = (
            ecfg.buffer_write_pj + ecfg.buffer_read_pj + ecfg.crossbar_pj
            + ecfg.arbitration_pj + ecfg.link_pj
        )
        ctrl_pj = net.setup_hops_total * per_setup_hop_pj
    else:  # pragma: no cover - factory guarantees the union
        raise TypeError(f"unknown optical network {type(net).__name__}")

    bits = net.bits_transmitted
    return EnergyReport(
        name=name,
        duration_cycles=duration_cycles,
        clock_ghz=cfg.clock_ghz,
        static_mw={
            "laser": laser_mw,
            "ring_tuning": census.total * dev.ring_tuning_uw * 1e-3,
        },
        dynamic_pj={
            "modulation": bits * dev.modulation_pj_bit,
            "detection": bits * dev.detection_pj_bit,
            "control_plane": ctrl_pj,
        },
    )
