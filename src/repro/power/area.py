"""Silicon/photonic area estimates (DSENT-class coarse model).

Area is the third axis (after performance and energy) of the 2012-era ONOC
comparisons.  Constants are round published ballparks for ~45 nm electronics
and first-generation silicon photonics; as with the energy model, only
relative magnitudes between architectures are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NocConfig, OnocConfig
from repro.onoc.devices import RingCensus, SerpentineLayout, mesh_link_length_cm


@dataclass(frozen=True)
class AreaConfig:
    """Per-component footprints."""

    # Electrical (mm^2 / um^2-scale aggregates, 45 nm-ish)
    router_buffer_mm2_per_flit: float = 0.0006   # per buffered flit slot
    router_crossbar_mm2_per_port2: float = 0.0004  # scales with ports^2
    link_mm2_per_mm: float = 0.004               # repeated wires, per mm run
    # Photonic
    ring_mm2: float = 0.0001                      # 10 um ring + tuner
    waveguide_mm2_per_mm: float = 0.0005          # pitch-limited strip
    coupler_mm2: float = 0.01

    def __post_init__(self) -> None:
        for name in ("router_buffer_mm2_per_flit", "router_crossbar_mm2_per_port2",
                     "link_mm2_per_mm", "ring_mm2", "waveguide_mm2_per_mm",
                     "coupler_mm2"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True)
class AreaReport:
    """Component breakdown in mm^2."""

    name: str
    components: dict

    @property
    def total_mm2(self) -> float:
        return sum(self.components.values())

    def as_row(self) -> dict:
        return {
            "network": self.name,
            **{k: round(v, 3) for k, v in self.components.items()},
            "total_mm2": round(self.total_mm2, 3),
        }


def electrical_area(cfg: NocConfig, area_cfg: AreaConfig | None = None,
                    link_mm: float = 2.0) -> AreaReport:
    """Electrical NoC area: buffers + crossbars + links."""
    a = area_cfg or AreaConfig()
    n = cfg.num_nodes
    ports = 5 if cfg.topology in ("mesh", "torus") else 3
    buffers = n * ports * cfg.num_vcs * cfg.vc_depth * a.router_buffer_mm2_per_flit
    crossbars = n * ports * ports * a.router_crossbar_mm2_per_port2
    # Count directed links once per direction.
    if cfg.topology == "mesh":
        links = 2 * (cfg.width - 1) * cfg.height + 2 * (cfg.height - 1) * cfg.width
    elif cfg.topology == "torus":
        links = 2 * n * 2
    else:
        links = 2 * n
    link_area = links * link_mm * a.link_mm2_per_mm
    return AreaReport(
        name=f"electrical_{cfg.topology}_{cfg.width}x{cfg.height}",
        components={"buffers": buffers, "crossbars": crossbars,
                    "links": link_area},
    )


def optical_area(cfg: OnocConfig, census: RingCensus,
                 area_cfg: AreaConfig | None = None) -> AreaReport:
    """Optical network area: rings + waveguides + couplers."""
    a = area_cfg or AreaConfig()
    rings = census.total * a.ring_mm2
    if cfg.topology in ("crossbar", "swmr_crossbar", "awgr"):
        wg_mm = SerpentineLayout(cfg).total_length_cm * 10.0
    else:
        side = cfg.mesh_side
        hops = 2 * side * (side - 1)
        wg_mm = hops * mesh_link_length_cm(cfg) * 10.0
    waveguides = wg_mm * a.waveguide_mm2_per_mm
    couplers = 2 * a.coupler_mm2   # on/off chip laser coupling
    return AreaReport(
        name=f"optical_{cfg.topology}_{cfg.num_nodes}n",
        components={"rings": rings, "waveguides": waveguides,
                    "couplers": couplers},
    )
