"""Single-pass (Welford) summary statistics.

Used everywhere a latency/occupancy distribution is accumulated without
storing samples; numerically stable for the hundreds of millions of samples
long simulations produce.
"""

from __future__ import annotations

import math


class OnlineStats:
    """Count / mean / variance / min / max accumulated one sample at a time."""

    __slots__ = ("count", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        """Accumulate one sample."""
        self.count += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def merge(self, other: "OnlineStats") -> None:
        """Fold another accumulator into this one (parallel merge formula)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        n = n1 + n2
        self._mean += delta * n2 / n
        self._m2 += other._m2 + delta * delta * n1 * n2 / n
        self.count = n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than 2 samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def as_dict(self) -> dict[str, float]:
        """Plain-dict snapshot for reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "total": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OnlineStats(n={self.count}, mean={self.mean:.3f}, "
            f"std={self.std:.3f}, min={self.min}, max={self.max})"
        )
