"""Per-run statistics containers shared by both network simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.stats.histogram import Histogram
from repro.stats.online import OnlineStats


class LatencyRecorder:
    """Records end-to-end message latency samples plus a histogram."""

    __slots__ = ("stats", "hist", "by_message")

    def __init__(self, bin_width: int = 2, num_bins: int = 512,
                 keep_per_message: bool = False) -> None:
        self.stats = OnlineStats()
        self.hist = Histogram(bin_width=bin_width, num_bins=num_bins)
        # message-id -> latency; only kept when the accuracy experiments need
        # per-message matching (costs memory on long runs).
        self.by_message: Optional[dict[int, int]] = {} if keep_per_message else None

    def record(self, msg_id: int, latency: int) -> None:
        """Record one delivered message's end-to-end latency (cycles)."""
        if latency < 0:
            raise ValueError(f"negative latency {latency} for message {msg_id}")
        self.stats.add(latency)
        self.hist.add(latency)
        if self.by_message is not None:
            self.by_message[msg_id] = latency

    @property
    def mean(self) -> float:
        return self.stats.mean

    @property
    def count(self) -> int:
        return self.stats.count


@dataclass
class NetworkStats:
    """Aggregate network-level counters for one simulation run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    flits_delivered: int = 0
    bytes_delivered: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    # per-hop / arbitration detail
    hop_count: OnlineStats = field(default_factory=OnlineStats)
    queueing_delay: OnlineStats = field(default_factory=OnlineStats)

    def throughput_flits_per_cycle(self, cycles: int) -> float:
        """Delivered-flit throughput over ``cycles`` (0 for empty runs)."""
        return self.flits_delivered / cycles if cycles > 0 else 0.0

    def in_flight(self) -> int:
        """Messages injected but not yet delivered."""
        return self.messages_sent - self.messages_delivered


@dataclass
class RunSummary:
    """Top-level result of one full simulation run."""

    label: str
    exec_time_cycles: int
    wall_clock_s: float
    network: NetworkStats
    extra: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flat dict suitable for table printing."""
        return {
            "label": self.label,
            "exec_time_cycles": self.exec_time_cycles,
            "wall_clock_s": round(self.wall_clock_s, 3),
            "messages": self.network.messages_delivered,
            "avg_latency": round(self.network.latency.mean, 2),
            **self.extra,
        }
