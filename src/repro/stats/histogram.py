"""Fixed-width bucket histogram with overflow bucket."""

from __future__ import annotations

from typing import Iterable

import numpy as np


class Histogram:
    """Integer-sample histogram with ``num_bins`` buckets of ``bin_width``.

    Samples >= ``num_bins * bin_width`` land in the overflow bucket; this
    keeps the memory footprint constant while still exposing the tail mass,
    which matters for load-latency curves near saturation.
    """

    __slots__ = ("bin_width", "num_bins", "_counts", "overflow", "count")

    def __init__(self, bin_width: int = 1, num_bins: int = 256) -> None:
        if bin_width < 1:
            raise ValueError(f"bin_width must be >= 1, got {bin_width}")
        if num_bins < 1:
            raise ValueError(f"num_bins must be >= 1, got {num_bins}")
        self.bin_width = bin_width
        self.num_bins = num_bins
        self._counts = np.zeros(num_bins, dtype=np.int64)
        self.overflow = 0
        self.count = 0

    def add(self, x: int) -> None:
        """Accumulate one non-negative sample."""
        if x < 0:
            raise ValueError(f"histogram samples must be >= 0, got {x}")
        idx = x // self.bin_width
        if idx >= self.num_bins:
            self.overflow += 1
        else:
            self._counts[idx] += 1
        self.count += 1

    def add_many(self, xs: Iterable[int]) -> None:
        """Bulk accumulate (vectorised for arrays)."""
        arr = np.asarray(list(xs) if not isinstance(xs, np.ndarray) else xs)
        if arr.size == 0:
            return
        if (arr < 0).any():
            raise ValueError("histogram samples must be >= 0")
        idx = arr // self.bin_width
        over = idx >= self.num_bins
        self.overflow += int(over.sum())
        np.add.at(self._counts, idx[~over], 1)
        self.count += int(arr.size)

    @property
    def counts(self) -> np.ndarray:
        """Read-only view of in-range bucket counts."""
        v = self._counts.view()
        v.flags.writeable = False
        return v

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]); bucket upper edge.

        Returns ``inf`` if the percentile falls in the overflow bucket.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = self.count * q / 100.0
        cum = np.cumsum(self._counts)
        idx = int(np.searchsorted(cum, target, side="left"))
        if idx >= self.num_bins:
            return float("inf")
        return float((idx + 1) * self.bin_width)

    @property
    def mean(self) -> float:
        """Approximate mean using bucket midpoints (overflow excluded)."""
        in_range = self.count - self.overflow
        if in_range == 0:
            return 0.0
        mids = (np.arange(self.num_bins) + 0.5) * self.bin_width
        return float((self._counts * mids).sum() / in_range)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Histogram(n={self.count}, mean~={self.mean:.2f}, "
            f"overflow={self.overflow})"
        )
