"""Accuracy metrics used by the trace-model evaluation.

These implement the definitions in DESIGN.md: per-run execution-time error
and per-message latency MAPE between a trace-driven replay and the
execution-driven reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


def percent_error(measured: float, reference: float) -> float:
    """``|measured - reference| / reference * 100``; reference must be > 0."""
    if reference <= 0:
        raise ValueError(f"reference must be > 0, got {reference}")
    return abs(measured - reference) / reference * 100.0


def signed_percent_error(measured: float, reference: float) -> float:
    """``(measured - reference) / reference * 100`` (positive = overestimate)."""
    if reference <= 0:
        raise ValueError(f"reference must be > 0, got {reference}")
    return (measured - reference) / reference * 100.0


def mean_absolute_percentage_error(
    measured: Sequence[float], reference: Sequence[float]
) -> float:
    """MAPE over paired samples; zero-reference samples are skipped.

    Returns 0.0 when no valid pairs exist.
    """
    m = np.asarray(measured, dtype=np.float64)
    r = np.asarray(reference, dtype=np.float64)
    if m.shape != r.shape:
        raise ValueError(f"shape mismatch: {m.shape} vs {r.shape}")
    mask = r != 0
    if not mask.any():
        return 0.0
    return float(np.mean(np.abs(m[mask] - r[mask]) / np.abs(r[mask])) * 100.0)


@dataclass(frozen=True)
class ErrorReport:
    """Accuracy of one trace replay against the execution-driven reference.

    ``mean_latency_error_pct`` compares the *average* network latency of the
    matched messages (the metric 2012-era trace papers report); the
    per-message MAPE is stricter — it is dominated by arbitration-order noise
    on short control messages and is reported for completeness.
    """

    exec_time_error_pct: float
    exec_time_signed_pct: float
    mean_latency_error_pct: float
    latency_mape_pct: float
    matched_messages: int
    unmatched_messages: int

    @staticmethod
    def compare(
        replay_exec_time: int,
        ref_exec_time: int,
        replay_latencies: Mapping,
        ref_latencies: Mapping,
    ) -> "ErrorReport":
        """Build a report from execution times and per-message latency maps
        (keyed by any hashable message identity shared by both runs).

        Messages present in only one run are counted as unmatched and excluded
        from the latency metrics (they typically stem from protocol races
        resolving differently or from dependency-edge ablation).
        """
        common = sorted(replay_latencies.keys() & ref_latencies.keys())
        unmatched = (
            len(replay_latencies) + len(ref_latencies) - 2 * len(common)
        )
        if common:
            m = [float(replay_latencies[k]) for k in common]
            r = [float(ref_latencies[k]) for k in common]
            mape = mean_absolute_percentage_error(m, r)
            mean_m = sum(m) / len(m)
            mean_r = sum(r) / len(r)
            mean_err = percent_error(mean_m, mean_r) if mean_r > 0 else 0.0
        else:
            mape = 0.0
            mean_err = 0.0
        return ErrorReport(
            exec_time_error_pct=percent_error(replay_exec_time, ref_exec_time),
            exec_time_signed_pct=signed_percent_error(replay_exec_time, ref_exec_time),
            mean_latency_error_pct=mean_err,
            latency_mape_pct=mape,
            matched_messages=len(common),
            unmatched_messages=unmatched,
        )
