"""Online statistics, histograms, and accuracy/error metrics."""

from repro.stats.error import (
    ErrorReport,
    mean_absolute_percentage_error,
    percent_error,
    signed_percent_error,
)
from repro.stats.histogram import Histogram
from repro.stats.online import OnlineStats
from repro.stats.summary import LatencyRecorder, NetworkStats, RunSummary

__all__ = [
    "ErrorReport",
    "Histogram",
    "LatencyRecorder",
    "NetworkStats",
    "OnlineStats",
    "RunSummary",
    "mean_absolute_percentage_error",
    "percent_error",
    "signed_percent_error",
]
