"""Input-queued virtual-channel wormhole router.

Pipeline model: a flit arriving at cycle *t* may traverse the switch at
``t + router_latency`` at the earliest (``ready_time``), which collapses the
classic BW/RC/VA/SA/ST stages into a fixed pipeline depth while preserving
1-flit/cycle/port streaming throughput.  Per cycle the router performs:

1. **VA** — head flits at the front of an input VC that hold a route but no
   output VC try to acquire one.  VC allocation is *atomic* (a downstream VC
   is granted only when empty, i.e. all credits present), so two packets
   never interleave in one buffer.
2. **SA/ST** — input VCs holding an output VC bid for the switch.  Separable
   allocation with a single round-robin priority pointer: at most one grant
   per input port and per output port per cycle, gated on downstream credit.
   Granted flits depart on the link (arriving ``link_latency`` later) and a
   credit returns upstream ``credit_latency`` later.

Deadlock freedom:

* mesh XY/YX — dimension-ordered, safe with any VC count;
* mesh adaptive — Duato: VCs >= 1 are fully adaptive (minimal), VC 0 is an
  escape channel restricted to the XY route;
* torus/ring — dateline: the VC space is split into two classes and a packet
  moves to class 1 when its path crosses a wrap-around link.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.config import MESH, NocConfig, ROUTING_ADAPTIVE
from repro.noc.flit import Flit
from repro.noc.routing import crosses_dateline, productive_ports, route_port
from repro.noc.topology import LOCAL, Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.network import ElectricalNetwork

# Effectively infinite credit pool for the ejection (LOCAL output) port: the
# NI reassembly buffer always sinks flits at link rate.
EJECT_CREDITS = 1 << 30


class InputVC:
    """State of one (input port, VC) buffer."""

    __slots__ = ("port", "vc", "flits", "route_out", "out_vc")

    def __init__(self, port: int, vc: int) -> None:
        self.port = port
        self.vc = vc
        self.flits: deque[Flit] = deque()
        self.route_out: Optional[int] = None   # output port chosen by RC
        self.out_vc: Optional[int] = None      # output VC granted by VA

    def reset_packet_state(self) -> None:
        self.route_out = None
        self.out_vc = None


class Router:
    """One wormhole router; see module docstring for the cycle model."""

    __slots__ = (
        "node",
        "cfg",
        "topo",
        "net",
        "input_vcs",
        "out_alloc",
        "credits",
        "_va_rr",
        "_sa_rr",
        "_all_ivcs",
        "flits_routed",
    )

    def __init__(
        self, node: int, cfg: NocConfig, topo: Topology, net: "ElectricalNetwork"
    ) -> None:
        self.node = node
        self.cfg = cfg
        self.topo = topo
        self.net = net
        nports, nvcs = topo.num_ports, cfg.num_vcs
        self.input_vcs = [
            [InputVC(p, v) for v in range(nvcs)] for p in range(nports)
        ]
        # out_alloc[port][vc] -> (in_port, in_vc) currently owning that output VC
        self.out_alloc: list[list[Optional[tuple[int, int]]]] = [
            [None] * nvcs for _ in range(nports)
        ]
        self.credits = [[cfg.vc_depth] * nvcs for _ in range(nports)]
        self.credits[LOCAL] = [EJECT_CREDITS] * nvcs
        self._va_rr = 0
        self._sa_rr = 0
        # Flattened, fixed iteration order for deterministic round-robin.
        self._all_ivcs = [ivc for port_vcs in self.input_vcs for ivc in port_vcs]
        self.flits_routed = 0

    # ------------------------------------------------------------ interface
    def flit_arrive(self, port: int, vc: int, flit: Flit) -> None:
        """A flit lands in input buffer (port, vc); called by link events."""
        ivc = self.input_vcs[port][vc]
        if len(ivc.flits) >= self.cfg.vc_depth and port != LOCAL:
            raise RuntimeError(
                f"router {self.node} input ({port},{vc}) overflow — "
                "credit protocol violated"
            )
        flit.ready_time = self.net.sim.now + self.cfg.router_latency
        ivc.flits.append(flit)
        self.net.wake(self)

    def credit_arrive(self, port: int, vc: int) -> None:
        """A downstream buffer slot freed up on output (port, vc)."""
        self.credits[port][vc] += 1
        if self.credits[port][vc] > self._credit_cap(port):
            raise RuntimeError(
                f"router {self.node} credit overflow on ({port},{vc})"
            )
        self.net.wake(self)

    def _credit_cap(self, port: int) -> int:
        return EJECT_CREDITS if port == LOCAL else self.cfg.vc_depth

    # ------------------------------------------------------------- VC rules
    def _vc_candidates(self, packet, out_port: int) -> list[int]:
        """Legal output VCs for ``packet`` leaving through ``out_port``."""
        nvcs = self.cfg.num_vcs
        if self.topo.kind != MESH:
            # Dateline classes: lower half = class 0, upper half = class 1.
            half = nvcs // 2
            cls = packet.vc_class or (
                1 if crosses_dateline(self.topo, self.node, out_port) else 0
            )
            return list(range(half, nvcs)) if cls else list(range(half))
        if self.cfg.routing == ROUTING_ADAPTIVE:
            escape = route_port(self.topo, self.cfg.routing, self.node, packet.dst)
            cands = list(range(1, nvcs))
            if out_port == escape:
                cands.append(0)
            return cands
        return list(range(nvcs))

    def _choose_route(self, ivc: InputVC, packet) -> int:
        """Route computation for the head flit of ``packet``."""
        if self.cfg.routing == ROUTING_ADAPTIVE and self.topo.kind == MESH:
            cands = productive_ports(self.topo, self.node, packet.dst)
            if not cands:
                return LOCAL
            if len(cands) == 1:
                return cands[0]
            # Pick the productive port with the most downstream credit on
            # adaptive VCs; ties break toward the lower port number.
            def credit_score(p: int) -> int:
                return sum(self.credits[p][1:])
            return max(cands, key=lambda p: (credit_score(p), -p))
        return route_port(self.topo, self.cfg.routing, self.node, packet.dst)

    # ----------------------------------------------------------- allocation
    def _try_vc_alloc(self, ivc: InputVC) -> bool:
        """Attempt VA for the packet at the head of ``ivc``."""
        head = ivc.flits[0]
        packet = head.packet
        if ivc.route_out is None:
            ivc.route_out = self._choose_route(ivc, packet)
        out_port = ivc.route_out
        for v in self._vc_candidates(packet, out_port):
            if (
                self.out_alloc[out_port][v] is None
                and self.credits[out_port][v] == self._credit_cap(out_port)
            ):
                self.out_alloc[out_port][v] = (ivc.port, ivc.vc)
                ivc.out_vc = v
                return True
        # Adaptive fallback: if no adaptive VC anywhere, retry via escape
        # route next cycle by re-running route computation.
        if self.cfg.routing == ROUTING_ADAPTIVE and self.topo.kind == MESH:
            ivc.route_out = None
        return False

    # ------------------------------------------------------------ main loop
    def cycle(self) -> bool:
        """One clock edge; returns True if work remains pending."""
        now = self.net.sim.now
        ivcs = self._all_ivcs
        n = len(ivcs)

        # --- VC allocation (round-robin over input VCs) -------------------
        pending = False
        for i in range(n):
            ivc = ivcs[(self._va_rr + i) % n]
            if ivc.flits and ivc.out_vc is None and ivc.flits[0].is_head:
                if self._try_vc_alloc(ivc):
                    self._va_rr = (self._va_rr + i + 1) % n
                else:
                    pending = True

        # --- Switch allocation + traversal --------------------------------
        used_in: set[int] = set()
        used_out: set[int] = set()
        granted_any = False
        for i in range(n):
            ivc = ivcs[(self._sa_rr + i) % n]
            if not ivc.flits or ivc.out_vc is None:
                continue
            flit = ivc.flits[0]
            if flit.ready_time > now:
                pending = True
                continue
            out_port = ivc.route_out
            assert out_port is not None
            if ivc.port in used_in or out_port in used_out:
                pending = True
                continue
            if self.credits[out_port][ivc.out_vc] <= 0:
                pending = True
                continue
            self._traverse(ivc, flit, out_port, ivc.out_vc)
            used_in.add(ivc.port)
            used_out.add(out_port)
            if not granted_any:
                self._sa_rr = (self._sa_rr + i + 1) % n
                granted_any = True
            if ivc.flits:
                pending = True

        return pending or any(ivc.flits for ivc in ivcs)

    def _traverse(self, ivc: InputVC, flit: Flit, out_port: int, out_vc: int) -> None:
        """Move one granted flit through the switch onto the output link."""
        ivc.flits.popleft()
        self.credits[out_port][out_vc] -= 1
        self.flits_routed += 1
        packet = flit.packet

        if flit.is_head and self.topo.kind != MESH:
            if crosses_dateline(self.topo, self.node, out_port):
                packet.vc_class = 1

        if flit.is_tail:
            # Release the output VC; the input VC becomes ready for the next
            # packet's head.
            self.out_alloc[out_port][ivc.out_vc] = None
            ivc.reset_packet_state()

        self.net.send_flit(self.node, out_port, out_vc, flit)
        self.net.return_credit(self.node, ivc.port, ivc.vc)

    # ------------------------------------------------------------- queries
    def buffered_flits(self) -> int:
        """Total flits currently buffered (occupancy metric + test hook)."""
        return sum(len(ivc.flits) for ivc in self._all_ivcs)
