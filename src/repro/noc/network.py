"""The electrical NoC: routers + links + NIs behind the NetworkAdapter API.

Orchestration: components (routers, NIs) that have work are kept in an
*active set*; a single network tick event per cycle runs ``cycle()`` on each
active component in deterministic (sorted-key) order and reschedules itself
only while anything remains active.  Flit and credit transfers are plain
simulator events with sub-tick priority, so state landed by time *t* is
visible to the tick at *t*.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import NocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.noc.flit import Flit
from repro.noc.interface import NetworkInterface
from repro.noc.router import Router
from repro.noc.topology import LOCAL, Topology
from repro.obs.probes import net_probe
from repro.stats import NetworkStats, LatencyRecorder

# Event priorities: transfers land before the tick evaluates the cycle.
_PRIO_TRANSFER = 0
_PRIO_TICK = 10


class ElectricalNetwork:
    """Cycle-level wormhole NoC implementing :class:`repro.net.NetworkAdapter`."""

    #: Wormhole VC arbitration can interleave same-pair messages whose
    #: flights overlap, so delivery order is not guaranteed to match
    #: injection order.
    in_order_channels = False

    def __init__(
        self,
        sim: Simulator,
        cfg: NocConfig,
        keep_per_message_latency: bool = False,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.topo = Topology(cfg)
        self.routers = [Router(n, cfg, self.topo, self) for n in range(cfg.num_nodes)]
        self.nis = [NetworkInterface(n, cfg, self) for n in range(cfg.num_nodes)]
        self.stats = NetworkStats(
            latency=LatencyRecorder(keep_per_message=keep_per_message_latency)
        )
        self._delivery_handler: Optional[Callable[[Message], None]] = None
        # Active set keyed by a stable integer: routers 0..N-1, NIs N..2N-1.
        self._active: dict[int, object] = {}
        self._tick_scheduled = False
        self._in_tick = False
        # Per-directed-link flit counters for utilisation reports.
        self.link_flits: dict[tuple[int, int], int] = {}
        # None unless repro.obs instrumentation was enabled at build time.
        self._probe = net_probe("electrical")

    # ------------------------------------------------------ adapter API
    @property
    def num_nodes(self) -> int:
        return self.cfg.num_nodes

    def send(self, msg: Message) -> None:
        """Inject ``msg`` at the current cycle (source queueing included)."""
        n = self.cfg.num_nodes
        if not (0 <= msg.src < n and 0 <= msg.dst < n):
            raise ValueError(f"message endpoints out of range: {msg}")
        if msg.src == msg.dst:
            raise ValueError(f"self-send not routed through the network: {msg}")
        msg.inject_time = self.sim.now
        self.stats.messages_sent += 1
        if self._probe is not None:
            self._probe.on_inject(self.sim.now, msg)
        self.nis[msg.src].enqueue(msg)

    def set_delivery_handler(self, fn: Callable[[Message], None]) -> None:
        self._delivery_handler = fn

    # -------------------------------------------------------- tick engine
    def _key(self, comp: object) -> int:
        if isinstance(comp, Router):
            return comp.node
        assert isinstance(comp, NetworkInterface)
        return self.cfg.num_nodes + comp.node

    def wake(self, comp: object) -> None:
        """Mark a component as having work; guarantees a tick will run."""
        self._active[self._key(comp)] = comp
        if not self._tick_scheduled:
            self._tick_scheduled = True
            # A wake during the tick itself must target the *next* cycle.
            t = self.sim.now + 1 if self._in_tick else self.sim.now
            self.sim.schedule(t, self._tick, priority=_PRIO_TICK)

    def _tick(self) -> None:
        self._tick_scheduled = False
        self._in_tick = True
        try:
            still_active: dict[int, object] = {}
            for key in sorted(self._active):
                comp = self._active[key]
                if comp.cycle():  # type: ignore[attr-defined]
                    still_active[key] = comp
            self._active = still_active
        finally:
            self._in_tick = False
        if self._active and not self._tick_scheduled:
            self._tick_scheduled = True
            self.sim.schedule(self.sim.now + 1, self._tick, priority=_PRIO_TICK)

    # -------------------------------------------------- transfer plumbing
    def inject_flit(self, node: int, vc: int, flit: Flit) -> None:
        """NI -> router LOCAL input port, one link latency away."""
        self.sim.schedule(
            self.sim.now + self.cfg.link_latency,
            self.routers[node].flit_arrive,
            (LOCAL, vc, flit),
            priority=_PRIO_TRANSFER,
        )

    def send_flit(self, node: int, out_port: int, out_vc: int, flit: Flit) -> None:
        """Router output -> downstream input buffer (or NI ejection)."""
        now = self.sim.now
        if out_port == LOCAL:
            self.sim.schedule(
                now + self.cfg.link_latency,
                self.nis[node].flit_eject,
                (flit,),
                priority=_PRIO_TRANSFER,
            )
            # The NI sink always has room; recycle the ejection credit so the
            # LOCAL output VC can be atomically re-allocated.
            self.sim.schedule(
                now + self.cfg.credit_latency,
                self.routers[node].credit_arrive,
                (LOCAL, out_vc),
                priority=_PRIO_TRANSFER,
            )
        else:
            nb = self.topo.neighbor(node, out_port)
            if nb is None:
                raise RuntimeError(
                    f"router {node} routed out dead port {out_port} — routing bug"
                )
            nbr, in_port = nb
            self.sim.schedule(
                now + self.cfg.link_latency,
                self.routers[nbr].flit_arrive,
                (in_port, out_vc, flit),
                priority=_PRIO_TRANSFER,
            )
            key = (node, out_port)
            self.link_flits[key] = self.link_flits.get(key, 0) + 1

    def return_credit(self, node: int, in_port: int, in_vc: int) -> None:
        """Input buffer slot at ``node`` freed: credit the upstream sender."""
        now = self.sim.now
        if in_port == LOCAL:
            self.sim.schedule(
                now + self.cfg.credit_latency,
                self.nis[node].credit_arrive,
                (in_vc,),
                priority=_PRIO_TRANSFER,
            )
        else:
            nb = self.topo.neighbor(node, in_port)
            assert nb is not None, "credit for a dead port"
            upstream, upstream_out_port = nb
            self.sim.schedule(
                now + self.cfg.credit_latency,
                self.routers[upstream].credit_arrive,
                (upstream_out_port, in_vc),
                priority=_PRIO_TRANSFER,
            )

    # ------------------------------------------------------------ delivery
    def deliver(self, msg: Message) -> None:
        """Tail flit reassembled at the destination NI."""
        msg.deliver_time = self.sim.now
        st = self.stats
        st.messages_delivered += 1
        st.bytes_delivered += msg.size_bytes
        st.flits_delivered += self.cfg.flits_for_bytes(msg.size_bytes)
        st.latency.record(msg.id, msg.latency)
        st.hop_count.add(self.topo.min_hops(msg.src, msg.dst))
        if self._probe is not None:
            self._probe.on_deliver(self.sim.now, msg)
        if msg.on_delivery is not None:
            msg.on_delivery(msg)
        if self._delivery_handler is not None:
            self._delivery_handler(msg)

    # ------------------------------------------------------------- queries
    def quiescent(self) -> bool:
        """True when nothing is queued, buffered, or in flight."""
        return (
            self.stats.in_flight() == 0
            and not self._active
            and all(ni.backlog == 0 for ni in self.nis)
            and all(r.buffered_flits() == 0 for r in self.routers)
        )
