"""Cycle-level electrical wormhole NoC — the paper's baseline simulator.

An input-queued virtual-channel wormhole network in the Garnet/Popnet
tradition: per-hop routers with a ``router_latency``-stage pipeline,
credit-based VC flow control, dimension-order or minimal-adaptive routing,
and mesh / torus / ring topologies.
"""

from repro.noc.flit import Flit, Packet
from repro.noc.network import ElectricalNetwork
from repro.noc.routing import route_port
from repro.noc.topology import Coord, Topology

__all__ = [
    "Coord",
    "ElectricalNetwork",
    "Flit",
    "Packet",
    "Topology",
    "route_port",
]
