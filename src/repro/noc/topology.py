"""Topology descriptions: node coordinates, ports, neighbour wiring.

Port numbering is fixed per topology family so routing functions can use
plain integers in the hot path:

* mesh / torus: ``LOCAL=0, NORTH=1, EAST=2, SOUTH=3, WEST=4``
  (x grows east, y grows north; node id = ``y * width + x``)
* ring: ``LOCAL=0, CW=1, CCW=2`` (clockwise = increasing id)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

from repro.config import MESH, NocConfig, RING, TORUS

LOCAL = 0
NORTH = 1
EAST = 2
SOUTH = 3
WEST = 4

CW = 1
CCW = 2

_OPPOSITE_MESH = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}
_OPPOSITE_RING = {CW: CCW, CCW: CW}


@dataclass(frozen=True)
class Coord:
    """2-D mesh coordinate."""

    x: int
    y: int


class Topology:
    """Static wiring of a NoC: who connects to whom through which port."""

    def __init__(self, cfg: NocConfig) -> None:
        self.cfg = cfg
        self.kind = cfg.topology
        self.width = cfg.width
        self.height = cfg.height
        self.num_nodes = cfg.num_nodes
        if self.kind == RING:
            self.num_ports = 3
        else:
            self.num_ports = 5
        # neighbour[node][port] = (neighbour_node, neighbour_input_port) or None
        self._neighbors: list[list[Optional[tuple[int, int]]]] = [
            [None] * self.num_ports for _ in range(self.num_nodes)
        ]
        self._wire()

    # ------------------------------------------------------------- wiring
    def _wire(self) -> None:
        if self.kind in (MESH, TORUS):
            for node in range(self.num_nodes):
                x, y = node % self.width, node // self.width
                for port, (dx, dy) in (
                    (NORTH, (0, 1)),
                    (EAST, (1, 0)),
                    (SOUTH, (0, -1)),
                    (WEST, (-1, 0)),
                ):
                    nx_, ny_ = x + dx, y + dy
                    if self.kind == TORUS:
                        nx_ %= self.width
                        ny_ %= self.height
                    elif not (0 <= nx_ < self.width and 0 <= ny_ < self.height):
                        continue
                    # A 1-wide dimension would wire a node to itself on a
                    # torus; skip those degenerate links.
                    neighbor = ny_ * self.width + nx_
                    if neighbor == node:
                        continue
                    self._neighbors[node][port] = (neighbor, _OPPOSITE_MESH[port])
        else:  # ring
            n = self.num_nodes
            for node in range(n):
                if n > 1:
                    self._neighbors[node][CW] = ((node + 1) % n, CCW)
                    self._neighbors[node][CCW] = ((node - 1) % n, CW)

    # ------------------------------------------------------------ queries
    def coord(self, node: int) -> Coord:
        """Mesh/torus coordinate of ``node``."""
        self._check_node(node)
        return Coord(node % self.width, node // self.width)

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinate ({x},{y}) outside {self.width}x{self.height}")
        return y * self.width + x

    def neighbor(self, node: int, port: int) -> Optional[tuple[int, int]]:
        """``(neighbour_node, neighbour_input_port)`` or None at an edge."""
        self._check_node(node)
        if not (0 <= port < self.num_ports):
            raise ValueError(f"port {port} out of range for {self.kind}")
        return self._neighbors[node][port]

    def output_ports(self, node: int) -> list[int]:
        """Non-LOCAL ports with a live link, ascending."""
        return [p for p in range(1, self.num_ports)
                if self._neighbors[node][p] is not None]

    def min_hops(self, src: int, dst: int) -> int:
        """Minimal hop count between routers (0 if src == dst)."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return 0
        if self.kind == MESH:
            a, b = self.coord(src), self.coord(dst)
            return abs(a.x - b.x) + abs(a.y - b.y)
        if self.kind == TORUS:
            a, b = self.coord(src), self.coord(dst)
            dx = abs(a.x - b.x)
            dy = abs(a.y - b.y)
            return min(dx, self.width - dx) + min(dy, self.height - dy)
        # ring
        d = abs(src - dst)
        return min(d, self.num_nodes - d)

    def to_networkx(self) -> nx.DiGraph:
        """Directed link graph (for analysis and invariant tests)."""
        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_nodes))
        for node in range(self.num_nodes):
            for port in range(1, self.num_ports):
                nb = self._neighbors[node][port]
                if nb is not None:
                    g.add_edge(node, nb[0], out_port=port, in_port=nb[1])
        return g

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Topology({self.kind}, {self.width}x{self.height})"
