"""Post-run electrical-NoC analysis: link utilisation and hotspots.

Turns the network's raw per-link flit counters into the standard
characterisation artifacts: a utilisation matrix, the hottest links, load
imbalance (max/mean), and a bisection-traffic estimate — the numbers an
architect reads before deciding where an optical layer would pay off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MESH, RING
from repro.noc.network import ElectricalNetwork
from repro.noc.topology import EAST, NORTH, SOUTH, WEST

_MESH_PORT_NAMES = {NORTH: "N", EAST: "E", SOUTH: "S", WEST: "W"}
_RING_PORT_NAMES = {1: "CW", 2: "CCW"}


@dataclass(frozen=True)
class LinkLoad:
    """Utilisation of one directed link."""

    src_node: int
    out_port: int
    port_name: str
    flits: int
    utilization: float      # flits per cycle over the observation window

    def label(self) -> str:
        return f"{self.src_node}->{self.port_name}"


@dataclass(frozen=True)
class LinkReport:
    """Aggregate link statistics for one run."""

    cycles: int
    links: list[LinkLoad]
    mean_utilization: float
    max_utilization: float
    imbalance: float            # max / mean (1.0 = perfectly even)
    bisection_flits: int        # flits crossing the vertical mid-cut (mesh)

    def hottest(self, k: int = 5) -> list[LinkLoad]:
        return sorted(self.links, key=lambda ld: -ld.flits)[:k]


def analyze_links(net: ElectricalNetwork, cycles: int) -> LinkReport:
    """Build a :class:`LinkReport` from a finished run.

    ``cycles`` is the observation window (normally the run's exec time).
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be > 0, got {cycles}")
    names = _RING_PORT_NAMES if net.cfg.topology == RING else _MESH_PORT_NAMES
    loads = [
        LinkLoad(src_node=node, out_port=port,
                 port_name=names.get(port, str(port)), flits=flits,
                 utilization=flits / cycles)
        for (node, port), flits in sorted(net.link_flits.items())
    ]
    utils = [ld.utilization for ld in loads]
    mean_u = sum(utils) / len(utils) if utils else 0.0
    max_u = max(utils, default=0.0)

    # Bisection estimate: flits on east/west links crossing the mid column.
    bisection = 0
    if net.cfg.topology == MESH and net.cfg.width > 1:
        mid = net.cfg.width // 2
        for (node, port), flits in net.link_flits.items():
            x = node % net.cfg.width
            if (port == EAST and x == mid - 1) or (port == WEST and x == mid):
                bisection += flits
    return LinkReport(
        cycles=cycles,
        links=loads,
        mean_utilization=mean_u,
        max_utilization=max_u,
        imbalance=(max_u / mean_u) if mean_u > 0 else 0.0,
        bisection_flits=bisection,
    )
