"""Network interface (NI): message <-> packet <-> flit boundary.

The NI owns the source queue (so message latency includes source queueing,
the standard convention for load-latency curves), serialises one packet at a
time at one flit/cycle into its router's LOCAL input port under credit flow
control, and reassembles ejected flits back into messages.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.config import NocConfig
from repro.net import Message
from repro.noc.flit import Flit, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.network import ElectricalNetwork


class NetworkInterface:
    """Injection/ejection endpoint at one node."""

    __slots__ = (
        "node",
        "cfg",
        "net",
        "queue",
        "_flits",
        "_flit_idx",
        "_vc",
        "_msg",
        "credits",
        "_rx_count",
        "packets_injected",
    )

    def __init__(self, node: int, cfg: NocConfig, net: "ElectricalNetwork") -> None:
        self.node = node
        self.cfg = cfg
        self.net = net
        self.queue: deque[Message] = deque()
        self._flits: Optional[list[Flit]] = None   # current packet's flit train
        self._flit_idx = 0
        self._vc: Optional[int] = None
        self._msg: Optional[Message] = None
        # Credits for the router's LOCAL input port, one counter per VC.
        self.credits = [cfg.vc_depth] * cfg.num_vcs
        self._rx_count: dict[int, int] = {}        # packet id -> flits received
        self.packets_injected = 0

    # -------------------------------------------------------------- inject
    def enqueue(self, msg: Message) -> None:
        """Queue a message for injection (called by the network adapter)."""
        self.queue.append(msg)
        self.net.wake(self)

    def credit_arrive(self, vc: int) -> None:
        """Router freed a LOCAL input buffer slot on ``vc``."""
        self.credits[vc] += 1
        if self.credits[vc] > self.cfg.vc_depth:
            raise RuntimeError(f"NI {self.node} credit overflow on vc {vc}")
        self.net.wake(self)

    def cycle(self) -> bool:
        """Inject up to one flit; returns True if injection work remains."""
        if self._flits is None:
            if not self.queue:
                return False
            self._start_packet(self.queue.popleft())
        assert self._flits is not None and self._vc is not None
        if self.credits[self._vc] > 0:
            flit = self._flits[self._flit_idx]
            self.credits[self._vc] -= 1
            self.net.inject_flit(self.node, self._vc, flit)
            self._flit_idx += 1
            if self._flit_idx == len(self._flits):
                self._flits = None
                self._vc = None
                self._msg = None
        return bool(self.queue) or self._flits is not None

    def _start_packet(self, msg: Message) -> None:
        num_flits = self.cfg.flits_for_bytes(msg.size_bytes)
        packet = Packet(msg.src, msg.dst, num_flits, message=msg)
        packet.inject_time = self.net.sim.now
        self.net.stats.queueing_delay.add(self.net.sim.now - msg.inject_time)
        self._flits = packet.make_flits()
        self._flit_idx = 0
        # Deepest-credit VC first; ties break toward the lowest VC index.
        self._vc = max(range(self.cfg.num_vcs), key=lambda v: (self.credits[v], -v))
        self._msg = msg
        self.packets_injected += 1

    # --------------------------------------------------------------- eject
    def flit_eject(self, flit: Flit) -> None:
        """An ejected flit arrives from the router's LOCAL output."""
        packet = flit.packet
        got = self._rx_count.get(packet.id, 0) + 1
        if flit.is_tail:
            if got != packet.num_flits:
                raise RuntimeError(
                    f"NI {self.node}: tail of packet {packet.id} after "
                    f"{got}/{packet.num_flits} flits — wormhole order broken"
                )
            self._rx_count.pop(packet.id, None)
            msg = packet.message
            if msg is not None:
                self.net.deliver(msg)
        else:
            self._rx_count[packet.id] = got

    # ------------------------------------------------------------- queries
    @property
    def backlog(self) -> int:
        """Messages queued + the partially-injected packet (if any)."""
        return len(self.queue) + (1 if self._flits is not None else 0)
