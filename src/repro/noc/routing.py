"""Routing functions: current node + destination -> output port(s).

All algorithms are *minimal*.  Deadlock freedom:

* mesh XY/YX — dimension order, deadlock-free with any VC count.
* mesh adaptive — minimal-adaptive on VCs >= 1 with XY as the escape path on
  VC 0 (Duato's protocol); see :mod:`repro.noc.router` for the VC discipline.
* torus / ring — dimension order plus dateline VC classes (packets switch
  from VC class 0 to class 1 when crossing the wrap link), handled by the
  router; this module only picks directions.
"""

from __future__ import annotations

from repro.config import MESH, RING, ROUTING_YX, TORUS
from repro.noc.topology import CCW, CW, EAST, LOCAL, NORTH, SOUTH, Topology, WEST


def _mesh_dx_dy(topo: Topology, cur: int, dst: int) -> tuple[int, int]:
    """Signed hop deltas; for torus, the shorter way around each dimension.

    Ties (exactly half-way around) break toward the positive direction.
    """
    a, b = topo.coord(cur), topo.coord(dst)
    dx = b.x - a.x
    dy = b.y - a.y
    if topo.kind == TORUS:
        w, h = topo.width, topo.height
        if abs(dx) > w // 2 or (abs(dx) == w - abs(dx) and dx < 0):
            dx = dx - w if dx > 0 else dx + w
        if abs(dy) > h // 2 or (abs(dy) == h - abs(dy) and dy < 0):
            dy = dy - h if dy > 0 else dy + h
    return dx, dy


def productive_ports(topo: Topology, cur: int, dst: int) -> list[int]:
    """All output ports on a minimal path (empty list means: eject here)."""
    if cur == dst:
        return []
    if topo.kind == RING:
        n = topo.num_nodes
        fwd = (dst - cur) % n
        if fwd < n - fwd:
            return [CW]
        if fwd > n - fwd:
            return [CCW]
        return [CW, CCW]  # equidistant
    dx, dy = _mesh_dx_dy(topo, cur, dst)
    ports: list[int] = []
    if dx > 0:
        ports.append(EAST)
    elif dx < 0:
        ports.append(WEST)
    if dy > 0:
        ports.append(NORTH)
    elif dy < 0:
        ports.append(SOUTH)
    return ports


def route_port(topo: Topology, algorithm: str, cur: int, dst: int) -> int:
    """Deterministic (escape-path) route: one output port, or LOCAL to eject.

    For the adaptive algorithm this returns the XY escape route; the router
    consults :func:`productive_ports` separately for the adaptive candidates.
    """
    if cur == dst:
        return LOCAL
    ports = productive_ports(topo, cur, dst)
    if topo.kind == RING:
        return ports[0]
    if topo.kind in (MESH, TORUS):
        dx, dy = _mesh_dx_dy(topo, cur, dst)
        if algorithm == ROUTING_YX:
            if dy > 0:
                return NORTH
            if dy < 0:
                return SOUTH
            return EAST if dx > 0 else WEST
        # XY order (also the escape path for adaptive)
        if dx > 0:
            return EAST
        if dx < 0:
            return WEST
        return NORTH if dy > 0 else SOUTH
    raise ValueError(f"no routing for topology {topo.kind!r}")


def crosses_dateline(topo: Topology, cur: int, port: int) -> bool:
    """True if leaving ``cur`` through ``port`` wraps around a dimension.

    Wrap links are where torus/ring cyclic dependencies close; packets
    crossing one move to the second dateline VC class.
    """
    if topo.kind == MESH:
        return False
    nb = topo.neighbor(cur, port)
    if nb is None:
        return False
    if topo.kind == RING:
        n = topo.num_nodes
        return (port == CW and cur == n - 1) or (port == CCW and cur == 0)
    x, y = cur % topo.width, cur // topo.width
    return (
        (port == EAST and x == topo.width - 1)
        or (port == WEST and x == 0)
        or (port == NORTH and y == topo.height - 1)
        or (port == SOUTH and y == 0)
    )
