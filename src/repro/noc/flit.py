"""Packets and flits.

One :class:`repro.net.Message` maps to exactly one :class:`Packet`; the NI
serialises it into ``num_flits`` flits (head ... tail).  A single-flit packet
is both head and tail.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.net import Message

_packet_ids = itertools.count()


class Packet:
    """A wormhole packet: the unit of routing and VC allocation."""

    __slots__ = (
        "id",
        "src",
        "dst",
        "num_flits",
        "message",
        "inject_time",
        "vc_class",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        num_flits: int,
        message: Optional[Message] = None,
    ) -> None:
        if num_flits < 1:
            raise ValueError(f"num_flits must be >= 1, got {num_flits}")
        self.id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.num_flits = num_flits
        self.message = message
        self.inject_time: int = -1
        # Dateline VC class for torus/ring deadlock avoidance; flipped to 1
        # when the packet crosses the wrap-around link of a dimension.
        self.vc_class = 0

    def make_flits(self) -> list["Flit"]:
        """Serialise the packet into its flit train."""
        return [Flit(self, i) for i in range(self.num_flits)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Packet(id={self.id}, {self.src}->{self.dst}, {self.num_flits}f)"


class Flit:
    """One flow-control unit.  ``ready_time`` is stamped by each router on
    arrival: the cycle at which the flit has cleared that router's pipeline
    and may compete for the switch."""

    __slots__ = ("packet", "index", "ready_time")

    def __init__(self, packet: Packet, index: int) -> None:
        self.packet = packet
        self.index = index
        self.ready_time = 0

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        return self.index == self.packet.num_flits - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        role = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit(pkt={self.packet.id}, {self.index}/{self.packet.num_flits}, {role})"
