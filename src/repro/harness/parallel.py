"""Parallel sweep runner with an on-disk content-addressed result cache.

Every table/figure in the evaluation is a *sweep*: a list of completely
independent (config, seed, workload) simulations whose results are then
tabulated together.  The kernel is single-threaded by design (see
:class:`repro.engine.events.EventQueue`), so the parallelism lever is to
shard whole simulations across worker processes — this module provides
that, plus a persistent result cache so re-running a benchmark suite only
simulates points it has never seen.

Three pieces:

* :func:`encode_value` / :func:`decode_value` — a JSON codec for result
  objects (dataclasses, tuples, non-string dict keys, numpy scalars) that
  round-trips every result type the experiment drivers produce.
* :class:`SweepTask` — one unit of work: a *module-level* callable plus
  arguments.  The callable is shipped to workers by dotted reference
  (``"module:qualname"``), never pickled, which also makes it part of the
  cache key.
* :class:`SweepRunner` — executes a batch of tasks serially or on a
  :class:`~concurrent.futures.ProcessPoolExecutor`, returns results in
  deterministic submission order, and memoises each task under
  ``sha256(fn + args + kwargs + salt)`` as a JSON file.

Cache invalidation: the key includes :data:`CACHE_SALT`, a code-version
salt bumped whenever simulation semantics change, plus any user salt passed
to the runner, plus :func:`repro.obs.cache_token` — the instrumentation
state.  The token is empty while metrics are disabled (old caches stay
valid) and non-empty while enabled, so turning metrics on can never be
answered from a stale, metrics-less cache entry.  Clearing is just deleting
the directory (or ``python -m repro cache --clear``).

Metrics: when :mod:`repro.obs` instrumentation is enabled, every task —
serial, parallel, or recalled from cache — carries a private registry
snapshot alongside its result.  The runner folds the snapshots together in
submission order (never completion order) into :attr:`SweepRunner.last_metrics`
and the ambient global registry, so ``--jobs 1`` and ``--jobs N`` produce
identical merged counters.

Because simulations are bit-deterministic in (config, seed), a cached
result is indistinguishable from a fresh one, and serial and parallel
execution of the same task list produce identical result lists.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import numbers
import os
import tempfile
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro import obs

#: Bump when simulator semantics change so stale cached results are never
#: returned for the new code.  (v2: tuple-keyed event kernel; v3: replay
#: engine selection — results now depend on TraceConfig.engine; v4: the
#: resilience subsystem — results now depend on TraceConfig.fault_events /
#: mitigation and Scenario.degrade.)
CACHE_SALT = "repro-kernel-v4"

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache location used by the benchmark suite and the CLI.
DEFAULT_CACHE_DIR = Path("benchmarks") / "results" / "cache"


def default_cache_dir() -> Path:
    """Resolve the cache directory: ``$REPRO_CACHE_DIR`` or the repo-local
    ``benchmarks/results/cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else DEFAULT_CACHE_DIR


# ---------------------------------------------------------------------------
# Result codec: JSON with type tags for everything JSON cannot express.
# ---------------------------------------------------------------------------
#
# Encoding rules (decode inverts each):
#   primitives (None/bool/int/float/str)  -> themselves
#   list                                  -> JSON array of encoded items
#   tuple                                 -> {"$": "tuple", "v": [...]}
#   dict (str keys, none named "$")       -> JSON object of encoded values
#   dict (other keys)                     -> {"$": "dict", "v": [[k, v], ...]}
#   dataclass instance                    -> {"$": "dc", "t": "mod:Qual",
#                                             "v": {field: encoded}}
#   numpy scalar                          -> plain int/float
#
# The "$" tag namespace is reserved; a plain dict containing a "$" key is
# encoded through the tagged-dict form so it survives unambiguously.

_TAG = "$"


class CodecError(TypeError):
    """Raised when a value cannot be round-tripped through the cache."""


def encode_value(obj: Any) -> Any:
    """Encode ``obj`` into a JSON-serialisable structure (see module doc)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, numbers.Integral):        # numpy ints
        return int(obj)
    if isinstance(obj, numbers.Real):            # numpy floats
        return float(obj)
    if isinstance(obj, list):
        return [encode_value(x) for x in obj]
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "v": [encode_value(x) for x in obj]}
    if is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            _TAG: "dc",
            "t": f"{cls.__module__}:{cls.__qualname__}",
            "v": {f.name: encode_value(getattr(obj, f.name))
                  for f in fields(obj)},
        }
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and _TAG not in obj:
            return {k: encode_value(v) for k, v in obj.items()}
        return {_TAG: "dict",
                "v": [[encode_value(k), encode_value(v)]
                      for k, v in obj.items()]}
    raise CodecError(
        f"cannot encode {type(obj).__qualname__!r} for the result cache "
        f"(value: {obj!r})"
    )


def decode_value(obj: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(obj, list):
        return [decode_value(x) for x in obj]
    if isinstance(obj, dict):
        tag = obj.get(_TAG)
        if tag is None:
            return {k: decode_value(v) for k, v in obj.items()}
        if tag == "tuple":
            return tuple(decode_value(x) for x in obj["v"])
        if tag == "dict":
            return {decode_value(k): decode_value(v) for k, v in obj["v"]}
        if tag == "dc":
            cls = resolve_callable(obj["t"])
            kwargs = {k: decode_value(v) for k, v in obj["v"].items()}
            return cls(**kwargs)
        raise CodecError(f"unknown codec tag {tag!r}")
    return obj


def resolve_callable(ref: str) -> Any:
    """Import ``"module:qualname"`` and return the attribute."""
    mod_name, _, qualname = ref.partition(":")
    if not mod_name or not qualname:
        raise ValueError(f"bad callable reference {ref!r}; "
                         "expected 'module:qualname'")
    obj: Any = importlib.import_module(mod_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def callable_ref(fn: Union[str, Callable]) -> str:
    """Dotted ``"module:qualname"`` reference for a module-level callable."""
    if isinstance(fn, str):
        return fn
    qualname = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not module or not qualname or "<" in qualname:
        raise ValueError(
            f"sweep tasks need module-level callables, got {fn!r} "
            "(lambdas and closures cannot be shipped to workers or hashed "
            "into cache keys)"
        )
    return f"{module}:{qualname}"


# ---------------------------------------------------------------------------
# Tasks
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepTask:
    """One independent simulation: ``fn(*args, **kwargs)``.

    ``fn`` must be addressable as ``module:qualname`` (a top-level function
    or classmethod) and its arguments must survive the result codec —
    config dataclasses, strings, numbers and containers thereof all do.
    """

    fn: str
    args: Any            # encoded tuple
    kwargs: Any          # encoded dict

    @staticmethod
    def make(fn: Union[str, Callable], *args: Any, **kwargs: Any) -> "SweepTask":
        return SweepTask(
            fn=callable_ref(fn),
            args=encode_value(tuple(args)),
            kwargs=encode_value(dict(kwargs)),
        )

    def cache_key(self, salt: str = "") -> str:
        material = json.dumps(
            {"fn": self.fn, "args": self.args, "kwargs": self.kwargs,
             "salt": CACHE_SALT + salt},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(material.encode()).hexdigest()


def task(fn: Union[str, Callable], *args: Any, **kwargs: Any) -> SweepTask:
    """Sugar: ``task(accuracy_experiment, exp, "fft")``."""
    return SweepTask.make(fn, *args, **kwargs)


def decode_task_call(t: SweepTask) -> tuple[str, tuple, dict]:
    """Decode a task back into ``(fn_ref, args, kwargs)``.

    For front ends that take live arguments rather than encoded tasks —
    :meth:`repro.serve.ServeClient.submit`, notably — so a compiled
    :class:`SweepTask` can be re-submitted without re-deriving the call."""
    return t.fn, tuple(decode_value(t.args)), dict(decode_value(t.kwargs))


def _execute_encoded(
    fn_ref: str, enc_args: Any, enc_kwargs: Any, with_obs: bool = False
) -> Any:
    """Worker entry point: decode → run → encode.

    Results cross the process boundary in encoded form, so the serial and
    parallel paths return byte-identical structures.  With ``with_obs`` the
    task runs under instrumentation on a *private* registry (isolated from
    the caller's ambient metrics, whether this is a worker process or the
    in-process serial path) and the return value is wrapped as
    ``{"result": ..., "obs": <registry snapshot>}``.
    """
    fn = resolve_callable(fn_ref)
    args = decode_value(enc_args)
    kwargs = decode_value(enc_kwargs)
    if not with_obs:
        return encode_value(fn(*args, **kwargs))
    was_enabled = obs.enabled()
    obs.enable(True)
    try:
        with obs.use_registry(obs.Registry()) as reg:
            result = encode_value(fn(*args, **kwargs))
            return {"result": result, "obs": reg.snapshot()}
    finally:
        obs.enable(was_enabled)


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------

class ResultCache:
    """Content-addressed JSON result store shared by every execution front end.

    One entry per :meth:`SweepTask.cache_key`; the blob records the task
    alongside its encoded result so entries are self-describing.  Both
    :class:`SweepRunner` (batch sweeps) and :class:`repro.serve` (the resident
    job service) read and write the same layout under the same keys, so a
    result computed by either is a cache hit for the other.
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)

    def path_for(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def load(self, key: str) -> Optional[Any]:
        """The encoded result stored under ``key``, or None on miss.

        Corrupt or mismatched entries (torn writes, stale layouts) read as
        misses, so callers recompute and overwrite.
        """
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            blob = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None         # corrupt entry: recompute and overwrite
        if blob.get("key") != key:
            return None
        return blob

    def store(self, key: str, t: SweepTask, encoded_result: Any,
              salt: str = "") -> None:
        """Publish ``encoded_result`` under ``key`` atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(
            {"key": key, "fn": t.fn, "args": t.args, "kwargs": t.kwargs,
             "salt": CACHE_SALT + salt,
             "result": encoded_result},
            sort_keys=True,
        )
        # Atomic publish so concurrent sweeps never see a torn file.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def info(self) -> dict:
        """Entry count and total size of the cache directory."""
        d = self.cache_dir
        files = sorted(d.glob("*.json")) if d.is_dir() else []
        return {
            "dir": str(d),
            "entries": len(files),
            "bytes": sum(f.stat().st_size for f in files),
        }

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        d = self.cache_dir
        if not d.is_dir():
            return 0
        removed = 0
        for f in d.glob("*.json"):
            f.unlink()
            removed += 1
        return removed


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

@dataclass
class SweepStats:
    """Execution accounting for one :meth:`SweepRunner.run` call."""

    executed: int = 0
    cached: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.cached


class SweepRunner:
    """Shards independent simulations across processes, with memoisation.

    Parameters
    ----------
    workers:
        Process count.  ``0`` or ``1`` runs in-process (serial); ``None``
        uses ``os.cpu_count()``.  Results are returned in submission order
        either way, and — because simulations are deterministic — are
        bit-identical across worker counts.
    cache_dir:
        Directory for the content-addressed result cache; ``None`` disables
        caching.
    salt:
        Extra cache-key salt on top of :data:`CACHE_SALT` (e.g. a bench
        suite revision).
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache_dir: Union[None, str, Path] = None,
        salt: str = "",
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.cache = (ResultCache(cache_dir) if cache_dir is not None
                      else None)
        self.salt = salt
        self.last_stats = SweepStats()
        # Merged per-task registry snapshot of the last run() while
        # instrumentation was enabled; None otherwise.
        self.last_metrics: Optional[dict] = None

    # ------------------------------------------------------------- caching
    def _cache_load(self, key: str) -> Optional[Any]:
        if self.cache is None:
            return None
        return self.cache.load(key)

    def _cache_store(self, key: str, t: SweepTask, encoded_result: Any) -> None:
        if self.cache is None:
            return
        self.cache.store(key, t, encoded_result,
                         salt=self.salt + obs.cache_token())

    # ------------------------------------------------------------- running
    def run(self, tasks: Sequence[SweepTask]) -> list[Any]:
        """Execute (or recall) every task; results in submission order.

        While :mod:`repro.obs` instrumentation is enabled, each task's
        registry snapshot travels with its result (including through the
        cache) and the snapshots are merged in submission order into
        :attr:`last_metrics` and the ambient global registry — identical
        for any worker count and for cached vs fresh execution.
        """
        tasks = list(tasks)
        with_obs = obs.enabled()
        salt = self.salt + obs.cache_token()
        keys = [t.cache_key(salt) for t in tasks]
        results: list[Any] = [None] * len(tasks)
        encoded: dict[int, Any] = {}
        misses: list[int] = []
        stats = SweepStats()

        for i, key in enumerate(keys):
            blob = self._cache_load(key)
            if blob is not None:
                encoded[i] = blob["result"]
                stats.cached += 1
            else:
                misses.append(i)

        if misses:
            stats.executed = len(misses)
            if self.workers <= 1 or len(misses) == 1:
                for i in misses:
                    t = tasks[i]
                    encoded[i] = _execute_encoded(t.fn, t.args, t.kwargs,
                                                  with_obs)
                for i in misses:
                    self._cache_store(keys[i], tasks[i], encoded[i])
            else:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(misses))
                ) as pool:
                    futs: list[tuple[int, Future]] = [
                        (i, pool.submit(_execute_encoded, tasks[i].fn,
                                        tasks[i].args, tasks[i].kwargs,
                                        with_obs))
                        for i in misses
                    ]
                    for i, fut in futs:
                        encoded[i] = fut.result()
                for i in misses:
                    self._cache_store(keys[i], tasks[i], encoded[i])

        merged = obs.Registry() if with_obs else None
        for i in range(len(tasks)):
            enc = encoded[i]
            if with_obs:
                merged.merge_snapshot(enc["obs"])
                enc = enc["result"]
            results[i] = decode_value(enc)
        if with_obs:
            self.last_metrics = merged.snapshot()
            obs.registry().merge_snapshot(self.last_metrics)
        else:
            self.last_metrics = None
        self.last_stats = stats
        return results

    def map(self, fn: Union[str, Callable], argtuples: Iterable[tuple],
            **common_kwargs: Any) -> list[Any]:
        """``run`` over ``fn(*argtuple, **common_kwargs)`` for each tuple."""
        return self.run([SweepTask.make(fn, *a, **common_kwargs)
                         for a in argtuples])


# ---------------------------------------------------------------------------
# Cache maintenance (used by the CLI and tests)
# ---------------------------------------------------------------------------

def cache_info(cache_dir: Union[str, Path]) -> dict:
    """Entry count and total size of a cache directory."""
    return ResultCache(cache_dir).info()


def cache_clear(cache_dir: Union[str, Path]) -> int:
    """Delete every cache entry; returns the number removed."""
    return ResultCache(cache_dir).clear()
