"""One driver per reconstructed table/figure (ids match DESIGN.md)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.config import (
    ENGINE_EVENT,
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    TRACE_NAIVE,
    TRACE_SELF_CORRECTING,
    TraceConfig,
)
from repro.core import (
    IterationInfo,
    IterativeRefiner,
    compare_to_reference,
    replay_trace,
)
from repro.harness.builders import (
    make_electrical,
    make_optical,
    optical_factory,
    run_execution_driven,
)
from repro.power import (
    EnergyReport,
    electrical_energy_report,
    optical_energy_report,
)
from repro.stats import ErrorReport
from repro.traffic import SyntheticTrafficGenerator, TrafficResult

from dataclasses import replace


# ---------------------------------------------------------------- Fig. 3
def load_latency_sweep(
    make_network: Callable,
    pattern: str,
    rates: Sequence[float],
    seed: int = 1,
    message_bytes: int = 64,
    warmup: int = 500,
    measure: int = 3000,
) -> list[TrafficResult]:
    """Latency vs offered load for one network/pattern (one Fig. 3 series).

    Stops sweeping past the first saturated point (latency is unbounded
    there, so higher rates add no information).
    """
    out: list[TrafficResult] = []
    for rate in rates:
        from repro.engine import Simulator

        sim = Simulator(seed=seed)
        net = make_network(sim)
        gen = SyntheticTrafficGenerator(sim, net, pattern, rate,
                                        message_bytes=message_bytes)
        res = gen.run(warmup=warmup, measure=measure)
        out.append(res)
        if res.saturated:
            break
    return out


# ---------------------------------------------------------------- Fig. 4/5
@dataclass
class AccuracyRow:
    """Accuracy of both trace modes for one workload (Fig. 4 + Fig. 5)."""

    workload: str
    ref_exec_time: int
    naive: ErrorReport
    self_correcting: ErrorReport
    naive_estimate: int
    self_correcting_estimate: int
    extra: dict = field(default_factory=dict)


def accuracy_experiment(
    exp: ExperimentConfig, workload: str, scale: float = 1.0,
    engine: str = ENGINE_EVENT,
) -> AccuracyRow:
    """Capture on the electrical baseline, replay both modes on the ONOC,
    compare against the execution-driven ONOC reference."""
    _, trace, _ = run_execution_driven(exp, workload, "electrical", scale=scale)
    ref_res, ref_trace, _ = run_execution_driven(exp, workload, "optical",
                                                 scale=scale)
    assert trace is not None and ref_trace is not None
    factory = optical_factory(exp.onoc, exp.seed)
    naive = replay_trace(trace, factory,
                         TraceConfig(mode=TRACE_NAIVE, engine=engine))
    sc = replay_trace(trace, factory,
                      TraceConfig(mode=TRACE_SELF_CORRECTING, engine=engine))
    return AccuracyRow(
        workload=workload,
        ref_exec_time=ref_res.exec_time_cycles,
        naive=compare_to_reference(naive, ref_trace),
        self_correcting=compare_to_reference(sc, ref_trace),
        naive_estimate=naive.exec_time_estimate,
        self_correcting_estimate=sc.exec_time_estimate,
        extra={"trace_messages": len(trace)},
    )


# ------------------------------------------------- parallel sweep points
#
# Module-level, fully-picklable task functions: one simulation per call,
# every argument a config dataclass or primitive, so they can be shipped to
# SweepRunner workers and content-hashed into the result cache.

def load_latency_point(
    network: str,
    exp: ExperimentConfig,
    pattern: str,
    rate: float,
    message_bytes: int = 64,
    warmup: int = 500,
    measure: int = 3000,
) -> TrafficResult:
    """One (network, pattern, rate) load-latency simulation.

    ``network`` is ``"electrical"`` or an optical topology name
    (``crossbar``, ``circuit_mesh``, ``swmr_crossbar``, ``awgr``).
    """
    if network == "electrical":
        sim, net = make_electrical(exp.noc, exp.seed)
    else:
        onoc = (exp.onoc if network == exp.onoc.topology
                else replace(exp.onoc, topology=network))
        sim, net = make_optical(onoc, exp.seed)
    gen = SyntheticTrafficGenerator(sim, net, pattern, rate,
                                   message_bytes=message_bytes)
    return gen.run(warmup=warmup, measure=measure)


def load_latency_sweep_parallel(
    runner,
    network: str,
    exp: ExperimentConfig,
    pattern: str,
    rates: Sequence[float],
    message_bytes: int = 64,
    warmup: int = 500,
    measure: int = 3000,
) -> list[TrafficResult]:
    """Parallel/cached version of :func:`load_latency_sweep`.

    All rate points run concurrently; the returned series is then truncated
    just past the first saturated point, matching the serial driver's
    early-stop output exactly.
    """
    from repro.harness.parallel import SweepTask

    results = runner.run([
        SweepTask.make(load_latency_point, network, exp, pattern, rate,
                       message_bytes=message_bytes, warmup=warmup,
                       measure=measure)
        for rate in rates
    ])
    out: list[TrafficResult] = []
    for res in results:
        out.append(res)
        if res.saturated:
            break
    return out


def accuracy_rows_parallel(
    runner, exp: ExperimentConfig, workloads: Sequence[str],
    scale: float = 1.0,
) -> list[AccuracyRow]:
    """One :func:`accuracy_experiment` per workload, sharded across workers."""
    return runner.map(accuracy_experiment, [(exp, wl) for wl in workloads],
                      scale=scale)


def scaled_experiment(cores: int, seed: int) -> ExperimentConfig:
    """A square-mesh experiment config scaled to ``cores`` cores."""
    from repro.config import SystemConfig

    side = int(round(cores ** 0.5))
    return ExperimentConfig(
        system=SystemConfig(num_cores=cores, num_mem_ctrls=max(1, cores // 4)),
        noc=NocConfig(width=side, height=side),
        onoc=OnocConfig(num_nodes=cores),
        seed=seed,
    )


def scalability_point(
    cores: int, seed: int, workload: str, with_accuracy: bool = True,
    engine: str = ENGINE_EVENT,
) -> dict:
    """One core-count point of the Fig. 9 scalability sweep."""
    exp = scaled_experiment(cores, seed)
    cs = case_study(exp, workload)
    entry: dict = {
        "cores": cores,
        "exec_electrical": cs.exec_electrical,
        "exec_optical": cs.exec_optical,
        "speedup_x": round(cs.speedup, 3),
    }
    if with_accuracy:
        acc = accuracy_experiment(exp, workload, engine=engine)
        entry["naive_err_%"] = round(acc.naive.exec_time_error_pct, 2)
        entry["selfcorr_err_%"] = round(
            acc.self_correcting.exec_time_error_pct, 2)
    return entry


def seed_accuracy_point(
    exp: ExperimentConfig, workload: str, seed: int
) -> AccuracyRow:
    """One (workload, seed) accuracy run of the Fig. 13 robustness sweep."""
    return accuracy_experiment(exp.with_seed(seed), workload)


# ---------------------------------------------------------------- Fig. 5
def latency_fidelity_rows(
    exp: ExperimentConfig, workload: str, scale: float = 1.0
) -> list[dict]:
    """Per-message latency fidelity of both replay modes for one workload:
    the two Fig. 5 table rows (naive, self_correcting)."""
    _, trace, _ = run_execution_driven(exp, workload, "electrical", scale=scale)
    _, ref_trace, _ = run_execution_driven(exp, workload, "optical",
                                           scale=scale)
    assert trace is not None and ref_trace is not None
    factory = optical_factory(exp.onoc, exp.seed)
    rows = []
    for mode in (TRACE_NAIVE, TRACE_SELF_CORRECTING):
        rep = compare_to_reference(
            replay_trace(trace, factory, TraceConfig(mode=mode)), ref_trace)
        rows.append({
            "workload": workload,
            "mode": mode,
            "mean_lat_err_%": round(rep.mean_latency_error_pct, 2),
            "per_msg_mape_%": round(rep.latency_mape_pct, 1),
            "matched": rep.matched_messages,
            "unmatched": rep.unmatched_messages,
        })
    return rows


# ---------------------------------------------------------------- Table 5
def area_rows(exp: ExperimentConfig) -> list[dict]:
    """Area of the electrical baseline and every optical architecture
    (Table 5), as flat table rows."""
    from repro.onoc import (
        awgr_ring_census,
        crossbar_ring_census,
        mesh_ring_census,
    )
    from repro.onoc.swmr import swmr_ring_census
    from repro.power import electrical_area, optical_area

    def flat(report, rings_count=""):
        detail = ", ".join(f"{k} {v:.3f}"
                           for k, v in report.components.items())
        return {"network": report.name, "rings": rings_count,
                "breakdown_mm2": detail,
                "total_mm2": round(report.total_mm2, 3)}

    o = exp.onoc
    rows = [flat(electrical_area(exp.noc))]
    for topology, census in (
        ("crossbar", crossbar_ring_census(o.num_nodes, o.num_wavelengths)),
        ("swmr_crossbar", swmr_ring_census(o.num_nodes, o.num_wavelengths)),
        ("awgr", awgr_ring_census(o.num_nodes, o.num_wavelengths)),
        ("circuit_mesh", mesh_ring_census(o.num_nodes, o.num_wavelengths)),
    ):
        cfg = replace(o, topology=topology)
        rows.append(flat(optical_area(cfg, census), census.total))
    return rows


# ---------------------------------------------------------------- Fig. 6
def convergence_experiment(
    exp: ExperimentConfig,
    workload: str,
    scale: float = 1.0,
    max_iterations: int = 10,
    damping: float = 0.5,
) -> tuple[list[IterationInfo], int]:
    """Offline iterative self-correction history + the reference exec time."""
    _, trace, _ = run_execution_driven(exp, workload, "electrical", scale=scale)
    ref_res, _, _ = run_execution_driven(exp, workload, "optical",
                                         capture=False, scale=scale)
    assert trace is not None
    refiner = IterativeRefiner(
        trace,
        optical_factory(exp.onoc, exp.seed),
        max_iterations=max_iterations,
        convergence_tol=exp.trace.convergence_tol,
        damping=damping,
    )
    result = refiner.run()
    return result.extra["history"], ref_res.exec_time_cycles


# ---------------------------------------------------------------- Table 2
@dataclass
class SimTimeRow:
    """Wall-clock cost of each methodology for one workload (Table 2)."""

    workload: str
    exec_driven_s: float
    naive_replay_s: float
    self_correcting_s: float
    capture_overhead_s: float     # execution-driven run with capture enabled

    @property
    def replay_speedup(self) -> float:
        """Execution-driven time over self-correcting replay time."""
        return (
            self.exec_driven_s / self.self_correcting_s
            if self.self_correcting_s > 0 else float("inf")
        )


def simtime_experiment(
    exp: ExperimentConfig, workload: str, scale: float = 1.0,
    engine: str = ENGINE_EVENT,
) -> SimTimeRow:
    """Wall-clock comparison on the *optical* target network: full-system
    execution-driven vs trace replays ("not substantially extend the total
    simulation time")."""
    cap_res, trace, _ = run_execution_driven(exp, workload, "electrical",
                                             scale=scale)
    ref_res, _, _ = run_execution_driven(exp, workload, "optical",
                                         capture=False, scale=scale)
    assert trace is not None
    factory = optical_factory(exp.onoc, exp.seed)
    naive = replay_trace(trace, factory,
                         TraceConfig(mode=TRACE_NAIVE, engine=engine))
    sc = replay_trace(trace, factory,
                      TraceConfig(mode=TRACE_SELF_CORRECTING, engine=engine))
    return SimTimeRow(
        workload=workload,
        exec_driven_s=ref_res.wall_clock_s,
        naive_replay_s=naive.wall_clock_s,
        self_correcting_s=sc.wall_clock_s,
        capture_overhead_s=cap_res.wall_clock_s,
    )


# ---------------------------------------------------------------- Table 3
@dataclass
class CaseStudyRow:
    """ONOC vs electrical baseline for one application (Table 3)."""

    workload: str
    exec_electrical: int
    exec_optical: int
    avg_latency_electrical: float
    avg_latency_optical: float
    messages: int

    @property
    def speedup(self) -> float:
        return self.exec_electrical / self.exec_optical

    @property
    def latency_reduction_pct(self) -> float:
        if self.avg_latency_electrical == 0:
            return 0.0
        return (1 - self.avg_latency_optical / self.avg_latency_electrical) * 100


def case_study(
    exp: ExperimentConfig, workload: str, scale: float = 1.0
) -> CaseStudyRow:
    """The paper's headline comparison: the application on the ONOC vs the
    baseline electrical NoC, both execution-driven."""
    res_e, _, _ = run_execution_driven(exp, workload, "electrical",
                                       capture=False, scale=scale)
    res_o, _, _ = run_execution_driven(exp, workload, "optical",
                                       capture=False, scale=scale)
    return CaseStudyRow(
        workload=workload,
        exec_electrical=res_e.exec_time_cycles,
        exec_optical=res_o.exec_time_cycles,
        avg_latency_electrical=res_e.avg_network_latency,
        avg_latency_optical=res_o.avg_network_latency,
        messages=res_o.messages,
    )


# ---------------------------------------------------------------- Table 4
def power_experiment(
    exp: ExperimentConfig, workload: str, scale: float = 1.0
) -> tuple[EnergyReport, EnergyReport]:
    """Energy of the case-study run on each network (Table 4)."""
    res_e, _, net_e = run_execution_driven(exp, workload, "electrical",
                                           capture=False, scale=scale)
    res_o, _, net_o = run_execution_driven(exp, workload, "optical",
                                           capture=False, scale=scale)
    return (
        electrical_energy_report(net_e, res_e.exec_time_cycles),
        optical_energy_report(net_o, res_o.exec_time_cycles),
    )


# ---------------------------------------------------------------- Fig. 7
def ablation_dep_fraction(
    exp: ExperimentConfig,
    workload: str,
    fractions: Sequence[float],
    scale: float = 1.0,
    gap_policy: Optional[str] = None,
) -> list[tuple[float, ErrorReport]]:
    """Accuracy vs fraction of dependency edges kept (annotation-completeness
    sensitivity).  ``gap_policy`` selects the degraded-gap policy applied to
    the ablated records (default: the TraceConfig default, ``neighbor_gap``).
    """
    _, trace, _ = run_execution_driven(exp, workload, "electrical", scale=scale)
    _, ref_trace, _ = run_execution_driven(exp, workload, "optical", scale=scale)
    assert trace is not None and ref_trace is not None
    factory = optical_factory(exp.onoc, exp.seed)
    out = []
    for frac in fractions:
        cfg = TraceConfig(mode=TRACE_SELF_CORRECTING, keep_dep_fraction=frac)
        if gap_policy is not None:
            cfg = replace(cfg, degraded_gap_policy=gap_policy)
        res = replay_trace(trace, factory, cfg)
        out.append((frac, compare_to_reference(res, ref_trace)))
    return out


# ------------------------------------------------------------- resilience
def resilience_point(
    exp: ExperimentConfig,
    workload: str,
    degrade: str,
    intensity: float,
    mitigation: str,
    scale: float = 1.0,
    engine: str = ENGINE_EVENT,
    fault_events: tuple = (),
) -> dict:
    """One degraded replay of the resilience subsystem: capture on the
    electrical baseline, replay self-correcting on the ONOC while a seeded
    fault timeseries degrades the fabric mid-replay, and account the
    mitigation policy's penalty against the pristine replay.

    ``fault_events`` overrides the generated timeseries with an explicit
    ``(time, target, severity)`` tuple list (e.g. a checked-in reference
    file); otherwise ``degrade`` names '+'-joined generator families
    seeded by ``exp.seed`` over the trace's injection span.
    """
    _, trace, _ = run_execution_driven(exp, workload, "electrical",
                                       scale=scale)
    assert trace is not None
    if not fault_events and degrade:
        from repro.resilience import generate_timeseries

        horizon = max((r.t_inject for r in trace.records), default=1)
        fault_events = generate_timeseries(
            degrade, seed=exp.seed, num_nodes=exp.onoc.num_nodes,
            horizon=max(1, horizon), intensity=intensity).as_tuples()
    factory = optical_factory(exp.onoc, exp.seed)
    stock = replay_trace(
        trace, factory,
        TraceConfig(mode=TRACE_SELF_CORRECTING, engine=engine))
    degraded = replay_trace(
        trace, factory,
        TraceConfig(mode=TRACE_SELF_CORRECTING, engine=engine,
                    fault_events=tuple(fault_events),
                    mitigation=mitigation))
    res = degraded.extra.get("resilience", {})
    pen = res.get("penalty", {})
    slowdown = (degraded.exec_time_estimate - stock.exec_time_estimate) \
        / max(1, stock.exec_time_estimate) * 100
    return {
        "workload": workload,
        "mitigation": mitigation,
        "degrade": degrade,
        "intensity": intensity,
        "events": res.get("events", len(fault_events)),
        "exec_stock": stock.exec_time_estimate,
        "exec_degraded": degraded.exec_time_estimate,
        "slowdown_pct": round(slowdown, 2),
        "penalty": pen,
        "curve": res.get("curve", []),
    }


# ---------------------------------------------------------------- Fig. 8
def ablation_network_mismatch(
    exp: ExperimentConfig,
    workload: str,
    wavelength_counts: Sequence[int],
    scale: float = 1.0,
) -> list[tuple[int, ErrorReport, ErrorReport]]:
    """Accuracy vs capture/target speed mismatch.

    The target ONOC's bandwidth is swept via its wavelength count; for each
    point the electrical-captured trace is replayed naive and self-correcting
    against a fresh execution-driven reference on that ONOC.  Returns
    ``(wavelengths, naive_report, self_correcting_report)`` triples.
    """
    _, trace, _ = run_execution_driven(exp, workload, "electrical", scale=scale)
    assert trace is not None
    out = []
    for wl_count in wavelength_counts:
        onoc = replace(exp.onoc, num_wavelengths=wl_count)
        exp_v = replace(exp, onoc=onoc)
        _, ref_trace, _ = run_execution_driven(exp_v, workload, "optical",
                                               scale=scale)
        assert ref_trace is not None
        factory = optical_factory(onoc, exp.seed)
        naive = replay_trace(trace, factory, TraceConfig(mode=TRACE_NAIVE))
        sc = replay_trace(trace, factory,
                          TraceConfig(mode=TRACE_SELF_CORRECTING))
        out.append((
            wl_count,
            compare_to_reference(naive, ref_trace),
            compare_to_reference(sc, ref_trace),
        ))
    return out
