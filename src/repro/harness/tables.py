"""Plain-text table rendering for benchmark/experiment output."""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render dict rows as an aligned ASCII table (stable column order)."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())

    def fmt(v: Any) -> str:
        if isinstance(v, bool):
            return "yes" if v else "no"
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    table = [[fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in table:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
