"""Experiment drivers: one function per paper table/figure (see DESIGN.md)."""

from repro.harness.builders import (
    electrical_factory,
    make_electrical,
    make_optical,
    optical_factory,
    run_execution_driven,
)
from repro.harness.experiments import (
    AccuracyRow,
    CaseStudyRow,
    SimTimeRow,
    accuracy_experiment,
    ablation_dep_fraction,
    ablation_network_mismatch,
    case_study,
    convergence_experiment,
    load_latency_sweep,
    power_experiment,
    simtime_experiment,
)
from repro.harness.report import generate_report
from repro.harness.tables import format_table

__all__ = [
    "AccuracyRow",
    "CaseStudyRow",
    "SimTimeRow",
    "ablation_dep_fraction",
    "ablation_network_mismatch",
    "accuracy_experiment",
    "case_study",
    "convergence_experiment",
    "electrical_factory",
    "format_table",
    "generate_report",
    "load_latency_sweep",
    "make_electrical",
    "make_optical",
    "optical_factory",
    "power_experiment",
    "run_execution_driven",
    "simtime_experiment",
]
