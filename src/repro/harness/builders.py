"""Construction helpers shared by all experiments."""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.config import ExperimentConfig, NocConfig, OnocConfig, SystemConfig
from repro.core import Trace, TraceCapture
from repro.engine import Simulator
from repro.net import NetworkAdapter
from repro.noc import ElectricalNetwork
from repro.obs.probes import attach_kernel_probe
from repro.onoc import build_optical_network, topology_in_order_channels
from repro.system import FullSystem, SystemResult, build_workload

NetworkFactory = Callable[[], tuple[Simulator, NetworkAdapter]]


def backend_in_order_channels(name: str) -> bool:
    """Whether backend ``name`` ("electrical" or an optical topology)
    guarantees per-(src, dst) FIFO delivery.  Drives the strict form of the
    channel-monotonicity invariant in :mod:`repro.validate.invariants`."""
    if name == "electrical":
        return ElectricalNetwork.in_order_channels
    return topology_in_order_channels(name)

# Safety net for execution-driven runs; generously above any default-scale
# workload's real execution time.
MAX_EXEC_CYCLES = 50_000_000


def make_electrical(
    cfg: NocConfig, seed: int, keep_per_message_latency: bool = False
) -> tuple[Simulator, ElectricalNetwork]:
    sim = Simulator(seed=seed)
    attach_kernel_probe(sim)        # no-op (and no run-loop cost) when obs is off
    return sim, ElectricalNetwork(sim, cfg, keep_per_message_latency)


def make_optical(
    cfg: OnocConfig, seed: int, keep_per_message_latency: bool = False
) -> tuple[Simulator, NetworkAdapter]:
    sim = Simulator(seed=seed)
    attach_kernel_probe(sim)
    return sim, build_optical_network(sim, cfg, keep_per_message_latency)


def electrical_factory(cfg: NocConfig, seed: int) -> NetworkFactory:
    """Factory of fresh (sim, electrical net) pairs — replay passes need a
    clean network per pass."""
    factory = lambda: make_electrical(cfg, seed)  # noqa: E731
    # The generational engine has no electrical model; replay_trace uses the
    # absence of an OnocConfig here to reject engine="generational" early.
    factory.onoc = None
    return factory


def optical_factory(cfg: OnocConfig, seed: int) -> NetworkFactory:
    """Factory of fresh (sim, optical net) pairs."""
    factory = lambda: make_optical(cfg, seed)  # noqa: E731
    # Advertise the target config so replay_trace(engine="generational") can
    # run the vectorized path without instantiating a live network.
    factory.onoc = cfg
    return factory


def experiment_from_params(
    cores: int = 16,
    seed: int = 7,
    wavelengths: int = 64,
    topology: Optional[str] = None,
    onoc: Optional[dict] = None,
    noc: Optional[dict] = None,
    system: Optional[dict] = None,
) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from flat scalar parameters.

    The shared front end for every declarative entry point — the CLI, the
    serve JSON operations, and :mod:`repro.exp` configs — so they all
    resolve the same parameters to the same (hence cache-key-identical)
    config.  The optional ``onoc`` / ``noc`` / ``system`` dicts override
    individual config fields and are validated by the config dataclasses
    themselves (a bad combination raises ``ConfigError``).
    """
    side = math.isqrt(cores)
    if side * side != cores:
        raise ValueError(f"cores must be a perfect square, got {cores}")
    onoc_kwargs: dict = {"num_nodes": cores, "num_wavelengths": wavelengths}
    if topology is not None:
        onoc_kwargs["topology"] = topology
    onoc_kwargs.update(onoc or {})
    noc_kwargs: dict = {"width": side, "height": side}
    noc_kwargs.update(noc or {})
    sys_kwargs: dict = {"num_cores": cores,
                        "num_mem_ctrls": max(1, cores // 4)}
    sys_kwargs.update(system or {})
    return ExperimentConfig(
        system=SystemConfig(**sys_kwargs),
        noc=NocConfig(**noc_kwargs),
        onoc=OnocConfig(**onoc_kwargs),
        seed=seed,
    )


def run_execution_driven(
    exp: ExperimentConfig,
    workload: str,
    target: str = "electrical",
    capture: bool = True,
    scale: float = 1.0,
) -> tuple[SystemResult, Optional[Trace], NetworkAdapter]:
    """Full-system run of ``workload`` on the chosen interconnect.

    ``target`` is ``"electrical"`` or ``"optical"``.  Returns the system
    result, the captured trace (None when ``capture=False``), and the network
    (for power accounting).
    """
    programs = build_workload(workload, exp.system.num_cores, exp.seed, scale)
    if target == "electrical":
        sim, net = make_electrical(exp.noc, exp.seed)
    elif target == "optical":
        sim, net = make_optical(exp.onoc, exp.seed)
    else:
        raise ValueError(f"target must be 'electrical' or 'optical', got {target!r}")
    cap = TraceCapture() if capture else None
    system = FullSystem(sim, exp.system, net, programs, capture=cap)
    result = system.run(max_cycles=MAX_EXEC_CYCLES)
    trace = None
    if cap is not None:
        trace = cap.finalize(meta={
            "workload": workload,
            "seed": exp.seed,
            "scale": scale,
            "capture_network": target,
            "num_cores": exp.system.num_cores,
        })
    return result, trace, net
