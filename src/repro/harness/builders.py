"""Construction helpers shared by all experiments."""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import ExperimentConfig, NocConfig, OnocConfig
from repro.core import Trace, TraceCapture
from repro.engine import Simulator
from repro.net import NetworkAdapter
from repro.noc import ElectricalNetwork
from repro.obs.probes import attach_kernel_probe
from repro.onoc import build_optical_network, topology_in_order_channels
from repro.system import FullSystem, SystemResult, build_workload

NetworkFactory = Callable[[], tuple[Simulator, NetworkAdapter]]


def backend_in_order_channels(name: str) -> bool:
    """Whether backend ``name`` ("electrical" or an optical topology)
    guarantees per-(src, dst) FIFO delivery.  Drives the strict form of the
    channel-monotonicity invariant in :mod:`repro.validate.invariants`."""
    if name == "electrical":
        return ElectricalNetwork.in_order_channels
    return topology_in_order_channels(name)

# Safety net for execution-driven runs; generously above any default-scale
# workload's real execution time.
MAX_EXEC_CYCLES = 50_000_000


def make_electrical(
    cfg: NocConfig, seed: int, keep_per_message_latency: bool = False
) -> tuple[Simulator, ElectricalNetwork]:
    sim = Simulator(seed=seed)
    attach_kernel_probe(sim)        # no-op (and no run-loop cost) when obs is off
    return sim, ElectricalNetwork(sim, cfg, keep_per_message_latency)


def make_optical(
    cfg: OnocConfig, seed: int, keep_per_message_latency: bool = False
) -> tuple[Simulator, NetworkAdapter]:
    sim = Simulator(seed=seed)
    attach_kernel_probe(sim)
    return sim, build_optical_network(sim, cfg, keep_per_message_latency)


def electrical_factory(cfg: NocConfig, seed: int) -> NetworkFactory:
    """Factory of fresh (sim, electrical net) pairs — replay passes need a
    clean network per pass."""
    factory = lambda: make_electrical(cfg, seed)  # noqa: E731
    # The generational engine has no electrical model; replay_trace uses the
    # absence of an OnocConfig here to reject engine="generational" early.
    factory.onoc = None
    return factory


def optical_factory(cfg: OnocConfig, seed: int) -> NetworkFactory:
    """Factory of fresh (sim, optical net) pairs."""
    factory = lambda: make_optical(cfg, seed)  # noqa: E731
    # Advertise the target config so replay_trace(engine="generational") can
    # run the vectorized path without instantiating a live network.
    factory.onoc = cfg
    return factory


def run_execution_driven(
    exp: ExperimentConfig,
    workload: str,
    target: str = "electrical",
    capture: bool = True,
    scale: float = 1.0,
) -> tuple[SystemResult, Optional[Trace], NetworkAdapter]:
    """Full-system run of ``workload`` on the chosen interconnect.

    ``target`` is ``"electrical"`` or ``"optical"``.  Returns the system
    result, the captured trace (None when ``capture=False``), and the network
    (for power accounting).
    """
    programs = build_workload(workload, exp.system.num_cores, exp.seed, scale)
    if target == "electrical":
        sim, net = make_electrical(exp.noc, exp.seed)
    elif target == "optical":
        sim, net = make_optical(exp.onoc, exp.seed)
    else:
        raise ValueError(f"target must be 'electrical' or 'optical', got {target!r}")
    cap = TraceCapture() if capture else None
    system = FullSystem(sim, exp.system, net, programs, capture=cap)
    result = system.run(max_cycles=MAX_EXEC_CYCLES)
    trace = None
    if cap is not None:
        trace = cap.finalize(meta={
            "workload": workload,
            "seed": exp.seed,
            "scale": scale,
            "capture_network": target,
            "num_cores": exp.system.num_cores,
        })
    return result, trace, net
