"""One-shot markdown report: the whole evaluation for one configuration.

``generate_report`` runs the core experiment set (case study, trace-model
accuracy, simulation-time comparison, energy, area) for the given
configuration and renders a self-contained markdown document — the artifact
a user attaches to a design review.  Exposed as ``python -m repro report``.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.config import ExperimentConfig
from repro.harness.experiments import (
    accuracy_experiment,
    case_study,
    power_experiment,
    simtime_experiment,
)
from repro.onoc import awgr_ring_census, crossbar_ring_census, mesh_ring_census
from repro.onoc.swmr import swmr_ring_census
from repro.power import electrical_area, optical_area


def _md_table(rows: Sequence[dict]) -> str:
    if not rows:
        return "*(no data)*"
    cols = list(rows[0].keys())
    out = ["| " + " | ".join(cols) + " |",
           "|" + "|".join("---" for _ in cols) + "|"]
    for r in rows:
        out.append("| " + " | ".join(str(r.get(c, "")) for c in cols) + " |")
    return "\n".join(out)


def generate_report(
    exp: ExperimentConfig,
    workloads: Sequence[str],
    scale: float = 1.0,
) -> str:
    """Run the evaluation and return the markdown report."""
    if not workloads:
        raise ValueError("need at least one workload")
    t0 = time.perf_counter()
    lines: list[str] = []
    o = exp.onoc

    lines.append("# Self-Correction Trace Model — evaluation report\n")
    lines.append(f"Configuration: {exp.system.num_cores} cores, "
                 f"{exp.noc.width}x{exp.noc.height} {exp.noc.topology} "
                 f"baseline, {o.num_nodes}-node {o.topology} ONOC "
                 f"({o.num_wavelengths} λ x {o.bitrate_gbps} Gb/s), "
                 f"seed {exp.seed}, workload scale {scale}.\n")

    # ---------------------------------------------------------- case study
    lines.append("## Case study: ONOC vs electrical baseline\n")
    cs_rows = []
    for wl in workloads:
        r = case_study(exp, wl, scale=scale)
        cs_rows.append({
            "workload": r.workload,
            "exec electrical": r.exec_electrical,
            "exec optical": r.exec_optical,
            "speedup": f"{r.speedup:.2f}x",
            "latency cut": f"{r.latency_reduction_pct:.1f}%",
        })
    lines.append(_md_table(cs_rows) + "\n")

    # ------------------------------------------------------------ accuracy
    lines.append("## Trace-model accuracy (replay onto the ONOC)\n")
    acc_rows = []
    for wl in workloads:
        r = accuracy_experiment(exp, wl, scale=scale)
        acc_rows.append({
            "workload": wl,
            "naive err": f"{r.naive.exec_time_error_pct:.2f}%",
            "self-correcting err":
                f"{r.self_correcting.exec_time_error_pct:.2f}%",
            "messages": r.extra["trace_messages"],
        })
    lines.append(_md_table(acc_rows) + "\n")

    # ------------------------------------------------------ simulation time
    lines.append("## Simulation wall-clock time\n")
    st_rows = []
    for wl in workloads:
        r = simtime_experiment(exp, wl, scale=scale)
        st_rows.append({
            "workload": wl,
            "exec-driven": f"{r.exec_driven_s:.2f}s",
            "self-correcting replay": f"{r.self_correcting_s:.2f}s",
            "speedup": f"{r.replay_speedup:.1f}x",
        })
    lines.append(_md_table(st_rows) + "\n")

    # -------------------------------------------------------------- energy
    lines.append("## Energy (first workload)\n")
    rep_e, rep_o = power_experiment(exp, workloads[0], scale=scale)
    lines.append(_md_table([rep_e.as_row(), rep_o.as_row()]) + "\n")

    # ---------------------------------------------------------------- area
    lines.append("## Area (mm^2)\n")
    area_rows = [electrical_area(exp.noc).as_row()]
    census_fns = {
        "crossbar": crossbar_ring_census,
        "swmr_crossbar": swmr_ring_census,
        "awgr": awgr_ring_census,
        "circuit_mesh": mesh_ring_census,
    }
    census = census_fns.get(o.topology, crossbar_ring_census)(
        o.num_nodes, o.num_wavelengths)
    area_rows.append(optical_area(o, census).as_row())
    # Per-row component keys differ; normalise to name/total.
    area_rows = [{"network": r["network"], "total mm^2": r["total_mm2"]}
                 for r in area_rows]
    lines.append(_md_table(area_rows) + "\n")

    lines.append(f"*Report generated in {time.perf_counter() - t0:.1f}s "
                 "of simulation.*\n")
    lines.append(provenance_footer() + "\n")
    return "\n".join(lines)


def provenance_footer() -> str:
    """One-line provenance stamp shared by reports and experiment archives
    (``repro.exp`` appends it to every archived table)."""
    from repro.exp.archive import provenance

    p = provenance()
    rev = p["git"].get("rev", "unknown")
    if p["git"].get("dirty"):
        rev += "-dirty"
    return (f"*Provenance: git {rev} | {p['host']} | "
            f"python {p['python']} | {p['platform']}*")
