"""The fault-timeseries schema: ``(time, target, severity)`` step functions.

A :class:`FaultTimeseries` is an ordered sequence of :class:`FaultEvent`
records.  Each event sets the degradation *level* of one target from its
``time`` onward — the timeseries is a right-continuous step function per
target, and the last event at or before ``t`` wins.  Severity ``0.0``
restores the target to pristine.

Targets address the resources every optical backend shares:

``global``          the whole fabric (laser power droop)
``node:<k>``        endpoint ``k``'s modulator/detector banks (thermal drift)
``link:<s>-<d>``    the directed (src, dst) channel (corruption bursts)
``wl:<w>``          one WDM wavelength (a drifted microring row)

Containers round-trip through CSV (``time,target,severity`` header) and
JSON (``{"format": "repro-faultseries-v1", "events": [...]}``); parsing is
strict — unknown targets, out-of-range severities, or negative times raise
:class:`TimeseriesError` rather than degrading silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

TARGET_GLOBAL = "global"
TARGET_NODE = "node"
TARGET_LINK = "link"
TARGET_WAVELENGTH = "wl"
TARGET_KINDS = (TARGET_GLOBAL, TARGET_NODE, TARGET_LINK, TARGET_WAVELENGTH)

#: JSON container format tag.
FAULTSERIES_FORMAT = "repro-faultseries-v1"

CSV_HEADER = "time,target,severity"


class TimeseriesError(ValueError):
    """Raised on malformed timeseries input (schema, range, or container)."""


def parse_target(target: str) -> tuple[str, Union[None, int, tuple[int, int]]]:
    """Split a target string into ``(kind, operand)``.

    Returns ``("global", None)``, ``("node", k)``, ``("link", (src, dst))``
    or ``("wl", w)``; raises :class:`TimeseriesError` on anything else.
    """
    if target == TARGET_GLOBAL:
        return TARGET_GLOBAL, None
    kind, sep, rest = target.partition(":")
    if not sep or kind not in (TARGET_NODE, TARGET_LINK, TARGET_WAVELENGTH):
        raise TimeseriesError(
            f"bad fault target {target!r}; expected 'global', 'node:<k>', "
            f"'link:<src>-<dst>' or 'wl:<w>'")
    try:
        if kind == TARGET_LINK:
            src_s, _, dst_s = rest.partition("-")
            src, dst = int(src_s), int(dst_s)
            if src < 0 or dst < 0 or src == dst:
                raise ValueError
            return TARGET_LINK, (src, dst)
        k = int(rest)
        if k < 0:
            raise ValueError
        return kind, k
    except ValueError:
        raise TimeseriesError(
            f"bad fault target operand in {target!r}") from None


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One step of the degradation timeseries."""

    time: int
    target: str
    severity: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise TimeseriesError(f"event time must be >= 0, got {self.time}")
        if not (0.0 <= self.severity <= 1.0):
            raise TimeseriesError(
                f"severity must be in [0, 1], got {self.severity}")
        parse_target(self.target)  # validates; result recomputed on demand

    def as_tuple(self) -> tuple[int, str, float]:
        return (self.time, self.target, self.severity)


class FaultTimeseries:
    """An immutable, time-sorted sequence of :class:`FaultEvent` records.

    Sorting is stable by ``(time, target)`` so that serialization is
    canonical: two timeseries with the same events compare (and hash
    through configs) identically regardless of construction order.  Two
    events on the *same* target at the same time are rejected — the step
    function would be ambiguous.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = tuple(sorted(events, key=lambda e: (e.time, e.target)))
        seen: set[tuple[int, str]] = set()
        for e in ordered:
            key = (e.time, e.target)
            if key in seen:
                raise TimeseriesError(
                    f"duplicate event for target {e.target!r} at t={e.time}")
            seen.add(key)
        self.events: tuple[FaultEvent, ...] = ordered

    # ------------------------------------------------------------- basics
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FaultTimeseries)
                and self.events == other.events)

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultTimeseries({len(self.events)} events)"

    def targets(self) -> list[str]:
        """Distinct targets, sorted."""
        return sorted({e.target for e in self.events})

    def merged(self, other: "FaultTimeseries") -> "FaultTimeseries":
        """Union of two timeseries (duplicate (time, target) pairs raise)."""
        return FaultTimeseries(self.events + other.events)

    # -------------------------------------------------------- tuple codec
    def as_tuples(self) -> tuple[tuple[int, str, float], ...]:
        """Plain-tuple form — the shape carried by ``TraceConfig``."""
        return tuple(e.as_tuple() for e in self.events)

    @classmethod
    def from_tuples(
        cls, tuples: Sequence[Sequence]
    ) -> "FaultTimeseries":
        events = []
        for row in tuples:
            if len(row) != 3:
                raise TimeseriesError(
                    f"expected (time, target, severity), got {row!r}")
            t, target, sev = row
            events.append(FaultEvent(int(t), str(target), float(sev)))
        return cls(events)

    # ---------------------------------------------------------------- CSV
    def to_csv(self) -> str:
        lines = [CSV_HEADER]
        for e in self.events:
            lines.append(f"{e.time},{e.target},{e.severity:g}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_csv(cls, text: str) -> "FaultTimeseries":
        lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
        if not lines or lines[0].replace(" ", "") != CSV_HEADER:
            raise TimeseriesError(
                f"CSV timeseries must start with header {CSV_HEADER!r}")
        events = []
        for i, line in enumerate(lines[1:], start=2):
            parts = [p.strip() for p in line.split(",")]
            if len(parts) != 3:
                raise TimeseriesError(
                    f"line {i}: expected 3 comma-separated fields, "
                    f"got {line!r}")
            try:
                events.append(FaultEvent(int(parts[0]), parts[1],
                                         float(parts[2])))
            except TimeseriesError:
                raise
            except ValueError as exc:
                raise TimeseriesError(f"line {i}: {exc}") from None
        return cls(events)

    # --------------------------------------------------------------- JSON
    def to_json(self) -> str:
        return json.dumps({
            "format": FAULTSERIES_FORMAT,
            "events": [
                {"time": e.time, "target": e.target, "severity": e.severity}
                for e in self.events
            ],
        }, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultTimeseries":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TimeseriesError(f"bad JSON timeseries: {exc}") from None
        if not isinstance(doc, dict) or doc.get("format") != FAULTSERIES_FORMAT:
            raise TimeseriesError(
                f"expected a {FAULTSERIES_FORMAT!r} document")
        events = []
        for i, entry in enumerate(doc.get("events", [])):
            try:
                events.append(FaultEvent(int(entry["time"]),
                                         str(entry["target"]),
                                         float(entry["severity"])))
            except (KeyError, TypeError) as exc:
                raise TimeseriesError(f"event {i}: {exc!r}") from None
        return cls(events)

    @classmethod
    def from_text(cls, text: str) -> "FaultTimeseries":
        """Container sniffing: JSON if it parses as an object, else CSV."""
        stripped = text.lstrip()
        if stripped.startswith("{"):
            return cls.from_json(text)
        return cls.from_csv(text)
