"""Seeded degradation-family generators.

Three physically motivated families, each a pure function of
``(seed, intensity, horizon, num_nodes, ...)`` — no sequential RNG state,
the same splitmix64 per-decision hashing discipline as the trace-fault
layer (:mod:`repro.validate.faults`), so a generated timeseries is
reproducible across platforms and insensitive to generation order:

``thermal_drift``      microring thermal drift: per-node severity *ramps*
                       — a node's resonance walks off its channel grid
                       over time, degrading its modulator/detector banks.
``laser_droop``        shared-laser power droop: one *global* ramp with
                       seeded step times (ageing + slow thermal drift of
                       the comb source degrades every channel's margin).
``corruption_bursts``  transient link corruption: short on/off bursts of
                       high severity on individual directed links (e.g.
                       crosstalk or a marginal drop filter), each burst
                       closed by an explicit severity-0 restore event.

**Monotonicity contract** (pinned by tests): for a fixed seed and shape,
every per-event severity is non-decreasing in ``intensity``, so sweeping
intensity sweeps degradation monotonically.
"""

from __future__ import annotations

from repro.resilience.timeseries import FaultEvent, FaultTimeseries

_MASK64 = (1 << 64) - 1


def _mix64(*parts) -> int:
    """Deterministic 64-bit hash (splitmix64 finalizer chain) — same
    discipline as ``repro.validate.faults._mix64``, duplicated here so the
    core replay path never imports the validation stack."""
    x = 0x9E3779B97F4A7C15
    for p in parts:
        if isinstance(p, str):
            p = int.from_bytes(p.encode("utf-8"), "little")
        x = (x ^ (p & _MASK64)) & _MASK64
        x = (x * 0xBF58476D1CE4E5B9) & _MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
        x ^= x >> 31
    return x & _MASK64


def _unit(*parts) -> float:
    """Uniform [0, 1) draw from the hash of ``parts``."""
    return _mix64(*parts) / float(1 << 64)


def _check_args(seed: int, num_nodes: int, horizon: int,
                intensity: float) -> None:
    if seed < 0:
        raise ValueError(f"seed must be >= 0, got {seed}")
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    if not (0.0 <= intensity <= 1.0):
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")


def thermal_drift(seed: int, num_nodes: int, horizon: int,
                  intensity: float = 0.5, steps: int = 4,
                  affected_fraction: float = 0.5) -> FaultTimeseries:
    """Per-node thermal drift ramps.

    A seeded subset of nodes (``affected_fraction``) each get a ``steps``
    step ramp from 0 toward a node-specific peak severity ``<= intensity``,
    with seeded start/spacing so ramps are staggered across the horizon.
    """
    _check_args(seed, num_nodes, horizon, intensity)
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    events: list[FaultEvent] = []
    for node in range(num_nodes):
        if _unit(seed, "thermal.pick", node) >= affected_fraction:
            continue
        peak = intensity * (0.5 + 0.5 * _unit(seed, "thermal.peak", node))
        start = int(_unit(seed, "thermal.start", node) * horizon * 0.5)
        span = max(steps, int(horizon * (0.25 + 0.5 * _unit(
            seed, "thermal.span", node))))
        for k in range(1, steps + 1):
            t = min(horizon, start + (span * k) // steps)
            events.append(FaultEvent(t, f"node:{node}", peak * k / steps))
    return FaultTimeseries(_dedup_last(events))


def laser_droop(seed: int, num_nodes: int, horizon: int,
                intensity: float = 0.5, steps: int = 6) -> FaultTimeseries:
    """Global laser power droop: a single concave ramp on ``global``."""
    _check_args(seed, num_nodes, horizon, intensity)
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    events: list[FaultEvent] = []
    start = int(_unit(seed, "droop.start") * horizon * 0.25)
    for k in range(1, steps + 1):
        frac = k / steps
        # Concave in time (droop decelerates), linear in intensity.
        sev = intensity * (1.0 - (1.0 - frac) ** 2)
        t = min(horizon, start + ((horizon - start) * k) // steps)
        events.append(FaultEvent(t, "global", sev))
    return FaultTimeseries(_dedup_last(events))


def corruption_bursts(seed: int, num_nodes: int, horizon: int,
                      intensity: float = 0.5,
                      bursts: int = 4) -> FaultTimeseries:
    """Transient link corruption bursts: on/off square pulses.

    Each burst picks a seeded directed link, a start time, and a duration
    (5–20% of the horizon); severity during the burst is high
    (``0.5 + 0.5 * intensity`` scaled by a per-burst draw) and an explicit
    severity-0 event restores the link afterwards.
    """
    _check_args(seed, num_nodes, horizon, intensity)
    if bursts < 1:
        raise ValueError(f"bursts must be >= 1, got {bursts}")
    events: list[FaultEvent] = []
    for b in range(bursts):
        src = _mix64(seed, "burst.src", b) % num_nodes
        dst = _mix64(seed, "burst.dst", b) % (num_nodes - 1)
        if dst >= src:
            dst += 1
        start = int(_unit(seed, "burst.start", b) * horizon * 0.8)
        dur = max(1, int(horizon * (0.05 + 0.15 * _unit(seed, "burst.dur", b))))
        sev = intensity * (0.6 + 0.4 * _unit(seed, "burst.sev", b))
        target = f"link:{src}-{dst}"
        events.append(FaultEvent(start, target, sev))
        events.append(FaultEvent(min(horizon, start + dur), target, 0.0))
    return FaultTimeseries(_dedup_last(events))


def _dedup_last(events: list[FaultEvent]) -> list[FaultEvent]:
    """Collapse same-(time, target) collisions, last writer wins.

    Generators draw times independently, so collisions are possible (two
    ramp steps rounding to the same cycle); the step-function semantics
    make keeping the later-generated value the right resolution.
    """
    out: dict[tuple[int, str], FaultEvent] = {}
    for e in events:
        out[(e.time, e.target)] = e
    return list(out.values())


GENERATOR_FAMILIES = {
    "thermal_drift": thermal_drift,
    "laser_droop": laser_droop,
    "corruption_bursts": corruption_bursts,
}


def generate_timeseries(family: str, seed: int, num_nodes: int,
                        horizon: int, intensity: float = 0.5,
                        **kwargs) -> FaultTimeseries:
    """Dispatch to a named generator family.

    ``family`` may also be a ``+``-joined combination
    (``"thermal_drift+laser_droop"``): the member timeseries are generated
    with per-family derived seeds and merged.
    """
    names = family.split("+")
    series = FaultTimeseries()
    for name in names:
        fn = GENERATOR_FAMILIES.get(name)
        if fn is None:
            raise ValueError(
                f"unknown degradation family {name!r}; expected one of "
                f"{sorted(GENERATOR_FAMILIES)} (optionally '+'-joined)")
        sub_seed = seed if len(names) == 1 else _mix64(seed, "family", name)
        series = series.merged(
            fn(sub_seed, num_nodes, horizon, intensity, **kwargs))
    return series
