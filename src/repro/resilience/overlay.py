"""The degradation overlay: epoch-indexed integer penalty tables.

:class:`DegradationOverlay` is the one artifact both replay engines share.
Building it from a fault timeseries precomputes, for every degradation
*epoch* (the half-open interval between consecutive event times) and every
directed (src, dst) pair, four small integer tables:

``level_pm``    raw degradation level (per mille) — metrics/diversity only
``stretch_pm``  serialization stretch level after mitigation
``echo_pm``     extra serialization (per mille of ``ser``) — the
                ``disable`` policy's store-and-forward retransmission
``occ_add``     flat occupancy add (``reallocate``'s ring re-tune cycles)
``lat_add``     flat delivery-latency add (``disable``'s detour
                propagation + extra conversion pair)

The per-message effect is then a pure integer function of
``(epoch(inject_time), src, dst, ser)``::

    occ_extra = ceil(ser*1000 / (1000 - stretch)) - ser     # bandwidth loss
              + ceil(ser * echo / 1000)                     # retransmission
              + occ_add                                     # re-tuning
    lat_extra = lat_add                                     # detour flight

``occ_extra`` extends how long the message *holds its serving resource*
(token channel, source channel, λ-lane) so degradation cascades
contention onto healthy traffic; ``lat_extra`` only delays the delivery.
Exception: the circuit mesh applies *both* terms as delivery delay and
tears circuits down on the stock schedule — extending segment holds would
amplify the contention the generational circuit model documents as
unmodelled and break the engine-equivalence bound.
The event backends call :meth:`DegradationOverlay.adjust` per message; the
generational models call :meth:`DegradationOverlay.adjust_vec` on whole
inject batches — both read the same tables, which is what makes the
engines agree under degradation.  Every adjustment is non-negative, so
the generational windowed solver's gain lower bound stays valid.

Epochs are keyed on **injection time**: the degradation a message sees is
the fabric state when it entered the network.  (A message serialized
across an epoch boundary does not re-price mid-flight — a deliberate
simplification that keeps both engines exactly equal.)
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Optional, Sequence, Union

import numpy as np

from repro.config import ONOC_AWGR, OnocConfig
from repro.onoc.devices import SerpentineLayout
from repro.resilience.policies import (
    DISABLE_THRESHOLD_PM,
    LEVEL_CAP_PM,
    MITIGATION_DISABLE,
    MITIGATION_NONE,
    MITIGATION_REALLOCATE,
    PenaltyBreakdown,
    REALLOCATE_DEFAULT_SPARE_PM,
    REALLOCATE_RETUNE_CYCLES,
    check_mitigation,
)
from repro.resilience.timeseries import (
    FaultTimeseries,
    TARGET_GLOBAL,
    TARGET_LINK,
    TARGET_NODE,
    TARGET_WAVELENGTH,
    parse_target,
)


def _ceil_div(a, b):
    """Element-wise ``ceil(a / b)`` for non-negative ``a`` and positive
    ``b`` — identical semantics for Python ints and int64 arrays."""
    return -(-a // b)


def spare_capacity_pm(onoc: OnocConfig) -> int:
    """Per-mille capacity ``reallocate`` can shift to a degraded pair.

    AWGR: the cyclic lane assignment strands ``W mod (N-1)`` wavelengths;
    re-tuning a degraded lane onto them recovers their bandwidth share (a
    floor of half the default models borrowing idle headroom from
    neighbouring lanes).  Arbitrated backends re-route over spare
    path/wavelength budget, a fixed fraction of the channel.
    """
    if onoc.topology == ONOC_AWGR:
        leftover = onoc.num_wavelengths % (onoc.num_nodes - 1)
        return max((leftover * 1000) // onoc.num_wavelengths,
                   REALLOCATE_DEFAULT_SPARE_PM // 2)
    return REALLOCATE_DEFAULT_SPARE_PM


class DegradationOverlay:
    """Precomputed per-epoch penalty tables for one (timeseries, backend,
    mitigation) triple.  Build via :meth:`DegradationOverlay.build`."""

    __slots__ = ("onoc", "mitigation", "series", "_times", "_times_list",
                 "level_pm", "_stretch_pm", "_echo_pm", "_occ_add",
                 "_lat_add")

    def __init__(self, onoc: OnocConfig, mitigation: str,
                 series: FaultTimeseries) -> None:
        self.onoc = onoc
        self.mitigation = check_mitigation(mitigation)
        self.series = series
        n = onoc.num_nodes
        times = sorted({e.time for e in series.events})
        self._times = np.asarray(times, dtype=np.int64)
        self._times_list = times
        shape = (len(times) + 1, n, n)
        # Row 0 is the pristine pre-first-event epoch; row e+1 covers
        # [times[e], times[e+1]).
        self.level_pm = np.zeros(shape, dtype=np.int64)
        self._stretch_pm = np.zeros(shape, dtype=np.int64)
        self._echo_pm = np.zeros(shape, dtype=np.int64)
        self._occ_add = np.zeros(shape, dtype=np.int64)
        self._lat_add = np.zeros(shape, dtype=np.int64)
        self._fill_tables()

    # ------------------------------------------------------------ building
    @classmethod
    def build(
        cls,
        fault_events: Union[FaultTimeseries, Sequence[Sequence]],
        onoc: OnocConfig,
        mitigation: str = MITIGATION_NONE,
    ) -> Optional["DegradationOverlay"]:
        """Overlay for ``fault_events``, or ``None`` when the timeseries is
        empty — the caller then takes the stock (byte-identical) path."""
        if isinstance(fault_events, FaultTimeseries):
            series = fault_events
        else:
            series = FaultTimeseries.from_tuples(fault_events)
        if not series.events:
            return None
        return cls(onoc, mitigation, series)

    def _wavelength_matrix(self, wl_sev: dict) -> np.ndarray:
        """Bandwidth-share-weighted wavelength contribution per pair."""
        n = self.onoc.num_nodes
        W = self.onoc.num_wavelengths
        out = np.zeros((n, n))
        if not wl_sev:
            return out
        if self.onoc.topology == ONOC_AWGR:
            # Cyclic λ assignment: lane(s, d) = (d - s) mod n - 1 owns the
            # wavelengths {w : w mod (n-1) == lane} below lpp*(n-1).
            lpp = W // (n - 1)
            lane_sum = np.zeros(n - 1)
            for w, sev in wl_sev.items():
                if w < lpp * (n - 1):
                    lane_sum[w % (n - 1)] += sev
            for s in range(n):
                for d in range(n):
                    if s != d:
                        out[s, d] = lane_sum[(d - s) % n - 1] / lpp
        else:
            # Shared WDM channel: each λ carries 1/W of the bandwidth.
            out[:, :] = sum(wl_sev.values()) / W
        return out

    def _detour_latency(self) -> np.ndarray:
        """Per-pair ``disable`` detour cost: extra flight time via the
        lowest-numbered healthy relay plus one extra conversion pair.
        (Serpentine distances are used for every backend — a first-order
        penalty model, not backend geometry.)"""
        onoc = self.onoc
        n = onoc.num_nodes
        layout = SerpentineLayout(onoc)
        out = np.zeros((n, n), dtype=np.int64)
        if n < 3:
            return out
        for s in range(n):
            for d in range(n):
                if s == d:
                    continue
                r = 0
                while r == s or r == d:
                    r += 1
                direct = onoc.propagation_cycles(layout.distance_cm(s, d))
                via = (onoc.propagation_cycles(layout.distance_cm(s, r))
                       + onoc.propagation_cycles(layout.distance_cm(r, d)))
                out[s, d] = max(0, via - direct) + 2 * onoc.conversion_cycles
        return out

    def _fill_tables(self) -> None:
        onoc = self.onoc
        n = onoc.num_nodes
        W = onoc.num_wavelengths
        glob = 0.0
        node_sev = np.zeros(n)
        link_sev: dict[tuple[int, int], float] = {}
        wl_sev: dict[int, float] = {}
        detour = None
        spare = spare_capacity_pm(onoc)
        can_detour = n >= 3
        for i, t in enumerate(self._times_list):
            for e in self.series.events:
                if e.time != t:
                    continue
                kind, operand = parse_target(e.target)
                if kind == TARGET_GLOBAL:
                    glob = e.severity
                elif kind == TARGET_NODE:
                    if operand >= n:
                        raise ValueError(
                            f"fault target {e.target!r} out of range for "
                            f"{n} nodes")
                    node_sev[operand] = e.severity
                elif kind == TARGET_LINK:
                    s, d = operand
                    if s >= n or d >= n:
                        raise ValueError(
                            f"fault target {e.target!r} out of range for "
                            f"{n} nodes")
                    link_sev[(s, d)] = e.severity
                else:  # wavelength
                    if operand >= W:
                        raise ValueError(
                            f"fault target {e.target!r} out of range for "
                            f"{W} wavelengths")
                    wl_sev[operand] = e.severity
            base = np.maximum(glob, np.maximum(node_sev[:, None],
                                               node_sev[None, :]))
            for (s, d), sev in link_sev.items():
                base[s, d] = max(base[s, d], sev)
            raw = np.minimum(1.0, base + self._wavelength_matrix(wl_sev))
            lvl = np.minimum(LEVEL_CAP_PM,
                             np.rint(raw * 1000).astype(np.int64))
            np.fill_diagonal(lvl, 0)
            self.level_pm[i + 1] = lvl

            row = i + 1
            if self.mitigation == MITIGATION_NONE:
                self._stretch_pm[row] = lvl
            elif self.mitigation == MITIGATION_DISABLE:
                dropped = (lvl >= DISABLE_THRESHOLD_PM) & can_detour
                if detour is None:
                    detour = self._detour_latency()
                self._stretch_pm[row] = np.where(dropped, 0, lvl)
                self._echo_pm[row] = np.where(dropped, 1000, 0)
                self._lat_add[row] = np.where(dropped, detour, 0)
            else:  # reallocate
                self._stretch_pm[row] = np.maximum(0, lvl - spare)
                self._occ_add[row] = np.where(
                    (lvl > 0) & (spare > 0), REALLOCATE_RETUNE_CYCLES, 0)

    # ----------------------------------------------------------- querying
    @property
    def epoch_times(self) -> list[int]:
        """Epoch boundary times (epoch ``e+1`` starts at ``times[e]``)."""
        return list(self._times_list)

    def epoch_of(self, t: int) -> int:
        """Table row for injection time ``t`` (0 = pristine prefix)."""
        return bisect_right(self._times_list, t)

    def adjust(self, t: int, src: int, dst: int,
               ser: int) -> tuple[int, int]:
        """Scalar ``(occ_extra, lat_extra)`` for one message (event engine)."""
        e = bisect_right(self._times_list, t)
        stretch = int(self._stretch_pm[e, src, dst])
        echo = int(self._echo_pm[e, src, dst])
        occ_add = int(self._occ_add[e, src, dst])
        lat = int(self._lat_add[e, src, dst])
        occ = occ_add
        if stretch:
            occ += _ceil_div(ser * 1000, 1000 - stretch) - ser
        if echo:
            occ += _ceil_div(ser * echo, 1000)
        return occ, lat

    def adjust_vec(self, t: np.ndarray, src: np.ndarray, dst: np.ndarray,
                   ser: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`adjust` (generational engine).  Same integer
        semantics element-for-element."""
        rows = np.searchsorted(self._times, t, side="right")
        stretch = self._stretch_pm[rows, src, dst]
        echo = self._echo_pm[rows, src, dst]
        ser = ser.astype(np.int64, copy=False)
        occ = (_ceil_div(ser * 1000, 1000 - stretch) - ser
               + _ceil_div(ser * echo, 1000)
               + self._occ_add[rows, src, dst])
        return occ, self._lat_add[rows, src, dst]

    # ------------------------------------------------------ serialization
    def ser_scalar(self, size_bytes: int) -> int:
        """The serving backend's per-message serialization cycles — the
        ``ser`` the engines feed to :meth:`adjust` (AWGR uses its narrower
        per-lane λ subset)."""
        onoc = self.onoc
        if onoc.topology == ONOC_AWGR:
            lpp = onoc.num_wavelengths // (onoc.num_nodes - 1)
            gbps = lpp * onoc.bitrate_gbps
            return max(1, math.ceil(size_bytes * 8 / gbps * onoc.clock_ghz))
        return onoc.serialization_cycles(size_bytes)

    def ser_vector(self, sizes: np.ndarray) -> np.ndarray:
        """Scalar-exact vectorized :meth:`ser_scalar` (unique-value table)."""
        uniq, inv = np.unique(np.asarray(sizes, dtype=np.int64),
                              return_inverse=True)
        vals = np.asarray([self.ser_scalar(int(s)) for s in uniq],
                          dtype=np.int64)
        return vals[inv]

    # ----------------------------------------------------------- metrics
    def path_diversity(self, row: int) -> float:
        """Worst-case path diversity of the *raw* fabric in epoch ``row``:
        the minimum over sources of the fraction of destinations whose
        pair level is below the disable threshold."""
        n = self.onoc.num_nodes
        lvl = self.level_pm[row]
        healthy = (lvl < DISABLE_THRESHOLD_PM).sum(axis=1) - 1  # minus self
        return float(healthy.min()) / (n - 1)


def penalty_summary(
    overlay: DegradationOverlay,
    injects: Sequence[int],
    srcs: Sequence[int],
    dsts: Sequence[int],
    sizes: Sequence[int],
) -> tuple[PenaltyBreakdown, list[dict]]:
    """Post-hoc penalty accounting over the *final* injection schedule.

    Both engines call this once after solving (never during relaxation
    passes, which would overcount re-scanned messages) with the replayed
    messages' injection times and endpoints.  Returns the typed breakdown
    plus the per-epoch curve rows the resilience bench/metrics export.
    """
    inj = np.asarray(injects, dtype=np.int64)
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    ser = overlay.ser_vector(np.asarray(sizes, dtype=np.int64))
    if inj.size == 0:
        breakdown = PenaltyBreakdown(mitigation=overlay.mitigation)
        return breakdown, []
    rows = np.searchsorted(overlay._times, inj, side="right")
    stretch = overlay._stretch_pm[rows, src, dst]
    echo = overlay._echo_pm[rows, src, dst]
    occ_add = overlay._occ_add[rows, src, dst]
    lat_add = overlay._lat_add[rows, src, dst]
    slow = _ceil_div(ser * 1000, 1000 - stretch) - ser
    detour = _ceil_div(ser * echo, 1000) + lat_add
    total = slow + detour + occ_add
    breakdown = PenaltyBreakdown(
        mitigation=overlay.mitigation,
        slowdown_cycles=int(slow.sum()),
        detour_cycles=int(detour.sum()),
        retune_cycles=int(occ_add.sum()),
        messages_affected=int((total > 0).sum()),
        messages_total=int(inj.size),
    )
    curve: list[dict] = []
    boundaries = [0] + overlay.epoch_times
    for e, t in enumerate(boundaries):
        mask = rows == e
        curve.append({
            "time": int(t),
            "epoch": e,
            "level_max_pm": int(overlay.level_pm[e].max()),
            "path_diversity": overlay.path_diversity(e),
            "messages": int(mask.sum()),
            "penalty_cycles": int(total[mask].sum()),
        })
    return breakdown, curve


def resilience_extra(
    overlay: DegradationOverlay,
    injects: Sequence[int],
    srcs: Sequence[int],
    dsts: Sequence[int],
    sizes: Sequence[int],
) -> dict:
    """The ``ReplayResult.extra['resilience']`` payload for one replay:
    the typed penalty breakdown plus the per-epoch timeseries curve.

    Also publishes the ``resilience.*`` obs counters/gauges and the
    Timeline degradation marks (no-ops while instrumentation is off) —
    both engines funnel through here so the exported metrics agree.
    """
    from repro import obs

    breakdown, curve = penalty_summary(overlay, injects, srcs, dsts, sizes)
    scope = obs.metrics("resilience")
    scope.counter("fault_events").inc(len(overlay.series))
    scope.counter("messages_affected").inc(breakdown.messages_affected)
    scope.counter("slowdown_cycles").inc(breakdown.slowdown_cycles)
    scope.counter("detour_cycles").inc(breakdown.detour_cycles)
    scope.counter("retune_cycles").inc(breakdown.retune_cycles)
    scope.counter("penalty_cycles").inc(breakdown.total_cycles)
    scope.gauge("level_max_pm").set_max(int(overlay.level_pm.max()))
    worst_div = min((row["path_diversity"] for row in curve), default=1.0)
    # Gauges merge by max, so export the *loss* of diversity: the merged
    # sweep then reports the worst epoch any shard saw.
    scope.gauge("path_diversity_loss_pct").set_max(
        (1.0 - worst_div) * 100.0)
    epoch_pen = scope.distribution("epoch_penalty_cycles")
    for row in curve:
        epoch_pen.observe(row["penalty_cycles"])
    tl = obs.timeline()
    if tl is not None:
        for e in overlay.series.events:
            tl.record(e.time, "resilience",
                      f"fault.{e.target}={e.severity:g}")
        for row in curve[1:]:
            tl.record(row["time"], "resilience",
                      f"{overlay.mitigation}.penalty="
                      f"{row['penalty_cycles']}")
    return {
        "mitigation": overlay.mitigation,
        "events": len(overlay.series),
        "penalty": breakdown.as_dict(),
        "curve": curve,
    }
