"""``repro.resilience`` — time-varying network degradation during replay.

The paper replays traces against a *pristine, static* photonic network;
real optical fabrics drift in time: microring resonances walk off with
temperature, laser output droops as devices age, and individual links see
transient corruption bursts.  This package makes that drift an explicit,
replayable input:

* :mod:`repro.resilience.timeseries` — the ``(time, target, severity)``
  fault-timeseries schema with CSV/JSON round-tripping;
* :mod:`repro.resilience.generators` — seeded (splitmix64) generators for
  three degradation families: thermal drift ramps, laser power droop, and
  transient link corruption bursts;
* :mod:`repro.resilience.policies` — the mitigation-policy registry
  (``none`` / ``disable`` / ``reallocate``) and typed penalty accounting;
* :mod:`repro.resilience.overlay` — :class:`DegradationOverlay`, the
  epoch-indexed integer penalty tables both replay engines consult, plus
  the post-hoc penalty/path-diversity summaries.

The engine contract (pinned by ``tests/test_resilience.py``): an **empty**
timeseries is byte-identical to stock replay on every backend and both
engines, and the event-driven and generational engines apply **identical**
integer adjustments — every penalty is a pure function of
``(epoch(inject_time), src, dst, ser)``, looked up scalar-wise by the
event backends and vectorized by the generational models.
"""

from repro.resilience.generators import (
    GENERATOR_FAMILIES,
    generate_timeseries,
)
from repro.resilience.overlay import (
    DegradationOverlay,
    PenaltyBreakdown,
    penalty_summary,
)
from repro.resilience.policies import (
    DISABLE_THRESHOLD_PM,
    MITIGATION_DISABLE,
    MITIGATION_NONE,
    MITIGATION_REALLOCATE,
    MITIGATIONS,
)
from repro.resilience.timeseries import (
    FaultEvent,
    FaultTimeseries,
    TimeseriesError,
)

__all__ = [
    "DISABLE_THRESHOLD_PM",
    "DegradationOverlay",
    "FaultEvent",
    "FaultTimeseries",
    "GENERATOR_FAMILIES",
    "MITIGATIONS",
    "MITIGATION_DISABLE",
    "MITIGATION_NONE",
    "MITIGATION_REALLOCATE",
    "PenaltyBreakdown",
    "TimeseriesError",
    "generate_timeseries",
    "penalty_summary",
]
