"""Mitigation policies and their typed penalty accounting.

A mitigation policy decides what the fabric does about a degraded
resource.  Policies are *table transforms*: :class:`~repro.resilience.
overlay.DegradationOverlay` computes a raw per-epoch, per-(src, dst)
degradation level and each policy maps it to the integer penalty tables
both replay engines consult.  The three built-ins:

``none``        ride out the degradation: serialization on a level-``l``
                pair stretches by ``1 / (1 - l)`` (lost optical margin =
                lost effective bandwidth), holding the channel longer and
                cascading contention onto healthy traffic.
``disable``     drop any pair degraded past :data:`DISABLE_THRESHOLD_PM`
                and detour via the lowest-numbered healthy relay node:
                serialization happens twice (store-and-forward at the
                relay, which keeps holding the source resource — the
                "contention penalty"), plus the extra propagation and one
                extra O/E + E/O conversion pair.  Pairs under the
                threshold fall back to ``none`` behaviour.
``reallocate``  re-allocate spare wavelength/path capacity to the degraded
                pair: the effective level drops by the backend's spare
                capacity (AWGR: the leftover ``W mod (N-1)`` wavelengths
                the cyclic lane assignment leaves idle; other backends: a
                fixed spare-path budget), at the cost of
                :data:`REALLOCATE_RETUNE_CYCLES` of ring re-tuning per
                message, which also holds the channel.

Every policy produces only **non-negative** adjustments, which is what
keeps the generational engine's windowed solver exact: the per-message
gain lower bound remains a lower bound under degradation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (  # noqa: F401  (re-exported policy names)
    MITIGATION_DISABLE,
    MITIGATION_NONE,
    MITIGATION_REALLOCATE,
    MITIGATIONS,
)

#: ``disable`` drops a (src, dst) pair once its level reaches this
#: per-mille threshold (0.7 — the link has lost >70% of its margin).
DISABLE_THRESHOLD_PM = 700

#: Ring re-tuning cost per message on a reallocated pair (cycles).
REALLOCATE_RETUNE_CYCLES = 2

#: Spare capacity (per mille) the ``reallocate`` policy can shift to a
#: degraded pair on backends without idle AWGR wavelengths.
REALLOCATE_DEFAULT_SPARE_PM = 250

#: Levels are capped here so the ``1/(1-l)`` serialization stretch stays
#: bounded (a fully dead link is modelled as 20x slowdown, not infinity —
#: the ``disable`` policy exists for the "actually dead" regime).
LEVEL_CAP_PM = 950


@dataclass(frozen=True)
class PenaltyBreakdown:
    """Typed accounting of where a policy's cycles went.

    ``slowdown_cycles``  serialization stretch on degraded pairs
    ``detour_cycles``    relay detours taken by ``disable`` (extra
                         serialization + propagation + conversions)
    ``retune_cycles``    ring re-tuning charged by ``reallocate``
    ``messages_affected`` messages that crossed a degraded pair
    ``messages_total``    messages replayed (affected or not)
    """

    mitigation: str
    slowdown_cycles: int = 0
    detour_cycles: int = 0
    retune_cycles: int = 0
    messages_affected: int = 0
    messages_total: int = 0

    @property
    def total_cycles(self) -> int:
        return self.slowdown_cycles + self.detour_cycles + self.retune_cycles

    def as_dict(self) -> dict:
        return {
            "mitigation": self.mitigation,
            "slowdown_cycles": self.slowdown_cycles,
            "detour_cycles": self.detour_cycles,
            "retune_cycles": self.retune_cycles,
            "total_cycles": self.total_cycles,
            "messages_affected": self.messages_affected,
            "messages_total": self.messages_total,
        }


def check_mitigation(name: str) -> str:
    if name not in MITIGATIONS:
        raise ValueError(
            f"unknown mitigation policy {name!r}; expected one of {MITIGATIONS}")
    return name
