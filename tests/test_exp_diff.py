"""Archive diffing + gate policy tests (repro.exp.diff).

Hand-built archive pairs, no simulation: parameter deltas, the relative
change math (including the zero-baseline edge), missing-metric semantics,
glob tolerances with first-match-wins exemptions, and the inclusive
tolerance boundary that decides CI pass/fail.
"""

from __future__ import annotations

import math

from repro.exp import diff_archives, format_diff
from repro.exp.archive import Archive
from repro.exp.config import GateSpec


def make_archive(metrics, params=None, gate=None, experiment="area",
                 config_hash="deadbeef", name="unit"):
    return Archive(
        name=name,
        experiment=experiment,
        config_hash=config_hash,
        parameters=params or {"cores": 4, "seed": 3},
        metrics=metrics,
        gate=gate or GateSpec(0.0, {}),
    )


# ---------------------------------------------------------------- GateSpec
def test_tolerance_glob_first_match_wins():
    g = GateSpec(1.0, {"fft.*": 5.0, "*.wall_clock_s": None, "*": 2.0})
    assert g.tolerance_for("fft.err") == 5.0
    assert g.tolerance_for("fft.wall_clock_s") == 5.0  # first match wins
    assert g.tolerance_for("lu.wall_clock_s") is None  # exempt
    assert g.tolerance_for("lu.err") == 2.0
    assert GateSpec(3.0, {}).tolerance_for("anything") == 3.0


def test_gate_spec_dict_round_trip():
    g = GateSpec(1.5, {"a.*": None, "b.*": 2.0})
    assert GateSpec.from_dict(g.as_dict()) == g


# ------------------------------------------------------------- basic diffs
def test_identical_archives_diff_clean():
    a = make_archive({"m": 1.0})
    b = make_archive({"m": 1.0})
    rep = diff_archives(a, b)
    assert rep.param_deltas == []
    assert rep.changed_metrics == []
    assert rep.config_hash_equal
    assert rep.gate_ok
    text = format_diff(rep, gated=True)
    assert "parameter deltas: none" in text
    assert "gate: PASS" in text


def test_parameter_deltas_reported_both_directions():
    a = make_archive({"m": 1.0}, params={"cores": 4, "scale": 1.0})
    b = make_archive({"m": 1.0}, params={"cores": 16, "engine": "vector"},
                     config_hash="feedface")
    rep = diff_archives(a, b)
    deltas = {d.key: (d.a, d.b) for d in rep.param_deltas}
    assert deltas == {
        "cores": (4, 16),
        "scale": (1.0, None),
        "engine": (None, "vector"),
    }
    assert not rep.config_hash_equal


def test_relative_change_math():
    a = make_archive({"m": 100.0, "n": -2.0})
    b = make_archive({"m": 110.0, "n": -1.0})
    rep = diff_archives(a, b)
    by = {d.metric: d for d in rep.metric_deltas}
    assert by["m"].rel_change_pct == 10.0
    assert by["n"].rel_change_pct == 50.0  # change relative to |a|


def test_zero_baseline_is_infinite_change():
    a = make_archive({"m": 0.0})
    b = make_archive({"m": 0.5})
    (d,) = diff_archives(a, b).metric_deltas
    assert d.rel_change_pct == math.inf
    assert not d.ok  # no finite tolerance admits an infinite change
    down = make_archive({"m": -0.5})
    (d2,) = diff_archives(a, down).metric_deltas
    assert d2.rel_change_pct == -math.inf


# -------------------------------------------------------------- gate edges
def test_tolerance_boundary_is_inclusive():
    gate = GateSpec(10.0, {})
    a = make_archive({"m": 100.0}, gate=gate)
    assert diff_archives(a, make_archive({"m": 110.0})).gate_ok
    assert diff_archives(a, make_archive({"m": 90.0})).gate_ok
    assert not diff_archives(a, make_archive({"m": 110.1})).gate_ok


def test_reference_gate_applies_by_default():
    # the baseline (A side) declares what may move
    a = make_archive({"m": 100.0}, gate=GateSpec(50.0, {}))
    b = make_archive({"m": 120.0}, gate=GateSpec(0.0, {}))
    assert diff_archives(a, b).gate_ok
    # an explicit gate overrides both
    assert not diff_archives(a, b, gate=GateSpec(5.0, {})).gate_ok


def test_exempt_metric_never_fails_gate():
    gate = GateSpec(0.0, {"*.wall_clock_s": None})
    a = make_archive({"x.wall_clock_s": 1.0, "x.err": 2.0}, gate=gate)
    b = make_archive({"x.wall_clock_s": 9.0, "x.err": 2.0})
    rep = diff_archives(a, b)
    assert rep.gate_ok
    assert len(rep.changed_metrics) == 1  # still reported as changed


def test_missing_metric_fails_unless_exempt():
    a = make_archive({"m": 1.0, "gone.wall_clock_s": 1.0},
                     gate=GateSpec(100.0, {"*.wall_clock_s": None}))
    b = make_archive({"m": 1.0, "new": 3.0})
    rep = diff_archives(a, b)
    by = {d.metric: d for d in rep.metric_deltas}
    assert by["gone.wall_clock_s"].ok  # exempt, may disappear
    assert not by["new"].ok  # shape change, tolerance cannot admit it
    assert by["new"].rel_change_pct is None
    assert not rep.gate_ok
    assert "only in B" in format_diff(rep)


def test_experiment_mismatch_fails_gate():
    a = make_archive({"m": 1.0}, experiment="area")
    b = make_archive({"m": 1.0}, experiment="power")
    rep = diff_archives(a, b)
    assert not rep.experiments_match
    assert not rep.gate_ok
    assert "EXPERIMENT MISMATCH" in format_diff(rep)


def test_gated_rendering_marks_failures():
    a = make_archive({"m": 100.0}, gate=GateSpec(1.0, {}))
    b = make_archive({"m": 150.0})
    text = format_diff(diff_archives(a, b), gated=True)
    assert "GATE FAIL" in text
    assert "gate: FAIL" in text
