"""Trace-capture tests against real full-system runs."""

from __future__ import annotations

import pytest

from repro.config import ExperimentConfig, NocConfig, OnocConfig, SystemConfig, CacheConfig
from repro.core import TraceCapture
from repro.harness import run_execution_driven
from repro.net import Message


def small_exp(seed=5):
    return ExperimentConfig(
        system=SystemConfig(
            num_cores=4,
            l1=CacheConfig(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=1),
            l2_slice=CacheConfig(size_bytes=4096, assoc=4, line_bytes=64, hit_latency=4),
            mem_latency=30, num_mem_ctrls=2,
        ),
        noc=NocConfig(width=2, height=2),
        onoc=OnocConfig(num_nodes=4, num_wavelengths=16),
        seed=seed,
    )


@pytest.fixture(scope="module")
def captured():
    exp = small_exp()
    res, trace, _ = run_execution_driven(exp, "randshare", "electrical")
    return res, trace


def test_capture_produces_valid_trace(captured):
    res, trace = captured
    trace.validate()
    assert len(trace) > 0
    assert trace.exec_time == res.exec_time_cycles


def test_every_network_message_captured(captured):
    res, trace = captured
    assert len(trace) == res.messages


def test_semantic_keys_unique(captured):
    _, trace = captured
    keys = {r.key for r in trace.records}
    assert len(keys) == len(trace.records)


def test_end_markers_one_per_core(captured):
    _, trace = captured
    assert sorted(m.node for m in trace.end_markers) == [0, 1, 2, 3]


def test_dependency_structure_nontrivial(captured):
    _, trace = captured
    roots = trace.roots()
    assert 0 < len(roots) < len(trace)        # some deps, some roots
    assert trace.dependency_depth() > 10      # deep causal chains


def test_gaps_nonnegative_and_bounded(captured):
    _, trace = captured
    for r in trace.records:
        assert 0 <= r.gap <= trace.exec_time


def test_meta_propagated():
    exp = small_exp()
    _, trace, _ = run_execution_driven(exp, "fft", "electrical", scale=0.5)
    assert trace.meta["workload"] == "fft"
    assert trace.meta["capture_network"] == "electrical"
    assert trace.meta["scale"] == 0.5


def test_capture_on_optical_network_too():
    exp = small_exp()
    res, trace, _ = run_execution_driven(exp, "stencil", "optical")
    trace.validate()
    assert len(trace) == res.messages


def test_capture_determinism():
    exp = small_exp()
    _, t1, _ = run_execution_driven(exp, "lu", "electrical")
    _, t2, _ = run_execution_driven(exp, "lu", "electrical")
    sig1 = [(r.key, r.t_inject, r.t_deliver, r.gap) for r in t1.records]
    sig2 = [(r.key, r.t_inject, r.t_deliver, r.gap) for r in t2.records]
    assert sig1 == sig2


def test_capture_rejects_non_protocol_messages():
    cap = TraceCapture()
    with pytest.raises(TypeError, match="ProtPayload"):
        cap.on_network_send(Message(0, 1, 8, payload="raw"))


# ------------------------------------------------ incremental acyclicity

def test_capture_rejects_forward_cause_naming_the_transition():
    """A cause that has not been sent yet is a forward reference — the only
    shape a (zero-latency) dependency cycle can take, since sends are hooked
    in simulation order.  The error must pinpoint the protocol transition
    that closed the cycle, not wait for post-hoc validation."""
    from repro.system.protocol import ProtPayload
    cap = TraceCapture()
    cap.on_network_send(Message(0, 1, 64, "req_read",
                                payload=ProtPayload(line=7)))
    future = Message(1, 0, 64, "resp_data", payload=ProtPayload(line=7))
    offender = Message(0, 2, 64, "req_write",
                       payload=ProtPayload(line=7, aux=0, seq=4,
                                           cause=future))
    with pytest.raises(RuntimeError) as exc:
        cap.on_network_send(offender)
    text = str(exc.value)
    # Names the offending transition and the forward trigger precisely.
    assert "req_write 0->2" in text
    assert "line=7" in text and "seq=4" in text
    assert f"message {future.id} (resp_data)" in text
    assert "cause" in text
    # The offender was rejected, not half-recorded.
    assert cap.messages_captured == 1


def test_capture_rejects_forward_bound_too():
    from repro.system.protocol import ProtPayload
    cap = TraceCapture()
    trigger = Message(1, 0, 64, "resp_data", payload=ProtPayload(line=3))
    cap.on_network_send(trigger)
    future = Message(2, 0, 64, "resp_data", payload=ProtPayload(line=3))
    with pytest.raises(RuntimeError, match="as its bound"):
        cap.on_network_send(Message(0, 1, 64, "req_read",
                                    payload=ProtPayload(line=3,
                                                        cause=trigger,
                                                        bound=future)))


def test_capture_rejects_self_cycle():
    from repro.system.protocol import ProtPayload
    cap = TraceCapture()
    msg = Message(0, 1, 64, "req_read", payload=ProtPayload(line=1))
    msg.payload.cause = msg
    with pytest.raises(RuntimeError, match="dependency cycle at capture"):
        cap.on_network_send(msg)


def test_posthoc_validate_agrees_on_the_cycle():
    """The same damage smuggled past capture (hand-built records) is still
    caught by ``Trace.validate()``'s fire-fixpoint: the capture-time check
    is an earlier, better-named gate over the same invariant."""
    from repro.core.trace import Trace, TraceRecord

    def rec(msg_id, cause_id):
        return TraceRecord(
            msg_id=msg_id, key=(0, 1, "req_read", 0, msg_id), src=0, dst=1,
            size_bytes=8, kind="req_read", t_inject=5, t_deliver=5,
            cause_id=cause_id, gap=0)

    # Zero-latency two-cycle: each record's cause delivers exactly when the
    # other injects, so every per-edge arithmetic check balances.
    cyclic = Trace(records=[rec(0, 1), rec(1, 0)], end_markers=[],
                   exec_time=5)
    with pytest.raises(ValueError, match="cyc"):
        cyclic.validate()


def test_capture_counts(captured):
    res, trace = captured
    # control messages should dominate data in count for coherence traffic
    kinds = {}
    for r in trace.records:
        kinds[r.kind] = kinds.get(r.kind, 0) + 1
    assert kinds.get("req_read", 0) + kinds.get("req_write", 0) > 0
    assert kinds.get("resp_data", 0) > 0
