"""Full-pipeline integration test at paper scale (16 cores).

This is the reproduction's acceptance test: the complete methodology —
capture on the electrical baseline, execution-driven reference on the ONOC,
naive and self-correcting replays — must show the paper's qualitative
result on the real configuration.
"""

from __future__ import annotations

import pytest

from repro.config import TraceConfig, default_16core_config
from repro.core import compare_to_reference, replay_trace
from repro.harness import optical_factory, run_execution_driven


@pytest.fixture(scope="module")
def pipeline():
    exp = default_16core_config().with_seed(7)
    res_e, trace, _ = run_execution_driven(exp, "lu", "electrical")
    res_o, ref_trace, _ = run_execution_driven(exp, "lu", "optical")
    factory = optical_factory(exp.onoc, exp.seed)
    naive = replay_trace(trace, factory, TraceConfig(mode="naive"))
    sc = replay_trace(trace, factory, TraceConfig(mode="self_correcting"))
    return exp, res_e, res_o, trace, ref_trace, naive, sc


def test_optical_network_speeds_up_application(pipeline):
    _, res_e, res_o, *_ = pipeline
    assert res_o.exec_time_cycles < res_e.exec_time_cycles


def test_trace_covers_all_traffic(pipeline):
    _, res_e, _, trace, *_ = pipeline
    assert len(trace) == res_e.messages
    trace.validate()


def test_self_correction_is_high_precision(pipeline):
    """The abstract's claim: 'our simulation system achieves a high
    precision' — self-correcting error must be small in absolute terms."""
    *_, ref_trace, naive, sc = pipeline
    rep = compare_to_reference(sc, ref_trace)
    assert rep.exec_time_error_pct < 5.0
    assert rep.mean_latency_error_pct < 15.0


def test_self_correction_beats_naive_substantially(pipeline):
    *_, ref_trace, naive, sc = pipeline
    rep_n = compare_to_reference(naive, ref_trace)
    rep_s = compare_to_reference(sc, ref_trace)
    assert rep_s.exec_time_error_pct < rep_n.exec_time_error_pct / 2


def test_replay_not_substantially_slower_than_exec(pipeline):
    """The abstract's claim: 'while not substantially extend the total
    simulation time' — replay must not cost more wall-clock than the
    execution-driven reference run."""
    _, _, res_o, _, _, _, sc = pipeline
    assert sc.wall_clock_s < 2 * res_o.wall_clock_s


def test_full_message_coverage_in_replay(pipeline):
    *_, sc = pipeline
    assert sc.messages_unreplayed == 0
