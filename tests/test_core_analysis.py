"""Trace-characterisation tests."""

from __future__ import annotations


import pytest

from repro.config import (
    CacheConfig,
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    SystemConfig,
)
from repro.core import (
    Trace,
    TraceRecord,
    critical_chain,
    dependency_fanout,
    destination_entropy,
    injection_burstiness,
    profile_trace,
)
from repro.harness import run_execution_driven


def rec(mid, src, dst, t_in, t_del, cause=-1, gap=None, kind="req_read"):
    return TraceRecord(
        msg_id=mid, key=(src, dst, kind, mid, 0), src=src, dst=dst,
        size_bytes=8, kind=kind, t_inject=t_in, t_deliver=t_del,
        cause_id=cause, gap=(t_in if cause == -1 else gap))


def chain(n=4, gap=5, lat=10):
    """Linear chain: r0 -> r1 -> ... alternating 0<->1."""
    records = []
    t = 0
    for i in range(n):
        src, dst = (0, 1) if i % 2 == 0 else (1, 0)
        records.append(rec(i, src, dst, t, t + lat,
                           cause=-1 if i == 0 else i - 1,
                           gap=t if i == 0 else gap))
        t = t + lat + gap
    tr = Trace(records=records, end_markers=[], exec_time=0)
    tr.validate()
    return tr


def test_critical_chain_linear():
    tr = chain(n=5, gap=7)
    depth, gap_sum = critical_chain(tr)
    assert depth == 5
    assert gap_sum == 0 + 4 * 7  # root gap 0 (t_inject 0) + four links


def test_critical_chain_picks_deepest():
    tr = chain(n=3, gap=5)
    # add an independent root far away
    tr.records.append(rec(99, 2, 3, 0, 9))
    depth, _ = critical_chain(tr)
    assert depth == 3


def test_dependency_fanout_linear():
    tr = chain(n=4)
    fan = dependency_fanout(tr)
    assert fan[1] == 3   # three records have exactly one dependent
    assert fan[0] == 1   # the last record has none


def test_destination_entropy_uniform_vs_hotspot():
    uniform = Trace(records=[rec(i, 0, 1 + (i % 4), i * 10, i * 10 + 5)
                             for i in range(32)],
                    end_markers=[], exec_time=0)
    hotspot = Trace(records=[rec(i, 0, 1, i * 10, i * 10 + 5)
                             for i in range(32)],
                    end_markers=[], exec_time=0)
    ent_u, _ = destination_entropy(uniform)
    ent_h, _ = destination_entropy(hotspot)
    assert ent_u == pytest.approx(2.0)   # 4 equiprobable destinations
    assert ent_h == pytest.approx(0.0)


def test_destination_entropy_empty():
    assert destination_entropy(Trace([], [], 0)) == (0.0, 0.0)


def test_burstiness_smooth_vs_bursty():
    smooth = Trace(records=[rec(i, 0, 1, i * 8, i * 8 + 5)
                            for i in range(128)],
                   end_markers=[], exec_time=1024)
    bursty_records = [rec(i, 0, 1, (i // 32) * 512, (i // 32) * 512 + 5 + i % 32)
                      for i in range(128)]
    bursty = Trace(records=bursty_records, end_markers=[], exec_time=2048)
    assert injection_burstiness(bursty, 128) > injection_burstiness(smooth, 128)
    with pytest.raises(ValueError):
        injection_burstiness(smooth, 0)


def test_profile_on_real_trace():
    exp = ExperimentConfig(
        system=SystemConfig(
            num_cores=4,
            l1=CacheConfig(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=1),
            l2_slice=CacheConfig(size_bytes=4096, assoc=4, line_bytes=64, hit_latency=4),
            mem_latency=30, num_mem_ctrls=2,
        ),
        noc=NocConfig(width=2, height=2),
        onoc=OnocConfig(num_nodes=4, num_wavelengths=16),
        seed=5,
    )
    _, trace, _ = run_execution_driven(exp, "lu", "electrical")
    prof = profile_trace(trace)
    assert prof.messages == len(trace)
    assert prof.dependency_depth == trace.dependency_depth()
    assert prof.roots == len(trace.roots())
    assert 0 < prof.dest_entropy_bits <= prof.dest_entropy_max_bits
    assert prof.critical_gap_sum < trace.exec_time  # compute < total
    assert prof.injection_cv > 0  # barrier-phased workload is bursty
    rows = prof.as_rows()
    assert any(r["property"] == "dependency depth" for r in rows)
    assert prof.kind_mix["resp_data"] > 0


def test_barrier_fanout_visible():
    """Barrier releases give one record a fanout ~ num_cores."""
    exp = ExperimentConfig(
        system=SystemConfig(
            num_cores=4,
            l1=CacheConfig(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=1),
            l2_slice=CacheConfig(size_bytes=4096, assoc=4, line_bytes=64, hit_latency=4),
            mem_latency=30, num_mem_ctrls=2,
        ),
        noc=NocConfig(width=2, height=2),
        onoc=OnocConfig(num_nodes=4, num_wavelengths=16),
        seed=5,
    )
    _, trace, _ = run_execution_driven(exp, "fft", "electrical")
    prof = profile_trace(trace)
    assert prof.max_fanout >= 3  # a barrier arrival triggers ~N-1 releases
