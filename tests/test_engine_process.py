"""Coroutine-process layer tests."""

from __future__ import annotations

import pytest

from repro.engine import SimulationError, Simulator
from repro.engine.process import Signal, spawn


def test_sleep_yields_advance_time():
    sim = Simulator()
    log = []

    def proc():
        log.append(sim.now)
        yield 10
        log.append(sim.now)
        yield 5
        log.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert log == [0, 10, 15]


def test_spawn_delay():
    sim = Simulator()
    log = []

    def proc():
        log.append(sim.now)
        yield 0

    spawn(sim, proc(), delay=7)
    sim.run()
    assert log == [7]


def test_signal_wakes_waiters_in_order():
    sim = Simulator()
    log = []
    sig = Signal()

    def waiter(tag):
        yield sig
        log.append((tag, sim.now))

    def firer():
        yield 20
        sig.fire(sim)

    spawn(sim, waiter("a"))
    spawn(sim, waiter("b"))
    spawn(sim, firer())
    sim.run()
    assert log == [("a", 20), ("b", 20)]
    assert sig.fire_time == 20


def test_wait_on_already_fired_signal():
    sim = Simulator()
    log = []
    sig = Signal()
    sig.fire()

    def proc():
        yield sig
        log.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert log == [0]


def test_fire_is_idempotent():
    sig = Signal()
    sig.fire()
    sig.fire()
    assert sig.fired


def test_wait_on_process_and_result():
    sim = Simulator()
    log = []

    def child():
        yield 12
        return "payload"

    def parent():
        c = spawn(sim, child(), name="child")
        yield c
        log.append((sim.now, c.result))

    spawn(sim, parent())
    sim.run()
    assert log == [(12, "payload")]


def test_wait_on_finished_process():
    sim = Simulator()
    log = []

    def child():
        yield 1

    def parent(c):
        yield 50            # child finishes long before
        yield c
        log.append(sim.now)

    c = spawn(sim, child())
    spawn(sim, parent(c))
    sim.run()
    assert log == [50]


def test_kill_stops_process():
    sim = Simulator()
    log = []

    def proc():
        yield 10
        log.append("should not happen")

    p = spawn(sim, proc())
    sim.schedule(5, p.kill)
    sim.run()
    assert log == []
    assert p.done


def test_kill_fires_done_signal():
    sim = Simulator()
    log = []

    def child():
        yield 100

    def parent(c):
        yield c
        log.append(sim.now)

    c = spawn(sim, child())
    spawn(sim, parent(c))
    sim.schedule(3, c.kill)
    sim.run()
    assert log == [3]


def test_negative_delay_rejected():
    sim = Simulator()

    def proc():
        yield -1

    spawn(sim, proc())
    with pytest.raises(SimulationError, match="negative delay"):
        sim.run()


def test_bad_yield_type_rejected():
    sim = Simulator()

    def proc():
        yield "nonsense"

    spawn(sim, proc())
    with pytest.raises(SimulationError, match="unsupported"):
        sim.run()


def test_producer_consumer_pipeline():
    """Integration: two processes coordinating through signals."""
    sim = Simulator()
    produced, consumed = [], []
    ready = [Signal() for _ in range(3)]

    def producer():
        for i, sig in enumerate(ready):
            yield 10
            produced.append((i, sim.now))
            sig.fire(sim)

    def consumer():
        for i, sig in enumerate(ready):
            yield sig
            yield 2          # consume time
            consumed.append((i, sim.now))

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    assert produced == [(0, 10), (1, 20), (2, 30)]
    assert consumed == [(0, 12), (1, 22), (2, 32)]
