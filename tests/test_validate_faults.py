"""Dedicated tests for the trace fault-injection layer (repro.validate.faults).

Three tiers:

* **Unit** — one test per fault model on a small hand-built trace, asserting
  the returned :class:`FaultReport` matches the damage actually injected
  (exact msg_id lists, counts, meta flags), plus zero-severity identity.
* **Determinism & composition** — same seed twice is bit-identical, a
  different seed changes the selection, and the three *selection* faults
  (``drop_deps``, ``truncate``, ``node_loss``) commute under every
  permutation, while ``jitter`` composition is order-sensitive (documented
  in the module docstring, pinned here).
* **Property (hypothesis, skipped if not installed)** — threshold faults
  damage monotonically-growing record sets in severity, and on a real
  captured scenario the self-correcting replay's exec error under the
  ``neighbor_gap`` policy is monotone-nondecreasing in fault severity up to
  a measured slack: graceful degradation, no cliffs, but no pretence that
  random damage is exactly monotone either (measured dips on the fft-16
  awgr->crossbar pair stay under ~11 error points; slack is 20).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.trace import DEGRADED_RECORDS_META_KEY, EndMarker, Trace, \
    TraceRecord
from repro.validate.faults import (
    FAULT_FAMILIES,
    DropDepEdges,
    FaultModel,
    NodeRecordLoss,
    RewireDeps,
    TimestampJitter,
    TruncateTail,
    apply_faults,
    fault_from_dict,
    fault_to_dict,
    parse_fault_specs,
)

SEED = 1234


def _rec(msg_id, t_inject, t_deliver, cause_id=-1, gap=None, src=0,
         bound_id=-1, bound_gap=0):
    if gap is None:
        gap = t_inject if cause_id == -1 else 0
    return TraceRecord(
        msg_id=msg_id, key=(src, (src + 1) % 3, "req_read", 0, msg_id),
        src=src, dst=(src + 1) % 3, size_bytes=8, kind="req_read",
        t_inject=t_inject, t_deliver=t_deliver, cause_id=cause_id, gap=gap,
        bound_id=bound_id, bound_gap=bound_gap)


def _trace() -> Trace:
    """12 records over 3 source nodes: per-node chains, one bound edge."""
    records = [
        _rec(0, 0, 10, src=0),
        _rec(1, 15, 30, cause_id=0, gap=5, src=0),
        _rec(2, 30, 50, cause_id=1, gap=0, src=0),
        _rec(3, 2, 12, src=1),
        _rec(4, 20, 35, cause_id=3, gap=8, src=1, bound_id=0, bound_gap=10),
        _rec(5, 40, 55, cause_id=4, gap=5, src=1),
        _rec(6, 4, 14, src=2),
        _rec(7, 20, 38, cause_id=6, gap=6, src=2),
        _rec(8, 40, 52, cause_id=7, gap=2, src=2),
        _rec(9, 62, 80, cause_id=8, gap=10, src=2),
        _rec(10, 58, 70, cause_id=5, gap=3, src=0),
        _rec(11, 80, 95, cause_id=9, gap=0, src=1),
    ]
    markers = [EndMarker(0, 75, 10, 5), EndMarker(1, 98, 11, 3),
               EndMarker(2, 84, 9, 4)]
    trace = Trace(records=records, end_markers=markers, exec_time=98)
    trace.validate()
    return trace


DEPENDENT_IDS = frozenset({1, 2, 4, 5, 7, 8, 9, 10, 11})


# --------------------------------------------------------------- drop_deps

def test_drop_deps_report_matches_injected_damage():
    trace = _trace()
    damaged, report = DropDepEdges(0.5).apply(trace, SEED)
    assert report.fault == "drop_deps" and report.severity == 0.5
    assert report.records_before == report.records_after == len(trace)
    dropped = set(report.dropped_edges)
    assert dropped and dropped <= DEPENDENT_IDS
    by_id = {r.msg_id: r for r in damaged.records}
    for mid in dropped:
        r = by_id[mid]
        assert r.cause_id == -1 and r.gap == r.t_inject
        assert r.bound_id == -1 and r.bound_gap == 0
    for r in trace.records:          # undamaged records pass through intact
        if r.msg_id not in dropped:
            assert by_id[r.msg_id] == r
    # The meta flag is exactly the dropped set — the replayer's routing key.
    assert set(damaged.meta[DEGRADED_RECORDS_META_KEY]) == dropped
    assert report.removed_records == () and report.rewired_records == ()
    assert report.damaged_count == len(dropped)


def test_drop_deps_full_and_zero_severity():
    trace = _trace()
    all_dropped, rep1 = DropDepEdges(1.0).apply(trace, SEED)
    assert set(rep1.dropped_edges) == DEPENDENT_IDS
    assert all(r.cause_id == -1 for r in all_dropped.records)
    untouched, rep0 = DropDepEdges(0.0).apply(trace, SEED)
    assert rep0.dropped_edges == () and untouched.records == trace.records
    assert DEGRADED_RECORDS_META_KEY not in untouched.meta


# ------------------------------------------------------------------ jitter

def test_jitter_report_matches_shifts_and_trace_stays_valid():
    trace = _trace()
    damaged, report = TimestampJitter(5.0).apply(trace, SEED)
    assert report.records_before == report.records_after == len(trace)
    damaged.validate()               # coherent lie: still a wellformed trace
    orig = {r.msg_id: r for r in trace.records}
    shifts = {r.msg_id: abs(r.t_inject - orig[r.msg_id].t_inject)
              for r in damaged.records}
    moved = {mid for mid, d in shifts.items() if d}
    assert set(report.shifted_records) == moved and moved
    assert report.max_abs_shift == max(shifts.values())
    assert report.dropped_edges == () and report.removed_records == ()


def test_jitter_zero_sigma_zero_skew_is_identity():
    trace = _trace()
    damaged, report = TimestampJitter(0.0).apply(trace, SEED)
    # Records are rebuilt in canonical (t_inject, msg_id) order; the content
    # is the identity.
    assert {r.msg_id: r for r in damaged.records} \
        == {r.msg_id: r for r in trace.records}
    assert damaged.end_markers == trace.end_markers
    assert damaged.exec_time == trace.exec_time
    assert report.shifted_records == () and report.max_abs_shift == 0


def test_jitter_skew_stretches_exec_time():
    trace = _trace()
    damaged, _ = TimestampJitter(0.0, skew=0.5).apply(trace, SEED)
    damaged.validate()
    assert damaged.exec_time > trace.exec_time


# ---------------------------------------------------------------- truncate

def test_truncate_removes_exactly_the_tail():
    trace = _trace()
    # exec_time 98, fraction 0.4 -> cutoff floor(58.8) = 58: records 9 and
    # 11 (t_inject 62, 80) fall, record 10 (t_inject 58) survives the edge.
    damaged, report = TruncateTail(0.4).apply(trace, SEED)
    assert report.removed_records == (9, 11)
    assert report.records_after == len(trace) - 2
    assert {r.msg_id for r in damaged.records} \
        == {r.msg_id for r in trace.records} - {9, 11}
    # The *claimed* horizon is untouched — that is the damage.
    assert damaged.exec_time == trace.exec_time
    assert damaged.end_markers == trace.end_markers


def test_truncate_zero_severity_is_identity():
    damaged, report = TruncateTail(0.0).apply(_trace(), SEED)
    assert report.removed_records == ()
    assert len(damaged.records) == 12


# --------------------------------------------------------------- node_loss

def test_node_loss_respects_node_selection():
    trace = _trace()
    # Seed 2 hashes exactly one of the three source nodes under the 0.5
    # node-selection threshold, so the subset is strict.
    damaged, report = NodeRecordLoss(1.0, node_fraction=0.5).apply(trace, 2)
    assert report.lost_nodes and set(report.lost_nodes) < {0, 1, 2}
    lost = set(report.lost_nodes)
    # fraction=1.0: every record from a lost node is gone, others intact.
    assert set(report.removed_records) \
        == {r.msg_id for r in trace.records if r.src in lost}
    assert all(r.src not in lost for r in damaged.records)
    assert report.records_after == len(damaged.records)


def test_node_loss_partial_fraction_is_subset_of_lost_nodes():
    trace = _trace()
    _, report = NodeRecordLoss(0.6, node_fraction=1.0).apply(trace, SEED)
    assert set(report.lost_nodes) == {0, 1, 2}
    by_id = {r.msg_id: r for r in trace.records}
    assert all(by_id[mid].src in report.lost_nodes
               for mid in report.removed_records)
    assert 0 < len(report.removed_records) < len(trace)


# ------------------------------------------------------------------ rewire

def test_rewire_report_matches_rewired_edges_and_balances():
    trace = _trace()
    deliver = {r.msg_id: r.t_deliver for r in trace.records}
    orig = {r.msg_id: r for r in trace.records}
    damaged, report = RewireDeps(1.0).apply(trace, SEED)
    damaged.validate()               # arithmetically silent damage
    rewired = set(report.rewired_records)
    assert rewired and rewired <= DEPENDENT_IDS
    for r in damaged.records:
        if r.msg_id in rewired:
            assert r.cause_id != orig[r.msg_id].cause_id
            # New cause delivered in time, gap recomputed to balance.
            assert deliver[r.cause_id] <= r.t_inject
            assert r.gap == r.t_inject - deliver[r.cause_id]
            assert r.bound_id == -1 and r.bound_gap == 0
        else:
            assert r == orig[r.msg_id]
    assert report.records_before == report.records_after == len(trace)


# ------------------------------------------- determinism and composition

ALL_FAULTS = (DropDepEdges(0.5), TimestampJitter(5.0), TruncateTail(0.4),
              NodeRecordLoss(0.6), RewireDeps(0.7))


@pytest.mark.parametrize("fault", ALL_FAULTS, ids=lambda f: f.name)
def test_same_seed_is_bit_identical(fault):
    trace = _trace()
    t1, r1 = fault.apply(trace, SEED)
    t2, r2 = fault.apply(trace, SEED)
    assert t1.records == t2.records and t1.end_markers == t2.end_markers
    assert t1.meta == t2.meta and r1 == r2


@pytest.mark.parametrize("fault", ALL_FAULTS, ids=lambda f: f.name)
def test_different_seed_changes_the_damage(fault):
    trace = _trace()
    _, r1 = fault.apply(trace, SEED)
    _, r2 = fault.apply(trace, SEED + 1)
    assert r1 != r2


def test_selection_faults_commute_under_every_permutation():
    import itertools
    trio = (DropDepEdges(0.3), TruncateTail(0.2), NodeRecordLoss(0.3))
    trace = _trace()
    outcomes = []
    for perm in itertools.permutations(trio):
        damaged, _ = apply_faults(trace, perm, SEED)
        outcomes.append((tuple(damaged.records), tuple(damaged.end_markers),
                         tuple(sorted(damaged.meta.get(
                             DEGRADED_RECORDS_META_KEY, ())))))
    assert len(set(outcomes)) == 1, "selection faults must commute"


def test_jitter_composition_is_order_sensitive():
    """Documented, not accidental: jitter rewrites the timestamps the
    selection faults read, so `jitter then truncate` != `truncate then
    jitter`."""
    trace = _trace()
    a, _ = apply_faults(trace, (TimestampJitter(8.0), TruncateTail(0.4)),
                        SEED)
    b, _ = apply_faults(trace, (TruncateTail(0.4), TimestampJitter(8.0)),
                        SEED)
    assert a.records != b.records


def test_apply_faults_rejects_non_fault_models():
    with pytest.raises(TypeError, match="not a FaultModel"):
        apply_faults(_trace(), ("drop_deps:0.3",), SEED)


# -------------------------------------------------- spec parsing and JSON

def test_parse_fault_specs_round_trip():
    faults = parse_fault_specs("drop_deps:0.3, jitter:8:0.05, "
                               "node_loss:0.3:0.5, truncate:0.1, rewire:0.2")
    assert [f.name for f in faults] \
        == ["drop_deps", "jitter", "node_loss", "truncate", "rewire"]
    assert faults[1] == TimestampJitter(8.0, skew=0.05)
    assert faults[2] == NodeRecordLoss(0.3, node_fraction=0.5)


@pytest.mark.parametrize("bad", ["", "bogus:0.5", "drop_deps",
                                 "drop_deps:x", "drop_deps:1.5"])
def test_parse_fault_specs_rejects_bad_input(bad):
    with pytest.raises(ValueError):
        parse_fault_specs(bad)


@pytest.mark.parametrize("fault", ALL_FAULTS, ids=lambda f: f.name)
def test_fault_dict_round_trip(fault):
    blob = fault_to_dict(fault)
    assert blob["kind"] == fault.name
    back = fault_from_dict(blob)
    assert back == fault and isinstance(back, FaultModel)


def test_repro_json_round_trips_faults(tmp_path):
    from repro.validate.differential import load_repro_scenario, write_repro
    from repro.validate.scenario import Scenario, ScenarioOutcome
    scen = Scenario("fft", 16, 16, 0.1, "awgr", "crossbar",
                    faults=(DropDepEdges(0.3), TimestampJitter(8.0, 0.05)),
                    fault_seed=99, gap_policy="interp")
    outcome = ScenarioOutcome(
        scenario=scen, trace_messages=0, ref_exec_time=1, sc_exec_estimate=1,
        naive_exec_estimate=1, sc_exec_error_pct=0.0,
        sc_mean_latency_error_pct=0.0, naive_exec_error_pct=0.0,
        sc_unreplayed=0, sc_demoted_cyclic=0)
    path = write_repro(outcome, tmp_path)
    back = load_repro_scenario(path)
    assert back == scen and back.faults == scen.faults


def test_fault_matrix_smoothness_gate():
    from repro.validate.differential import check_fault_matrix_smooth
    smooth = [(0.0, 3.6), (0.25, 20.0), (0.5, 60.0), (0.75, 100.0),
              (1.0, 132.0)]
    assert check_fault_matrix_smooth(smooth) == []
    # The captured-policy cliff: the whole pristine-to-naive range lands in
    # one 0.1-severity step (slope ~1290 per unit — the breach this gate
    # exists to catch).
    cliff = [(0.0, 3.6), (0.1, 132.4), (0.25, 132.4), (1.0, 132.5)]
    breaches = check_fault_matrix_smooth(cliff)
    assert len(breaches) == 1 and "severity 0 and 0.1" in breaches[0]


# ------------------------------------------------- hypothesis properties

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

THRESHOLD_FAMILIES = {
    "drop_deps": lambda s: DropDepEdges(s),
    "truncate": lambda s: TruncateTail(s),
    "node_loss": lambda s: NodeRecordLoss(s, node_fraction=1.0),
}


def _damaged_ids(report):
    return (set(report.dropped_edges) | set(report.removed_records)
            | set(report.rewired_records))


@settings(max_examples=40, deadline=None)
@given(family=st.sampled_from(sorted(THRESHOLD_FAMILIES)),
       lo=st.floats(min_value=0.0, max_value=1.0),
       hi=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(min_value=0, max_value=2**32))
def test_threshold_faults_damage_grows_with_severity(family, lo, hi, seed):
    """Per-record decisions are `hash < fraction` thresholds, so the damage
    set at a lower severity is a subset of the set at a higher one — the
    exact (slack-free) form of monotone degradation."""
    if lo > hi:
        lo, hi = hi, lo
    make = THRESHOLD_FAMILIES[family]
    trace = _trace()
    _, small = make(lo).apply(trace, seed)
    _, large = make(hi).apply(trace, seed)
    assert _damaged_ids(small) <= _damaged_ids(large)


# Severity grid shared with the checked-in fault-matrix benchmark; errors
# are cached per (family, severity) so hypothesis examples are cheap.
SEVERITIES = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Measured head-room: on fft-16 awgr->crossbar (fault_seed 777) the largest
#: non-monotone dip across all family curves is ~10.6 error points
#: (node_loss, severity 0.25 -> 0.75).  Random damage is not exactly
#: monotone; a cliff-free policy keeps dips an order of magnitude below the
#: ~129-point captured-policy jump.
MONOTONE_SLACK_PCT = 20.0

_ERROR_CACHE: dict[tuple[str, float], float] = {}


@pytest.fixture(scope="module")
def degradation_env():
    """One captured trace + reference exec time for the mismatch pair."""
    from repro.harness.builders import optical_factory, run_execution_driven
    from repro.validate.scenario import Scenario
    scen = Scenario("fft", 16, 16, 0.1, "awgr", "crossbar")
    exp = scen.experiment()
    cap_exp = dataclasses.replace(
        exp, onoc=dataclasses.replace(exp.onoc, topology="awgr"))
    _, trace, _ = run_execution_driven(cap_exp, scen.workload, "optical",
                                       scale=scen.scale)
    ref_res, _, _ = run_execution_driven(exp, scen.workload, "optical",
                                         scale=scen.scale)
    return trace, ref_res.exec_time_cycles, optical_factory(exp.onoc,
                                                            exp.seed)


def _exec_error(env, family: str, severity: float) -> float:
    key = (family, severity)
    if key not in _ERROR_CACHE:
        from repro.config import TRACE_SELF_CORRECTING, TraceConfig
        from repro.core import replay_trace
        trace, ref_exec, factory = env
        if severity > 0.0:
            trace, _ = apply_faults(trace, (FAULT_FAMILIES[family](severity),),
                                    777)
        res = replay_trace(trace, factory,
                           TraceConfig(mode=TRACE_SELF_CORRECTING))
        _ERROR_CACHE[key] = (abs(res.exec_time_estimate - ref_exec)
                             / ref_exec * 100.0)
    return _ERROR_CACHE[key]


@settings(max_examples=30, deadline=None)
@given(family=st.sampled_from(sorted(FAULT_FAMILIES)),
       pair=st.tuples(st.sampled_from(SEVERITIES),
                      st.sampled_from(SEVERITIES)))
def test_exec_error_is_monotone_in_severity_within_slack(
        degradation_env, family, pair):
    """The graceful-degradation property behind the fault matrix: under the
    default neighbor_gap policy, more damage never makes the replay *much*
    better — error is monotone-nondecreasing in severity up to the measured
    dip slack.  (Under the captured policy this fails spectacularly: the
    error is already at the naive ceiling by severity 0.1.)"""
    lo, hi = min(pair), max(pair)
    err_lo = _exec_error(degradation_env, family, lo)
    err_hi = _exec_error(degradation_env, family, hi)
    assert err_hi >= err_lo - MONOTONE_SLACK_PCT, (
        f"{family}: error fell {err_lo:.1f}% -> {err_hi:.1f}% between "
        f"severity {lo:g} and {hi:g}")


def test_full_severity_always_hurts(degradation_env):
    """Severity 1.0 strictly exceeds the pristine anchor for every family —
    the injected damage is visible end-to-end, not absorbed silently."""
    for family in FAULT_FAMILIES:
        assert _exec_error(degradation_env, family, 1.0) \
            > _exec_error(degradation_env, family, 0.0)
