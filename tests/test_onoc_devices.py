"""Photonic device census, layout and loss-budget tests."""

from __future__ import annotations


import pytest

from repro.config import OnocConfig, PhotonicDeviceConfig
from repro.onoc import (
    LossBudget,
    SerpentineLayout,
    crossbar_ring_census,
    mesh_ring_census,
)
from repro.onoc.devices import mesh_link_length_cm
from repro.onoc.loss import db_to_mw, mw_to_db


# ----------------------------------------------------------------- census
def test_crossbar_census_counts():
    c = crossbar_ring_census(16, 64)
    assert c.modulator_rings == 16 * 15 * 64
    assert c.detector_rings == 16 * 64
    assert c.switch_rings == 0
    assert c.total == c.modulator_rings + c.detector_rings


def test_mesh_census_counts():
    c = mesh_ring_census(16, 64, rings_per_switch_point=2)
    assert c.modulator_rings == 16 * 64
    assert c.detector_rings == 16 * 64
    assert c.switch_rings == 16 * 4 * 2 * 64


def test_census_validation():
    with pytest.raises(ValueError):
        crossbar_ring_census(1, 64)
    with pytest.raises(ValueError):
        mesh_ring_census(16, 0)
    with pytest.raises(ValueError):
        mesh_ring_census(16, 4, rings_per_switch_point=0)


# ----------------------------------------------------------------- layout
def test_serpentine_positions_monotone():
    layout = SerpentineLayout(OnocConfig())
    pos = [layout.position_cm(n) for n in range(16)]
    assert pos == sorted(pos)
    assert pos[0] == 0.0
    assert pos[-1] < layout.total_length_cm


def test_serpentine_distance_directional():
    layout = SerpentineLayout(OnocConfig())
    d_fwd = layout.distance_cm(0, 1)
    d_back = layout.distance_cm(1, 0)
    assert d_fwd > 0 and d_back > 0
    assert d_fwd + d_back == pytest.approx(layout.total_length_cm)


def test_serpentine_ring_hops():
    layout = SerpentineLayout(OnocConfig())
    assert layout.ring_hops(0, 1) == 1
    assert layout.ring_hops(1, 0) == 15
    assert layout.ring_hops(5, 5) == 16  # full loop back to self


def test_serpentine_node_range():
    layout = SerpentineLayout(OnocConfig())
    with pytest.raises(ValueError):
        layout.position_cm(16)


def test_mesh_link_length_positive():
    assert mesh_link_length_cm(OnocConfig(topology="circuit_mesh")) > 0


# ----------------------------------------------------------------- losses
def test_db_mw_roundtrip():
    for dbm in (-20.0, 0.0, 3.0, 10.0):
        assert mw_to_db(db_to_mw(dbm)) == pytest.approx(dbm)
    with pytest.raises(ValueError):
        mw_to_db(0.0)


def test_path_loss_components_sum():
    b = LossBudget(OnocConfig())
    pl = b.path_loss(distance_cm=2.0, rings_passed=10, splitters=1,
                     bends=4, couplers=2)
    total = (pl.waveguide_db + pl.ring_through_db + pl.drop_db
             + pl.couplers_db + pl.splitters_db + pl.bends_db
             + pl.detector_db)
    assert pl.total_db == pytest.approx(total)
    dev = PhotonicDeviceConfig()
    assert pl.waveguide_db == pytest.approx(2.0 * dev.waveguide_loss_db_cm)
    assert pl.ring_through_db == pytest.approx(10 * dev.ring_through_loss_db)


def test_path_loss_validation():
    b = LossBudget(OnocConfig())
    with pytest.raises(ValueError):
        b.path_loss(-1.0, 0)
    with pytest.raises(ValueError):
        b.path_loss(1.0, -1)


def test_loss_monotone_in_distance_and_rings():
    b = LossBudget(OnocConfig())
    assert b.path_loss(4.0, 5).total_db > b.path_loss(2.0, 5).total_db
    assert b.path_loss(2.0, 10).total_db > b.path_loss(2.0, 5).total_db


def test_required_laser_power_formula():
    cfg = OnocConfig()
    b = LossBudget(cfg)
    dev = cfg.devices
    dbm = b.required_laser_dbm_per_wavelength(10.0)
    assert dbm == pytest.approx(dev.detector_sensitivity_dbm + 10.0
                                + dev.power_margin_db)
    with pytest.raises(ValueError):
        b.required_laser_dbm_per_wavelength(-1.0)


def test_wallplug_scales_with_channels_and_wavelengths():
    b = LossBudget(OnocConfig())
    base = b.laser_wallplug_mw(10.0, 1, 1)
    assert b.laser_wallplug_mw(10.0, 2, 1) == pytest.approx(2 * base)
    assert b.laser_wallplug_mw(10.0, 1, 4) == pytest.approx(4 * base)
    with pytest.raises(ValueError):
        b.laser_wallplug_mw(10.0, 0)


def test_architecture_worst_losses_positive_and_ordered():
    cfg = OnocConfig()
    b = LossBudget(cfg)
    xbar = b.crossbar_worst_loss_db()
    assert xbar > 0
    mesh_cfg = OnocConfig(topology="circuit_mesh")
    mesh = LossBudget(mesh_cfg).mesh_worst_loss_db()
    assert mesh > 0
    # The serpentine loop is much longer than the mesh diameter.
    assert xbar > mesh
