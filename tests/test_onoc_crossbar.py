"""Optical MWSR crossbar behaviour tests."""

from __future__ import annotations

import pytest

from repro.config import OnocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.onoc import OpticalCrossbar


def run(sends, cfg=None, seed=1):
    sim = Simulator(seed=seed)
    net = OpticalCrossbar(sim, cfg or OnocConfig())
    done = []
    net.set_delivery_handler(done.append)
    for t, s, d, size in sends:
        sim.schedule(t, net.send, (Message(s, d, size),))
    sim.run()
    return net, done


def test_single_message_latency_decomposition():
    cfg = OnocConfig()
    net, done = run([(0, 0, 1, 72)], cfg)
    m = done[0]
    ser = cfg.serialization_cycles(72)
    prop = cfg.propagation_cycles(net.layout.distance_cm(0, 1))
    # Token starts parked at the reader (node 1): it travels 1 -> 0, i.e.
    # 15 ring hops of optical propagation.
    travel = cfg.propagation_cycles(15 * net.layout.spacing_cm)
    assert m.latency == travel + ser + prop + 2 * cfg.conversion_cycles


def test_token_travel_zero_when_parked_at_writer():
    cfg = OnocConfig()
    sim = Simulator(seed=1)
    net = OpticalCrossbar(sim, cfg)
    ch = net.channels[3]
    ch.token_at = 5
    assert net._token_travel(ch, 5) == 0
    assert net._token_travel(ch, 6) >= 1


def test_token_electrical_overhead_knob():
    slow = OnocConfig(token_hop_cycles=4)
    _, done_fast = run([(0, 0, 1, 72)], OnocConfig())
    _, done_slow = run([(0, 0, 1, 72)], slow)
    assert done_slow[0].latency > done_fast[0].latency


def test_token_parks_at_last_writer():
    cfg = OnocConfig()
    sim = Simulator(seed=1)
    net = OpticalCrossbar(sim, cfg)
    done = []
    net.set_delivery_handler(done.append)
    sim.schedule(0, net.send, (Message(5, 1, 72),))
    sim.run()
    first = done[0].latency
    # Second message from the same writer: token already parked at node 5.
    sim.schedule(sim.now + 100, net.send, (Message(5, 1, 72),))
    sim.run()
    second = done[1].latency
    assert second < first


def test_per_channel_serialization_queueing():
    cfg = OnocConfig()
    # Two simultaneous writers to one destination serialize on its channel.
    net, done = run([(0, 2, 9, 720), (0, 4, 9, 720)], cfg)
    lats = sorted(m.latency for m in done)
    assert lats[1] > lats[0]  # second waited for the channel
    assert net.stats.queueing_delay.max > 0


def test_different_channels_do_not_interfere():
    cfg = OnocConfig()
    _, alone = run([(0, 0, 8, 72)], cfg)
    _, shared = run([(0, 0, 8, 72), (0, 1, 9, 72), (0, 2, 10, 72)], cfg)
    lat_alone = alone[0].latency
    lat_shared = next(m.latency for m in shared if m.dst == 8)
    assert lat_shared == lat_alone


def test_bandwidth_affects_serialization():
    slow = OnocConfig(num_wavelengths=1)
    fast = OnocConfig(num_wavelengths=64)
    _, d_slow = run([(0, 0, 1, 1024)], slow)
    _, d_fast = run([(0, 0, 1, 1024)], fast)
    assert d_slow[0].latency > d_fast[0].latency


def test_stats_accounting():
    net, done = run([(0, 0, 1, 72), (0, 3, 7, 8)])
    assert net.stats.messages_delivered == 2
    assert net.stats.bytes_delivered == 80
    assert net.bits_transmitted == 80 * 8
    assert net.quiescent()


def test_self_send_rejected():
    sim = Simulator()
    net = OpticalCrossbar(sim, OnocConfig())
    with pytest.raises(ValueError, match="self-send"):
        net.send(Message(2, 2, 8))


def test_fifo_order_per_channel():
    order = []
    sim = Simulator(seed=1)
    net = OpticalCrossbar(sim, OnocConfig())
    for k in range(5):
        m = Message(k, 15, 720, payload=k,
                    on_delivery=lambda m: order.append(m.payload))
        sim.schedule(k, net.send, (m,))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_hotspot_saturates_single_channel():
    """All nodes hammering one destination: total service time is at least
    the sum of serializations (single reader limit)."""
    cfg = OnocConfig()
    sim = Simulator(seed=1)
    net = OpticalCrossbar(sim, cfg)
    done = []
    net.set_delivery_handler(done.append)
    writers = [n for n in range(16) if n != 0]
    for n in writers:
        sim.schedule(0, net.send, (Message(n, 0, 720),))
    sim.run()
    ser = cfg.serialization_cycles(720)
    assert sim.now >= len(writers) * ser
