"""End-to-end repro.exp runs + compile/cache-key identity + CLI surface.

Two properties carry the whole layer:

* a config run produces a self-describing archive, and two runs of the
  same config diff to zero parameter deltas and zero changed metrics;
* the tasks a config compiles to are cache-key-identical to the hand
  construction the original bench scripts performed, so the declarative
  layer reuses every previously cached simulation result.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.config import default_16core_config
from repro.exp import (
    compile_config,
    diff_archives,
    load_archive,
    resolve_config,
    run_experiment,
)
from repro.harness import SweepRunner, task
from repro.harness.experiments import (
    accuracy_experiment,
    area_rows,
    scalability_point,
)

SMALL = {"cores": 4, "seed": 3, "wavelengths": 16}


def write_cfg(tmp_path, payload, name="cfg.json"):
    p = tmp_path / name
    p.write_text(json.dumps(payload))
    return p


@pytest.fixture()
def runner(tmp_path):
    return SweepRunner(workers=1, cache_dir=tmp_path / "cache")


# -------------------------------------------------- compile-time identity
def test_area_compiles_to_legacy_task():
    cfg = resolve_config("benchmarks/experiments/base/area.yaml")
    (t,) = compile_config(cfg)
    legacy = task(area_rows, default_16core_config().with_seed(7))
    assert t.cache_key() == legacy.cache_key()


def test_accuracy_compiles_to_legacy_tasks(tmp_path):
    p = write_cfg(
        tmp_path,
        {"experiment": "accuracy",
         "parameters": {"workloads": ["fft", "lu"], "scale": 0.5}},
    )
    tasks = compile_config(resolve_config(p))
    exp = default_16core_config().with_seed(7)
    # the original bench passed scale always, engine only when non-default
    legacy = [task(accuracy_experiment, exp, wl, scale=0.5)
              for wl in ("fft", "lu")]
    assert [t.cache_key() for t in tasks] == [
        t.cache_key() for t in legacy]


def test_scalability_compiles_to_legacy_tasks(tmp_path):
    p = write_cfg(
        tmp_path,
        {"experiment": "scalability",
         "parameters": {"core_counts": [4, 64], "accuracy_max_cores": 36}},
    )
    tasks = compile_config(resolve_config(p))
    legacy = [
        task(scalability_point, 4, 7, "fft", with_accuracy=True,
             engine="event"),
        task(scalability_point, 64, 7, "fft", with_accuracy=False,
             engine="event"),
    ]
    assert [t.cache_key() for t in tasks] == [
        t.cache_key() for t in legacy]


# ------------------------------------------------------- end-to-end runs
def test_run_writes_archive_and_baseline(tmp_path, runner):
    p = write_cfg(tmp_path, {"experiment": "area", "parameters": SMALL})
    cfg = resolve_config(p)
    out = run_experiment(
        cfg, runner,
        archive_root=tmp_path / "archives",
        baseline_out=tmp_path / "baseline.json",
    )
    assert out.archive_dir is not None
    assert out.rows and out.metrics
    assert out.stats.executed == 1

    arch = load_archive(out.archive_dir)
    assert arch.experiment == "area"
    assert arch.config_hash == cfg.config_hash
    assert arch.manifest["provenance"]["git"]["rev"]
    assert arch.manifest["sweep"]["executed"] == 1
    table = (out.archive_dir / "artifacts" / "table.txt").read_text()
    assert "mm2" in table

    # baseline is the same manifest, standalone
    base = load_archive(tmp_path / "baseline.json")
    assert base.config_hash == arch.config_hash
    assert base.metrics == arch.metrics


def test_same_config_runs_diff_clean(tmp_path, runner):
    p = write_cfg(tmp_path, {"experiment": "area", "parameters": SMALL})
    cfg = resolve_config(p)
    a = run_experiment(cfg, runner, archive_root=tmp_path / "a")
    b = run_experiment(cfg, runner, archive_root=tmp_path / "b")
    assert b.stats.cached == 1  # second run replays from the result cache

    rep = diff_archives(load_archive(a.archive_dir),
                        load_archive(b.archive_dir))
    assert rep.param_deltas == []
    assert rep.changed_metrics == []
    assert rep.config_hash_equal
    assert rep.gate_ok


def test_perturbed_metric_fails_gate(tmp_path, runner):
    p = write_cfg(tmp_path, {"experiment": "area", "parameters": SMALL})
    cfg = resolve_config(p)
    out = run_experiment(cfg, runner, archive_root=tmp_path / "arch",
                         baseline_out=tmp_path / "base.json")
    baseline = json.loads((tmp_path / "base.json").read_text())
    metric = next(iter(baseline["metrics"]))
    baseline["metrics"][metric] *= 1.25  # drift beyond any 0% tolerance
    (tmp_path / "bad.json").write_text(json.dumps(baseline))

    rep = diff_archives(load_archive(tmp_path / "bad.json"), out.archive)
    assert not rep.gate_ok
    assert [d.metric for d in rep.gate_failures] == [metric]


# ------------------------------------------------------------------- CLI
def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


def test_cli_exp_list(capsys):
    rc, out = run_cli(capsys, "exp", "list")
    assert rc == 0
    assert "accuracy" in out and "area" in out
    assert "fig4_accuracy" in out  # discovered configs listed with hashes


def test_cli_exp_run_dry(tmp_path, capsys):
    p = write_cfg(tmp_path, {"experiment": "area", "parameters": SMALL})
    rc, out = run_cli(capsys, "exp", "run", str(p), "--dry-run")
    assert rc == 0
    assert "tasks=1" in out
    assert "key=" in out  # each task listed with its cache key prefix


def test_cli_exp_run_and_gated_diff(tmp_path, capsys):
    p = write_cfg(tmp_path, {"experiment": "area", "parameters": SMALL})
    baseline = tmp_path / "base.json"
    rc, out = run_cli(
        capsys, "exp", "run", str(p),
        "--cache-dir", str(tmp_path / "cache"),
        "--archive-root", str(tmp_path / "archives"),
        "--baseline-out", str(baseline),
    )
    assert rc == 0
    archives = list((tmp_path / "archives").iterdir())
    assert len(archives) == 1

    rc, out = run_cli(capsys, "exp", "diff", str(baseline),
                      str(archives[0]), "--gate")
    assert rc == 0
    assert "gate: PASS" in out

    # perturb a baseline metric -> gated diff exits nonzero
    payload = json.loads(baseline.read_text())
    metric = next(iter(payload["metrics"]))
    payload["metrics"][metric] *= 2.0
    baseline.write_text(json.dumps(payload))
    rc, out = run_cli(capsys, "exp", "diff", str(baseline),
                      str(archives[0]), "--gate")
    assert rc == 1
    assert "gate: FAIL" in out


def test_cli_exp_run_set_override_rejects_typo(tmp_path):
    from repro.exp import SchemaError

    p = write_cfg(tmp_path, {"experiment": "area", "parameters": SMALL})
    with pytest.raises(SchemaError, match="unknown parameter"):
        main(["exp", "run", str(p), "--dry-run", "--set", "coers=8"])
