"""Golden determinism tests pinning the kernel's exact event ordering.

The expected values below were captured from the pre-fast-path kernel (the
``Event``-object heap with Python ``__lt__`` comparisons) and assert that
the tuple-keyed rewrite fires events in the *identical* (time, priority,
seq) order and that ``replay_trace`` produces bit-identical timings — the
ISSUE-1 acceptance criterion that the optimisation does not perturb
simulation results.
"""

from __future__ import annotations

import pytest

from repro.config import OnocConfig, TraceConfig
from repro.core import replay_trace
from repro.core.trace import EndMarker, Trace, TraceRecord
from repro.engine import Simulator
from repro.harness import optical_factory

# Captured from the seed kernel (commit a59a29a) by running the scripted
# scenario below: (time, tag) pairs in firing order.
GOLDEN_SCENARIO_ORDER = [
    (5, "n0"), (5, "n1"),
    (10, "a0"), (10, "a3"), (10, "n1.child"), (10, "a1"), (10, "a4"),
    (10, "n0.child"), (10, "a2"), (10, "a5"),
    (15, "t0"), (15, "t1"), (15, "t2"), (15, "t3"),
    (20, "z"),
]

# Captured from the seed kernel: exact replay outputs of the hand-built
# dependency trace below on a 4-node/16-wavelength optical crossbar, seed 11.
GOLDEN_REPLAY = {
    "naive": {
        "exec_time_estimate": 81,
        "injections": {0: 0, 1: 12, 2: 25, 3: 0, 4: 14, 5: 40, 6: 12, 7: 30,
                       8: 60, 9: 25},
        "deliveries": {0: 11, 1: 23, 2: 50, 3: 5, 4: 25, 5: 51, 6: 42, 7: 50,
                       8: 71, 9: 42},
        "sim_events": 30,
    },
    "self_correcting": {
        "exec_time_estimate": 99,
        "injections": {0: 0, 1: 14, 2: 30, 3: 0, 4: 9, 5: 59, 6: 14, 7: 50,
                       8: 78, 9: 30},
        "deliveries": {0: 11, 1: 25, 2: 52, 3: 5, 4: 20, 5: 70, 6: 44, 7: 61,
                       8: 89, 9: 47},
        "sim_events": 30,
    },
}


def run_scenario() -> list[tuple[int, str]]:
    """Same-time collisions, mixed priorities, nested rescheduling."""
    sim = Simulator(seed=3)
    fired: list[tuple[int, str]] = []

    def tag(name: str) -> None:
        fired.append((sim.now, name))

    def nested(name: str, extra_t: int, extra_prio: int) -> None:
        tag(name)
        sim.schedule(extra_t, tag, (name + ".child",), priority=extra_prio)

    for i in range(6):
        sim.schedule(10, tag, (f"a{i}",), priority=i % 3)
    sim.schedule(5, nested, ("n0", 10, 1))
    sim.schedule(5, nested, ("n1", 10, 0))
    sim.schedule(20, tag, ("z",), priority=-1)
    for i in range(4):
        sim.schedule(15, tag, (f"t{i}",), priority=2)
    sim.run()
    return fired


def _rec(msg_id, src, dst, t_inject, t_deliver, cause_id, gap,
         bound_id=-1, bound_gap=0, size=64, kind="data"):
    return TraceRecord(
        msg_id=msg_id, key=(src, dst, kind, msg_id, 0), src=src, dst=dst,
        size_bytes=size, kind=kind, t_inject=t_inject, t_deliver=t_deliver,
        cause_id=cause_id, gap=gap, bound_id=bound_id, bound_gap=bound_gap)


def golden_trace() -> Trace:
    """Hand-built dependency trace: chains, fan-out, a bound edge,
    same-time contention on the target channels."""
    recs = [
        _rec(0, 0, 1, 0, 9, -1, 0),
        _rec(1, 1, 2, 12, 20, 0, 3),
        _rec(2, 2, 3, 25, 33, 1, 5),
        _rec(3, 0, 2, 0, 10, -1, 0, size=8, kind="ctrl"),
        _rec(4, 2, 0, 14, 22, 3, 4),
        _rec(5, 3, 0, 40, 52, 2, 7, bound_id=4, bound_gap=18),
        _rec(6, 1, 3, 12, 24, 0, 3, size=256),
        _rec(7, 3, 1, 30, 41, 6, 6),
        _rec(8, 0, 3, 60, 70, 5, 8),
        _rec(9, 2, 1, 25, 36, 1, 5, size=128),
    ]
    markers = [
        EndMarker(node=0, t_finish=75, cause_id=5, gap=23),
        EndMarker(node=3, t_finish=80, cause_id=8, gap=10),
    ]
    return Trace(records=recs, end_markers=markers, exec_time=80,
                 meta={"synthetic": True})


def test_golden_event_firing_order():
    assert run_scenario() == GOLDEN_SCENARIO_ORDER


def test_golden_event_firing_order_is_stable_across_runs():
    assert run_scenario() == run_scenario()


@pytest.mark.parametrize("mode", ["naive", "self_correcting"])
def test_golden_replay_timings(mode):
    cfg = OnocConfig(num_nodes=4, num_wavelengths=16)
    res = replay_trace(golden_trace(), optical_factory(cfg, seed=11),
                       TraceConfig(mode=mode))
    exp = GOLDEN_REPLAY[mode]
    assert res.exec_time_estimate == exp["exec_time_estimate"]
    assert res.injections == exp["injections"]
    assert res.deliveries == exp["deliveries"]
    assert res.sim_events == exp["sim_events"]
    assert res.messages_unreplayed == 0
